//! Property tests for the shared planning engine and the query algebra,
//! over randomized instances.

use dsq::prelude::*;
use dsq_core::{ClusterPlanner, PlannerInput};
use dsq_net::{LinkKind, Network};
use dsq_query::{DerivedId, LeafSource, QueryId, Schema, StreamSet};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// A random connected network of `n` nodes (random tree + extra edges).
fn arb_network() -> impl Strategy<Value = Network> {
    (
        4usize..9,
        proptest::collection::vec((0.5f64..5.0, 0usize..100), 3..9),
        0u64..1_000,
    )
        .prop_map(|(n, extra, seed)| {
            let mut net = Network::new(n);
            // Deterministic random-ish tree from the seed.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 1..n {
                let parent = (next() as usize) % i;
                let cost = 0.5 + (next() % 40) as f64 / 10.0;
                net.add_link(
                    NodeId(i as u32),
                    NodeId(parent as u32),
                    cost,
                    1.0,
                    LinkKind::Stub,
                );
            }
            for (cost, pair_seed) in extra {
                let a = (pair_seed * 7) % n;
                let b = (pair_seed * 13 + 1) % n;
                if a != b && net.find_link(NodeId(a as u32), NodeId(b as u32)).is_none() {
                    net.add_link(
                        NodeId(a as u32),
                        NodeId(b as u32),
                        cost,
                        1.0,
                        LinkKind::Stub,
                    );
                }
            }
            net
        })
}

fn arb_catalog_query(
    n_nodes: usize,
) -> impl Strategy<Value = (dsq_query::Catalog, Query, Vec<LeafSource>)> {
    (
        2usize..=4,
        proptest::collection::vec((1.0f64..30.0, 0usize..100), 4),
        proptest::collection::vec(0.01f64..0.5, 6),
        0usize..100,
        proptest::bool::ANY,
    )
        .prop_map(move |(k, rates, sigmas, sink_seed, with_derived)| {
            let mut c = dsq_query::Catalog::new();
            let ids: Vec<_> = (0..k)
                .map(|i| {
                    c.add_stream(
                        format!("S{i}"),
                        rates[i].0,
                        NodeId((rates[i].1 % n_nodes) as u32),
                        Schema::default(),
                    )
                })
                .collect();
            let mut si = 0;
            for i in 0..k {
                for j in (i + 1)..k {
                    c.set_selectivity(ids[i], ids[j], sigmas[si % sigmas.len()]);
                    si += 1;
                }
            }
            let sink = NodeId((sink_seed % n_nodes) as u32);
            let q = Query::join(QueryId(0), ids.clone(), sink);
            let mut deriveds = Vec::new();
            if with_derived && k >= 3 {
                let covered = StreamSet::from_iter([ids[0], ids[1]]);
                let rate = q.effective_rate(&c, ids[0])
                    * q.effective_rate(&c, ids[1])
                    * c.selectivity(ids[0], ids[1]);
                deriveds.push(LeafSource::Derived {
                    id: DerivedId(0),
                    covered,
                    rate,
                    host: NodeId((sink_seed % n_nodes) as u32),
                });
            }
            (c, q, deriveds)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DP engine and the literal exhaustive engine agree on the optimum.
    #[test]
    fn dp_equals_exhaustive(net in arb_network(), seed in 0u64..1000) {
        let n = net.len();
        let dm = dsq_net::DistanceMatrix::build(&net, Metric::Cost);
        let strategy = arb_catalog_query(n);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let (c, q, deriveds) = strategy
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let _ = seed;
        let planner = ClusterPlanner::new(&c, &q);
        let mut inputs: Vec<PlannerInput> = q
            .sources
            .iter()
            .map(|&s| PlannerInput::base(&c, s))
            .collect();
        for d in &deriveds {
            inputs.push(PlannerInput::derived(d.clone()));
        }
        let candidates: Vec<NodeId> = net.nodes().collect();
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let dp = planner
            .plan(&inputs, &candidates, &dm, Some(q.sink), None, &mut s1)
            .unwrap()
            .unwrap();
        let ex = planner
            .plan_exhaustive(&inputs, &candidates, &dm, Some(q.sink), None, &mut s2)
            .unwrap()
            .unwrap();
        prop_assert!(
            (dp.est_cost - ex.est_cost).abs() < 1e-6 * ex.est_cost.max(1.0),
            "dp {} vs exhaustive {}",
            dp.est_cost,
            ex.est_cost
        );
        // The reconstructed tree's deployed cost equals the estimate when
        // planning with true distances.
        let d = dp.tree.into_deployment(&q, &c, &dm);
        prop_assert!((d.cost - dp.est_cost).abs() < 1e-6 * d.cost.max(1.0));
    }

    /// Adding more candidates never makes the engine's optimum worse.
    #[test]
    fn more_candidates_never_hurt(net in arb_network()) {
        let n = net.len();
        let dm = dsq_net::DistanceMatrix::build(&net, Metric::Cost);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let (c, q, _) = arb_catalog_query(n).new_tree(&mut runner).unwrap().current();
        let planner = ClusterPlanner::new(&c, &q);
        let inputs: Vec<PlannerInput> =
            q.sources.iter().map(|&s| PlannerInput::base(&c, s)).collect();
        let all: Vec<NodeId> = net.nodes().collect();
        let half: Vec<NodeId> = net.nodes().take(n / 2 + 1).collect();
        let mut s = SearchStats::new();
        let full = planner
            .plan(&inputs, &all, &dm, Some(q.sink), None, &mut s)
            .unwrap()
            .unwrap();
        let part = planner
            .plan(&inputs, &half, &dm, Some(q.sink), None, &mut s)
            .unwrap()
            .unwrap();
        prop_assert!(full.est_cost <= part.est_cost + 1e-9);
    }

    /// StreamSet algebra laws.
    #[test]
    fn stream_set_laws(
        a in proptest::collection::vec(0u32..20, 0..8),
        b in proptest::collection::vec(0u32..20, 0..8),
    ) {
        let sa = StreamSet::from_iter(a.iter().map(|&i| dsq_query::StreamId(i)));
        let sb = StreamSet::from_iter(b.iter().map(|&i| dsq_query::StreamId(i)));
        let union = sa.union(&sb);
        prop_assert!(sa.is_subset_of(&union) && sb.is_subset_of(&union));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        let diff = sa.difference(&sb);
        prop_assert!(diff.is_disjoint_from(&sb));
        prop_assert_eq!(diff.union(&sa.intersection(&sb)), sa.clone());
        prop_assert_eq!(
            sa.intersection(&sb).len() + union.len(),
            sa.len() + sb.len()
        );
    }

    /// Join-tree enumeration count matches the closed form for arbitrary k.
    #[test]
    fn enumeration_matches_closed_form(k in 1usize..=6) {
        let leaves: Vec<_> = (0..k as u32)
            .map(|i| dsq_query::JoinTree::base(dsq_query::StreamId(i)))
            .collect();
        let trees = dsq_query::enumerate_trees(&leaves);
        prop_assert_eq!(trees.len() as u128, dsq_query::bushy_tree_count(k));
    }
}
