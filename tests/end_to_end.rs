//! Miniature end-to-end versions of the paper's experiments, kept fast
//! enough for `cargo test`: each asserts the *shape* the corresponding
//! figure reports (who wins, direction of trends), not absolute numbers.

use dsq::prelude::*;
use dsq_baselines::{InNetwork, InNetworkRunner, PlanThenDeploy, Relaxation};
use dsq_core::{consolidate, Optimal, Optimizer};

fn workload(env: &Environment, seed: u64, queries: usize, skew: Option<f64>) -> Workload {
    WorkloadGenerator::new(
        WorkloadConfig {
            streams: 40,
            queries,
            joins_per_query: 2..=4,
            source_skew: skew,
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate(&env.network)
}

fn batch_cost(alg: &dyn Optimizer, wl: &Workload, reuse: bool) -> f64 {
    let mut reg = ReuseRegistry::new();
    consolidate::deploy_all(alg, &wl.catalog, &wl.queries, &mut reg, reuse).total_cost()
}

/// Figure 2's shape: joint planning beats plan-then-deploy beats Relaxation.
#[test]
fn fig2_shape_joint_beats_phased_beats_relaxation() {
    let env = Environment::build(TransitStubConfig::paper_64().generate(2).network, 16);
    let mut totals = [0.0f64; 3];
    for seed in 0..3 {
        let wl = workload(&env, 10 + seed, 12, Some(1.0));
        totals[0] += batch_cost(&TopDown::new(&env), &wl, true);
        totals[1] += batch_cost(&PlanThenDeploy::new(&env), &wl, true);
        totals[2] += batch_cost(&Relaxation::new(&env), &wl, true);
    }
    assert!(totals[0] < totals[1], "joint {:?} must beat phased", totals);
    assert!(totals[1] < totals[2], "optimal placement beats relaxation");
}

/// Figure 7's shape: reuse lowers cost; optimal ≤ top-down ≤ bottom-up.
#[test]
fn fig7_shape_reuse_and_suboptimality_ordering() {
    let env = Environment::build(TransitStubConfig::paper_128().generate(1).network, 32);
    let (mut td_r, mut td, mut bu_r, mut bu, mut opt) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for seed in 0..3 {
        let wl = workload(&env, 20 + seed, 15, Some(1.6));
        td_r += batch_cost(&TopDown::new(&env), &wl, true);
        td += batch_cost(&TopDown::new(&env), &wl, false);
        bu_r += batch_cost(&BottomUp::new(&env), &wl, true);
        bu += batch_cost(&BottomUp::new(&env), &wl, false);
        opt += batch_cost(&Optimal::new(&env), &wl, true);
    }
    assert!(td_r < td, "reuse must help top-down: {td_r} vs {td}");
    assert!(bu_r < bu, "reuse must help bottom-up: {bu_r} vs {bu}");
    assert!(opt <= td_r + 1e-6, "optimal is the floor");
    assert!(
        td_r <= bu_r * 1.02,
        "top-down ≲ bottom-up: {td_r} vs {bu_r}"
    );
}

/// Figure 8's shape: hierarchical algorithms beat both published baselines.
#[test]
fn fig8_shape_hierarchical_beats_baselines() {
    let env = Environment::build(TransitStubConfig::paper_128().generate(1).network, 32);
    let zones = InNetwork::new(&env, 5);
    let inw = InNetworkRunner {
        zones: &zones,
        env: &env,
    };
    let (mut td, mut bu, mut rel, mut inn) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..3 {
        let wl = workload(&env, 30 + seed, 12, Some(1.6));
        td += batch_cost(&TopDown::new(&env), &wl, true);
        bu += batch_cost(&BottomUp::new(&env), &wl, true);
        rel += batch_cost(&Relaxation::new(&env), &wl, true);
        inn += batch_cost(&inw, &wl, true);
    }
    assert!(td < inn && td < rel, "top-down beats both baselines");
    assert!(bu < inn && bu < rel, "bottom-up beats both baselines");
}

/// Figure 9's shape: examined plans are a vanishing fraction of Lemma 1's
/// exhaustive space as the network grows.
#[test]
fn fig9_shape_search_space_reduction() {
    for target in [64usize, 256] {
        let cfg = TransitStubConfig::sized(target);
        let net = cfg.generate(9).network;
        let n = net.len();
        let env = Environment::build(net, 32);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 30,
                queries: 5,
                joins_per_query: 3..=3,
                ..WorkloadConfig::default()
            },
            33,
        )
        .generate(&env.network);
        for alg in [&TopDown::new(&env) as &dyn Optimizer, &BottomUp::new(&env)] {
            let mut total = 0u128;
            for q in &wl.queries {
                let mut reg = ReuseRegistry::new();
                let mut stats = SearchStats::new();
                alg.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap();
                total += stats.plans_considered;
            }
            let per_query = total as f64 / wl.queries.len() as f64;
            let exhaustive = dsq_core::bounds::lemma1_space_f64(4, n);
            assert!(
                per_query < exhaustive * 0.05,
                "{} on n={n}: {per_query} vs exhaustive {exhaustive}",
                alg.name()
            );
        }
    }
}

/// Figures 10/11's shape on the Emulab testbed model: Top-Down deploys
/// cheaper, members-only Bottom-Up deploys faster.
#[test]
fn fig10_11_shape_emulab_tradeoff() {
    let net = TransitStubConfig::emulab_32().generate(4).network;
    let env = Environment::build(net.clone(), 4);
    let model = dsq_sim::EmulabModel::new(&net);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 8,
            queries: 15,
            joins_per_query: 1..=4,
            ..WorkloadConfig::default()
        },
        12,
    )
    .generate(&net);
    let (mut td_cost, mut bu_cost) = (0.0, 0.0);
    let (mut td_ms, mut bum_ms) = (0.0, 0.0);
    let mut reg_td = ReuseRegistry::new();
    let mut reg_bu = ReuseRegistry::new();
    let mut reg_bum = ReuseRegistry::new();
    for q in &wl.queries {
        let mut s_td = SearchStats::new();
        let d_td = TopDown::new(&env)
            .optimize(&wl.catalog, q, &mut reg_td, &mut s_td)
            .unwrap();
        td_ms += model.deployment_time(q.sink, &s_td, &d_td).total_ms();
        td_cost += d_td.cost;
        let mut s = SearchStats::new();
        bu_cost += BottomUp::new(&env)
            .optimize(&wl.catalog, q, &mut reg_bu, &mut s)
            .unwrap()
            .cost;
        let mut s_bum = SearchStats::new();
        let d_bum = BottomUp::with_placement(&env, BottomUpPlacement::MembersOnly)
            .optimize(&wl.catalog, q, &mut reg_bum, &mut s_bum)
            .unwrap();
        bum_ms += model.deployment_time(q.sink, &s_bum, &d_bum).total_ms();
    }
    assert!(td_cost <= bu_cost * 1.05, "fig11: top-down deploys cheaper");
    assert!(bum_ms < td_ms, "fig10: bottom-up deploys faster");
}
