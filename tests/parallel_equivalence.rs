//! Byte-identity of the parallel multi-query planning driver.
//!
//! `optimize_all` must produce *exactly* the same results with fan-out on
//! or off — same deployments, same costs down to the bit, same search
//! accounting, and the same virtual-clock JSONL trace — and the shared
//! subplan cache must never change an answer, only the time it takes to
//! produce it (including across adaptation epochs).

use dsq::obs;
use dsq::prelude::*;

/// Force a real multi-thread pool for this whole test binary, so the
/// "parallel" runs below genuinely cross threads. `build_global` is
/// process-wide; doing it in every test keeps them order-independent (the
/// shim reconfigures; with upstream rayon later calls would just error —
/// either way the pool exists).
fn ensure_pool() {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build_global();
}

fn workload(env: &Environment) -> Workload {
    WorkloadGenerator::new(
        WorkloadConfig {
            streams: 16,
            queries: 14,
            joins_per_query: 2..=4,
            source_skew: Some(1.0), // shared hot streams => overlapping subplans
            ..WorkloadConfig::default()
        },
        5,
    )
    .generate(&env.network)
}

fn fresh_env(seed: u64) -> Environment {
    let net = TransitStubConfig::sized(64).generate(seed).network;
    Environment::build(net, 16)
}

/// One full `optimize_all` run under a scoped virtual-clock sink.
fn run(cache: bool, parallel: bool) -> (MultiQueryOutcome, String, u64) {
    ensure_pool();
    let env = fresh_env(9);
    env.plan_cache.set_enabled(cache);
    let wl = workload(&env);
    let sink = obs::Sink::new(obs::ClockMode::Virtual);
    let out = {
        let _scope = obs::scoped(sink.clone());
        let td = TopDown::new(&env);
        let cfg = ParallelConfig {
            parallel,
            ..ParallelConfig::default()
        };
        optimize_all(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        )
    };
    (out, sink.to_jsonl(), env.plan_cache.hits())
}

fn assert_outcomes_identical(a: &MultiQueryOutcome, b: &MultiQueryOutcome) {
    assert_eq!(a.deployments.len(), b.deployments.len());
    for (x, y) in a.deployments.iter().zip(&b.deployments) {
        match (x, y) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "cost bits differ");
                assert_eq!(x.placement, y.placement, "placement differs");
                assert_eq!(x.sink, y.sink);
            }
            _ => panic!("feasibility differs between runs"),
        }
    }
    assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
    assert_eq!(a.stats, b.stats, "search accounting differs");
}

#[test]
fn parallel_equals_serial_including_traces() {
    let (serial, serial_trace, _) = run(true, false);
    let (parallel, parallel_trace, _) = run(true, true);
    assert!(serial.planned() > 0);
    assert_outcomes_identical(&serial, &parallel);
    assert!(!serial_trace.is_empty());
    assert_eq!(
        serial_trace, parallel_trace,
        "virtual-clock traces must be byte-identical across thread counts"
    );
}

#[test]
fn cache_never_changes_answers() {
    let (cached, _, hits) = run(true, true);
    let (uncached, _, misses_only) = run(false, true);
    assert_outcomes_identical(&cached, &uncached);
    assert!(
        hits > 0,
        "the skewed workload shares subplans, so the cache must hit"
    );
    assert_eq!(misses_only, 0, "disabled cache must never record a hit");
}

#[test]
fn epoch_bump_keeps_replanning_correct() {
    ensure_pool();
    // Plan, warm the cache, then change the world (link costs) the way
    // `sim::adapt` does — rebuild distances and invalidate. Replanning
    // against the warmed-but-invalidated cache must match a cold planner
    // over the same mutated environment.
    let wl_env = fresh_env(9);
    let wl = workload(&wl_env);
    let cfg = ParallelConfig::default();

    let mut env = fresh_env(9);
    env.plan_cache.set_enabled(true);
    {
        let td = TopDown::new(&env);
        let warm = optimize_all(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        );
        assert!(warm.planned() > 0);
    }
    assert!(!env.plan_cache.is_empty(), "first pass populates the cache");

    // Mutate: make one existing link dramatically more expensive.
    let (a, b) = {
        let u = env.network.nodes().next().unwrap();
        let l = env.network.neighbors(u).first().unwrap();
        (u, l.to)
    };
    assert!(env.network.set_link_cost(a, b, 500.0));
    env.dm = DistanceMatrix::build(&env.network, Metric::Cost);
    env.hierarchy.refresh_statistics(&env.dm);
    let epoch_before = env.plan_cache.epoch();
    env.plan_cache.invalidate();
    assert_eq!(env.plan_cache.epoch(), epoch_before + 1);
    assert!(env.plan_cache.is_empty(), "invalidation clears entries");

    let replanned = {
        let td = TopDown::new(&env);
        optimize_all(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        )
    };

    // Reference: a never-cached environment with the same mutation.
    let reference_env = {
        let mut e = fresh_env(9);
        assert!(e.network.set_link_cost(a, b, 500.0));
        e.dm = DistanceMatrix::build(&e.network, Metric::Cost);
        e.hierarchy.refresh_statistics(&e.dm);
        e
    };
    let reference = {
        let td = TopDown::new(&reference_env);
        optimize_all(
            &reference_env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        )
    };
    assert_outcomes_identical(&replanned, &reference);
}

#[test]
fn scoped_retirement_keeps_replanning_correct() {
    ensure_pool();
    // Same shape as the epoch-bump test, but instead of flushing the warm
    // cache we retire only the entries whose DP consulted a drifted
    // distance (`metric_dirty_nodes` + `retire_metric`). Replanning over
    // the partially retained cache must still match a cold planner over
    // the same mutated environment — the surviving entries are exactly the
    // ones the change could not have touched.
    use dsq::core::metric_dirty_nodes;
    let wl_env = fresh_env(9);
    let wl = workload(&wl_env);
    let cfg = ParallelConfig::default();

    let mut env = fresh_env(9);
    env.plan_cache.set_enabled(true);
    {
        let td = TopDown::new(&env);
        let warm = optimize_all(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        );
        assert!(warm.planned() > 0);
    }
    let entries_before = env.plan_cache.len();
    assert!(entries_before > 0);

    let (a, b) = {
        let u = env.network.nodes().next().unwrap();
        let l = env.network.neighbors(u).first().unwrap();
        (u, l.to)
    };
    assert!(env.network.set_link_cost(a, b, 500.0));
    let new_dm = DistanceMatrix::build(&env.network, Metric::Cost);
    let dirty = metric_dirty_nodes(&env.dm, &new_dm);
    assert!(!dirty.is_empty());
    let retired = env.plan_cache.retire_metric(&env.dm, &new_dm);
    env.dm = new_dm;
    env.hierarchy.refresh_statistics(&env.dm);
    assert!(retired > 0, "the drift must retire something");
    assert_eq!(
        env.plan_cache.epoch(),
        0,
        "scoped retirement must not bump the epoch"
    );

    let replanned = {
        let td = TopDown::new(&env);
        optimize_all(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        )
    };

    let reference_env = {
        let mut e = fresh_env(9);
        assert!(e.network.set_link_cost(a, b, 500.0));
        e.dm = DistanceMatrix::build(&e.network, Metric::Cost);
        e.hierarchy.refresh_statistics(&e.dm);
        e
    };
    let reference = {
        let td = TopDown::new(&reference_env);
        optimize_all(
            &reference_env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        )
    };
    assert_outcomes_identical(&replanned, &reference);
}
