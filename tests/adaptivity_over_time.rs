//! Long-running adaptivity scenario: 12 queries live through a 15-step
//! rate trace with surges; the middleware re-estimates, replans on
//! degradation and gates migrations on the break-even horizon. Asserts the
//! closed-loop system stays coherent and that adaptation beats doing
//! nothing.

use dsq::prelude::*;
use dsq_core::Optimal;
use dsq_sim::AdaptiveRuntime;
use dsq_workload::{RateTrace, RateTraceConfig};

#[test]
fn middleware_tracks_a_rate_trace() {
    let net = TransitStubConfig::paper_64().generate(33).network;
    let env = Environment::build(net, 16);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 20,
            queries: 12,
            joins_per_query: 2..=3,
            ..WorkloadConfig::default()
        },
        81,
    )
    .generate(&env.network);
    let mut catalog = wl.catalog.clone();

    // Initial deployment; keep a frozen copy for the do-nothing shadow.
    let mut rt = AdaptiveRuntime::new(env, 0.25).with_migration_horizon(50.0);
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let mut initial: Vec<Deployment> = Vec::new();
    for q in &wl.queries {
        let d = TopDown::new(&rt.env)
            .optimize(&catalog, q, &mut reg, &mut stats)
            .unwrap();
        initial.push(d.clone());
        rt.install(q.clone(), d);
    }

    // A surging trace.
    let trace = RateTrace::generate(
        &catalog,
        &RateTraceConfig {
            steps: 15,
            drift: 0.05,
            surge_prob: 0.03,
            surge_factor: 10.0,
            ..RateTraceConfig::default()
        },
    );
    assert!(!trace.surges.is_empty(), "the trace must contain surges");

    let mut total_migrations = 0usize;
    let mut adapted_cost_integral = 0.0;
    let mut static_cost_integral = 0.0;

    for step in 0..trace.len() {
        trace.apply(&mut catalog, step);
        let report = rt.handle_data_changes(&catalog, |env, q| {
            let mut reg = ReuseRegistry::new();
            let mut st = SearchStats::new();
            Optimal::new(env).optimize(&catalog, q, &mut reg, &mut st)
        });
        total_migrations += report.migrated.len();
        adapted_cost_integral += rt.total_cost();

        // Shadow: the initial deployments, re-estimated but never replanned.
        let static_cost: f64 = initial
            .iter()
            .zip(&wl.queries)
            .map(|(d0, q)| d0.reestimate(q, &catalog, &rt.env.dm).cost)
            .sum();
        static_cost_integral += static_cost;

        // Closed-loop consistency: every standing deployment's cost matches
        // a fresh re-estimate under the current catalog.
        for d in rt.deployments() {
            let q = wl.queries.iter().find(|q| q.id == d.query).unwrap();
            let fresh = d.reestimate(q, &catalog, &rt.env.dm);
            assert!((fresh.cost - d.cost).abs() < 1e-9);
        }
    }

    assert!(
        total_migrations > 0,
        "10× surges across 15 steps must trigger at least one migration"
    );
    assert!(
        adapted_cost_integral <= static_cost_integral + 1e-6,
        "adaptation must not lose to doing nothing: \
         {adapted_cost_integral} vs {static_cost_integral}"
    );
    println!(
        "adaptation: {} migrations; cost integral {:.0} vs static {:.0} ({:.1}% saved)",
        total_migrations,
        adapted_cost_integral,
        static_cost_integral,
        (1.0 - adapted_cost_integral / static_cost_integral) * 100.0
    );
}
