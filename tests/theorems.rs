//! Property-based verification of the paper's analytical results over
//! randomized topologies, hierarchies and workloads.

use dsq::prelude::*;
use dsq_core::{bounds, Optimal, Optimizer};
use dsq_net::TransitStubConfig;
use proptest::prelude::*;

/// A random small transit-stub configuration.
fn arb_topology() -> impl Strategy<Value = (TransitStubConfig, u64)> {
    (
        1usize..=2, // transit domains
        2usize..=4, // transit nodes per domain
        1usize..=3, // stub domains per transit node
        3usize..=6, // stub nodes per domain
        0u64..1000, // seed
    )
        .prop_map(|(td, tn, sd, sn, seed)| {
            (
                TransitStubConfig {
                    transit_domains: td,
                    transit_nodes_per_domain: tn,
                    stub_domains_per_transit_node: sd,
                    stub_nodes_per_domain: sn,
                    ..TransitStubConfig::default()
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: for every pair of nodes and every level,
    /// `|c_act − c_est^l| ≤ Σ_{i<l} 2·d_i`.
    #[test]
    fn theorem1_holds_on_random_topologies((cfg, seed) in arb_topology(), max_cs in 2usize..=12) {
        let net = cfg.generate(seed).network;
        let env = Environment::build(net, max_cs);
        let h = &env.hierarchy;
        let nodes = h.active_nodes();
        for level in 1..=h.height() {
            let slack = h.theorem1_slack(level);
            for (i, &a) in nodes.iter().enumerate() {
                for &b in nodes.iter().skip(i + 1) {
                    let act = env.dm.get(a, b);
                    let est = h.estimated_cost(&env.dm, a, b, level);
                    prop_assert!(
                        (act - est).abs() <= slack + 1e-9,
                        "level {level}: act {act} est {est} slack {slack}"
                    );
                }
            }
        }
    }

    /// Theorem 3: Top-Down's gap to the optimum never exceeds
    /// `Σ_k s_k · Σ_i 2·d_i` for the chosen plan's edges.
    #[test]
    fn theorem3_holds_on_random_instances((cfg, seed) in arb_topology(), wl_seed in 0u64..500) {
        let net = cfg.generate(seed).network;
        if net.len() < 8 {
            return Ok(());
        }
        let env = Environment::build(net, 6);
        let mut gen = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 8,
                queries: 3,
                joins_per_query: 2..=3,
                ..WorkloadConfig::default()
            },
            wl_seed,
        );
        let wl = gen.generate(&env.network);
        for q in &wl.queries {
            let mut r1 = ReuseRegistry::new();
            let mut r2 = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            let td = TopDown::new(&env).optimize(&wl.catalog, q, &mut r1, &mut stats).unwrap();
            let opt = Optimal::new(&env).optimize(&wl.catalog, q, &mut r2, &mut stats).unwrap();
            let bound = bounds::theorem3_bound(&td, &env.hierarchy);
            prop_assert!(td.cost + 1e-9 >= opt.cost, "td below optimal");
            prop_assert!(
                td.cost - opt.cost <= bound + 1e-6,
                "gap {} > bound {bound}",
                td.cost - opt.cost
            );
        }
    }

    /// Theorems 2 and 4: the experimentally examined search space never
    /// exceeds the β-scaled exhaustive bound.
    #[test]
    fn theorems_2_and_4_bound_examined_plans((cfg, seed) in arb_topology(), wl_seed in 0u64..500) {
        let net = cfg.generate(seed).network;
        if net.len() < 12 {
            return Ok(());
        }
        let n = net.len();
        let env = Environment::build(net, 6);
        let h_height = env.hierarchy.height();
        let mut gen = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 8,
                queries: 3,
                joins_per_query: 2..=3,
                ..WorkloadConfig::default()
            },
            wl_seed,
        );
        let wl = gen.generate(&env.network);
        for q in &wl.queries {
            let k = q.sources.len();
            let bound = bounds::hierarchical_space_bound(k, n, 6, h_height)
                .max(bounds::lemma1_space_f64(k, 6) * h_height as f64);
            for alg in [&TopDown::new(&env) as &dyn dsq_core::Optimizer, &BottomUp::new(&env)] {
                let mut reg = ReuseRegistry::new();
                let mut stats = SearchStats::new();
                alg.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap();
                prop_assert!(
                    (stats.plans_considered as f64) <= bound * 4.0,
                    "{}: {} plans vs bound {bound}",
                    alg.name(),
                    stats.plans_considered
                );
            }
        }
    }

    /// Lemma 1 sanity: the formula is monotone in both k and n.
    #[test]
    fn lemma1_monotone(k in 2usize..=6, n in 2usize..=512) {
        prop_assert!(bounds::lemma1_space(k, n) <= bounds::lemma1_space(k + 1, n));
        prop_assert!(bounds::lemma1_space(k, n) <= bounds::lemma1_space(k, n + 1));
    }

    /// β sanity: β < 1 whenever max_cs < n and k ≥ 2 with shallow
    /// hierarchies, and β shrinks when max_cs/n shrinks.
    #[test]
    fn beta_behaves(k in 2usize..=6, n in 64usize..=1024) {
        let b_small = bounds::beta(k, n, 8, 3);
        let b_large = bounds::beta(k, n, 32, 3);
        prop_assert!(b_small <= b_large + 1e-12);
        prop_assert!(bounds::beta(k, n, n, 1) >= 1.0 - 1e-12);
    }
}
