//! Load-aware planning: "node N2 may be overloaded … network conditions
//! dictate a more efficient join ordering" (Section 1.1). With a
//! [`LoadModel`] attached to the environment, optimizers price overload
//! into placement and spread operators across nodes.

use dsq::prelude::*;
use dsq_core::{LoadModel, Optimal};
use std::collections::HashMap;

fn setup() -> (Environment, Workload) {
    let net = TransitStubConfig::paper_64().generate(8).network;
    let env = Environment::build(net, 16);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 12,
            queries: 10,
            joins_per_query: 2..=3,
            ..WorkloadConfig::default()
        },
        44,
    )
    .generate(&env.network);
    (env, wl)
}

#[test]
fn overloaded_node_is_avoided() {
    let (mut env, wl) = setup();
    let q = &wl.queries[0];
    // Where does the unloaded optimum place its joins?
    let mut stats = SearchStats::new();
    let free = Optimal::new(&env)
        .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut stats)
        .unwrap();
    let hot = free.operator_nodes()[0];

    // Zero capacity for the hot node forces any added processing there to
    // be priced dearly; the rest have headroom.
    let mut caps = vec![1e6; env.network.len()];
    caps[hot.index()] = 0.0;
    env.enable_load_model(LoadModel::with_capacities(caps, 50.0));

    let loaded = Optimal::new(&env)
        .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut stats)
        .unwrap();
    assert!(
        !loaded.operator_nodes().contains(&hot),
        "planner must avoid the saturated node {hot}: {:?}",
        loaded.operator_nodes()
    );
    // Avoiding the hot node can only increase pure communication cost.
    assert!(loaded.cost >= free.cost - 1e-9);
}

#[test]
fn committed_load_spreads_a_batch() {
    let (mut env, wl) = setup();
    // Tight capacities: each node can host roughly one operator's input.
    env.enable_load_model(LoadModel::uniform(env.network.len(), 120.0, 100.0));

    let mut spread_nodes: HashMap<NodeId, usize> = HashMap::new();
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    for q in &wl.queries {
        let d = Optimal::new(&env)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        env.commit_load(&d);
        for n in d.operator_nodes() {
            *spread_nodes.entry(n).or_insert(0) += 1;
        }
    }
    // Without a load model the same central nodes get reused; with it, the
    // operators must spread. Compare against the unloaded run.
    let env_free = {
        let net = TransitStubConfig::paper_64().generate(8).network;
        Environment::build(net, 16)
    };
    let mut free_nodes: HashMap<NodeId, usize> = HashMap::new();
    let mut reg2 = ReuseRegistry::new();
    for q in &wl.queries {
        let d = Optimal::new(&env_free)
            .optimize(&wl.catalog, q, &mut reg2, &mut stats)
            .unwrap();
        for n in d.operator_nodes() {
            *free_nodes.entry(n).or_insert(0) += 1;
        }
    }
    let max_loaded = spread_nodes.values().copied().max().unwrap_or(0);
    let max_free = free_nodes.values().copied().max().unwrap_or(0);
    assert!(
        max_loaded <= max_free,
        "load-aware batch must not concentrate more than the free one \
         (loaded max {max_loaded}, free max {max_free})"
    );
    // The standing overload should be small relative to naive stacking.
    let overload = env.load_snapshot().unwrap().overload_cost();
    assert!(overload.is_finite());
}

#[test]
fn release_load_supports_migration() {
    let (mut env, wl) = setup();
    env.enable_load_model(LoadModel::uniform(env.network.len(), 100.0, 10.0));
    let q = &wl.queries[0];
    let mut stats = SearchStats::new();
    let d = Optimal::new(&env)
        .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut stats)
        .unwrap();
    env.commit_load(&d);
    let after_commit = env.load_snapshot().unwrap();
    let hosting = d.operator_nodes()[0];
    assert!(after_commit.load(hosting) > 0.0);
    env.release_load(&d);
    let after_release = env.load_snapshot().unwrap();
    assert_eq!(after_release.load(hosting), 0.0);
}

#[test]
fn hierarchical_optimizers_respect_load_too() {
    let (mut env, wl) = setup();
    let q = &wl.queries[1];
    let mut stats = SearchStats::new();
    let free = TopDown::new(&env)
        .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut stats)
        .unwrap();
    let hot = free.operator_nodes()[0];
    let mut caps = vec![1e6; env.network.len()];
    caps[hot.index()] = 0.0;
    env.enable_load_model(LoadModel::with_capacities(caps, 50.0));

    for alg in [
        &TopDown::new(&env) as &dyn dsq_core::Optimizer,
        &BottomUp::new(&env),
    ] {
        let d = alg
            .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut stats)
            .unwrap();
        assert!(
            !d.operator_nodes().contains(&hot),
            "{} must avoid the saturated node",
            alg.name()
        );
    }
}
