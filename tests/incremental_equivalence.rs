//! Differential proof that scoped cache invalidation and incremental
//! replanning are equivalent to the always-sound reference path.
//!
//! Two arms run the *same* seeded fault timelines over the adaptive
//! runtime: one with [`InvalidationMode::Scoped`] (dirty-set retirement,
//! the default) and one with [`InvalidationMode::Flush`] (drop everything
//! on every change). After every single event the standing deployments,
//! their cost bits, the parked set and the total cost must be
//! byte-identical — scoped retirement may only ever change *how fast* an
//! answer is produced, never the answer. A final from-scratch replan over
//! both arms' post-schedule environments (cache off, virtual clock) must
//! produce byte-identical JSONL traces, proving the two environments
//! converged bit-for-bit.
//!
//! A second family of tests pins `optimize_dirty`: after a localized
//! metric drift, replanning only the queries whose deployments intersect
//! the dirty node set must reproduce the full from-scratch replan exactly.

use dsq::core::{metric_dirty_nodes, optimize_dirty, InvalidationMode};
use dsq::obs;
use dsq::prelude::*;
use dsq::sim::adapt::{AdaptiveRuntime, LinkChange};
use dsq::sim::chaos::{Fault, FaultConfig, FaultSchedule};
use std::collections::HashSet;

fn build_env(seed: u64) -> Environment {
    let net = TransitStubConfig::paper_64().generate(seed).network;
    Environment::build(net, 16)
}

fn build_workload(env: &Environment, seed: u64) -> Workload {
    WorkloadGenerator::new(
        WorkloadConfig {
            streams: 12,
            queries: 8,
            joins_per_query: 2..=3,
            source_skew: Some(1.0), // shared hot streams => overlapping subplans
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate(&env.network)
}

/// Plan one query with Top-Down against the runtime's current environment
/// (goes through the environment's subplan cache when enabled).
fn replan(env: &Environment, catalog: &Catalog, q: &Query) -> Option<Deployment> {
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    TopDown::new(env).optimize(catalog, q, &mut reg, &mut stats)
}

/// Byte-level fingerprint of a runtime's standing state.
#[derive(PartialEq, Debug)]
struct StateFp {
    deployments: Vec<(u32, u64, Vec<NodeId>, NodeId)>,
    parked: Vec<u32>,
    total_cost_bits: u64,
}

fn fingerprint(rt: &AdaptiveRuntime) -> StateFp {
    StateFp {
        deployments: rt
            .deployments()
            .iter()
            .map(|d| (d.query.0, d.cost.to_bits(), d.placement.clone(), d.sink))
            .collect(),
        parked: rt.parked().iter().map(|q| q.id.0).collect(),
        total_cost_bits: rt.total_cost().to_bits(),
    }
}

/// Apply one fault to the runtime, mirroring the chaos runner's dispatch
/// (without the lossy protocol — replans land directly).
fn apply_fault(rt: &mut AdaptiveRuntime, catalog: &Catalog, fault: &Fault) {
    let crash_one = |rt: &mut AdaptiveRuntime, n: NodeId| {
        if !rt.env.hierarchy.is_active(n) {
            return;
        }
        if rt.env.hierarchy.active_nodes().len() <= 2 {
            rt.forfeit_node_queries(n);
            return;
        }
        rt.handle_node_failure(catalog, n, |env, q| replan(env, catalog, q));
    };
    match fault {
        Fault::Crash(n) => crash_one(rt, *n),
        Fault::CrashCluster(members) => {
            for &n in members {
                crash_one(rt, n);
            }
        }
        Fault::Rejoin(n) => {
            if rt.env.hierarchy.is_active(*n) {
                return;
            }
            let via = *rt
                .env
                .hierarchy
                .active_nodes()
                .iter()
                .min_by(|&&a, &&b| {
                    rt.env
                        .dm
                        .get(a, *n)
                        .total_cmp(&rt.env.dm.get(b, *n))
                        .then(a.0.cmp(&b.0))
                })
                .expect("overlay is never empty");
            rt.handle_node_recovery(catalog, *n, via, |env, q| replan(env, catalog, q));
        }
        Fault::DegradeLink { a, b, factor } => {
            let Some(link) = rt.env.network.find_link(*a, *b) else {
                return;
            };
            let change = LinkChange {
                a: *a,
                b: *b,
                new_cost: link.cost * factor,
            };
            rt.handle_changes(&[change], |env, q| replan(env, catalog, q));
        }
    }
}

/// Build a runtime in the given invalidation mode with a fresh enabled
/// cache, install the whole workload, and return it.
fn installed_runtime(env: &Environment, wl: &Workload, mode: InvalidationMode) -> AdaptiveRuntime {
    let mut env = env.clone();
    env.isolate_cache(true);
    let mut rt = AdaptiveRuntime::new(env, 0.2);
    rt.invalidation = mode;
    for q in &wl.queries {
        if let Some(d) = replan(&rt.env, &wl.catalog, q) {
            rt.install(q.clone(), d);
        }
    }
    rt
}

/// Drive both invalidation arms through `schedule`, asserting byte-equal
/// state after every event; returns the two runtimes for post-mortems.
fn drive_differential(
    env: &Environment,
    wl: &Workload,
    schedule: &FaultSchedule,
) -> (AdaptiveRuntime, AdaptiveRuntime) {
    let mut scoped = installed_runtime(env, wl, InvalidationMode::Scoped);
    let mut flush = installed_runtime(env, wl, InvalidationMode::Flush);
    assert!(!scoped.deployments().is_empty(), "workload must install");
    assert_eq!(fingerprint(&scoped), fingerprint(&flush));

    for (i, tf) in schedule.faults.iter().enumerate() {
        apply_fault(&mut scoped, &wl.catalog, &tf.fault);
        apply_fault(&mut flush, &wl.catalog, &tf.fault);
        assert_eq!(
            fingerprint(&scoped),
            fingerprint(&flush),
            "scoped and flush invalidation diverged after event {i}: {:?}",
            tf.fault
        );
    }
    (scoped, flush)
}

/// From-scratch serial replan of the whole workload over `env` with the
/// cache disabled, under a virtual-clock sink. Returns (outcome, JSONL).
fn from_scratch_trace(env: &Environment, wl: &Workload) -> (MultiQueryOutcome, String) {
    let mut env = env.clone();
    env.isolate_cache(false);
    // Only the queries whose data still exists: a schedule may leave a
    // source origin or sink permanently crashed, and a from-scratch plan of
    // such a query is undefined over the surviving overlay. Both arms see
    // the identical active set, so the filter cannot mask a divergence.
    let queries: Vec<Query> = wl
        .queries
        .iter()
        .filter(|q| {
            env.hierarchy.is_active(q.sink)
                && q.sources
                    .iter()
                    .all(|&s| env.hierarchy.is_active(wl.catalog.stream(s).node))
        })
        .cloned()
        .collect();
    let sink = obs::Sink::new(obs::ClockMode::Virtual);
    let out = {
        let _scope = obs::scoped(sink.clone());
        let td = TopDown::new(&env);
        optimize_all(
            &env,
            &td,
            &wl.catalog,
            &queries,
            &ReuseRegistry::new(),
            &ParallelConfig::serial(),
        )
    };
    (out, sink.to_jsonl())
}

fn assert_deployments_identical(a: &MultiQueryOutcome, b: &MultiQueryOutcome) {
    assert_eq!(a.deployments.len(), b.deployments.len());
    for (i, (x, y)) in a.deployments.iter().zip(&b.deployments).enumerate() {
        match (x, y) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(
                    x.cost.to_bits(),
                    y.cost.to_bits(),
                    "cost bits differ for query {i}"
                );
                assert_eq!(x.placement, y.placement, "placement differs for query {i}");
                assert_eq!(x.sink, y.sink);
            }
            _ => panic!("feasibility differs for query {i}"),
        }
    }
    assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
}

/// One differential run per fault class the issue calls out: independent
/// crash, rejoin, correlated leaf failure, and metric drift — plus a mixed
/// 60-event schedule.
#[test]
fn scoped_invalidation_matches_flush_for_every_fault_class() {
    let env = build_env(31);
    let wl = build_workload(&env, 17);
    let mixes: &[(&str, FaultConfig)] = &[
        (
            "crash-heavy",
            FaultConfig {
                events: 40,
                crash_weight: 0.5,
                correlated_weight: 0.0,
                rejoin_weight: 0.4,
                degrade_weight: 0.1,
                ..FaultConfig::default()
            },
        ),
        (
            "correlated-leaf",
            FaultConfig {
                events: 30,
                crash_weight: 0.0,
                correlated_weight: 0.45,
                rejoin_weight: 0.45,
                degrade_weight: 0.1,
                ..FaultConfig::default()
            },
        ),
        (
            "metric-drift",
            FaultConfig {
                events: 20,
                crash_weight: 0.0,
                correlated_weight: 0.0,
                rejoin_weight: 0.0,
                degrade_weight: 1.0,
                ..FaultConfig::default()
            },
        ),
        (
            "mixed",
            FaultConfig {
                events: 60,
                ..FaultConfig::default()
            },
        ),
    ];
    for (name, cfg) in mixes {
        let schedule = FaultSchedule::generate(&env, cfg, 77);
        let (scoped, flush) = drive_differential(&env, &wl, &schedule);

        // Scoped mode keeps a superset of the flush arm's entries at every
        // point, so it can only hit more — and it must hit at all for the
        // optimization to mean anything.
        assert!(
            scoped.env.plan_cache.hits() >= flush.env.plan_cache.hits(),
            "[{name}] scoped retained fewer hits than flushing"
        );
        assert!(
            scoped.env.plan_cache.hits() > 0,
            "[{name}] scoped invalidation never hit the cache"
        );

        // Both arms' environments must have converged bit-for-bit: a cold,
        // cache-less, serial from-scratch replan over each produces the
        // same deployments and the same virtual-clock JSONL trace byte for
        // byte.
        let (out_s, trace_s) = from_scratch_trace(&scoped.env, &wl);
        let (out_f, trace_f) = from_scratch_trace(&flush.env, &wl);
        assert_deployments_identical(&out_s, &out_f);
        assert!(!trace_s.is_empty());
        assert_eq!(
            trace_s, trace_f,
            "[{name}] post-schedule environments diverged"
        );
    }
}

/// The scoped arm itself is deterministic: driving the identical schedule
/// twice produces identical final state and an identical obs trace.
#[test]
fn scoped_arm_is_deterministic_including_traces() {
    let env = build_env(31);
    let wl = build_workload(&env, 17);
    let cfg = FaultConfig {
        events: 40,
        ..FaultConfig::default()
    };
    let schedule = FaultSchedule::generate(&env, &cfg, 5);
    let run = || {
        let sink = obs::Sink::new(obs::ClockMode::Virtual);
        let rt = {
            let _scope = obs::scoped(sink.clone());
            let mut rt = installed_runtime(&env, &wl, InvalidationMode::Scoped);
            for tf in &schedule.faults {
                apply_fault(&mut rt, &wl.catalog, &tf.fault);
            }
            rt
        };
        (fingerprint(&rt), sink.to_jsonl())
    };
    let (fp1, trace1) = run();
    let (fp2, trace2) = run();
    assert_eq!(fp1, fp2);
    assert!(!trace1.is_empty());
    assert_eq!(
        trace1, trace2,
        "virtual-clock traces must be byte-identical"
    );
}

/// `optimize_dirty` after a localized metric drift: replanning only the
/// touched queries reproduces the full from-scratch replan byte for byte,
/// while genuinely skipping work.
#[test]
fn incremental_replan_matches_full_replan_after_metric_drift() {
    let mut env = build_env(31);
    env.isolate_cache(true);
    let wl = build_workload(&env, 17);
    let cfg = ParallelConfig::serial();
    let warm = {
        let td = TopDown::new(&env);
        optimize_all(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        )
    };
    assert!(warm.planned() > 0);
    assert!(!env.plan_cache.is_empty());

    // Localized drift on a link the planner actually consulted: degrade a
    // link incident to an operator host from the warm pass, picking one
    // whose fallout stays short of the whole network — pair-aware
    // retirement then has stale entries to find while most of the cache
    // survives.
    let (a, b) = {
        let mut choice = None;
        'outer: for d in warm.deployments.iter().flatten() {
            for &u in d.placement.iter().chain(std::iter::once(&d.sink)) {
                for l in env.network.neighbors(u) {
                    let mut net = env.network.clone();
                    assert!(net.set_link_cost(u, l.to, l.cost * 40.0));
                    let dm = DistanceMatrix::build(&net, Metric::Cost);
                    let dirty = metric_dirty_nodes(&env.dm, &dm);
                    if !dirty.is_empty() && dirty.len() < env.network.len() {
                        choice = Some((u, l.to));
                        break 'outer;
                    }
                }
            }
        }
        choice.expect("some host link drifts without dirtying the whole network")
    };
    let old_cost = env.network.find_link(a, b).unwrap().cost;
    assert!(env.network.set_link_cost(a, b, old_cost * 40.0));
    let new_dm = DistanceMatrix::build(&env.network, Metric::Cost);
    let dirty = metric_dirty_nodes(&env.dm, &new_dm);
    assert!(!dirty.is_empty(), "a 40x link change must move distances");
    assert!(
        dirty.len() < env.network.len(),
        "the drift must stay localized for the test to be meaningful"
    );
    let retired = env.plan_cache.retire_metric(&env.dm, &new_dm);
    env.dm = new_dm;
    env.hierarchy.refresh_statistics(&env.dm);
    assert!(retired > 0, "the drift must retire some memoized subplans");
    assert!(
        !env.plan_cache.is_empty(),
        "scoped retirement must keep the untouched entries"
    );

    let hits_before = env.plan_cache.hits();
    let incremental = {
        let td = TopDown::new(&env);
        optimize_dirty(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &warm.deployments,
            &dirty,
            &ReuseRegistry::new(),
            &cfg,
        )
    };
    assert!(
        env.plan_cache.hits() > hits_before,
        "replanned queries must reuse surviving subplans"
    );

    // Reference: a from-scratch, cache-less replan of everything over an
    // identically mutated fresh environment.
    let ref_env = {
        let mut e = build_env(31);
        e.isolate_cache(false);
        assert!(e.network.set_link_cost(a, b, old_cost * 40.0));
        e.dm = DistanceMatrix::build(&e.network, Metric::Cost);
        e.hierarchy.refresh_statistics(&e.dm);
        e
    };
    let reference = {
        let td = TopDown::new(&ref_env);
        optimize_all(
            &ref_env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        )
    };
    assert_deployments_identical(&incremental, &reference);
}

/// A no-op metric refresh (monitor round that observes identical
/// distances) must not retire a single cache entry: planning work after
/// two idle rounds still hits the warm cache.
#[test]
fn noop_metric_refresh_preserves_cache_entries() {
    let env = build_env(31);
    let wl = build_workload(&env, 17);
    let mut rt = installed_runtime(&env, &wl, InvalidationMode::Scoped);
    let entries = rt.env.plan_cache.len();
    assert!(entries > 0, "installation must warm the cache");

    // Two identical monitor rounds: rewrite an existing link to its
    // current cost. The rebuilt distance matrix is bit-identical, the
    // dirty set empty, and nothing may be retired.
    let (a, b) = {
        let u = rt.env.network.nodes().next().unwrap();
        let l = rt.env.network.neighbors(u).first().unwrap();
        (u, l.to)
    };
    let same_cost = rt.env.network.find_link(a, b).unwrap().cost;
    for round in 0..2 {
        let sink = obs::Sink::new(obs::ClockMode::Virtual);
        {
            let _scope = obs::scoped(sink.clone());
            let report = rt.handle_changes(
                &[LinkChange {
                    a,
                    b,
                    new_cost: same_cost,
                }],
                |env, q| replan(env, &wl.catalog, q),
            );
            assert!(report.migrated.is_empty(), "round {round}: nothing changed");
            // Replan the workload against the (unchanged) environment: the
            // warm cache must keep answering.
            let td = TopDown::new(&rt.env);
            optimize_all(
                &rt.env,
                &td,
                &wl.catalog,
                &wl.queries,
                &ReuseRegistry::new(),
                &ParallelConfig::serial(),
            );
        }
        assert_eq!(
            rt.env.plan_cache.len(),
            entries,
            "round {round}: a no-op refresh must not shrink the cache"
        );
        assert_eq!(
            rt.cache_retired(),
            0,
            "round {round}: a no-op refresh must not retire entries"
        );
        let snap = sink.snapshot();
        let hits = snap
            .counters
            .get("planner.cache_hits")
            .copied()
            .unwrap_or(0);
        assert!(
            hits > 0,
            "round {round}: planning across an idle monitor round must hit \
             the preserved cache (counters: {:?})",
            snap.counters
        );
    }
}

/// `deployment_touches` is the dirty test `optimize_dirty` uses; pin its
/// semantics: sink or any placement node in the dirty set.
#[test]
fn deployment_touches_matches_placement_and_sink() {
    use dsq::core::deployment_touches;
    let env = build_env(31);
    let wl = build_workload(&env, 17);
    let d = replan(&env, &wl.catalog, &wl.queries[0]).expect("feasible");
    let mut dirty: HashSet<NodeId> = HashSet::new();
    assert!(!deployment_touches(&d, &dirty));
    dirty.insert(d.sink);
    assert!(deployment_touches(&d, &dirty));
    dirty.clear();
    dirty.insert(d.placement[0]);
    assert!(deployment_touches(&d, &dirty));
    dirty.clear();
    // A node the deployment never references.
    let unused = env
        .network
        .nodes()
        .find(|n| *n != d.sink && !d.placement.contains(n))
        .unwrap();
    dirty.insert(unused);
    assert!(!deployment_touches(&d, &dirty));
}
