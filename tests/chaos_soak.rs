//! Chaos soak: a seeded 200-event fault schedule — independent crashes,
//! correlated (whole-leaf-cluster) failures, recoveries rejoining through
//! the membership protocol and link degradations — driven through the
//! adaptive runtime over a lossy deployment protocol. The runner asserts
//! the structural and cost-accounting invariants after every event; this
//! test checks the end-to-end outcome and the determinism guarantee.

use dsq::prelude::*;
use dsq::sim::chaos::{ChaosRunner, Fault, FaultConfig, FaultSchedule};
use dsq::sim::emulab::RetryPolicy;

fn soak_setup() -> (Environment, Workload, FaultSchedule) {
    let net = TransitStubConfig::paper_64().generate(41).network;
    let env = Environment::build(net, 16);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 10,
            queries: 8,
            joins_per_query: 2..=3,
            ..WorkloadConfig::default()
        },
        19,
    )
    .generate(&env.network);
    // Rejoin-favoring mix: with the default crash-heavy weights the 64-node
    // population bleeds out (every query's source origin eventually dies
    // and stays dead), and a soak with nothing left standing stops
    // exercising steady-state adaptation. Matching rejoins to crashes
    // keeps queries cycling through park → data-available → replan, which
    // is the regime the incremental-replanning assertions below measure.
    let cfg = FaultConfig {
        events: 200,
        mean_gap_ms: 2_000.0,
        crash_weight: 0.25,
        correlated_weight: 0.05,
        rejoin_weight: 0.50,
        degrade_weight: 0.20,
        ..FaultConfig::default()
    };
    let schedule = FaultSchedule::generate(&env, &cfg, 2024);
    (env, wl, schedule)
}

#[test]
fn two_hundred_event_soak_survives_with_invariants() {
    let (env, wl, schedule) = soak_setup();

    // The schedule must exercise every fault class, including correlated
    // multi-node failures and rejoins.
    let count =
        |pred: &dyn Fn(&Fault) -> bool| schedule.faults.iter().filter(|f| pred(&f.fault)).count();
    assert_eq!(schedule.faults.len(), 200);
    assert!(
        count(&|f| matches!(f, Fault::Crash(_))) > 0,
        "no crashes scheduled"
    );
    assert!(
        count(&|f| matches!(f, Fault::CrashCluster(_))) > 0,
        "no correlated failures scheduled"
    );
    assert!(
        count(&|f| matches!(f, Fault::Rejoin(_))) > 0,
        "no rejoins scheduled"
    );
    assert!(
        count(&|f| matches!(f, Fault::DegradeLink { .. })) > 0,
        "no link degradations scheduled"
    );

    let runner = ChaosRunner {
        policy: RetryPolicy::lossy(0.1),
        protocol_seed: 7,
        ..ChaosRunner::default()
    };
    // The runner panics on any post-event invariant violation (hierarchy
    // structure, deployments referencing inactive nodes, cost accounting).
    let report = runner.run(env, &wl.catalog, &wl.queries, &schedule);

    assert_eq!(report.applied + report.skipped, 200);
    assert_eq!(
        report.invariant_checks, 201,
        "one invariant suite per event plus the final sweep"
    );
    assert!(report.availability > 0.0, "some service must survive");
    assert!(report.availability <= 1.0 + 1e-12);
    assert!(report.installed_initially == 8);
    // Conservation at the population level: everything installed is now
    // live, parked or lost (redeployments move queries between the first
    // two pots, never mint new ones).
    assert_eq!(
        report.final_installed + report.final_parked + report.lost.len(),
        report.installed_initially
    );
    assert!(report.duration_ms > 0.0);

    // Incremental-replanning economics over the soak. Scoped invalidation
    // (the runner's default) must let memoized subplans survive across
    // adaptations — the cache keeps hitting through 200 faults — while the
    // dirty-set selection keeps replanning work proportional to what the
    // faults actually touched, not to the standing population.
    assert!(
        report.cache_hits > 0,
        "scoped invalidation must preserve cache hits across the soak"
    );
    assert!(
        report.cache_retired > 0,
        "200 faults must retire at least one memoized subplan"
    );
    let replan_ratio = report.queries_replanned as f64
        / (report.applied as f64 * report.installed_initially as f64);
    assert!(
        replan_ratio < 0.5,
        "incremental replanning must not approach replan-everything-per-event \
         (got {:.3}: {} replans over {} applied events x {} queries)",
        replan_ratio,
        report.queries_replanned,
        report.applied,
        report.installed_initially
    );
}

#[test]
fn soak_report_is_deterministic_for_a_fixed_seed() {
    let (env, wl, schedule) = soak_setup();
    let runner = ChaosRunner {
        policy: RetryPolicy::lossy(0.1),
        protocol_seed: 7,
        ..ChaosRunner::default()
    };
    let first = runner.run(env.clone(), &wl.catalog, &wl.queries, &schedule);
    let second = runner.run(env, &wl.catalog, &wl.queries, &schedule);
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "identical seeds must reproduce the identical report"
    );
}
