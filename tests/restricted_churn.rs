//! Churn-then-plan regression tests for restricted placement.
//!
//! Pins the fixes for two bugs found during the fuzzer's planted-bug
//! validation (see `tests/regressions/README.md`): `Optimal::restricted`
//! used to plan against whatever candidate slice it was handed — empty or
//! full of departed nodes — and the In-network zone baseline kept placing
//! joins inside zones whose members had all left the overlay.

use dsq_baselines::{InNetwork, InNetworkRunner};
use dsq_core::{Environment, Optimal, Optimizer, PlacementError, SearchStats};
use dsq_hierarchy::membership::remove_node;
use dsq_net::{NodeId, TransitStubConfig};
use dsq_query::ReuseRegistry;
use dsq_workload::{Workload, WorkloadConfig, WorkloadGenerator};

fn setup() -> (Environment, Workload) {
    let net = TransitStubConfig::paper_64().generate(5).network;
    let env = Environment::build(net, 16);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 10,
            queries: 4,
            joins_per_query: 2..=3,
            ..WorkloadConfig::default()
        },
        17,
    )
    .generate(&env.network);
    (env, wl)
}

/// Deactivate up to `want` nodes that host no stream and serve as no sink,
/// so the probe queries stay placeable afterwards.
fn churn(env: &mut Environment, wl: &Workload, want: usize) -> Vec<NodeId> {
    let protected: Vec<NodeId> = wl
        .catalog
        .streams()
        .iter()
        .map(|s| s.node)
        .chain(wl.queries.iter().map(|q| q.sink))
        .collect();
    let mut removed = Vec::new();
    for n in env.network.nodes() {
        if removed.len() >= want {
            break;
        }
        if protected.contains(&n) {
            continue;
        }
        if remove_node(&mut env.hierarchy, &env.dm, n).is_ok() {
            removed.push(n);
        }
    }
    assert!(!removed.is_empty(), "churn found no removable node");
    removed
}

#[test]
fn empty_candidate_set_is_a_typed_error() {
    let (env, wl) = setup();
    let err = Optimal::restricted(&env, &[])
        .try_optimize(
            &wl.catalog,
            &wl.queries[0],
            &mut ReuseRegistry::new(),
            &mut SearchStats::new(),
        )
        .expect_err("empty candidate set must not produce a deployment");
    assert_eq!(err, PlacementError::NoCandidates);
}

#[test]
fn fully_churned_candidate_set_is_rejected() {
    let (mut env, wl) = setup();
    env.isolate_cache(false);
    let removed = churn(&mut env, &wl, 4);
    let err = Optimal::restricted(&env, &removed)
        .try_optimize(
            &wl.catalog,
            &wl.queries[0],
            &mut ReuseRegistry::new(),
            &mut SearchStats::new(),
        )
        .expect_err("all-inactive candidate set must not produce a deployment");
    assert_eq!(err, PlacementError::NoActiveCandidates);
}

#[test]
fn mixed_candidate_set_only_uses_survivors() {
    let (mut env, wl) = setup();
    env.isolate_cache(false);
    let removed = churn(&mut env, &wl, 4);
    let mut mixed = removed.clone();
    mixed.extend(env.hierarchy.active_nodes());
    for q in &wl.queries {
        let d = Optimal::restricted(&env, &mixed)
            .try_optimize(
                &wl.catalog,
                q,
                &mut ReuseRegistry::new(),
                &mut SearchStats::new(),
            )
            .expect("active members remain, so the query must stay placeable");
        for ji in d.plan.join_indices() {
            assert!(
                !removed.contains(&d.placement[ji]),
                "join placed on churned-out node {}",
                d.placement[ji]
            );
        }
    }
}

#[test]
fn innetwork_zone_search_skips_dead_zones() {
    let (mut env, wl) = setup();
    env.isolate_cache(false);
    // Zones are computed before the churn, exactly the stale-structure
    // scenario the fix guards: entire zones may lose all members.
    let zones = InNetwork::new(&env, 5);
    churn(&mut env, &wl, 12);
    let runner = InNetworkRunner {
        zones: &zones,
        env: &env,
    };
    for q in &wl.queries {
        let Some(d) = runner.optimize(
            &wl.catalog,
            q,
            &mut ReuseRegistry::new(),
            &mut SearchStats::new(),
        ) else {
            continue; // no active zone reachable is an acceptable refusal
        };
        for ji in d.plan.join_indices() {
            assert!(
                env.hierarchy.is_active(d.placement[ji]),
                "in-network placed a join on inactive {}",
                d.placement[ji]
            );
        }
    }
}
