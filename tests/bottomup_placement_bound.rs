//! The extended version's Bottom-Up claim: although its *join ordering* can
//! be arbitrarily bad, its *placement* of the chosen ordering is within a
//! bounded distance of the optimal placement of that same ordering — which
//! "proves that Bottom-Up can offer better bounds than a random placement
//! of the same query tree".

use dsq::prelude::*;
use dsq_baselines::optimal_placement;
use dsq_core::bounds;

fn setup(max_cs: usize) -> (Environment, Workload) {
    let net = TransitStubConfig::paper_128().generate(5).network;
    let env = Environment::build(net, max_cs);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 30,
            queries: 12,
            joins_per_query: 2..=4,
            ..WorkloadConfig::default()
        },
        51,
    )
    .generate(&env.network);
    (env, wl)
}

#[test]
fn bottomup_placement_is_within_bound_of_same_tree_optimum() {
    let (env, wl) = setup(32);
    let candidates: Vec<NodeId> = env.network.nodes().collect();
    for q in &wl.queries {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let bu = BottomUp::new(&env)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        // Optimal placement of the very same plan (tree shape fixed).
        let fixed = optimal_placement(bu.plan.clone(), q, &wl.catalog, &env.dm, &candidates);
        assert!(
            bu.cost >= fixed.cost - 1e-6,
            "fixed-tree optimum is a floor"
        );
        let bound = bounds::placement_bound(&bu, &env.hierarchy);
        assert!(
            bu.cost - fixed.cost <= bound + 1e-6,
            "{}: placement gap {} exceeds bound {}",
            q.id,
            bu.cost - fixed.cost,
            bound
        );
    }
}

#[test]
fn bottomup_beats_random_placement_of_its_own_tree() {
    // The comparison the extended version motivates: Bottom-Up vs a random
    // placement of the same query tree.
    use rand::{Rng, SeedableRng};
    let (env, wl) = setup(32);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let n = env.network.len() as u32;
    let (mut bu_total, mut rand_total) = (0.0, 0.0);
    for q in &wl.queries {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let bu = BottomUp::new(&env)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        bu_total += bu.cost;
        // Random placement of the identical plan.
        let mut placement = bu.placement.clone();
        for ji in bu.plan.join_indices() {
            placement[ji] = NodeId(rng.gen_range(0..n));
        }
        let random = Deployment::evaluate(q.id, bu.plan.clone(), placement, q.sink, &env.dm);
        rand_total += random.cost;
    }
    assert!(
        bu_total < rand_total,
        "bottom-up {bu_total} must beat random placement {rand_total} of its own trees"
    );
}

#[test]
fn members_only_variant_also_respects_the_placement_bound() {
    let (env, wl) = setup(16);
    let candidates: Vec<NodeId> = env.network.nodes().collect();
    for q in wl.queries.iter().take(6) {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let bu = BottomUp::with_placement(&env, BottomUpPlacement::MembersOnly)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        let fixed = optimal_placement(bu.plan.clone(), q, &wl.catalog, &env.dm, &candidates);
        let bound = bounds::placement_bound(&bu, &env.hierarchy);
        assert!(
            bu.cost - fixed.cost <= bound + 1e-6,
            "{}: members-only gap {} exceeds bound {}",
            q.id,
            bu.cost - fixed.cost,
            bound
        );
    }
}
