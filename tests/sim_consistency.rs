//! Simulator ↔ cost-model consistency across crates: the flow simulator
//! reproduces analytic costs exactly, the tuple simulator statistically,
//! and the Emulab timing model orders algorithms as the paper measures.

use dsq::prelude::*;
use dsq_core::{Optimal, Optimizer};
use dsq_sim::{AdaptiveRuntime, EmulabModel, LinkChange};

fn setup() -> (Environment, Workload) {
    let net = TransitStubConfig::paper_64().generate(23).network;
    let env = Environment::build(net, 16);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 15,
            queries: 8,
            joins_per_query: 2..=3,
            rate_range: (5.0, 20.0),
            ..WorkloadConfig::default()
        },
        17,
    )
    .generate(&env.network);
    (env, wl)
}

#[test]
fn flow_simulator_reproduces_every_algorithms_costs() {
    let (env, wl) = setup();
    let sim = FlowSimulator::new(&env.network);
    for alg in [
        &TopDown::new(&env) as &dyn Optimizer,
        &BottomUp::new(&env),
        &Optimal::new(&env),
    ] {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let ds: Vec<Deployment> = wl
            .queries
            .iter()
            .map(|q| alg.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap())
            .collect();
        let refs: Vec<&Deployment> = ds.iter().collect();
        let flow = sim.evaluate(&refs).total_cost;
        let analytic: f64 = ds.iter().map(|d| d.cost).sum();
        assert!(
            (flow - analytic).abs() <= 1e-6 * analytic.max(1.0),
            "{}: flow {flow} vs analytic {analytic}",
            alg.name()
        );
    }
}

#[test]
fn tuple_simulator_tracks_analytic_costs_within_tolerance() {
    let (env, wl) = setup();
    let sim = TupleSimulator::new(&env.network);
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let mut checked = 0;
    for q in wl.queries.iter().filter(|q| q.sources.len() <= 3).take(3) {
        let d = TopDown::new(&env)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        let r = sim.run(
            &wl.catalog,
            q,
            &d,
            TupleSimConfig {
                duration: 300.0,
                warmup: 30.0,
                ..TupleSimConfig::default()
            },
        );
        let rel = (r.measured_cost_per_time - r.predicted_cost_per_time).abs()
            / r.predicted_cost_per_time.max(1e-9);
        assert!(
            rel < 0.35,
            "{}: measured {} vs predicted {}",
            q.id,
            r.measured_cost_per_time,
            r.predicted_cost_per_time
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn emulab_model_is_additive_and_positive() {
    let (env, wl) = setup();
    let model = EmulabModel::new(&env.network);
    let q = &wl.queries[0];
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let d = TopDown::new(&env)
        .optimize(&wl.catalog, q, &mut reg, &mut stats)
        .unwrap();
    let t = model.deployment_time(q.sink, &stats, &d);
    assert!(t.messaging_ms > 0.0 && t.planning_ms > 0.0);
    assert!((t.total_ms() - t.messaging_ms - t.planning_ms).abs() < 1e-12);
    // Planning time scales linearly with per-plan cost.
    let mut model2 = model.clone();
    model2.per_plan_us *= 2.0;
    let t2 = model2.deployment_time(q.sink, &stats, &d);
    assert!((t2.planning_ms - 2.0 * t.planning_ms).abs() < 1e-9);
    assert!((t2.messaging_ms - t.messaging_ms).abs() < 1e-9);
}

#[test]
fn adaptivity_round_trip_with_flow_detection() {
    // End-to-end loop: deploy → detect hot links with the flow simulator →
    // congest them → middleware migrates → standing cost improves over
    // doing nothing.
    let (env, wl) = setup();
    let mut rt = AdaptiveRuntime::new(env, 0.15);
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    for q in &wl.queries {
        let d = TopDown::new(&rt.env)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        rt.install(q.clone(), d);
    }
    let flow = FlowSimulator::new(&rt.env.network);
    let refs: Vec<&Deployment> = rt.deployments().iter().collect();
    let changes: Vec<LinkChange> = flow
        .evaluate(&refs)
        .hottest_links(3)
        .into_iter()
        .map(|((a, b), _)| LinkChange {
            a,
            b,
            new_cost: rt.env.network.find_link(a, b).unwrap().cost * 40.0,
        })
        .collect();
    let report = rt.handle_changes(&changes, |env, q| {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut stats)
    });
    assert!(report.cost_after <= report.cost_before);
    assert!(!report.migrated.is_empty());
    // Deployments remain structurally sound after migration.
    for d in rt.deployments() {
        assert!(d.cost.is_finite());
    }
}
