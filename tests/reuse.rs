//! Cross-crate integration tests for operator reuse (Section 2.1.2 and the
//! Figure 7 experiment regime): on workloads with realistic source overlap,
//! every optimizer must find and profit from derived streams.

use dsq::prelude::*;
use dsq_core::{consolidate, Optimal, Optimizer};
use dsq_query::{FlatNode, LeafSource};

fn skewed_workload(env: &Environment, seed: u64, queries: usize) -> Workload {
    WorkloadGenerator::new(
        WorkloadConfig {
            streams: 100,
            queries,
            joins_per_query: 2..=5,
            source_skew: Some(1.0),
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate(&env.network)
}

fn count_reused(deployments: &[Option<Deployment>]) -> usize {
    deployments
        .iter()
        .flatten()
        .flat_map(|d| d.plan.nodes())
        .filter(|n| {
            matches!(
                n,
                FlatNode::Leaf {
                    source: LeafSource::Derived { .. },
                    ..
                }
            )
        })
        .count()
}

#[test]
fn skew_creates_reuse_opportunities_that_optimizers_take() {
    let net = TransitStubConfig::paper_128().generate(1).network;
    let env = Environment::build(net, 32);
    let wl = skewed_workload(&env, 2, 20);

    let mut reg = ReuseRegistry::new();
    let out = consolidate::deploy_all(
        &Optimal::new(&env),
        &wl.catalog,
        &wl.queries,
        &mut reg,
        true,
    );
    assert!(
        count_reused(&out.deployments) >= 2,
        "skewed workload must produce actual reuse (got {})",
        count_reused(&out.deployments)
    );
    assert!(reg.stats().published > 0);
}

#[test]
fn reuse_lowers_cumulative_cost_for_every_algorithm() {
    let net = TransitStubConfig::paper_128().generate(3).network;
    let env = Environment::build(net, 32);
    let wl = skewed_workload(&env, 4, 15);

    let algs: Vec<(&str, Box<dyn Optimizer>)> = vec![
        ("top-down", Box::new(TopDown::new(&env))),
        ("bottom-up", Box::new(BottomUp::new(&env))),
        ("optimal", Box::new(Optimal::new(&env))),
    ];
    for (name, alg) in &algs {
        let mut with_reg = ReuseRegistry::new();
        let with =
            consolidate::deploy_all(alg.as_ref(), &wl.catalog, &wl.queries, &mut with_reg, true);
        let mut without_reg = ReuseRegistry::new();
        let without = consolidate::deploy_all(
            alg.as_ref(),
            &wl.catalog,
            &wl.queries,
            &mut without_reg,
            false,
        );
        assert!(
            with.total_cost() <= without.total_cost() + 1e-6,
            "{name}: with reuse {} vs without {}",
            with.total_cost(),
            without.total_cost()
        );
    }
}

#[test]
fn derived_streams_survive_registration_round_trip() {
    let net = TransitStubConfig::paper_64().generate(5).network;
    let env = Environment::build(net, 16);
    let wl = skewed_workload(&env, 6, 10);
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let td = TopDown::new(&env);
    for q in &wl.queries {
        let d = td.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap();
        reg.register_deployment(q, &d);
    }
    // Registry contents must be internally consistent.
    for d in reg.deriveds() {
        assert!(d.covered.len() >= 2);
        assert!(d.rate > 0.0);
        assert!((d.host.index()) < env.network.len());
    }
    // Duplicate suppression kicks in when re-registering.
    let before = reg.len();
    let q = &wl.queries[0];
    let d = td.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap();
    reg.register_deployment(q, &d);
    let after = reg.len();
    assert!(after >= before, "registry never shrinks");
}
