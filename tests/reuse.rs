//! Cross-crate integration tests for operator reuse (Section 2.1.2 and the
//! Figure 7 experiment regime): on workloads with realistic source overlap,
//! every optimizer must find and profit from derived streams.

use dsq::prelude::*;
use dsq_core::{consolidate, Optimal, Optimizer};
use dsq_hierarchy::membership::{add_node, remove_node};
use dsq_net::NodeId;
use dsq_query::{DerivedId, FlatNode, LeafSource, ReuseRegistry};

fn skewed_workload(env: &Environment, seed: u64, queries: usize) -> Workload {
    WorkloadGenerator::new(
        WorkloadConfig {
            streams: 100,
            queries,
            joins_per_query: 2..=5,
            source_skew: Some(1.0),
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate(&env.network)
}

fn count_reused(deployments: &[Option<Deployment>]) -> usize {
    deployments
        .iter()
        .flatten()
        .flat_map(|d| d.plan.nodes())
        .filter(|n| {
            matches!(
                n,
                FlatNode::Leaf {
                    source: LeafSource::Derived { .. },
                    ..
                }
            )
        })
        .count()
}

#[test]
fn skew_creates_reuse_opportunities_that_optimizers_take() {
    let net = TransitStubConfig::paper_128().generate(1).network;
    let env = Environment::build(net, 32);
    let wl = skewed_workload(&env, 2, 20);

    let mut reg = ReuseRegistry::new();
    let out = consolidate::deploy_all(
        &Optimal::new(&env),
        &wl.catalog,
        &wl.queries,
        &mut reg,
        true,
    );
    assert!(
        count_reused(&out.deployments) >= 2,
        "skewed workload must produce actual reuse (got {})",
        count_reused(&out.deployments)
    );
    assert!(reg.stats().published > 0);
}

#[test]
fn reuse_lowers_cumulative_cost_for_every_algorithm() {
    let net = TransitStubConfig::paper_128().generate(3).network;
    let env = Environment::build(net, 32);
    let wl = skewed_workload(&env, 4, 15);

    let algs: Vec<(&str, Box<dyn Optimizer>)> = vec![
        ("top-down", Box::new(TopDown::new(&env))),
        ("bottom-up", Box::new(BottomUp::new(&env))),
        ("optimal", Box::new(Optimal::new(&env))),
    ];
    for (name, alg) in &algs {
        let mut with_reg = ReuseRegistry::new();
        let with =
            consolidate::deploy_all(alg.as_ref(), &wl.catalog, &wl.queries, &mut with_reg, true);
        let mut without_reg = ReuseRegistry::new();
        let without = consolidate::deploy_all(
            alg.as_ref(),
            &wl.catalog,
            &wl.queries,
            &mut without_reg,
            false,
        );
        assert!(
            with.total_cost() <= without.total_cost() + 1e-6,
            "{name}: with reuse {} vs without {}",
            with.total_cost(),
            without.total_cost()
        );
    }
}

#[test]
fn derived_streams_survive_registration_round_trip() {
    let net = TransitStubConfig::paper_64().generate(5).network;
    let env = Environment::build(net, 16);
    let wl = skewed_workload(&env, 6, 10);
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let td = TopDown::new(&env);
    for q in &wl.queries {
        let d = td.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap();
        reg.register_deployment(q, &d);
    }
    // Registry contents must be internally consistent.
    for d in reg.deriveds() {
        assert!(d.covered.len() >= 2);
        assert!(d.rate > 0.0);
        assert!((d.host.index()) < env.network.len());
    }
    // Duplicate suppression kicks in when re-registering.
    let before = reg.len();
    let q = &wl.queries[0];
    let d = td.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap();
    reg.register_deployment(q, &d);
    let after = reg.len();
    assert!(after >= before, "registry never shrinks");
}

/// Ids served to `q` under the hierarchy's current liveness view.
fn served(reg: &ReuseRegistry, q: &Query, env: &Environment) -> Vec<DerivedId> {
    reg.clone()
        .usable_for_live(q, |n: NodeId| env.hierarchy.is_active(n))
        .into_iter()
        .filter_map(|l| match l {
            LeafSource::Derived { id, .. } => Some(id),
            LeafSource::Base(_) => None,
        })
        .collect()
}

#[test]
fn crashed_advert_host_stops_serving_until_rejoin() {
    // The liveness regression this PR fixes: crash a node hosting a
    // published advert out of the overlay. The probe must stop serving that
    // advert, a fresh planning pass must not put a derived leaf on the dead
    // host, and rejoining the host must restore the exact candidate set.
    let net = TransitStubConfig::paper_64().generate(9).network;
    let mut env = Environment::build(net, 16);
    env.isolate_cache(false);
    let wl = skewed_workload(&env, 10, 12);

    let mut reg = ReuseRegistry::new();
    consolidate::deploy_all(
        &TopDown::new(&env),
        &wl.catalog,
        &wl.queries,
        &mut reg,
        true,
    );

    // A consumer query that the probe actually serves, and an advert host
    // we can crash without touching stream origins or sinks.
    let protected: Vec<NodeId> = wl
        .catalog
        .streams()
        .iter()
        .map(|s| s.node)
        .chain(wl.queries.iter().map(|q| q.sink))
        .collect();
    let (consumer, victim) = wl
        .queries
        .iter()
        .find_map(|q| {
            served(&reg, q, &env).into_iter().find_map(|id| {
                let host = reg.derived(id).expect("served advert resolves").host;
                (!protected.contains(&host)).then_some((q.clone(), host))
            })
        })
        .expect("skewed workload must publish a crashable advert");
    let before = served(&reg, &consumer, &env);

    remove_node(&mut env.hierarchy, &env.dm, victim).expect("victim is removable");
    for id in served(&reg, &consumer, &env) {
        assert_ne!(
            reg.derived(id).unwrap().host,
            victim,
            "probe served an advert hosted on the crashed node"
        );
    }
    if let Some(d) = TopDown::new(&env).optimize(
        &wl.catalog,
        &consumer,
        &mut reg.clone(),
        &mut SearchStats::new(),
    ) {
        for node in d.plan.nodes() {
            if let FlatNode::Leaf {
                source: LeafSource::Derived { host, .. },
                ..
            } = node
            {
                assert!(
                    env.hierarchy.is_active(*host),
                    "replanned query consumed a derived stream on inactive {host}"
                );
            }
        }
    }

    let via = *env
        .hierarchy
        .active_nodes()
        .iter()
        .min_by(|&&a, &&b| {
            env.dm
                .get(a, victim)
                .total_cmp(&env.dm.get(b, victim))
                .then(a.0.cmp(&b.0))
        })
        .expect("overlay is never empty");
    add_node(&mut env.hierarchy, &env.dm, victim, via);
    assert_eq!(
        served(&reg, &consumer, &env),
        before,
        "rejoin must restore the pre-crash candidate set"
    );
}
