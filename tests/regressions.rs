//! Corpus runner: every minimized `.case` file under `tests/regressions/`
//! is replayed through the full differential oracle and must pass clean.
//!
//! Each file is a self-contained repro harvested by `dsqctl fuzz` (see
//! `tests/regressions/README.md` for provenance); re-introducing the bug a
//! case pins makes this test fail with the original violation detail.

use std::path::PathBuf;

#[test]
fn regression_corpus_is_clean() {
    dsq_fuzz::silence_panics();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/regressions must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    cases.sort();
    assert!(
        cases.len() >= 3,
        "expected at least 3 corpus cases, found {}",
        cases.len()
    );

    let mut failures = Vec::new();
    for path in &cases {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        match dsq_fuzz::verify_case_file(path) {
            Ok(violations) if violations.is_empty() => {}
            Ok(violations) => {
                for v in violations {
                    failures.push(format!("{name}: [{}] {}", v.check.slug(), v.detail));
                }
            }
            Err(e) => failures.push(format!("{name}: unreadable case: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus violation(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
