//! Property tests for runtime hierarchy membership: arbitrary join/leave
//! sequences must preserve every structural invariant, keep the active set
//! correct, and keep Theorem 1 valid on the evolved hierarchy.

use dsq::prelude::*;
use dsq_hierarchy::membership::{add_node, join_route, remove_node};
use proptest::prelude::*;

fn build_base(
    seed: u64,
    max_cs: usize,
) -> (
    dsq_hierarchy::Hierarchy,
    DistanceMatrix,
    Vec<NodeId>,
    Vec<NodeId>,
) {
    let ts = TransitStubConfig::paper_64().generate(seed);
    let dm = DistanceMatrix::build(&ts.network, Metric::Cost);
    let cs = CostSpace::embed(&dm, seed, 40);
    let all: Vec<NodeId> = ts.network.nodes().collect();
    let active: Vec<NodeId> = all.iter().copied().filter(|n| n.0 % 2 == 0).collect();
    let inactive: Vec<NodeId> = all.iter().copied().filter(|n| n.0 % 2 == 1).collect();
    let h = dsq_hierarchy::Hierarchy::build(
        &active,
        &dm,
        &cs,
        dsq_hierarchy::HierarchyConfig::new(max_cs),
    );
    (h, dm, active, inactive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary churn sequences keep the hierarchy valid, the active set
    /// exact, and Theorem 1 intact.
    #[test]
    fn churn_preserves_invariants(
        seed in 0u64..20,
        max_cs in 3usize..10,
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..1000), 1..40),
    ) {
        let (mut h, dm, active, inactive) = build_base(seed, max_cs);
        let mut in_overlay: Vec<NodeId> = active.clone();
        let mut out_of_overlay: Vec<NodeId> = inactive.clone();

        for (is_join, pick) in ops {
            if (is_join && !out_of_overlay.is_empty()) || in_overlay.len() <= 2 {
                if out_of_overlay.is_empty() {
                    continue;
                }
                let node = out_of_overlay.remove(pick % out_of_overlay.len());
                let via = in_overlay[pick % in_overlay.len()];
                let outcome = add_node(&mut h, &dm, node, via);
                prop_assert_eq!(outcome.leaf.level, 1);
                in_overlay.push(node);
            } else {
                let node = in_overlay.remove(pick % in_overlay.len());
                remove_node(&mut h, &dm, node).unwrap();
                out_of_overlay.push(node);
            }
            h.check_invariants();

            // Exact active set.
            let mut got = h.active_nodes();
            got.sort_unstable();
            let mut want = in_overlay.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        // Theorem 1 on the churned hierarchy.
        let nodes = h.active_nodes();
        let top = h.height();
        let slack = h.theorem1_slack(top);
        for (i, &a) in nodes.iter().enumerate().step_by(5) {
            for &b in nodes.iter().skip(i + 1).step_by(5) {
                let act = dm.get(a, b);
                let est = h.estimated_cost(&dm, a, b, top);
                prop_assert!((act - est).abs() <= slack + 1e-9);
            }
        }
    }

    /// The join route always terminates at a leaf cluster whose coordinator
    /// chain reaches the top, and message counts are bounded by twice the
    /// height plus one.
    #[test]
    fn join_routes_are_well_formed(seed in 0u64..20, pick in 0usize..1000) {
        let (h, dm, active, inactive) = build_base(seed, 6);
        let node = inactive[pick % inactive.len()];
        let via = active[pick % active.len()];
        let out = join_route(&h, &dm, node, via);
        prop_assert_eq!(out.leaf.level, 1);
        prop_assert!(out.messages <= 2 * h.height() + 1);
        prop_assert!(out.messages >= h.height());
        // Every routed coordinator is a real overlay member.
        for c in &out.route {
            prop_assert!(h.is_active(*c));
        }
    }
}
