//! Trace determinism: the observability layer must not perturb — or be
//! perturbed by — the planner. Under a virtual clock, the same seed has to
//! produce a byte-identical JSONL trace, which is what makes `dsqctl trace`
//! output diffable across runs and machines.

use dsq::obs;
use dsq::prelude::*;
use dsq_core::consolidate;

/// Run the canonical planning pipeline (top-down then bottom-up, reuse on)
/// under a scoped virtual-clock sink and return the full JSONL trace.
fn trace_once(seed: u64) -> String {
    let sink = obs::Sink::new(obs::ClockMode::Virtual);
    {
        let _scope = obs::scoped(sink.clone());
        let net = TransitStubConfig::sized(64).generate(seed).network;
        let env = Environment::build(net, 16);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 20,
                queries: 6,
                joins_per_query: 2..=4,
                ..WorkloadConfig::default()
            },
            seed,
        )
        .generate(&env.network);
        for alg in [
            Box::new(TopDown::new(&env)) as Box<dyn Optimizer>,
            Box::new(BottomUp::new(&env)),
        ] {
            let mut registry = ReuseRegistry::new();
            consolidate::deploy_all(alg.as_ref(), &wl.catalog, &wl.queries, &mut registry, true);
        }
    }
    sink.to_jsonl()
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = trace_once(1);
    let b = trace_once(1);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");
    // A different seed must still trace (and, on this workload, differ).
    let c = trace_once(2);
    assert!(!c.is_empty());
    assert_ne!(a, c, "different seeds should not collide on this workload");
}

#[test]
fn trace_covers_both_planners_and_counters() {
    let t = trace_once(1);
    for needle in [
        "\"event\":\"topdown.optimize\"",
        "\"event\":\"bottomup.optimize\"",
        "\"event\":\"engine.plan\"",
        "\"counter\":\"topdown.cells_opened\"",
        "\"counter\":\"bottomup.merge_steps\"",
        "\"counter\":\"kmeans.rounds\"",
    ] {
        assert!(t.contains(needle), "trace is missing {needle}:\n{t}");
    }
}

#[test]
fn scoped_sink_reaches_rayon_workers_via_handle() {
    // `obs::scoped` is thread-local, so instrumentation emitted from a
    // rayon worker thread would silently vanish. A captured `SinkHandle`
    // re-installs the ambient sink inside each task; this pins the pattern
    // the parallel planning driver relies on.
    use rayon::prelude::*;
    let sink = obs::Sink::new(obs::ClockMode::Virtual);
    {
        let _scope = obs::scoped(sink.clone());
        let handle = obs::SinkHandle::capture();
        assert!(handle.is_active());
        let emitted: Vec<u64> = (0u64..16)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                let _guard = handle.clone().install();
                obs::counter("test.rayon_emit", 1);
                obs::observe("test.rayon_hist", i as f64);
                i
            })
            .collect();
        assert_eq!(emitted.len(), 16);
    }
    let snap = sink.snapshot();
    assert_eq!(snap.counters.get("test.rayon_emit"), Some(&16));
    assert_eq!(snap.histograms.get("test.rayon_hist").unwrap().count, 16);
}

#[test]
fn nothing_leaks_outside_the_scope() {
    // The scoped sink above must not install itself globally: with no scope
    // active, instrumentation is a no-op and traces stay empty.
    let _ = trace_once(1);
    let sink = obs::Sink::new(obs::ClockMode::Virtual);
    {
        let net = TransitStubConfig::sized(32).generate(3).network;
        let _env = Environment::build(net, 8);
    }
    assert_eq!(sink.event_count(), 0);
    assert!(sink.snapshot().counters.is_empty());
}
