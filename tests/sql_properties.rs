//! Property tests for the SQL front end: generated SELECT statements parse
//! back into queries equivalent to the ones that produced them.

use dsq::prelude::*;
use dsq_query::{parse_query, sql::string_code, CmpOp, QueryId, Schema};
use proptest::prelude::*;

fn catalog(k: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 0..k {
        c.add_stream(
            format!("STREAM{i}"),
            10.0 + i as f64,
            NodeId(i as u32),
            Schema::new([format!("K{i}"), format!("V{i}"), "TS".to_string()]),
        );
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: render a random query to SQL, parse it back, compare.
    #[test]
    fn render_parse_round_trip(
        k in 2usize..=5,
        sel_count in 0usize..3,
        sel_vals in proptest::collection::vec(0.0f64..100.0, 3),
        ops in proptest::collection::vec(0usize..5, 3),
    ) {
        let c = catalog(k);
        // Chain joins STREAM0.K0 = STREAM1.K1 = …
        let mut where_parts: Vec<String> = (0..k - 1)
            .map(|i| format!("STREAM{i}.K{i} = STREAM{}.K{}", i + 1, i + 1))
            .collect();
        let op_strs = ["=", "<", "<=", ">", ">="];
        let cmp_ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let mut expected_sels = Vec::new();
        for s in 0..sel_count.min(k) {
            let op_idx = ops[s] % 5;
            where_parts.push(format!("STREAM{s}.TS {} {}", op_strs[op_idx], sel_vals[s]));
            expected_sels.push((s as u32, cmp_ops[op_idx], sel_vals[s]));
        }
        let from: Vec<String> = (0..k).map(|i| format!("STREAM{i}")).collect();
        let sql = format!(
            "SELECT * FROM {} WHERE {}",
            from.join(", "),
            where_parts.join(" AND ")
        );
        let q = parse_query(&sql, &c, QueryId(1), NodeId(0), &SelectivityHints::default())
            .expect("generated SQL parses");
        prop_assert_eq!(q.sources.len(), k);
        prop_assert_eq!(q.join_predicates.len(), k - 1);
        prop_assert_eq!(q.selections.len(), expected_sels.len());
        for (stream, op, val) in expected_sels {
            let found = q.selections.iter().any(|s| {
                s.stream == StreamId(stream) && s.op == op && (s.value - val).abs() < 1e-9
            });
            prop_assert!(found, "missing selection on stream {stream}");
        }
    }

    /// String literals fold to stable case-insensitive codes.
    #[test]
    fn string_codes_stable(s in "[A-Za-z ]{1,16}") {
        let a = string_code(&s);
        let b = string_code(&s.to_ascii_lowercase());
        prop_assert_eq!(a, b);
        prop_assert!((0.0..1e6).contains(&a));
    }

    /// Whatever garbage comes in, the parser returns an error rather than
    /// panicking (except for intentionally valid inputs).
    #[test]
    fn parser_never_panics(input in "[A-Za-z0-9.,<>= '*]{0,80}") {
        let c = catalog(3);
        let _ = parse_query(&input, &c, QueryId(0), NodeId(0), &SelectivityHints::default());
    }
}
