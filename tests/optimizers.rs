//! Cross-crate optimizer invariants: every algorithm produces structurally
//! valid deployments that are never cheaper than the exact optimum, and
//! degenerate hierarchies collapse the hierarchical algorithms onto it.

use dsq::prelude::*;
use dsq_baselines::{InNetwork, InNetworkRunner, PlanThenDeploy, RandomPlace, Relaxation};
use dsq_core::{Optimal, Optimizer};
use dsq_query::{FlatNode, LeafSource, StreamSet};

fn setup(max_cs: usize, seed: u64) -> (Environment, Workload) {
    let net = TransitStubConfig::paper_64().generate(seed).network;
    let env = Environment::build(net, max_cs);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 20,
            queries: 10,
            joins_per_query: 2..=4,
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate(&env.network);
    (env, wl)
}

/// Structural validity of a deployment for its query.
fn check_structure(d: &Deployment, q: &Query, catalog: &dsq_query::Catalog) {
    // Exactly 2k−1 plan nodes unless reuse collapsed subtrees.
    assert!(d.plan.nodes().len() < 2 * q.sources.len());
    // The root covers exactly the query's source set.
    assert_eq!(
        d.plan.nodes()[d.plan.root()].covered(),
        &q.source_set(),
        "root must cover the query"
    );
    // Every base leaf sits at its stream's node; every derived leaf at its
    // advertised host; covered sets of join children are disjoint.
    for (i, node) in d.plan.nodes().iter().enumerate() {
        match node {
            FlatNode::Leaf { source, .. } => match source {
                LeafSource::Base(id) => {
                    assert_eq!(d.placement[i], catalog.stream(*id).node)
                }
                LeafSource::Derived { host, .. } => assert_eq!(d.placement[i], *host),
            },
            FlatNode::Join { left, right, .. } => {
                let lc = d.plan.nodes()[*left].covered();
                let rc = d.plan.nodes()[*right].covered();
                assert!(lc.is_disjoint_from(rc));
            }
        }
    }
    // No leaf covers streams outside the query.
    for node in d.plan.nodes() {
        assert!(node.covered().is_subset_of(&q.source_set()));
    }
    assert_eq!(d.sink, q.sink);
    assert!(d.cost.is_finite() && d.cost >= 0.0);
}

#[test]
fn all_algorithms_produce_valid_deployments_no_cheaper_than_optimal() {
    let (env, wl) = setup(16, 3);
    let zones = InNetwork::new(&env, 5);
    let algorithms: Vec<(&str, Box<dyn Optimizer>)> = vec![
        ("top-down", Box::new(TopDown::new(&env))),
        ("bottom-up", Box::new(BottomUp::new(&env))),
        (
            "bottom-up/members",
            Box::new(BottomUp::with_placement(
                &env,
                dsq_core::BottomUpPlacement::MembersOnly,
            )),
        ),
        (
            "bottom-up/coloc",
            Box::new(BottomUp::with_input_colocation(&env)),
        ),
        ("plan-then-deploy", Box::new(PlanThenDeploy::new(&env))),
        ("relaxation", Box::new(Relaxation::new(&env))),
        (
            "in-network",
            Box::new(InNetworkRunner {
                zones: &zones,
                env: &env,
            }),
        ),
        ("random", Box::new(RandomPlace::new(&env, 4))),
    ];
    for q in &wl.queries {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let opt = Optimal::new(&env)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        check_structure(&opt, q, &wl.catalog);
        for (name, alg) in &algorithms {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            let d = alg
                .optimize(&wl.catalog, q, &mut reg, &mut stats)
                .unwrap_or_else(|| panic!("{name} failed on {:?}", q.id));
            check_structure(&d, q, &wl.catalog);
            assert!(
                d.cost >= opt.cost - 1e-6,
                "{name} cost {} below optimal {}",
                d.cost,
                opt.cost
            );
        }
    }
}

#[test]
fn flat_hierarchy_collapses_hierarchical_algorithms_to_optimal() {
    let (env, wl) = setup(64, 5); // one cluster = whole network
    assert_eq!(env.hierarchy.height(), 1);
    for q in &wl.queries {
        let mut stats = SearchStats::new();
        let opt = Optimal::new(&env)
            .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut stats)
            .unwrap();
        for alg in [&TopDown::new(&env) as &dyn Optimizer, &BottomUp::new(&env)] {
            let d = alg
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut stats)
                .unwrap();
            assert!(
                (d.cost - opt.cost).abs() < 1e-6,
                "{} should equal optimal on a flat hierarchy: {} vs {}",
                alg.name(),
                d.cost,
                opt.cost
            );
        }
    }
}

#[test]
fn deployments_are_deterministic() {
    let (env, wl) = setup(8, 7);
    for alg in [
        &TopDown::new(&env) as &dyn Optimizer,
        &BottomUp::new(&env),
        &Optimal::new(&env),
    ] {
        for q in &wl.queries.iter().take(4).collect::<Vec<_>>() {
            let mut s = SearchStats::new();
            let a = alg
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap();
            let b = alg
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap();
            assert_eq!(a.cost, b.cost, "{} must be deterministic", alg.name());
            assert_eq!(a.placement, b.placement);
        }
    }
}

#[test]
fn derived_only_plan_when_full_result_already_deployed() {
    // Once a query's exact result is advertised, a repeat query reduces to
    // a single delivery edge from the derived host.
    let (env, wl) = setup(16, 9);
    let q0 = &wl.queries[0];
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let d0 = Optimal::new(&env)
        .optimize(&wl.catalog, q0, &mut reg, &mut stats)
        .unwrap();
    reg.register_deployment(q0, &d0);

    let stubs = env.network.stub_nodes();
    let q1 = Query::join(dsq_query::QueryId(900), q0.sources.clone(), stubs[7]);
    let d1 = Optimal::new(&env)
        .optimize(&wl.catalog, &q1, &mut reg, &mut stats)
        .unwrap();
    // The whole covered set should come from one derived leaf.
    let derived_full = d1.plan.nodes().iter().any(|n| {
        matches!(n, FlatNode::Leaf { source: LeafSource::Derived { covered, .. }, .. }
            if *covered == StreamSet::from_iter(q0.sources.iter().copied()))
    });
    assert!(
        derived_full,
        "expected full-result reuse:\n{}",
        d1.describe(&wl.catalog)
    );
    // Cost is exactly rate × distance(host, new sink).
    assert!(d1.plan.nodes().len() <= 3);
}
