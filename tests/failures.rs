//! End-to-end node-failure recovery: coordinator failover, operator
//! redeployment, and loss reporting for unrecoverable queries.

use dsq::prelude::*;
use dsq_core::Optimal;
use dsq_sim::AdaptiveRuntime;

fn runtime() -> (AdaptiveRuntime, Workload) {
    let net = TransitStubConfig::paper_64().generate(27).network;
    let env = Environment::build(net, 8);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 15,
            queries: 10,
            joins_per_query: 2..=3,
            ..WorkloadConfig::default()
        },
        71,
    )
    .generate(&env.network);
    let mut rt = AdaptiveRuntime::new(env, 0.2);
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    for q in &wl.queries {
        let d = TopDown::new(&rt.env)
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap();
        rt.install(q.clone(), d);
    }
    (rt, wl)
}

#[test]
fn coordinator_failure_fails_over_and_redeploys() {
    let (mut rt, wl) = runtime();
    // Fail the top coordinator: the node holding the most roles.
    let top_coord = rt.env.hierarchy.cluster(rt.env.hierarchy.top()).coordinator;
    let roles_before = rt.env.hierarchy.coordinator_roles(top_coord).len();
    assert!(roles_before >= 1);

    let report = rt.handle_node_failure(&wl.catalog, top_coord, |env, q| {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut stats)
    });
    assert_eq!(report.coordinator_roles_failed_over, roles_before);
    assert!(!rt.env.hierarchy.is_active(top_coord));
    rt.env.hierarchy.check_invariants();
    assert_ne!(
        rt.env.hierarchy.cluster(rt.env.hierarchy.top()).coordinator,
        top_coord,
        "a new top coordinator must be elected"
    );
    // No surviving deployment may still reference the failed node as an
    // operator host.
    for d in rt.deployments() {
        assert!(!d.operator_nodes().contains(&top_coord));
    }
    // Accounting adds up: surviving deployments (kept + redeployed), the
    // parked pool (unplaced plus source-outage waits) and the lost cover
    // every installed query.
    assert_eq!(
        rt.deployments().len() + rt.parked().len() + report.lost.len(),
        wl.queries.len(),
    );
    assert_eq!(
        rt.parked().len(),
        report.unplaced.len() + report.source_parked.len()
    );
}

#[test]
fn source_node_failure_loses_the_dependent_queries() {
    let (mut rt, wl) = runtime();
    // Fail a node hosting a stream used by at least one query.
    let victim_stream = wl.queries[0].sources[0];
    let victim_node = wl.catalog.stream(victim_stream).node;
    let dependent: Vec<_> = wl
        .queries
        .iter()
        .filter(|q| {
            q.sources
                .iter()
                .any(|&s| wl.catalog.stream(s).node == victim_node)
                || q.sink == victim_node
        })
        .map(|q| q.id)
        .collect();
    assert!(!dependent.is_empty());

    let report = rt.handle_node_failure(&wl.catalog, victim_node, |env, q| {
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut stats)
    });
    for qid in &report.lost {
        assert!(dependent.contains(qid), "{qid} lost but not dependent");
    }
    // Source-outage parking only applies to queries that depended on the
    // node; sink-on-node losses stay losses.
    for qid in &report.source_parked {
        assert!(dependent.contains(qid), "{qid} parked but not dependent");
    }
    assert!(
        !report.lost.is_empty() || !report.source_parked.is_empty(),
        "killing a source origin must cost somebody their data"
    );
    rt.env.hierarchy.check_invariants();
}

#[test]
fn backup_coordinator_is_a_sensible_member() {
    let (rt, _) = runtime();
    let h = &rt.env.hierarchy;
    for level in 1..=h.height() {
        for (i, c) in h.level(level).iter().enumerate() {
            let id = dsq_hierarchy::ClusterId { level, index: i };
            match h.backup_coordinator(id, &rt.env.dm) {
                Some(b) => {
                    assert!(c.members.contains(&b));
                    assert_ne!(b, c.coordinator);
                }
                None => assert_eq!(c.members.len(), 1),
            }
        }
    }
}

#[test]
fn unrelated_failure_leaves_deployments_untouched() {
    let (mut rt, wl) = runtime();
    // Find a node no deployment references.
    let used: Vec<NodeId> = rt
        .deployments()
        .iter()
        .flat_map(|d| d.placement.iter().copied().chain([d.sink]))
        .collect();
    let idle = rt
        .env
        .network
        .nodes()
        .find(|n| !used.contains(n))
        .expect("some idle node exists");
    let before = rt.total_cost();
    let n_before = rt.deployments().len();
    let report = rt.handle_node_failure(&wl.catalog, idle, |_, _| None);
    assert!(report.redeployed.is_empty());
    assert!(report.lost.is_empty());
    assert_eq!(rt.deployments().len(), n_before);
    assert!((rt.total_cost() - before).abs() < 1e-9);
}
