//! Registering continuous queries in SQL, the way the paper writes them
//! (Section 1.1), and watching the joint optimizer handle them.
//!
//! ```text
//! cargo run --example sql_frontend
//! ```

use dsq::prelude::*;
use dsq_query::QueryId;
use dsq_workload::airline_scenario;

fn main() {
    // The airline catalog gives us named streams with schemas.
    let scenario = airline_scenario();
    let env = Environment::build(scenario.network.clone(), 4);
    let catalog = &scenario.catalog;
    let hints = SelectivityHints::default()
        .with("DEPARTING", 0.2)
        .with("DP-TIME", 0.5);

    let q2_sql = "SELECT FLIGHTS.STATUS, CHECK-INS.STATUS \
                  FROM FLIGHTS, CHECK-INS \
                  WHERE FLIGHTS.DEPARTING = 'ATLANTA' \
                    AND FLIGHTS.NUM = CHECK-INS.FLNUM \
                    AND FLIGHTS.DP-TIME < 12";
    let q1_sql = "SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS \
                  FROM FLIGHTS, WEATHER, CHECK-INS \
                  WHERE FLIGHTS.DEPARTING = 'ATLANTA' \
                    AND FLIGHTS.DESTN = WEATHER.CITY \
                    AND FLIGHTS.NUM = CHECK-INS.FLNUM \
                    AND FLIGHTS.DP-TIME < 12";

    let q2 =
        parse_query(q2_sql, catalog, QueryId(0), scenario.nodes.sink3, &hints).expect("Q2 parses");
    let q1 =
        parse_query(q1_sql, catalog, QueryId(1), scenario.nodes.sink4, &hints).expect("Q1 parses");
    println!(
        "parsed Q2: {} sources, {} selections, {} join predicates",
        q2.sources.len(),
        q2.selections.len(),
        q2.join_predicates.len()
    );
    println!(
        "parsed Q1: {} sources, {} selections, {} join predicates",
        q1.sources.len(),
        q1.selections.len(),
        q1.join_predicates.len()
    );

    let mut registry = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let optimizer = TopDown::new(&env);

    let d2 = optimizer
        .optimize(catalog, &q2, &mut registry, &mut stats)
        .expect("Q2 deploys");
    registry.register_deployment(&q2, &d2);
    println!("\nQ2 deployed:\n{}", d2.describe(catalog));

    let d1 = optimizer
        .optimize(catalog, &q1, &mut registry, &mut stats)
        .expect("Q1 deploys");
    println!(
        "Q1 deployed (reusing Q2 where profitable):\n{}",
        d1.describe(catalog)
    );
    println!(
        "search examined {} plan/deployment combinations across both queries",
        stats.plans_considered
    );
}
