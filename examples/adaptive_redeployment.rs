//! Runtime adaptivity: congestion hits the deployed queries' hot links and
//! the middleware re-triggers optimization (the IFLOW loop of Figure 1(b)).
//!
//! ```text
//! cargo run --release --example adaptive_redeployment
//! ```

use dsq::prelude::*;
use dsq_core::{Optimal, Optimizer};
use dsq_sim::{AdaptiveRuntime, LinkChange};

fn main() {
    let ts = TransitStubConfig::paper_64().generate(99);
    let env = Environment::build(ts.network.clone(), 16);
    let mut gen = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 30,
            queries: 10,
            joins_per_query: 2..=4,
            ..WorkloadConfig::default()
        },
        3,
    );
    let wl = gen.generate(&env.network);

    // Deploy everything with Top-Down and install into the runtime.
    let mut runtime = AdaptiveRuntime::new(env, 0.2);
    let mut registry = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    for q in &wl.queries {
        let d = TopDown::new(&runtime.env)
            .optimize(&wl.catalog, q, &mut registry, &mut stats)
            .expect("deployable");
        registry.register_deployment(q, &d);
        runtime.install(q.clone(), d);
    }
    println!(
        "installed {} queries, standing cost {:.1}",
        runtime.deployments().len(),
        runtime.total_cost()
    );

    // Congest the two hottest links by 25x.
    let flow = FlowSimulator::new(&runtime.env.network);
    let refs: Vec<&Deployment> = runtime.deployments().iter().collect();
    let hot = flow.evaluate(&refs).hottest_links(2);
    let changes: Vec<LinkChange> = hot
        .iter()
        .map(|&((a, b), rate)| {
            let old = runtime.env.network.find_link(a, b).unwrap().cost;
            println!(
                "congesting {a} <-> {b} (carrying {rate:.1}): cost {old:.1} -> {:.1}",
                old * 25.0
            );
            LinkChange {
                a,
                b,
                new_cost: old * 25.0,
            }
        })
        .collect();

    // The middleware re-costs everything and re-plans the degraded queries.
    let report = runtime.handle_changes(&changes, |env, q| {
        let mut reg = ReuseRegistry::new();
        let mut st = SearchStats::new();
        Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut st)
    });
    println!(
        "\nafter congestion: standing cost ballooned to {:.1}",
        report.cost_before
    );
    println!(
        "middleware migrated {} queries: {:?}",
        report.migrated.len(),
        report.migrated
    );
    println!(
        "standing cost after migration: {:.1} ({:.1}% of the congested cost)",
        report.cost_after,
        report.cost_after / report.cost_before * 100.0
    );
}
