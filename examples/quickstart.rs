//! Quickstart: build a network, register a query, optimize it three ways.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dsq::prelude::*;
use dsq_core::Optimal;

fn main() {
    // 1. A ~64-node GT-ITM style transit-stub network (the paper's
    //    Figure 2 setting) and an optimization environment with a
    //    max_cs = 16 clustering hierarchy.
    let ts = TransitStubConfig::paper_64().generate(42);
    let env = Environment::build(ts.network.clone(), 16);
    println!(
        "network: {} nodes, {} links, hierarchy height {}",
        env.network.len(),
        env.network.link_count(),
        env.hierarchy.height()
    );

    // 2. A random workload: 10 streams and one 4-way join query.
    let mut gen = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 10,
            queries: 1,
            joins_per_query: 3..=3,
            ..WorkloadConfig::default()
        },
        7,
    );
    let wl = gen.generate(&env.network);
    let query = &wl.queries[0];
    println!(
        "query {}: join of {:?}, sink {}",
        query.id, query.sources, query.sink
    );

    // 3. Optimize jointly with Top-Down, Bottom-Up and the exact DP.
    for (name, deployment) in [
        ("top-down", run(&TopDown::new(&env), &wl)),
        ("bottom-up", run(&BottomUp::new(&env), &wl)),
        ("optimal", run(&Optimal::new(&env), &wl)),
    ] {
        println!("\n--- {name} ---");
        print!("{}", deployment.describe(&wl.catalog));
    }
}

fn run(optimizer: &dyn dsq_core::Optimizer, wl: &Workload) -> Deployment {
    let mut registry = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let d = optimizer
        .optimize(&wl.catalog, &wl.queries[0], &mut registry, &mut stats)
        .expect("the query is deployable");
    println!(
        "[{}] plans considered: {}, cost: {:.2}",
        optimizer.name(),
        stats.plans_considered,
        d.cost
    );
    d
}
