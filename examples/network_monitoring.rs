//! Distributed network monitoring: many concurrent queries over shared
//! streams — the multi-query, reuse-heavy regime the paper targets.
//!
//! Deploys a 20-query workload (2–5 joins each, as in Section 3) over the
//! ~128-node network with five algorithms, reporting cumulative cost,
//! search-space size and reuse statistics, then inspects the hottest links
//! with the flow simulator and validates one deployment with the
//! tuple-level simulator.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use dsq::prelude::*;
use dsq_baselines::{InNetwork, InNetworkRunner, PlanThenDeploy, Relaxation};
use dsq_core::{consolidate, Optimal, Optimizer};

fn main() {
    let ts = TransitStubConfig::paper_128().generate(2026);
    let env = Environment::build(ts.network.clone(), 32);
    let mut gen = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 100,
            queries: 20,
            joins_per_query: 2..=5,
            ..WorkloadConfig::default()
        },
        11,
    );
    let wl = gen.generate(&env.network);
    println!(
        "monitoring workload: {} streams, {} queries on {} nodes (max_cs 32, h = {})\n",
        wl.catalog.len(),
        wl.queries.len(),
        env.network.len(),
        env.hierarchy.height()
    );

    let zones = InNetwork::new(&env, 5);
    let algorithms: Vec<(&str, Box<dyn Optimizer>)> = vec![
        ("top-down", Box::new(TopDown::new(&env))),
        ("bottom-up", Box::new(BottomUp::new(&env))),
        ("optimal", Box::new(Optimal::new(&env))),
        ("plan-then-deploy", Box::new(PlanThenDeploy::new(&env))),
        ("relaxation", Box::new(Relaxation::new(&env))),
        (
            "in-network (5 zones)",
            Box::new(InNetworkRunner {
                zones: &zones,
                env: &env,
            }),
        ),
    ];

    println!(
        "{:<22} {:>14} {:>18} {:>10}",
        "algorithm", "total cost", "plans considered", "reused"
    );
    let mut td_deployments = Vec::new();
    for (name, alg) in &algorithms {
        let mut registry = ReuseRegistry::new();
        let out =
            consolidate::deploy_all(alg.as_ref(), &wl.catalog, &wl.queries, &mut registry, true);
        let reused = out
            .deployments
            .iter()
            .flatten()
            .flat_map(|d| d.plan.nodes())
            .filter(|n| {
                matches!(
                    n,
                    dsq_query::FlatNode::Leaf {
                        source: dsq_query::LeafSource::Derived { .. },
                        ..
                    }
                )
            })
            .count();
        println!(
            "{:<22} {:>14.1} {:>18} {:>10}",
            name,
            out.total_cost(),
            out.stats.plans_considered,
            reused
        );
        if *name == "top-down" {
            td_deployments = out.deployments.into_iter().flatten().collect::<Vec<_>>();
        }
    }

    // Where does the traffic go? Flow-level view of the Top-Down batch.
    let flow = FlowSimulator::new(&env.network);
    let refs: Vec<&Deployment> = td_deployments.iter().collect();
    let report = flow.evaluate(&refs);
    println!("\nhottest links under the top-down deployment:");
    for ((a, b), rate) in report.hottest_links(5) {
        println!("  {a} <-> {b}: {rate:.1} data units/time");
    }
    let u = report.utilization(&env.network);
    println!(
        "link utilization: {:.0}% of links active, mean {:.1}, p95 {:.1}, max {:.1}, \
         Jain fairness {:.2}",
        u.active_fraction * 100.0,
        u.mean_flow,
        u.p95_flow,
        u.max_flow,
        u.jain_fairness
    );

    // Validate the analytic cost of one deployment tuple-by-tuple.
    let sim = TupleSimulator::new(&env.network);
    let d = &td_deployments[0];
    let q = wl.queries.iter().find(|q| q.id == d.query).unwrap();
    let r = sim.run(&wl.catalog, q, d, TupleSimConfig::default());
    println!(
        "\ntuple-level check of {}: predicted {:.1}, measured {:.1} ({} tuples, {} results, mean latency {:.1} ms)",
        d.query,
        r.predicted_cost_per_time,
        r.measured_cost_per_time,
        r.tuples_generated,
        r.results_delivered,
        r.mean_latency_ms
    );
}
