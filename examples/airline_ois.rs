//! The paper's motivating scenario (Section 1.1): Delta's Operational
//! Information System over the example network of Figure 3.
//!
//! Q2 (FLIGHTS ⋈ CHECK-INS for Atlanta departures) is deployed first; Q1
//! additionally joins WEATHER. A joint planner that knows about Q2's
//! deployed operator picks the (FLIGHTS ⋈ CHECK-INS) ⋈ WEATHER ordering so
//! it can reuse it — even though the network-oblivious rate-optimal
//! ordering may differ — and the comparison below quantifies the savings.
//!
//! ```text
//! cargo run --example airline_ois
//! ```

use dsq::prelude::*;
use dsq_core::{Optimal, Optimizer};
use dsq_workload::airline_scenario;

fn main() {
    let scenario = airline_scenario();
    let env = Environment::build(scenario.network.clone(), 4);
    let catalog = &scenario.catalog;
    let (q2, q1) = (&scenario.queries[0], &scenario.queries[1]);

    println!("== The airline OIS network ==");
    println!(
        "{} nodes, {} links; hierarchy height {}",
        env.network.len(),
        env.network.link_count(),
        env.hierarchy.height()
    );

    // Deploy Q2 first and advertise its operators.
    let mut registry = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let optimizer = TopDown::new(&env);
    let d2 = optimizer
        .optimize(catalog, q2, &mut registry, &mut stats)
        .expect("Q2 deploys");
    println!("\n== Q2: FLIGHTS ⋈ CHECK-INS -> Sink3 ==");
    print!("{}", d2.describe(catalog));
    let published = registry.register_deployment(q2, &d2);
    println!(
        "advertised {} derived stream(s): {:?}",
        published.len(),
        published
    );

    // Q1 with reuse: the planner can tap Q2's join.
    let d1_reuse = optimizer
        .optimize(catalog, q1, &mut registry, &mut stats)
        .expect("Q1 deploys");
    println!("\n== Q1 (with reuse of Q2's operator) ==");
    print!("{}", d1_reuse.describe(catalog));

    // Q1 without reuse: plan from base streams only.
    let mut empty = ReuseRegistry::new();
    let d1_fresh = optimizer
        .optimize(catalog, q1, &mut empty, &mut stats)
        .expect("Q1 deploys");
    println!("\n== Q1 (from scratch, no reuse) ==");
    print!("{}", d1_fresh.describe(catalog));

    println!(
        "\nreuse saves {:.1}% of Q1's cost ({:.2} -> {:.2})",
        (1.0 - d1_reuse.cost / d1_fresh.cost) * 100.0,
        d1_fresh.cost,
        d1_reuse.cost
    );

    // Sanity: the joint optimum agrees that reuse is the right call here.
    let mut reg2 = ReuseRegistry::new();
    reg2.register_deployment(q2, &d2);
    let opt = Optimal::new(&env)
        .optimize(catalog, q1, &mut reg2, &mut stats)
        .unwrap();
    println!(
        "optimal Q1 (reuse allowed) costs {:.2}; top-down is within {:.1}%",
        opt.cost,
        (d1_reuse.cost / opt.cost - 1.0) * 100.0
    );
}
