//! Greedy violation shrinker: reduce a failing case to a minimal repro
//! while it keeps failing the *same* check.
//!
//! Reduction order follows the blast radius of each knob:
//!
//! 1. **Drop queries** — one at a time until no single removal preserves
//!    the failure.
//! 2. **Drop fault events** — likewise.
//! 3. **Shrink the topology and workload** — stepwise reductions of the
//!    stub/transit shape, stream count, join width and `max_cs`.
//!
//! Every candidate re-runs the full oracle, so a reduction is accepted only
//! when the minimized case still trips the original check — semantic drift
//! from regenerating a smaller instance is fine, soundness comes from the
//! re-check. A budget caps total oracle invocations so shrinking stays
//! bounded even on slow cases.

use crate::case::FuzzCase;
use crate::oracle::{run_oracle, CheckId};

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimized case (still failing `check`).
    pub case: FuzzCase,
    /// Oracle invocations spent.
    pub oracle_runs: usize,
    /// Whether the budget ran out before reaching a fixpoint.
    pub budget_exhausted: bool,
}

/// Does `case` still fail `check`, according to `oracle`?
fn fails(
    oracle: &dyn Fn(&FuzzCase) -> Vec<CheckId>,
    case: &FuzzCase,
    check: CheckId,
    runs: &mut usize,
) -> bool {
    *runs += 1;
    oracle(case).contains(&check)
}

/// Shrink `case` against the real oracle (see [`shrink_with`]).
pub fn shrink(case: &FuzzCase, check: CheckId, budget: usize) -> ShrinkReport {
    shrink_with(
        &|c| run_oracle(c).into_iter().map(|v| v.check).collect(),
        case,
        check,
        budget,
    )
}

/// Shrink `case` until no single reduction keeps `oracle` reporting
/// `check`, spending at most `budget` oracle invocations. The oracle is
/// injected so the shrinker itself can be validated against synthetic
/// (planted) defects.
pub fn shrink_with(
    oracle: &dyn Fn(&FuzzCase) -> Vec<CheckId>,
    case: &FuzzCase,
    check: CheckId,
    budget: usize,
) -> ShrinkReport {
    let mut best = case.clone();
    let mut runs = 0usize;
    let out_of_budget = |runs: &usize| *runs >= budget;

    // Phase 1: drop queries one at a time (restart the scan after every
    // accepted removal so earlier indexes get another chance).
    let mut keep: Vec<usize> = best
        .keep_queries
        .clone()
        .unwrap_or_else(|| (0..best.queries).collect());
    'queries: loop {
        if out_of_budget(&runs) {
            break;
        }
        for i in 0..keep.len() {
            if keep.len() <= 1 {
                break 'queries;
            }
            let mut cand_keep = keep.clone();
            cand_keep.remove(i);
            let cand = FuzzCase {
                keep_queries: Some(cand_keep.clone()),
                ..best.clone()
            };
            if fails(oracle, &cand, check, &mut runs) {
                keep = cand_keep;
                best = cand;
                continue 'queries;
            }
            if out_of_budget(&runs) {
                break 'queries;
            }
        }
        break;
    }

    // Phase 2: drop fault events the same way (also try dropping them all
    // at once first — many failures do not need the schedule at all).
    let mut keep_ev: Vec<usize> = best
        .keep_events
        .clone()
        .unwrap_or_else(|| (0..best.events).collect());
    if !keep_ev.is_empty() && !out_of_budget(&runs) {
        let cand = FuzzCase {
            keep_events: Some(Vec::new()),
            ..best.clone()
        };
        if fails(oracle, &cand, check, &mut runs) {
            keep_ev = Vec::new();
            best = cand;
        }
    }
    'events: loop {
        if out_of_budget(&runs) || keep_ev.is_empty() {
            break;
        }
        for i in 0..keep_ev.len() {
            let mut cand_keep = keep_ev.clone();
            cand_keep.remove(i);
            let cand = FuzzCase {
                keep_events: Some(cand_keep.clone()),
                ..best.clone()
            };
            if fails(oracle, &cand, check, &mut runs) {
                keep_ev = cand_keep;
                best = cand;
                continue 'events;
            }
            if out_of_budget(&runs) {
                break 'events;
            }
        }
        break;
    }

    // Phase 3: shrink topology/workload knobs to their floors.
    loop {
        if out_of_budget(&runs) {
            break;
        }
        let mut improved = false;
        let mut reductions: Vec<FuzzCase> = Vec::new();
        if best.stub_nodes_per_domain > 1 {
            reductions.push(FuzzCase {
                stub_nodes_per_domain: best.stub_nodes_per_domain - 1,
                ..best.clone()
            });
        }
        if best.stub_domains_per_transit_node > 1 {
            reductions.push(FuzzCase {
                stub_domains_per_transit_node: best.stub_domains_per_transit_node - 1,
                ..best.clone()
            });
        }
        if best.transit_nodes_per_domain > 1 {
            reductions.push(FuzzCase {
                transit_nodes_per_domain: best.transit_nodes_per_domain - 1,
                ..best.clone()
            });
        }
        if best.transit_domains > 1 {
            reductions.push(FuzzCase {
                transit_domains: best.transit_domains - 1,
                ..best.clone()
            });
        }
        if best.streams > best.joins_hi + 2 {
            reductions.push(FuzzCase {
                streams: best.streams - 1,
                ..best.clone()
            });
        }
        if best.joins_hi > best.joins_lo {
            reductions.push(FuzzCase {
                joins_hi: best.joins_hi - 1,
                ..best.clone()
            });
        }
        if best.max_cs > 2 {
            reductions.push(FuzzCase {
                max_cs: best.max_cs - 1,
                ..best.clone()
            });
        }
        if best.skew_milli > 0 {
            reductions.push(FuzzCase {
                skew_milli: 0,
                ..best.clone()
            });
        }
        if best.drop_milli > 0 {
            reductions.push(FuzzCase {
                drop_milli: 0,
                ..best.clone()
            });
        }
        for cand in reductions {
            if fails(oracle, &cand, check, &mut runs) {
                best = cand;
                improved = true;
                break;
            }
            if out_of_budget(&runs) {
                break;
            }
        }
        if !improved {
            break;
        }
    }

    ShrinkReport {
        budget_exhausted: out_of_budget(&runs),
        case: best,
        oracle_runs: runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A planted defect: "fires whenever at least 2 queries and at least 1
    /// fault event survive the masks". The shrinker must find the 2-query,
    /// 1-event floor and drive the topology to its minimum.
    fn planted(case: &FuzzCase) -> Vec<CheckId> {
        if case.live_queries() >= 2 && case.live_events() >= 1 {
            vec![CheckId::CrossArm]
        } else {
            Vec::new()
        }
    }

    #[test]
    fn shrinker_reaches_the_planted_floor() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut case = FuzzCase::sample(&mut rng, 48);
        case.queries = 6;
        case.events = 10;
        assert!(planted(&case).contains(&CheckId::CrossArm));
        let report = shrink_with(&planted, &case, CheckId::CrossArm, 500);
        assert!(!report.budget_exhausted);
        assert_eq!(report.case.live_queries(), 2);
        assert_eq!(report.case.live_events(), 1);
        // Topology knobs bottom out (the planted bug ignores them).
        assert_eq!(report.case.transit_domains, 1);
        assert_eq!(report.case.transit_nodes_per_domain, 1);
        assert_eq!(report.case.stub_domains_per_transit_node, 1);
        assert_eq!(report.case.stub_nodes_per_domain, 1);
        assert_eq!(report.case.max_cs, 2);
        assert!(planted(&report.case).contains(&CheckId::CrossArm));
    }

    #[test]
    fn shrinker_keeps_the_failing_check() {
        // A defect that needs a specific query index to survive: dropping
        // the wrong ones must be rejected.
        let needs_q3 = |case: &FuzzCase| -> Vec<CheckId> {
            let live = case
                .keep_queries
                .clone()
                .unwrap_or_else(|| (0..case.queries).collect());
            if live.contains(&3) {
                vec![CheckId::Validity]
            } else {
                Vec::new()
            }
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut case = FuzzCase::sample(&mut rng, 32);
        case.queries = 6;
        case.events = 0;
        let report = shrink_with(&needs_q3, &case, CheckId::Validity, 300);
        assert_eq!(report.case.keep_queries, Some(vec![3]));
        assert!(needs_q3(&report.case).contains(&CheckId::Validity));
    }

    #[test]
    fn budget_is_respected() {
        let always = |_: &FuzzCase| vec![CheckId::Chaos];
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut case = FuzzCase::sample(&mut rng, 48);
        case.queries = 6;
        case.events = 12;
        let report = shrink_with(&always, &case, CheckId::Chaos, 10);
        assert!(report.budget_exhausted);
        assert!(report.oracle_runs <= 11);
    }
}
