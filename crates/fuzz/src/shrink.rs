//! Greedy violation shrinker: reduce a failing case to a minimal repro
//! while it keeps failing the *same* check.
//!
//! Reduction order follows the blast radius of each knob:
//!
//! 0. **Drop service script lines, then crash points** (service-mode cases
//!    only) — the request script is a service bug's blast radius, so it
//!    shrinks before anything else. The keep masks index the *generated*
//!    lines and kill points, so any subset still replays deterministically.
//! 1. **Drop queries** — one at a time until no single removal preserves
//!    the failure.
//! 2. **Drop fault events** — likewise.
//! 3. **Shrink the topology and workload** — stepwise reductions of the
//!    stub/transit shape, stream count, join width and `max_cs` (plus the
//!    service script knobs on service-mode cases).
//! 4. **Canonicalize** — not smaller, but rounder: round the generated
//!    rates and selectivities to one significant digit (`round_stats`),
//!    drive the seed toward small round values, and snap `skew_milli` /
//!    `drop_milli` onto round ladders. Minimized repros end up with
//!    numbers a human can reason about.
//!
//! Every candidate re-runs the full oracle, so a reduction is accepted only
//! when the minimized case still trips the original check — semantic drift
//! from regenerating a smaller instance is fine, soundness comes from the
//! re-check. A budget caps total oracle invocations so shrinking stays
//! bounded even on slow cases.

use crate::case::FuzzCase;
use crate::oracle::{run_oracle, CheckId};

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimized case (still failing `check`).
    pub case: FuzzCase,
    /// Oracle invocations spent.
    pub oracle_runs: usize,
    /// Whether the budget ran out before reaching a fixpoint.
    pub budget_exhausted: bool,
}

/// Does `case` still fail `check`, according to `oracle`?
fn fails(
    oracle: &dyn Fn(&FuzzCase) -> Vec<CheckId>,
    case: &FuzzCase,
    check: CheckId,
    runs: &mut usize,
) -> bool {
    *runs += 1;
    oracle(case).contains(&check)
}

/// Shrink `case` against the real oracle (see [`shrink_with`]).
pub fn shrink(case: &FuzzCase, check: CheckId, budget: usize) -> ShrinkReport {
    shrink_with(
        &|c| run_oracle(c).into_iter().map(|v| v.check).collect(),
        case,
        check,
        budget,
    )
}

/// Shrink `case` until no single reduction keeps `oracle` reporting
/// `check`, spending at most `budget` oracle invocations. The oracle is
/// injected so the shrinker itself can be validated against synthetic
/// (planted) defects.
pub fn shrink_with(
    oracle: &dyn Fn(&FuzzCase) -> Vec<CheckId>,
    case: &FuzzCase,
    check: CheckId,
    budget: usize,
) -> ShrinkReport {
    let mut best = case.clone();
    let mut runs = 0usize;
    let out_of_budget = |runs: &usize| *runs >= budget;

    // Phase 0 (service cases): drop request-script lines, then crash
    // points. Dropping a line shifts later journal indexes (and therefore
    // the regenerated crash schedule) — soundness comes from the re-check,
    // exactly as with every other regenerating reduction.
    if best.service {
        let mut keep_req: Vec<usize> = best.keep_requests.clone().unwrap_or_else(|| {
            let unmasked = FuzzCase {
                keep_requests: None,
                ..best.clone()
            };
            (0..unmasked.service_script().len()).collect()
        });
        'requests: loop {
            if out_of_budget(&runs) || keep_req.is_empty() {
                break;
            }
            for i in 0..keep_req.len() {
                let mut cand_keep = keep_req.clone();
                cand_keep.remove(i);
                let cand = FuzzCase {
                    keep_requests: Some(cand_keep.clone()),
                    ..best.clone()
                };
                if fails(oracle, &cand, check, &mut runs) {
                    keep_req = cand_keep;
                    best = cand;
                    continue 'requests;
                }
                if out_of_budget(&runs) {
                    break 'requests;
                }
            }
            break;
        }

        // Crash points: all at once first (many script bugs need no crash
        // at all), then one at a time.
        let mut keep_kill: Vec<usize> = best.keep_kills.clone().unwrap_or_else(|| {
            let unmasked = FuzzCase {
                keep_kills: None,
                ..best.clone()
            };
            let lines = unmasked.service_script();
            (0..unmasked.service_crashes(&lines).kill_at.len()).collect()
        });
        if !keep_kill.is_empty() && !out_of_budget(&runs) {
            let cand = FuzzCase {
                keep_kills: Some(Vec::new()),
                ..best.clone()
            };
            if fails(oracle, &cand, check, &mut runs) {
                keep_kill = Vec::new();
                best = cand;
            }
        }
        'kills: loop {
            if out_of_budget(&runs) || keep_kill.is_empty() {
                break;
            }
            for i in 0..keep_kill.len() {
                let mut cand_keep = keep_kill.clone();
                cand_keep.remove(i);
                let cand = FuzzCase {
                    keep_kills: Some(cand_keep.clone()),
                    ..best.clone()
                };
                if fails(oracle, &cand, check, &mut runs) {
                    keep_kill = cand_keep;
                    best = cand;
                    continue 'kills;
                }
                if out_of_budget(&runs) {
                    break 'kills;
                }
            }
            break;
        }
    }

    // Phase 1: drop queries one at a time (restart the scan after every
    // accepted removal so earlier indexes get another chance).
    let mut keep: Vec<usize> = best
        .keep_queries
        .clone()
        .unwrap_or_else(|| (0..best.queries).collect());
    'queries: loop {
        if out_of_budget(&runs) {
            break;
        }
        for i in 0..keep.len() {
            if keep.len() <= 1 {
                break 'queries;
            }
            let mut cand_keep = keep.clone();
            cand_keep.remove(i);
            let cand = FuzzCase {
                keep_queries: Some(cand_keep.clone()),
                ..best.clone()
            };
            if fails(oracle, &cand, check, &mut runs) {
                keep = cand_keep;
                best = cand;
                continue 'queries;
            }
            if out_of_budget(&runs) {
                break 'queries;
            }
        }
        break;
    }

    // Phase 2: drop fault events the same way (also try dropping them all
    // at once first — many failures do not need the schedule at all).
    let mut keep_ev: Vec<usize> = best
        .keep_events
        .clone()
        .unwrap_or_else(|| (0..best.events).collect());
    if !keep_ev.is_empty() && !out_of_budget(&runs) {
        let cand = FuzzCase {
            keep_events: Some(Vec::new()),
            ..best.clone()
        };
        if fails(oracle, &cand, check, &mut runs) {
            keep_ev = Vec::new();
            best = cand;
        }
    }
    'events: loop {
        if out_of_budget(&runs) || keep_ev.is_empty() {
            break;
        }
        for i in 0..keep_ev.len() {
            let mut cand_keep = keep_ev.clone();
            cand_keep.remove(i);
            let cand = FuzzCase {
                keep_events: Some(cand_keep.clone()),
                ..best.clone()
            };
            if fails(oracle, &cand, check, &mut runs) {
                keep_ev = cand_keep;
                best = cand;
                continue 'events;
            }
            if out_of_budget(&runs) {
                break 'events;
            }
        }
        break;
    }

    // Phase 3: shrink topology/workload knobs to their floors.
    loop {
        if out_of_budget(&runs) {
            break;
        }
        let mut improved = false;
        let mut reductions: Vec<FuzzCase> = Vec::new();
        if best.stub_nodes_per_domain > 1 {
            reductions.push(FuzzCase {
                stub_nodes_per_domain: best.stub_nodes_per_domain - 1,
                ..best.clone()
            });
        }
        if best.stub_domains_per_transit_node > 1 {
            reductions.push(FuzzCase {
                stub_domains_per_transit_node: best.stub_domains_per_transit_node - 1,
                ..best.clone()
            });
        }
        if best.transit_nodes_per_domain > 1 {
            reductions.push(FuzzCase {
                transit_nodes_per_domain: best.transit_nodes_per_domain - 1,
                ..best.clone()
            });
        }
        if best.transit_domains > 1 {
            reductions.push(FuzzCase {
                transit_domains: best.transit_domains - 1,
                ..best.clone()
            });
        }
        if best.streams > best.joins_hi + 2 {
            reductions.push(FuzzCase {
                streams: best.streams - 1,
                ..best.clone()
            });
        }
        if best.joins_hi > best.joins_lo {
            reductions.push(FuzzCase {
                joins_hi: best.joins_hi - 1,
                ..best.clone()
            });
        }
        if best.max_cs > 2 {
            reductions.push(FuzzCase {
                max_cs: best.max_cs - 1,
                ..best.clone()
            });
        }
        if best.skew_milli > 0 {
            reductions.push(FuzzCase {
                skew_milli: 0,
                ..best.clone()
            });
        }
        if best.drop_milli > 0 {
            reductions.push(FuzzCase {
                drop_milli: 0,
                ..best.clone()
            });
        }
        if best.service {
            // Script-generation knobs: regenerating a leaner script may
            // invalidate the keep masks' indexes, but the re-check keeps
            // only reductions that still reproduce the failure.
            if best.svc_events > 0 {
                reductions.push(FuzzCase {
                    svc_events: 0,
                    ..best.clone()
                });
            }
            if best.svc_reads > 0 {
                reductions.push(FuzzCase {
                    svc_reads: 0,
                    ..best.clone()
                });
            }
            if best.svc_replans > 0 {
                reductions.push(FuzzCase {
                    svc_replans: best.svc_replans - 1,
                    ..best.clone()
                });
            }
            if best.svc_unregisters > 0 {
                reductions.push(FuzzCase {
                    svc_unregisters: best.svc_unregisters - 1,
                    ..best.clone()
                });
            }
            if best.svc_queries > 1 {
                reductions.push(FuzzCase {
                    svc_queries: best.svc_queries - 1,
                    ..best.clone()
                });
            }
            if best.svc_snapshot_every > 0 {
                reductions.push(FuzzCase {
                    svc_snapshot_every: 0,
                    ..best.clone()
                });
            }
        }
        for cand in reductions {
            if fails(oracle, &cand, check, &mut runs) {
                best = cand;
                improved = true;
                break;
            }
            if out_of_budget(&runs) {
                break;
            }
        }
        if !improved {
            break;
        }
    }

    // Phase 4: canonicalize values. Every accepted move is strictly
    // "rounder" — round_stats only flips off->on, the seed strictly
    // decreases, and the milli knobs only move toward the front of a fixed
    // preference ladder — so the phase terminates without a budget.
    const SKEW_LADDER: [u64; 4] = [1000, 500, 1500, 750];
    const DROP_LADDER: [u64; 4] = [100, 50, 200, 150];
    let ladder_pos = |ladder: &[u64], v: u64| -> usize {
        ladder.iter().position(|&x| x == v).unwrap_or(ladder.len())
    };
    loop {
        if out_of_budget(&runs) {
            break;
        }
        let mut improved = false;

        if !best.round_stats {
            let cand = FuzzCase {
                round_stats: true,
                ..best.clone()
            };
            if fails(oracle, &cand, check, &mut runs) {
                best = cand;
                improved = true;
            }
        }
        if !improved && best.seed != 0 && !out_of_budget(&runs) {
            let mut seeds: Vec<u64> = vec![0, 1, 2, 3, 5, 10, 42, 100, 1000];
            seeds.extend([best.seed % 10, best.seed % 100, best.seed % 1000]);
            seeds.retain(|&s| s < best.seed);
            seeds.dedup();
            for seed in seeds {
                let cand = FuzzCase {
                    seed,
                    ..best.clone()
                };
                if fails(oracle, &cand, check, &mut runs) {
                    best = cand;
                    improved = true;
                    break;
                }
                if out_of_budget(&runs) {
                    break;
                }
            }
        }
        for (ladder, get, set) in [
            (
                &SKEW_LADDER,
                (|c: &FuzzCase| c.skew_milli) as fn(&FuzzCase) -> u64,
                (|c: &mut FuzzCase, v| c.skew_milli = v) as fn(&mut FuzzCase, u64),
            ),
            (
                &DROP_LADDER,
                |c: &FuzzCase| c.drop_milli,
                |c: &mut FuzzCase, v| c.drop_milli = v,
            ),
        ] {
            if improved || out_of_budget(&runs) {
                break;
            }
            let cur = get(&best);
            if cur == 0 {
                continue; // already minimized away by phase 3
            }
            for &v in ladder.iter() {
                if ladder_pos(ladder, v) >= ladder_pos(ladder, cur) {
                    continue;
                }
                let mut cand = best.clone();
                set(&mut cand, v);
                if fails(oracle, &cand, check, &mut runs) {
                    best = cand;
                    improved = true;
                    break;
                }
                if out_of_budget(&runs) {
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }

    ShrinkReport {
        budget_exhausted: out_of_budget(&runs),
        case: best,
        oracle_runs: runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A planted defect: "fires whenever at least 2 queries and at least 1
    /// fault event survive the masks". The shrinker must find the 2-query,
    /// 1-event floor and drive the topology to its minimum.
    fn planted(case: &FuzzCase) -> Vec<CheckId> {
        if case.live_queries() >= 2 && case.live_events() >= 1 {
            vec![CheckId::CrossArm]
        } else {
            Vec::new()
        }
    }

    #[test]
    fn shrinker_reaches_the_planted_floor() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut case = FuzzCase::sample(&mut rng, 48);
        case.queries = 6;
        case.events = 10;
        assert!(planted(&case).contains(&CheckId::CrossArm));
        let report = shrink_with(&planted, &case, CheckId::CrossArm, 500);
        assert!(!report.budget_exhausted);
        assert_eq!(report.case.live_queries(), 2);
        assert_eq!(report.case.live_events(), 1);
        // Topology knobs bottom out (the planted bug ignores them).
        assert_eq!(report.case.transit_domains, 1);
        assert_eq!(report.case.transit_nodes_per_domain, 1);
        assert_eq!(report.case.stub_domains_per_transit_node, 1);
        assert_eq!(report.case.stub_nodes_per_domain, 1);
        assert_eq!(report.case.max_cs, 2);
        assert!(planted(&report.case).contains(&CheckId::CrossArm));
    }

    #[test]
    fn shrinker_keeps_the_failing_check() {
        // A defect that needs a specific query index to survive: dropping
        // the wrong ones must be rejected.
        let needs_q3 = |case: &FuzzCase| -> Vec<CheckId> {
            let live = case
                .keep_queries
                .clone()
                .unwrap_or_else(|| (0..case.queries).collect());
            if live.contains(&3) {
                vec![CheckId::Validity]
            } else {
                Vec::new()
            }
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut case = FuzzCase::sample(&mut rng, 32);
        case.queries = 6;
        case.events = 0;
        let report = shrink_with(&needs_q3, &case, CheckId::Validity, 300);
        assert_eq!(report.case.keep_queries, Some(vec![3]));
        assert!(needs_q3(&report.case).contains(&CheckId::Validity));
    }

    #[test]
    fn shrinker_canonicalizes_toward_round_numbers() {
        // A defect that survives only while skew and drop stay nonzero —
        // phase 3 cannot zero them, phase 4 must snap them onto the round
        // ladders, drive the seed to 0 and turn on statistic rounding.
        let needs_knobs = |case: &FuzzCase| -> Vec<CheckId> {
            if case.skew_milli > 0 && case.drop_milli > 0 {
                vec![CheckId::Migration]
            } else {
                Vec::new()
            }
        };
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let mut case = FuzzCase::sample(&mut rng, 48);
        case.seed = 123_456_789;
        case.skew_milli = 730;
        case.drop_milli = 170;
        case.queries = 2;
        case.events = 1;
        let report = shrink_with(&needs_knobs, &case, CheckId::Migration, 1_000);
        assert!(!report.budget_exhausted);
        assert_eq!(report.case.seed, 0);
        assert_eq!(report.case.skew_milli, 1000);
        assert_eq!(report.case.drop_milli, 100);
        assert!(report.case.round_stats);
        assert!(needs_knobs(&report.case).contains(&CheckId::Migration));
        // The canonical form round-trips through the .case text.
        let parsed = FuzzCase::parse(&report.case.to_text("canon")).unwrap();
        assert_eq!(parsed, report.case);
    }

    #[test]
    fn shrinker_drops_service_requests_and_crash_points() {
        // Planted service defect: fires while at least 3 script lines and
        // at least 1 crash point survive the keep masks. Phase 0 must find
        // the 3-line, 1-kill floor.
        let planted = |case: &FuzzCase| -> Vec<CheckId> {
            let lines = case.service_script();
            let kills = case.service_crashes(&lines).kill_at.len();
            if lines.len() >= 3 && kills >= 1 {
                vec![CheckId::Service]
            } else {
                Vec::new()
            }
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let case = loop {
            let c = FuzzCase::sample_with(&mut rng, 48, 0, 1000);
            if c.service && planted(&c).contains(&CheckId::Service) {
                break c;
            }
        };
        let report = shrink_with(&planted, &case, CheckId::Service, 2_000);
        assert!(!report.budget_exhausted);
        let lines = report.case.service_script();
        assert_eq!(lines.len(), 3, "script floor not reached: {lines:?}");
        assert_eq!(report.case.service_crashes(&lines).kill_at.len(), 1);
        assert!(planted(&report.case).contains(&CheckId::Service));
        // The minimized masks round-trip through the .case text.
        let parsed = FuzzCase::parse(&report.case.to_text("svc")).unwrap();
        assert_eq!(parsed, report.case);
    }

    #[test]
    fn round_stats_rounds_the_generated_catalog() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut case = FuzzCase::sample(&mut rng, 32);
        case.round_stats = true;
        let inst = case.build();
        let one_sig = |v: f64| -> bool {
            let mag = 10f64.powf(v.abs().log10().floor());
            (v / mag - (v / mag).round()).abs() < 1e-9
        };
        for s in inst.workload.catalog.streams() {
            assert!(s.rate > 0.0 && one_sig(s.rate), "rate {} not round", s.rate);
        }
        // Build is still deterministic under rounding.
        let again = case.build();
        for (a, b) in inst
            .workload
            .catalog
            .streams()
            .iter()
            .zip(again.workload.catalog.streams())
        {
            assert_eq!(a.rate.to_bits(), b.rate.to_bits());
        }
    }

    #[test]
    fn budget_is_respected() {
        let always = |_: &FuzzCase| vec![CheckId::Chaos];
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut case = FuzzCase::sample(&mut rng, 48);
        case.queries = 6;
        case.events = 12;
        let report = shrink_with(&always, &case, CheckId::Chaos, 10);
        assert!(report.budget_exhausted);
        assert!(report.oracle_runs <= 11);
    }
}
