//! The invariant oracle: every planner arm runs over the same instance and
//! every result is checked against the others and against the paper's
//! analytical bounds.
//!
//! Checks, in order:
//!
//! 1. **Generation / hierarchy** — the instance materializes and the built
//!    hierarchy satisfies its structural invariants.
//! 2. **Cross-arm equivalence** — serial, parallel, cache-on, cache-off and
//!    warm-replay arms of `optimize_all` produce bit-identical deployments,
//!    costs and search statistics.
//! 3. **Deployment validity** — every operator sits on an active node,
//!    leaves sit at their stream's origin, every data-flow edge is routed
//!    over finite (live) distances, and the stored cost matches a
//!    recomputation.
//! 4. **Cost bounds** — Top-Down and Bottom-Up never beat the exact
//!    [`Optimal`] yardstick, Top-Down's gap respects Theorem 3, and the
//!    In-network baseline is feasible and no better than optimal.
//! 5. **Theorem 1** — level-k estimated costs bound true distances within
//!    the hierarchy's accumulated slack, at every level.
//! 6. **Restricted placement** — `Optimal::restricted` never places a join
//!    outside its candidate set, returns a typed error on empty or
//!    fully-inactive candidate sets, and respects churned (inactive) nodes.
//! 7. **Cache accounting** — a no-change warm replay produces zero new
//!    misses; hit/miss/retired counters are conserved across events.
//! 8. **Incremental equivalence** — after a seeded link drift, scoped
//!    retirement + `optimize_dirty` matches a from-scratch full replan
//!    bit-for-bit.
//! 9. **Chaos equivalence** — the scoped, flush and cache-off arms of the
//!    chaos runner agree on every report field that is schedule-determined.
//! 10. **Protocol accounting** — a zero-drop [`dsq_sim::emulab::LossyProtocol`]
//!     reproduces the reliable model bit-for-bit, per-send waits follow the
//!     exponential-backoff schedule exactly for the observed retry count,
//!     and certain loss exhausts the whole retry budget.
//! 11. **Migration break-even** — [`dsq_sim::migrate::plan_migration`] keeps
//!     its arithmetic consistent: a self-migration is free, the break-even
//!     time exists iff the steady-state saving is positive and equals
//!     transfer/saving, and `worthwhile` is monotone in the horizon.
//! 12. **Containment reuse** — every derived-stream leaf a planner consumes
//!     is backed by an advertisement whose covered set is contained in the
//!     query's own source set, and (against the exact yardstick) planning
//!     with the advertisement registry never costs more than without it.
//! 13. **Service differential** — service-mode cases drive a generated
//!     request script through the resident [`dsq_server`] service three
//!     ways: uncrashed, killed-and-recovered at every scheduled journal
//!     index, and pure journal replay. All three must agree on responses,
//!     fingerprints and epochs; admission counters must conserve against
//!     the acked responses; stale flags must only ever point at strictly
//!     older epochs; and the replay's virtual-clock obs trace must be
//!     byte-identical to the live run's.
//!
//! Any panic inside an arm (internal assertion, unwrap, overflow) is
//! converted into a violation of the check that was running, so library
//! bugs surface as shrinkable findings rather than aborting the campaign.

use crate::case::{FuzzCase, Instance};
use dsq_core::{
    bounds, metric_dirty_nodes, optimize_all, optimize_dirty, BottomUp, Environment,
    InvalidationMode, MultiQueryOutcome, Optimal, Optimizer, ParallelConfig, PlacementError,
    SearchStats, TopDown,
};
use dsq_net::{DistanceMatrix, Metric, NodeId};
use dsq_query::{Catalog, Deployment, FlatNode, LeafSource, Query, ReuseRegistry};
use dsq_sim::chaos::{ChaosReport, ChaosRunner, Fault, FaultSchedule};
use dsq_sim::emulab::{EmulabModel, LossyProtocol, RetryPolicy};
use dsq_sim::migrate::plan_migration;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which invariant a violation falls under. The slug doubles as the
/// repro-file prefix and the shrinker's "same bug" predicate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CheckId {
    /// The case failed to materialize at all.
    Generation,
    /// `Hierarchy::check_invariants` failed on the built instance.
    Hierarchy,
    /// Two planner arms disagreed bit-for-bit.
    CrossArm,
    /// A deployment referenced an inactive node, a mis-placed leaf, an
    /// unroutable edge or an inconsistent stored cost.
    Validity,
    /// A heuristic beat the exact optimum, or exceeded its Theorem-3 gap.
    CostBound,
    /// A level-k cost estimate fell outside Theorem 1's slack.
    Theorem1,
    /// Restricted/zone placement used a node outside the (active) candidate
    /// set, or accepted an empty one.
    Restricted,
    /// Cache hit/miss/retired accounting was not conserved.
    CacheAccounting,
    /// Incremental replanning diverged from the full replan.
    Incremental,
    /// Chaos arms (scoped/flush/cache-off) diverged, or a chaos-run
    /// invariant fired.
    Chaos,
    /// Lossy-protocol retry accounting broke: a zero-drop protocol diverged
    /// from the reliable model, waits disagreed with the retry count and
    /// backoff schedule, or a certain-loss send failed to exhaust the
    /// budget exactly.
    Protocol,
    /// A migration plan's break-even arithmetic was inconsistent: moves in
    /// place, negative transfer cost, a break-even time that contradicts
    /// the saving sign, or a non-monotone `worthwhile` horizon.
    Migration,
    /// A reuse (advertisement) hit violated containment — a derived leaf's
    /// covered set escaped the consuming query's source set or disagreed
    /// with its advertisement — or a lifecycle invariant broke: a plan
    /// consumed a derived stream that was not live or was hosted on an
    /// inactive node, crash/rejoin churn failed to restore the candidate
    /// set, advert accounting was not conserved under a budget, or an
    /// unbounded budget changed planner output. Enabling reuse must also
    /// never raise the exact optimum.
    Reuse,
    /// The resident service's three-way differential diverged (uncrashed vs
    /// crash-recovered vs journal replay), or a response-level service
    /// invariant broke: admission accounting, drain-epoch monotonicity,
    /// stale-flag direction, journal conservation or obs-trace equality.
    Service,
}

impl CheckId {
    /// Every check, in oracle order.
    pub const ALL: [CheckId; 14] = [
        CheckId::Generation,
        CheckId::Hierarchy,
        CheckId::CrossArm,
        CheckId::Validity,
        CheckId::CostBound,
        CheckId::Theorem1,
        CheckId::Restricted,
        CheckId::CacheAccounting,
        CheckId::Incremental,
        CheckId::Chaos,
        CheckId::Protocol,
        CheckId::Migration,
        CheckId::Reuse,
        CheckId::Service,
    ];

    /// Short kebab-case slug (repro file names, reports).
    pub fn slug(&self) -> &'static str {
        match self {
            CheckId::Generation => "generation",
            CheckId::Hierarchy => "hierarchy",
            CheckId::CrossArm => "cross-arm",
            CheckId::Validity => "validity",
            CheckId::CostBound => "cost-bound",
            CheckId::Theorem1 => "theorem1",
            CheckId::Restricted => "restricted",
            CheckId::CacheAccounting => "cache-accounting",
            CheckId::Incremental => "incremental",
            CheckId::Chaos => "chaos",
            CheckId::Protocol => "protocol",
            CheckId::Migration => "migration",
            CheckId::Reuse => "reuse",
            CheckId::Service => "service",
        }
    }

    /// Inverse of [`CheckId::slug`] (for `dsqctl fuzz --check <slug>`).
    pub fn from_slug(slug: &str) -> Option<CheckId> {
        Self::ALL.into_iter().find(|c| c.slug() == slug)
    }
}

/// One oracle violation: the check that fired and a human-readable detail.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant fired.
    pub check: CheckId,
    /// What exactly diverged (first line is the summary).
    pub detail: String,
}

/// Extract a printable message from a panic payload.
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` under the named check, converting panics into violations.
fn guarded<T>(check: CheckId, violations: &mut Vec<Violation>, f: impl FnOnce() -> T) -> Option<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(p) => {
            violations.push(Violation {
                check,
                detail: format!("panic: {}", panic_message(p)),
            });
            None
        }
    }
}

/// A deterministic digest of a multi-query outcome: total cost bits,
/// search-space accounting and per-deployment structure. Two arms are
/// bit-identical iff their fingerprints are equal.
fn fingerprint(out: &MultiQueryOutcome) -> String {
    let mut s = format!(
        "total={:016x} considered={}",
        out.total_cost.to_bits(),
        out.stats.plans_considered
    );
    s.push_str(&fingerprint_deployments(out));
    s
}

/// Like [`fingerprint`], but without the search-space accounting: the
/// incremental arm *by design* examines fewer plans than a full replan
/// (untouched queries keep their deployments without replanning), so its
/// equivalence contract covers deployments and costs only — matching the
/// repo's differential harness (`tests/incremental_equivalence.rs`).
fn fingerprint_deployments(out: &MultiQueryOutcome) -> String {
    let mut s = format!("total={:016x}", out.total_cost.to_bits());
    for (i, d) in out.deployments.iter().enumerate() {
        match d {
            None => s.push_str(&format!("\nq{i}: infeasible")),
            Some(d) => {
                s.push_str(&format!(
                    "\nq{i}: cost={:016x} sink={} placement={:?}",
                    d.cost.to_bits(),
                    d.sink,
                    d.placement
                ));
            }
        }
    }
    s
}

/// Plan the whole batch under one arm configuration over a private cache.
fn run_arm(
    env: &Environment,
    catalog: &Catalog,
    queries: &[Query],
    parallel: bool,
    cache: bool,
    passes: usize,
) -> (MultiQueryOutcome, u64, u64) {
    let mut env = env.clone();
    env.isolate_cache(cache);
    let td = TopDown::new(&env);
    let cfg = if parallel {
        ParallelConfig::default()
    } else {
        ParallelConfig::serial()
    };
    let mut last = None;
    for _ in 0..passes {
        last = Some(optimize_all(
            &env,
            &td,
            catalog,
            queries,
            &ReuseRegistry::new(),
            &cfg,
        ));
    }
    (
        last.unwrap(),
        env.plan_cache.hits(),
        env.plan_cache.misses(),
    )
}

/// Validate one deployment's physical realizability.
fn check_deployment(
    label: &str,
    d: &Deployment,
    env: &Environment,
    catalog: &Catalog,
    violations: &mut Vec<Violation>,
) {
    let mut fail = |detail: String| {
        violations.push(Violation {
            check: CheckId::Validity,
            detail: format!("{label}: {detail}"),
        })
    };
    if d.placement.len() != d.plan.nodes().len() {
        fail(format!(
            "placement arity {} != plan arity {}",
            d.placement.len(),
            d.plan.nodes().len()
        ));
        return;
    }
    if !env.hierarchy.is_active(d.sink) {
        fail(format!("sink {} is inactive", d.sink));
    }
    for (i, node) in d.plan.nodes().iter().enumerate() {
        let at = d.placement[i];
        if !env.hierarchy.is_active(at) {
            fail(format!("plan node {i} placed on inactive node {at}"));
        }
        if let FlatNode::Leaf { source, .. } = node {
            let origin = match source {
                LeafSource::Base(id) => catalog.stream(*id).node,
                LeafSource::Derived { host, .. } => *host,
            };
            if at != origin {
                fail(format!(
                    "leaf {i} placed at {at}, its stream originates at {origin}"
                ));
            }
        }
    }
    let mut recomputed = 0.0;
    for e in &d.edges {
        let dist = env.dm.get(e.from, e.to);
        if !dist.is_finite() {
            fail(format!(
                "edge {} -> {} is unroutable (infinite distance)",
                e.from, e.to
            ));
            return;
        }
        recomputed += e.rate * dist;
    }
    let tol = 1e-9 * d.cost.abs().max(1.0);
    if (recomputed - d.cost).abs() > tol {
        fail(format!("stored cost {} != recomputed {recomputed}", d.cost));
    }
}

/// Compare two chaos reports on every schedule-determined field.
fn diff_chaos(a: &ChaosReport, b: &ChaosReport, what: &str) -> Option<String> {
    let mut diffs = Vec::new();
    if a.cost_final.to_bits() != b.cost_final.to_bits() {
        diffs.push(format!("cost_final {} vs {}", a.cost_final, b.cost_final));
    }
    if a.cost_initial.to_bits() != b.cost_initial.to_bits() {
        diffs.push(format!(
            "cost_initial {} vs {}",
            a.cost_initial, b.cost_initial
        ));
    }
    if a.final_installed != b.final_installed {
        diffs.push(format!(
            "final_installed {} vs {}",
            a.final_installed, b.final_installed
        ));
    }
    if a.final_parked != b.final_parked {
        diffs.push(format!(
            "final_parked {} vs {}",
            a.final_parked, b.final_parked
        ));
    }
    if a.lost != b.lost {
        diffs.push(format!("lost {:?} vs {:?}", a.lost, b.lost));
    }
    if a.applied != b.applied || a.skipped != b.skipped {
        diffs.push(format!(
            "applied/skipped {}/{} vs {}/{}",
            a.applied, a.skipped, b.applied, b.skipped
        ));
    }
    if a.redeployments != b.redeployments {
        diffs.push(format!(
            "redeployments {} vs {}",
            a.redeployments, b.redeployments
        ));
    }
    if a.availability.to_bits() != b.availability.to_bits() {
        diffs.push(format!(
            "availability {} vs {}",
            a.availability, b.availability
        ));
    }
    if diffs.is_empty() {
        None
    } else {
        Some(format!("{what}: {}", diffs.join("; ")))
    }
}

/// Size guard for the exact-optimum and all-pairs checks: the DP yardstick
/// and the O(n²·h) Theorem-1 sweep only run on instances at or below this
/// node count (the generator's default ceiling).
pub const EXACT_CHECK_MAX_NODES: usize = 64;

/// Run every check against `case`. An empty result means the case survived
/// the whole oracle.
pub fn run_oracle(case: &FuzzCase) -> Vec<Violation> {
    let mut violations = Vec::new();
    let inst = match guarded(CheckId::Generation, &mut violations, || case.build()) {
        Some(i) => i,
        None => return violations,
    };
    let Instance {
        env,
        workload,
        schedule,
    } = &inst;
    let catalog = &workload.catalog;
    let queries = &workload.queries;

    guarded(CheckId::Hierarchy, &mut violations, || {
        env.hierarchy.check_invariants()
    });

    // --- Service-layer three-way differential (service-mode cases). ------
    // Runs before the planner-batch early return: a service case keeps its
    // script invariants even when the planner workload is empty.
    if case.service {
        guarded(CheckId::Service, &mut violations, || check_service(case))
            .into_iter()
            .flatten()
            .for_each(|detail| {
                violations.push(Violation {
                    check: CheckId::Service,
                    detail,
                })
            });
    }

    if queries.is_empty() {
        return violations;
    }

    // --- Cross-arm equivalence over the initial batch. -------------------
    let reference = guarded(CheckId::CrossArm, &mut violations, || {
        run_arm(env, catalog, queries, false, false, 1)
    });
    let Some((reference, _, _)) = reference else {
        return violations;
    };
    let ref_fp = fingerprint(&reference);
    let arms: [(&str, bool, bool, usize); 4] = [
        ("serial/cache", false, true, 1),
        ("parallel/cache", true, true, 1),
        ("parallel/no-cache", true, false, 1),
        ("serial/warm-replay", false, true, 2),
    ];
    let mut replay_counters = None;
    for (name, parallel, cache, passes) in arms {
        let got = guarded(CheckId::CrossArm, &mut violations, || {
            run_arm(env, catalog, queries, parallel, cache, passes)
        });
        if let Some((out, hits, misses)) = got {
            let fp = fingerprint(&out);
            if fp != ref_fp {
                violations.push(Violation {
                    check: CheckId::CrossArm,
                    detail: format!(
                        "{name} diverged from serial/no-cache\nreference:\n{ref_fp}\n{name}:\n{fp}"
                    ),
                });
            }
            if name == "serial/warm-replay" {
                replay_counters = Some((hits, misses));
            }
        }
    }

    // --- Cache-accounting conservation. ----------------------------------
    // Two identical passes over an unchanged environment: every second-pass
    // invocation must be served from the cache, so the second pass adds
    // hits but not a single new miss.
    let accounting = guarded(CheckId::CacheAccounting, &mut violations, || {
        let mut env = env.clone();
        env.isolate_cache(true);
        let td = TopDown::new(&env);
        let cfg = ParallelConfig::serial();
        let run = |env: &Environment, td: &TopDown| {
            optimize_all(env, td, catalog, queries, &ReuseRegistry::new(), &cfg)
        };
        run(&env, &td);
        let (h1, m1, r1) = (
            env.plan_cache.hits(),
            env.plan_cache.misses(),
            env.plan_cache.retired(),
        );
        run(&env, &td);
        let (h2, m2, r2) = (
            env.plan_cache.hits(),
            env.plan_cache.misses(),
            env.plan_cache.retired(),
        );
        if m2 != m1 {
            return Some(format!(
                "no-change replay added misses: {m1} -> {m2} (hits {h1} -> {h2})"
            ));
        }
        if h2 < h1 || r2 != r1 {
            return Some(format!(
                "counters regressed on replay: hits {h1} -> {h2}, retired {r1} -> {r2}"
            ));
        }
        None
    });
    if let Some(Some(detail)) = accounting {
        violations.push(Violation {
            check: CheckId::CacheAccounting,
            detail,
        });
    }
    if let Some((hits, misses)) = replay_counters {
        if hits == 0 && misses == 0 && !queries.is_empty() {
            violations.push(Violation {
                check: CheckId::CacheAccounting,
                detail: "warm replay recorded no cache traffic at all".into(),
            });
        }
    }

    // --- Deployment validity (reference arm). ----------------------------
    for (i, d) in reference.deployments.iter().enumerate() {
        if let Some(d) = d {
            check_deployment(&format!("q{i}"), d, env, catalog, &mut violations);
        }
    }

    let small = env.network.len() <= EXACT_CHECK_MAX_NODES;

    // --- Cost bounds against the exact optimum. --------------------------
    if small {
        guarded(CheckId::CostBound, &mut violations, || {
            let mut out = Vec::new();
            for (i, q) in queries.iter().enumerate() {
                let mut stats = SearchStats::new();
                let opt = match Optimal::new(env).try_optimize(
                    catalog,
                    q,
                    &mut ReuseRegistry::new(),
                    &mut stats,
                ) {
                    Ok(d) => Some(d),
                    // The flat yardstick plans over singleton inputs, so
                    // its reachable-set budget caps out far below the
                    // hierarchical optimizers (which merge through coarse
                    // fragment inputs). A typed width refusal means "no
                    // yardstick here", not "infeasible" — the heuristics
                    // may still legitimately plan the query.
                    Err(PlacementError::UniverseTooLarge { .. }) => continue,
                    Err(_) => None,
                };
                let td =
                    TopDown::new(env).optimize(catalog, q, &mut ReuseRegistry::new(), &mut stats);
                let bu =
                    BottomUp::new(env).optimize(catalog, q, &mut ReuseRegistry::new(), &mut stats);
                let Some(opt) = opt else {
                    if td.is_some() || bu.is_some() {
                        out.push(format!(
                            "q{i}: optimal infeasible but a heuristic found a deployment"
                        ));
                    }
                    continue;
                };
                let eps = 1e-6 * opt.cost.max(1.0);
                if let Some(td) = &td {
                    if td.cost < opt.cost - eps {
                        out.push(format!(
                            "q{i}: top-down {} beat optimal {}",
                            td.cost, opt.cost
                        ));
                    }
                    let gap_bound = bounds::theorem3_bound(td, &env.hierarchy);
                    if td.cost - opt.cost > gap_bound + eps {
                        out.push(format!(
                            "q{i}: top-down gap {} exceeds Theorem-3 bound {gap_bound}",
                            td.cost - opt.cost
                        ));
                    }
                }
                if let Some(bu) = &bu {
                    if bu.cost < opt.cost - eps {
                        out.push(format!(
                            "q{i}: bottom-up {} beat optimal {}",
                            bu.cost, opt.cost
                        ));
                    }
                }
                // The zone baseline must stay feasible and suboptimal too.
                let zones = dsq_baselines::InNetwork::new(env, 3.min(env.network.len()));
                let runner = dsq_baselines::InNetworkRunner { zones: &zones, env };
                if let Some(inw) =
                    runner.optimize(catalog, q, &mut ReuseRegistry::new(), &mut stats)
                {
                    if inw.cost < opt.cost - eps {
                        out.push(format!(
                            "q{i}: in-network {} beat optimal {}",
                            inw.cost, opt.cost
                        ));
                    }
                }
            }
            out
        })
        .into_iter()
        .flatten()
        .for_each(|detail| {
            violations.push(Violation {
                check: CheckId::CostBound,
                detail,
            })
        });
    }

    // --- Theorem 1: level-k estimates bound true distances. --------------
    if small {
        let thm1 = guarded(CheckId::Theorem1, &mut violations, || {
            let h = &env.hierarchy;
            let nodes = h.active_nodes();
            for level in 1..=h.height() {
                let slack = h.theorem1_slack(level);
                for (i, &a) in nodes.iter().enumerate() {
                    for &b in nodes.iter().skip(i + 1) {
                        let act = env.dm.get(a, b);
                        let est = h.estimated_cost(&env.dm, a, b, level);
                        if (act - est).abs() > slack + 1e-9 {
                            return Some(format!(
                                "level {level}: |{act} - {est}| > slack {slack} for {a},{b}"
                            ));
                        }
                    }
                }
            }
            None
        });
        if let Some(Some(detail)) = thm1 {
            violations.push(Violation {
                check: CheckId::Theorem1,
                detail,
            });
        }
    }

    // --- Restricted placement, including after churn. --------------------
    guarded(CheckId::Restricted, &mut violations, || {
        check_restricted(case, env, catalog, queries)
    })
    .into_iter()
    .flatten()
    .for_each(|detail| {
        violations.push(Violation {
            check: CheckId::Restricted,
            detail,
        })
    });

    // --- Containment-based operator reuse. -------------------------------
    guarded(CheckId::Reuse, &mut violations, || {
        check_reuse(case, env, catalog, queries, small)
    })
    .into_iter()
    .flatten()
    .for_each(|detail| {
        violations.push(Violation {
            check: CheckId::Reuse,
            detail,
        })
    });

    // --- Incremental replanning equivalence after a seeded drift. --------
    guarded(CheckId::Incremental, &mut violations, || {
        check_incremental(case, env, catalog, queries)
    })
    .into_iter()
    .flatten()
    .for_each(|detail| {
        violations.push(Violation {
            check: CheckId::Incremental,
            detail,
        })
    });

    // --- Lossy-protocol retry accounting. --------------------------------
    guarded(CheckId::Protocol, &mut violations, || {
        check_protocol(case, env, &reference)
    })
    .into_iter()
    .flatten()
    .for_each(|detail| {
        violations.push(Violation {
            check: CheckId::Protocol,
            detail,
        })
    });

    // --- Migration break-even consistency. -------------------------------
    guarded(CheckId::Migration, &mut violations, || {
        check_migration(case, env, catalog, queries, &reference)
    })
    .into_iter()
    .flatten()
    .for_each(|detail| {
        violations.push(Violation {
            check: CheckId::Migration,
            detail,
        })
    });

    // --- Chaos arms over the fault schedule. -----------------------------
    if !schedule.faults.is_empty() && reference.planned() > 0 {
        // Every degrade event must repair identically to a full rebuild.
        guarded(CheckId::Chaos, &mut violations, || {
            check_degrade_repair(env, schedule)
        })
        .into_iter()
        .flatten()
        .for_each(|detail| {
            violations.push(Violation {
                check: CheckId::Chaos,
                detail,
            })
        });

        let chaos_arm = |cache: bool, invalidation: InvalidationMode| {
            let runner = ChaosRunner {
                policy: if case.drop_milli == 0 {
                    RetryPolicy::reliable()
                } else {
                    RetryPolicy::lossy(case.drop_milli as f64 / 1000.0)
                },
                protocol_seed: case.seed,
                threshold: 0.2,
                cache,
                invalidation,
            };
            runner.run(env.clone(), catalog, queries, schedule)
        };
        let scoped = guarded(CheckId::Chaos, &mut violations, || {
            chaos_arm(true, InvalidationMode::Scoped)
        });
        let flush = guarded(CheckId::Chaos, &mut violations, || {
            chaos_arm(true, InvalidationMode::Flush)
        });
        let nocache = guarded(CheckId::Chaos, &mut violations, || {
            chaos_arm(false, InvalidationMode::Scoped)
        });
        if let (Some(s), Some(f), Some(n)) = (&scoped, &flush, &nocache) {
            for (other, what) in [(f, "scoped vs flush"), (n, "scoped vs cache-off")] {
                if let Some(d) = diff_chaos(s, other, what) {
                    violations.push(Violation {
                        check: CheckId::Chaos,
                        detail: d,
                    });
                }
            }
            // Conservation: the scoped arm's cache traffic must account for
            // at least one miss per planning invocation that produced the
            // initial installs, and retirement only happens with faults.
            if s.cache_hits + s.cache_misses == 0 {
                violations.push(Violation {
                    check: CheckId::Chaos,
                    detail: "scoped chaos arm recorded no cache traffic".into(),
                });
            }
        }
    }

    violations
}

/// Per degrade event in the schedule, the incremental single-link repair
/// (`DistanceMatrix::repaired_after_link_change` — the server's live
/// `Degrade` path) must reproduce a from-scratch rebuild bit for bit.
fn check_degrade_repair(env: &Environment, schedule: &FaultSchedule) -> Vec<String> {
    let mut out = Vec::new();
    let mut net = env.network.clone();
    let mut dm = env.dm.clone();
    for (idx, tf) in schedule.faults.iter().enumerate() {
        let Fault::DegradeLink { a, b, factor } = &tf.fault else {
            continue;
        };
        let Some(link) = net.find_link(*a, *b) else {
            continue;
        };
        let old_w = dm.metric().weight(link);
        let new_cost = link.cost * factor;
        net.set_link_cost(*a, *b, new_cost);
        let (inc, _) = dm.repaired_after_link_change(&net, *a, *b, old_w);
        let full = DistanceMatrix::build(&net, dm.metric());
        'cmp: for i in 0..net.len() {
            for j in 0..net.len() {
                let (x, y) = (NodeId(i as u32), NodeId(j as u32));
                if inc.get(x, y).to_bits() != full.get(x, y).to_bits() {
                    out.push(format!(
                        "degrade event {idx} ({a}-{b} x{factor}): incremental repair diverged \
                         from rebuild at ({i},{j}): {} vs {}",
                        inc.get(x, y),
                        full.get(x, y)
                    ));
                    break 'cmp;
                }
            }
        }
        dm = full;
    }
    out
}

/// Restricted-placement checks: candidate-set containment, empty and
/// fully-inactive candidate sets, and planning after membership churn.
fn check_restricted(
    case: &FuzzCase,
    env: &Environment,
    catalog: &Catalog,
    queries: &[Query],
) -> Vec<String> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut out = Vec::new();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(case.seed ^ 0x5EED_F00D);
    let q = &queries[0];

    // Empty candidate set: must be a typed error, not an arbitrary plan.
    match Optimal::restricted(env, &[]).try_optimize(
        catalog,
        q,
        &mut ReuseRegistry::new(),
        &mut SearchStats::new(),
    ) {
        Err(PlacementError::NoCandidates) => {}
        Err(e) => out.push(format!("empty candidate set: unexpected error {e:?}")),
        Ok(_) => out.push("empty candidate set produced a deployment".into()),
    }

    // Random subset: any deployment's join operators stay inside it.
    let mut nodes = env.hierarchy.active_nodes();
    nodes.shuffle(&mut rng);
    let subset: Vec<NodeId> = nodes
        .iter()
        .copied()
        .take((nodes.len() / 3).max(1))
        .collect();
    if let Some(d) = Optimal::restricted(env, &subset).optimize(
        catalog,
        q,
        &mut ReuseRegistry::new(),
        &mut SearchStats::new(),
    ) {
        for &ji in &d.plan.join_indices() {
            let at = d.placement[ji];
            if !subset.contains(&at) {
                out.push(format!(
                    "restricted plan placed a join at {at}, outside the candidate set"
                ));
            }
        }
    }

    // Churn: deactivate a few nodes (never a stream origin or the probe
    // query's sink, so the query itself stays placeable), then demand that
    // a candidate set made entirely of the churned-out nodes is rejected
    // and that planning over them is refused rather than stale.
    let mut churned = env.clone();
    churned.isolate_cache(false);
    let protected: Vec<NodeId> = catalog
        .streams()
        .iter()
        .map(|s| s.node)
        .chain(queries.iter().map(|q| q.sink))
        .collect();
    let mut removed = Vec::new();
    for &n in nodes.iter() {
        if removed.len() >= 3 || churned.hierarchy.active_nodes().len() <= 3 {
            break;
        }
        if protected.contains(&n) {
            continue;
        }
        if dsq_hierarchy::membership::remove_node(&mut churned.hierarchy, &churned.dm, n).is_ok() {
            removed.push(n);
        }
    }
    if !removed.is_empty() {
        match Optimal::restricted(&churned, &removed).try_optimize(
            catalog,
            q,
            &mut ReuseRegistry::new(),
            &mut SearchStats::new(),
        ) {
            Err(PlacementError::NoActiveCandidates) => {}
            Err(e) => out.push(format!(
                "fully-inactive candidate set: unexpected error {e:?}"
            )),
            Ok(_) => out.push("planned against a fully-inactive candidate set".into()),
        }
        // A mixed set must only ever use the still-active members.
        let mut mixed = removed.clone();
        mixed.extend(churned.hierarchy.active_nodes());
        if let Some(d) = Optimal::restricted(&churned, &mixed).optimize(
            catalog,
            q,
            &mut ReuseRegistry::new(),
            &mut SearchStats::new(),
        ) {
            for &ji in &d.plan.join_indices() {
                let at = d.placement[ji];
                if removed.contains(&at) {
                    out.push(format!("churned node {at} still hosts a join operator"));
                }
            }
        }
        // The zone baseline must survive churn without touching dead nodes.
        let zones = dsq_baselines::InNetwork::new(&churned, 3.min(churned.network.len()));
        let runner = dsq_baselines::InNetworkRunner {
            zones: &zones,
            env: &churned,
        };
        if let Some(d) = runner.optimize(
            catalog,
            q,
            &mut ReuseRegistry::new(),
            &mut SearchStats::new(),
        ) {
            for &ji in &d.plan.join_indices() {
                let at = d.placement[ji];
                if !churned.hierarchy.is_active(at) {
                    out.push(format!(
                        "in-network zone search placed a join on inactive {at}"
                    ));
                }
            }
        }
    }
    out
}

/// Ids of the adverts the probe serves for `query` under a liveness view
/// (in id order, as the probe emits them).
fn served_ids(
    reg: &mut ReuseRegistry,
    query: &Query,
    is_active: impl Fn(NodeId) -> bool,
) -> Vec<dsq_query::DerivedId> {
    reg.usable_for_live(query, is_active)
        .into_iter()
        .map(|l| match l {
            LeafSource::Derived { id, .. } => id,
            LeafSource::Base(_) => unreachable!("reuse probes only yield derived leaves"),
        })
        .collect()
}

/// Containment-based reuse plus the advert lifecycle invariants.
///
/// Every derived-stream leaf a planner consumes must be backed by a *live*
/// advertisement whose covered set is contained in the consuming query's
/// own source set (and covers at least two streams, hosted where it was
/// advertised, on a currently active node) — the paper's
/// reuse-compatibility rule under the registry's lifecycle. Under churn,
/// neither the probe nor a full planning pass may serve an advert hosted
/// on a removed node, and rejoin restores exactly the pre-churn candidate
/// set. A budgeted registry must keep its live set within the budget with
/// conserved `AdvertStats`, and an effectively-unbounded budget must leave
/// planner output bit-identical to the budget-free registry. Against the
/// exact yardstick, planning with the advertisement registry can never
/// cost more than planning without it: reuse only ever *adds* planner
/// inputs, so disabling it must not lower cost.
fn check_reuse(
    case: &FuzzCase,
    env: &Environment,
    catalog: &Catalog,
    queries: &[Query],
    small: bool,
) -> Vec<String> {
    use dsq_core::consolidate::deploy_all;
    use dsq_query::AdvertState;
    let mut out = Vec::new();

    // Containment, across every optimizer arm that can consume adverts.
    // Each query plans against the registry state its predecessors left,
    // exactly as the incremental-batch experiments deploy.
    let td = TopDown::new(env);
    let bu = BottomUp::new(env);
    let opt = Optimal::new(env);
    let mut arms: Vec<(&str, &dyn Optimizer)> = vec![("top-down", &td), ("bottom-up", &bu)];
    if small {
        arms.push(("optimal", &opt));
    }
    for (name, optimizer) in arms {
        let mut reg = ReuseRegistry::new();
        let batch = deploy_all(optimizer, catalog, queries, &mut reg, true);
        for (i, d) in batch.deployments.iter().enumerate() {
            let Some(d) = d else { continue };
            let sources = queries[i].source_set();
            for (ni, node) in d.plan.nodes().iter().enumerate() {
                let FlatNode::Leaf {
                    source:
                        LeafSource::Derived {
                            id, covered, host, ..
                        },
                    ..
                } = node
                else {
                    continue;
                };
                if covered.len() < 2 {
                    out.push(format!(
                        "{name} q{i}: derived leaf {ni} covers fewer than 2 streams"
                    ));
                }
                if !covered.is_subset_of(&sources) {
                    out.push(format!(
                        "{name} q{i}: derived leaf {ni} covers {covered:?}, which is not \
                         contained in the query's sources {sources:?}"
                    ));
                }
                match reg.derived(*id) {
                    None => out.push(format!(
                        "{name} q{i}: derived leaf {ni} references advert {id:?} the \
                         registry never issued"
                    )),
                    Some(adv) => {
                        if adv.covered != *covered || adv.host != *host {
                            out.push(format!(
                                "{name} q{i}: derived leaf {ni} disagrees with its advertisement \
                                 (leaf {covered:?}@{host}, advert {:?}@{})",
                                adv.covered, adv.host
                            ));
                        }
                        if reg.state(*id) != Some(AdvertState::Live) {
                            out.push(format!(
                                "{name} q{i}: derived leaf {ni} consumes advert {id:?} in state \
                                 {:?}, not Live",
                                reg.state(*id)
                            ));
                        }
                        if !env.hierarchy.is_active(*host) {
                            out.push(format!(
                                "{name} q{i}: derived leaf {ni} consumes a derived stream \
                                 hosted on inactive node {host}"
                            ));
                        }
                    }
                }
            }
        }
    }

    // Lifecycle under churn: crash a couple of advert hosts out of the
    // overlay, then (a) the probe must stop serving their adverts, (b) a
    // full planning pass on the churned overlay must not consume a derived
    // stream hosted on an inactive node, and (c) rejoining the hosts must
    // restore exactly the pre-churn candidate set.
    {
        let mut reg = ReuseRegistry::new();
        let _ = deploy_all(&td, catalog, queries, &mut reg, true);
        let protected: Vec<NodeId> = catalog
            .streams()
            .iter()
            .map(|s| s.node)
            .chain(queries.iter().map(|q| q.sink))
            .collect();
        let hosts: std::collections::BTreeSet<NodeId> = reg.deriveds().map(|d| d.host).collect();
        let before: Vec<Vec<dsq_query::DerivedId>> = queries
            .iter()
            .map(|q| served_ids(&mut reg.clone(), q, |_| true))
            .collect();
        let mut churned = env.clone();
        churned.isolate_cache(false);
        let mut removed: Vec<NodeId> = Vec::new();
        for &n in &hosts {
            if removed.len() >= 2 || churned.hierarchy.active_nodes().len() <= 3 {
                break;
            }
            if protected.contains(&n) {
                continue;
            }
            if dsq_hierarchy::membership::remove_node(&mut churned.hierarchy, &churned.dm, n)
                .is_ok()
            {
                removed.push(n);
            }
        }
        if !removed.is_empty() {
            for (i, q) in queries.iter().enumerate() {
                let mut probe = reg.clone();
                let live_view = |n: NodeId| churned.hierarchy.is_active(n);
                for id in served_ids(&mut probe, q, live_view) {
                    let host = probe.derived(id).expect("served advert resolves").host;
                    if removed.contains(&host) {
                        out.push(format!(
                            "q{i}: usable_for served advert {id:?} hosted on churned-out {host}"
                        ));
                    }
                }
            }
            let td_churned = TopDown::new(&churned);
            for (i, q) in queries.iter().enumerate() {
                let mut r = reg.clone();
                let Some(d) = td_churned.optimize(catalog, q, &mut r, &mut SearchStats::new())
                else {
                    continue;
                };
                for node in d.plan.nodes() {
                    if let FlatNode::Leaf {
                        source: LeafSource::Derived { host, .. },
                        ..
                    } = node
                    {
                        if !churned.hierarchy.is_active(*host) {
                            out.push(format!(
                                "q{i}: churned top-down consumed a derived stream hosted on \
                                 inactive node {host}"
                            ));
                        }
                    }
                }
            }
            // Rejoin every removed host (via its nearest active member) and
            // demand the candidate set is exactly what it was before churn.
            for &n in &removed {
                let via = *churned
                    .hierarchy
                    .active_nodes()
                    .iter()
                    .min_by(|&&a, &&b| {
                        churned
                            .dm
                            .get(a, n)
                            .total_cmp(&churned.dm.get(b, n))
                            .then(a.0.cmp(&b.0))
                    })
                    .expect("overlay is never empty");
                dsq_hierarchy::membership::add_node(&mut churned.hierarchy, &churned.dm, n, via);
            }
            for (i, q) in queries.iter().enumerate() {
                let mut probe = reg.clone();
                let live_view = |n: NodeId| churned.hierarchy.is_active(n);
                let after = served_ids(&mut probe, q, live_view);
                if after != before[i] {
                    out.push(format!(
                        "q{i}: rejoin did not restore the candidate set: {before:?} before \
                         churn, {after:?} after rejoin",
                        before = before[i]
                    ));
                }
            }
        }
    }

    // Budgeted registry: the live set respects the budget, the lifecycle
    // counters conserve, and every consumed derived leaf still resolves
    // (stable ids survive eviction).
    {
        let budget = if case.advert_budget > 0 {
            case.advert_budget
        } else {
            2
        };
        let mut breg = ReuseRegistry::with_budget(budget);
        let batch = deploy_all(&td, catalog, queries, &mut breg, true);
        if breg.live_len() > budget {
            out.push(format!(
                "budget {budget}: live advert count {} exceeds it",
                breg.live_len()
            ));
        }
        let s = breg.stats();
        if !s.conserved() {
            out.push(format!(
                "budget {budget}: advert stats violate conservation: published={} \
                 live={} retired={} evicted={}",
                s.published, s.live, s.retired, s.evicted
            ));
        }
        for d in batch.deployments.iter().flatten() {
            for node in d.plan.nodes() {
                if let FlatNode::Leaf {
                    source: LeafSource::Derived { id, .. },
                    ..
                } = node
                {
                    if breg.derived(*id).is_none() {
                        out.push(format!(
                            "budget {budget}: consumed advert {id:?} no longer resolves"
                        ));
                    }
                }
            }
        }

        // An effectively-unbounded budget must be indistinguishable from
        // the budget-free registry: bit-identical costs and placements.
        let mut r1 = ReuseRegistry::new();
        let b1 = deploy_all(&td, catalog, queries, &mut r1, true);
        let mut r2 = ReuseRegistry::with_budget(usize::MAX);
        let b2 = deploy_all(&td, catalog, queries, &mut r2, true);
        for (i, (d1, d2)) in b1.deployments.iter().zip(&b2.deployments).enumerate() {
            let same = match (d1, d2) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    a.cost.to_bits() == b.cost.to_bits() && a.placement == b.placement
                }
                _ => false,
            };
            if !same {
                out.push(format!(
                    "q{i}: huge advert budget changed planner output vs unbounded registry"
                ));
            }
        }
    }

    // Cost invariant, exact yardstick only: heuristics give no ordering
    // guarantee under a changed input set, the DP does.
    if !small {
        return out;
    }
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    for (i, q) in queries.iter().enumerate() {
        let with = Optimal::new(env).try_optimize(catalog, q, &mut reg, &mut stats);
        let without =
            Optimal::new(env).try_optimize(catalog, q, &mut ReuseRegistry::new(), &mut stats);
        // Adverts add planner inputs, so the with-reuse universe can blow
        // the DP's width budget where the base-only one does not. A typed
        // width refusal on either side means "no yardstick here".
        if matches!(with, Err(PlacementError::UniverseTooLarge { .. }))
            || matches!(without, Err(PlacementError::UniverseTooLarge { .. }))
        {
            if let Ok(d) = with {
                reg.register_deployment(q, &d);
            }
            continue;
        }
        match (with, without) {
            (Ok(w), Ok(wo)) => {
                let eps = 1e-6 * wo.cost.abs().max(1.0);
                if w.cost > wo.cost + eps {
                    out.push(format!(
                        "q{i}: reuse raised the optimal cost: {} with adverts vs {} without",
                        w.cost, wo.cost
                    ));
                }
                reg.register_deployment(q, &w);
            }
            (Err(e), Ok(_)) => {
                out.push(format!(
                    "q{i}: infeasible with adverts but feasible without ({e:?})"
                ));
            }
            // Reuse may make a base-infeasible query plannable (an advert
            // shrinks the universe); the converse is checked above.
            (Ok(w), Err(_)) => {
                reg.register_deployment(q, &w);
            }
            (Err(_), Err(_)) => {}
        }
    }
    out
}

/// Three-way service differential over the case's generated request script
/// and crash schedule:
///
/// * **uncrashed** — journaled, snapshots forced off (so the journal stays
///   complete for the replay arm), under a virtual-clock obs sink;
/// * **crashed** — [`dsq_server::run_with_crashes`] with the case's own
///   snapshot cadence, killed at every scheduled journal index;
/// * **replay** — [`dsq_server::PlanningService::recover_from_path`] over
///   the uncrashed run's journal, under a second virtual-clock sink.
///
/// All three must agree on responses, fingerprints and epochs. On top of
/// the differential, the uncrashed run's responses must conserve the
/// admission counters (admitted + shed + rejected = mutating requests),
/// drain epochs must strictly increase, stale answers must point at
/// strictly older epochs (and never appear under an unbounded replan
/// budget), the journal must account for every entry, and the replay's obs
/// trace must be byte-identical to the live one.
/// Stats responses embed the `recovery_replayed` counter, which
/// legitimately differs between an uncrashed run and one that crashed and
/// recovered; mask the field before comparing arms (the service
/// fingerprint excludes it for the same reason).
fn mask_recovery(resp: &str) -> String {
    match resp.find(",\"recovery_replayed\":") {
        Some(start) => {
            let tail = &resp[start + 1..];
            let end = tail
                .find([',', '}'])
                .map(|e| start + 1 + e)
                .unwrap_or(resp.len());
            format!("{}{}", &resp[..start], &resp[end..])
        }
        None => resp.to_string(),
    }
}

fn check_service(case: &FuzzCase) -> Vec<String> {
    use dsq_obs::mini_json::{self, Json};
    use dsq_obs::{scoped, ClockMode, Sink};
    use dsq_server::{run_with_crashes, PlanningService, Request, ServiceConfig};

    let mut out = Vec::new();
    let lines = case.service_script();
    if lines.is_empty() {
        return out;
    }
    let cfg = case.service_config();

    // Scratch dir unique to this oracle invocation: campaigns and shrink
    // loops run the oracle thousands of times in one process.
    static DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dsq-fuzz-service-{}-{seq}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return vec![format!("cannot create scratch dir: {e}")];
    }

    // --- Arm 1: journaled, uncrashed, snapshots off. ---------------------
    let live_path = dir.join("live.journal");
    let nosnap = ServiceConfig {
        snapshot_every: 0,
        ..cfg.clone()
    };
    let live_sink = Sink::new(ClockMode::Virtual);
    let live = {
        let _g = scoped(live_sink.clone());
        match PlanningService::new(nosnap, Some(&live_path)) {
            Ok(mut svc) => {
                let responses: Vec<String> = lines.iter().map(|l| svc.submit_line(l)).collect();
                Ok((responses, svc))
            }
            Err(e) => Err(format!("cannot start journaled service: {e}")),
        }
    };
    let (responses, live_svc) = match live {
        Ok(v) => v,
        Err(e) => {
            std::fs::remove_dir_all(&dir).ok();
            return vec![e];
        }
    };
    let live_trace = live_sink.to_jsonl();
    let live_fp = live_svc.fingerprint();
    let live_epoch = live_svc.core().epoch;
    let live_len = live_svc.journal_len();
    let counters = live_svc.core().counters.clone();

    // Journal conservation: every journaled entry is either applied by a
    // drain, still queued, or a shed marker awaiting the next drain's fold.
    let accounted =
        live_svc.core().entries_applied + live_svc.queue_len() + live_svc.core().pending_shed;
    if accounted != live_len {
        out.push(format!(
            "journal accounting leak: applied {} + queued {} + pending shed {} != journaled {live_len}",
            live_svc.core().entries_applied,
            live_svc.queue_len(),
            live_svc.core().pending_shed,
        ));
    }

    // --- Response-level invariants on the uncrashed run. -----------------
    let mut admitted_acks = 0u64;
    let mut shed_acks = 0u64;
    let mut rejected_acks = 0u64;
    let mut mutating = 0u64;
    let mut drain_count = 0u64;
    let mut timed_out_sum = 0u64;
    let mut last_drain_epoch = None::<u64>;
    for (line, resp) in lines.iter().zip(&responses) {
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                out.push(format!(
                    "generated script line failed to parse: {e} ({line})"
                ));
                continue;
            }
        };
        let Ok(json) = mini_json::parse(resp) else {
            out.push(format!("unparseable response {resp:?}"));
            continue;
        };
        let ok = matches!(json.get("ok"), Some(Json::Bool(true)));
        let num = |key: &str| match json.get(key) {
            Some(Json::Num(n)) => Some(*n as u64),
            _ => None,
        };
        match &req {
            Request::Drain { .. } => {
                if !ok {
                    out.push(format!("drain rejected: {resp}"));
                    continue;
                }
                drain_count += 1;
                timed_out_sum += num("timed_out").unwrap_or(0);
                let epoch = num("epoch").unwrap_or(0);
                if let Some(prev) = last_drain_epoch {
                    if epoch <= prev {
                        out.push(format!(
                            "drain epochs not strictly increasing: {prev} then {epoch}"
                        ));
                    }
                }
                last_drain_epoch = Some(epoch);
            }
            Request::Query { .. } => {
                // Unknown ids (shed or never-registered) answer with a
                // typed error; successful answers keep the staleness
                // contract: a stale plan comes from a strictly older epoch.
                if ok {
                    let stale = matches!(json.get("stale"), Some(Json::Bool(true)));
                    let epoch = num("epoch").unwrap_or(0);
                    let planned = num("planned_epoch").unwrap_or(0);
                    if stale && planned >= epoch {
                        out.push(format!(
                            "stale plan from a non-older epoch: planned {planned}, \
                             current {epoch} ({resp})"
                        ));
                    }
                    if stale && cfg.replan_budget == 0 {
                        out.push(format!(
                            "stale plan served under an unbounded replan budget ({resp})"
                        ));
                    }
                }
            }
            Request::Stats => {}
            _ => {
                mutating += 1;
                if ok {
                    admitted_acks += 1;
                } else if resp.contains("overloaded") {
                    shed_acks += 1;
                } else {
                    rejected_acks += 1;
                }
            }
        }
    }
    if counters.admitted != admitted_acks {
        out.push(format!(
            "admitted counter {} != ok-acked mutating requests {admitted_acks}",
            counters.admitted
        ));
    }
    if counters.shed != shed_acks {
        out.push(format!(
            "shed counter {} != overloaded responses {shed_acks}",
            counters.shed
        ));
    }
    if admitted_acks + shed_acks + rejected_acks != mutating {
        out.push(format!(
            "admission accounting leak: {admitted_acks} admitted + {shed_acks} shed \
             + {rejected_acks} rejected != {mutating} mutating requests"
        ));
    }
    if counters.drains != drain_count {
        out.push(format!(
            "drain counter {} != drain requests {drain_count}",
            counters.drains
        ));
    }
    if counters.timed_out != timed_out_sum {
        out.push(format!(
            "timed_out counter {} != sum of drain timeouts {timed_out_sum}",
            counters.timed_out
        ));
    }
    if cfg.replan_budget == 0 && counters.stale_served != 0 {
        out.push(format!(
            "stale_served counter {} under an unbounded replan budget",
            counters.stale_served
        ));
    }

    // --- Arm 2: crashed-and-recovered, with the case's snapshot cadence. -
    let schedule = case.service_crashes(&lines);
    let crash_path = dir.join("crash.journal");
    match run_with_crashes(&cfg, &lines, &schedule, &crash_path) {
        Ok(crashed) => {
            // Kill points beyond the final journal length can never fire
            // (validation rejections journal nothing); every reachable one
            // must.
            let reachable = schedule.kill_at.iter().filter(|&&k| k <= live_len).count();
            if crashed.kills != reachable {
                out.push(format!(
                    "crash arm executed {} kills, schedule has {reachable} reachable points",
                    crashed.kills
                ));
            }
            let masked: Vec<String> = responses.iter().map(|r| mask_recovery(r)).collect();
            let crashed_masked: Vec<String> =
                crashed.responses.iter().map(|r| mask_recovery(r)).collect();
            if crashed_masked != masked {
                let at = crashed_masked.iter().zip(&masked).position(|(a, b)| a != b);
                let detail = at
                    .map(|i| {
                        format!(
                            "index {i} ({}): {} vs {}",
                            lines[i], responses[i], crashed.responses[i]
                        )
                    })
                    .unwrap_or_else(|| "length mismatch".into());
                out.push(format!(
                    "crashed run's responses diverged from uncrashed at {detail}"
                ));
            }
            if crashed.fingerprint != live_fp {
                out.push(format!(
                    "crashed run's fingerprint diverged\nuncrashed:\n{live_fp}\ncrashed:\n{}",
                    crashed.fingerprint
                ));
            }
            if crashed.final_epoch != live_epoch {
                out.push(format!(
                    "crashed run's epoch {} != uncrashed {live_epoch}",
                    crashed.final_epoch
                ));
            }
        }
        Err(e) => out.push(format!("crash arm failed: {e}")),
    }

    // --- Arm 3: pure journal replay of the uncrashed run's journal. ------
    drop(live_svc); // release the journal file before re-opening it
    let replay_sink = Sink::new(ClockMode::Virtual);
    let replayed = {
        let _g = scoped(replay_sink.clone());
        PlanningService::recover_from_path(&live_path)
    };
    match replayed {
        Ok(svc) => {
            if svc.fingerprint() != live_fp {
                out.push(format!(
                    "journal replay diverged\nlive:\n{live_fp}\nreplayed:\n{}",
                    svc.fingerprint()
                ));
            }
            // Replay re-drives every entry through the live code path, so
            // its trace is the live trace plus recovery accounting lines.
            let replay_trace: String = replay_sink
                .to_jsonl()
                .lines()
                .filter(|l| !l.contains("server.recovery_replay"))
                .map(|l| format!("{l}\n"))
                .collect();
            if replay_trace != live_trace {
                let diverged = replay_trace
                    .lines()
                    .zip(live_trace.lines())
                    .find(|(a, b)| a != b)
                    .map(|(a, b)| format!("replay {a:?} vs live {b:?}"))
                    .unwrap_or_else(|| "trace length mismatch".into());
                out.push(format!(
                    "replay obs trace is not byte-identical to the live trace: {diverged}"
                ));
            }
        }
        Err(e) => out.push(format!("journal replay failed: {e}")),
    }

    std::fs::remove_dir_all(&dir).ok();
    out
}

/// Incremental-vs-full equivalence after one seeded link-cost drift.
fn check_incremental(
    case: &FuzzCase,
    env: &Environment,
    catalog: &Catalog,
    queries: &[Query],
) -> Vec<String> {
    let mut out = Vec::new();
    // Warm a private cache with the standing deployments.
    let mut warm_env = env.clone();
    warm_env.isolate_cache(true);
    let cfg = ParallelConfig::serial();
    let td = TopDown::new(&warm_env);
    let warm = optimize_all(
        &warm_env,
        &td,
        catalog,
        queries,
        &ReuseRegistry::new(),
        &cfg,
    );
    if warm.planned() == 0 {
        return out;
    }
    // Seeded drift: pick one physical link and multiply its cost 8x.
    let links: Vec<(NodeId, NodeId)> = warm_env
        .network
        .nodes()
        .flat_map(|u| {
            warm_env
                .network
                .neighbors(u)
                .iter()
                .filter(move |l| u < l.to)
                .map(move |l| (u, l.to))
        })
        .collect();
    if links.is_empty() {
        return out;
    }
    let (a, b) = links[(case.seed as usize) % links.len()];
    let old_cost = warm_env
        .network
        .find_link(a, b)
        .map(|l| l.cost)
        .unwrap_or(1.0);

    // Incremental arm: scoped retirement + dirty-set replanning over the
    // warmed cache.
    let mut inc_env = warm_env.clone();
    assert!(inc_env.network.set_link_cost(a, b, old_cost * 8.0));
    inc_env.dm = DistanceMatrix::build(&inc_env.network, Metric::Cost);
    let dirty = metric_dirty_nodes(&warm_env.dm, &inc_env.dm);
    inc_env.hierarchy.refresh_statistics(&inc_env.dm);
    inc_env.plan_cache.retire_metric(&warm_env.dm, &inc_env.dm);
    let td_inc = TopDown::new(&inc_env);
    let inc = optimize_dirty(
        &inc_env,
        &td_inc,
        catalog,
        queries,
        &warm.deployments,
        &dirty,
        &ReuseRegistry::new(),
        &cfg,
    );

    // Full arm: same drifted world, fresh cache, replan everything.
    let mut full_env = inc_env.clone();
    full_env.isolate_cache(true);
    let td_full = TopDown::new(&full_env);
    let full = optimize_all(
        &full_env,
        &td_full,
        catalog,
        queries,
        &ReuseRegistry::new(),
        &cfg,
    );

    let fp_inc = fingerprint_deployments(&inc);
    let fp_full = fingerprint_deployments(&full);
    if fp_inc != fp_full {
        out.push(format!(
            "drift on link {a}-{b} (x8): incremental diverged from full replan\nfull:\n{fp_full}\nincremental:\n{fp_inc}"
        ));
    }
    out
}

/// Lossy-protocol retry accounting: a zero-drop protocol reproduces the
/// reliable model bit-for-bit regardless of seed, every send's timeout wait
/// is exactly the exponential-backoff series for its observed retry count,
/// and certain loss exhausts the whole retry budget without delivering.
fn check_protocol(
    case: &FuzzCase,
    env: &Environment,
    reference: &MultiQueryOutcome,
) -> Vec<String> {
    let mut out = Vec::new();
    let Some(d) = reference.deployments.iter().flatten().next() else {
        return out;
    };
    let model = EmulabModel::new(&env.network);
    let stats = &reference.stats;
    let submit = d.sink;

    // The reliable model never retries and never waits out a timeout.
    let reliable = model.deployment_time(submit, stats, d);
    if reliable.retries != 0 || reliable.retry_ms != 0.0 {
        out.push(format!(
            "reliable model charged retries: {} retries, {} retry_ms",
            reliable.retries, reliable.retry_ms
        ));
    }

    // Zero drop is bit-exact against the reliable model — the RNG must
    // never be consulted, so two different seeds have to agree too.
    for seed in [case.seed, case.seed ^ 0xDEAD_BEEF] {
        let mut zero = LossyProtocol::new(model.clone(), RetryPolicy::lossy(0.0), seed);
        let (t, delivered) = zero.deployment_time(submit, stats, d);
        if !delivered {
            out.push(format!(
                "zero-drop protocol failed a deployment (seed {seed})"
            ));
        }
        if t.messaging_ms.to_bits() != reliable.messaging_ms.to_bits()
            || t.planning_ms.to_bits() != reliable.planning_ms.to_bits()
            || t.retry_ms != 0.0
            || t.retries != 0
        {
            out.push(format!(
                "zero-drop diverged from reliable (seed {seed}): messaging {} vs {}, \
                 planning {} vs {}, retry_ms {}, retries {}",
                t.messaging_ms,
                reliable.messaging_ms,
                t.planning_ms,
                reliable.planning_ms,
                t.retry_ms,
                t.retries
            ));
        }
    }

    let nodes = env.hierarchy.active_nodes();
    if nodes.len() < 2 {
        return out;
    }

    // Seeded mid-range drop rate: per-send wait accounting. A send that
    // succeeded after r retries timed out exactly r times; one that gave up
    // timed out max_retries + 1 times (the initial attempt plus every
    // retry). Either way the wait is the backoff series over the drops.
    let milli = match case.drop_milli {
        0 => 500,
        m if m >= 1000 => 875,
        m => m,
    };
    let policy = RetryPolicy::lossy(milli as f64 / 1000.0);
    let backoff_series = |drops: usize| -> f64 {
        (0..drops)
            .map(|i| policy.timeout_ms * policy.backoff.powi(i as i32))
            .sum()
    };
    let mut lossy = LossyProtocol::new(model.clone(), policy, case.seed);
    for s in 0..24usize {
        let from = nodes[s % nodes.len()];
        let to = nodes[(s + 1) % nodes.len()];
        let got = lossy.send(from, to);
        let drops = if got.delivered {
            got.retries
        } else {
            got.retries + 1
        };
        let want = backoff_series(drops);
        if (got.wait_ms - want).abs() > 1e-9 * want.max(1.0) {
            out.push(format!(
                "send {from}->{to}: wait {} ms inconsistent with {} retries \
                 (delivered {}, backoff series says {want})",
                got.wait_ms, got.retries, got.delivered
            ));
        }
        if got.delivered {
            if got.retries > policy.max_retries {
                out.push(format!(
                    "send {from}->{to}: delivered after {} retries, cap is {}",
                    got.retries, policy.max_retries
                ));
            }
            if got.transit_ms <= 0.0 {
                out.push(format!(
                    "send {from}->{to}: delivered but paid no transit time"
                ));
            }
        } else {
            if got.retries != policy.max_retries {
                out.push(format!(
                    "send {from}->{to}: gave up after {} retries, budget is {}",
                    got.retries, policy.max_retries
                ));
            }
            if got.transit_ms != 0.0 {
                out.push(format!(
                    "send {from}->{to}: undelivered send charged {} ms transit",
                    got.transit_ms
                ));
            }
        }
    }

    // Certain loss: the whole budget is burned, nothing is delivered,
    // nothing transits.
    let certain = RetryPolicy::lossy(1.0);
    let mut doomed = LossyProtocol::new(model, certain, case.seed);
    let got = doomed.send(nodes[0], nodes[1]);
    let want: f64 = (0..=certain.max_retries)
        .map(|i| certain.timeout_ms * certain.backoff.powi(i as i32))
        .sum();
    if got.delivered || got.transit_ms != 0.0 || got.retries != certain.max_retries {
        out.push(format!(
            "certain loss: delivered {}, transit {} ms, retries {} (cap {})",
            got.delivered, got.transit_ms, got.retries, certain.max_retries
        ));
    }
    if (got.wait_ms - want).abs() > 1e-9 * want {
        out.push(format!(
            "certain loss burned {} ms of timeouts, want the full budget {want}",
            got.wait_ms
        ));
    }
    out
}

/// Migration break-even consistency: self-migrations are free, and for a
/// replan after a seeded link drift every priced migration keeps its
/// arithmetic straight — moves actually move, the transfer cost re-prices
/// from its own moves, the break-even time exists iff the saving is
/// positive (and equals transfer/saving), and `worthwhile` is monotone in
/// the horizon.
fn check_migration(
    case: &FuzzCase,
    env: &Environment,
    catalog: &Catalog,
    queries: &[Query],
    reference: &MultiQueryOutcome,
) -> Vec<String> {
    let mut out = Vec::new();
    let window = 0.5;

    // Self-migration is free for every standing deployment.
    for d in reference.deployments.iter().flatten() {
        let m = plan_migration(d, d, &env.dm, window);
        if !m.moves.is_empty()
            || m.fresh_operators != 0
            || m.retired_operators != 0
            || m.state_transfer_cost != 0.0
            || m.steady_state_saving != 0.0
            || m.breakeven_time().is_some()
            || m.worthwhile(1e18)
        {
            out.push(format!(
                "self-migration of query {:?} is not free: {} moves, {} fresh, {} retired, \
                 transfer {}, saving {}",
                d.query,
                m.moves.len(),
                m.fresh_operators,
                m.retired_operators,
                m.state_transfer_cost,
                m.steady_state_saving
            ));
        }
    }

    // Drift one link 8x (a different link than the incremental check picks)
    // and fully replan: migrating old -> new exercises non-trivial plans.
    let mut drift_env = env.clone();
    drift_env.isolate_cache(true);
    let links: Vec<(NodeId, NodeId)> = drift_env
        .network
        .nodes()
        .flat_map(|u| {
            drift_env
                .network
                .neighbors(u)
                .iter()
                .filter(move |l| u < l.to)
                .map(move |l| (u, l.to))
        })
        .collect();
    if links.is_empty() {
        return out;
    }
    let (a, b) = links[(case.seed.rotate_left(17) as usize) % links.len()];
    let old_cost = drift_env
        .network
        .find_link(a, b)
        .map(|l| l.cost)
        .unwrap_or(1.0);
    assert!(drift_env.network.set_link_cost(a, b, old_cost * 8.0));
    drift_env.dm = DistanceMatrix::build(&drift_env.network, Metric::Cost);
    drift_env.hierarchy.refresh_statistics(&drift_env.dm);
    let td = TopDown::new(&drift_env);
    let cfg = ParallelConfig::serial();
    let drifted = optimize_all(
        &drift_env,
        &td,
        catalog,
        queries,
        &ReuseRegistry::new(),
        &cfg,
    );

    for (old, new) in reference.deployments.iter().zip(&drifted.deployments) {
        let (Some(old), Some(new)) = (old, new) else {
            continue;
        };
        let m = plan_migration(old, new, &drift_env.dm, window);
        let mut priced = 0.0;
        for mv in &m.moves {
            if mv.from == mv.to {
                out.push(format!(
                    "query {:?}: migration move stays in place at {}",
                    old.query, mv.from
                ));
            }
            if !mv.state_size.is_finite() || mv.state_size < 0.0 {
                out.push(format!(
                    "query {:?}: bad moved-state size {}",
                    old.query, mv.state_size
                ));
            }
            priced += mv.state_size * drift_env.dm.get(mv.from, mv.to);
        }
        if !m.state_transfer_cost.is_finite() || m.state_transfer_cost < 0.0 {
            out.push(format!(
                "query {:?}: bad state-transfer cost {}",
                old.query, m.state_transfer_cost
            ));
        }
        if (priced - m.state_transfer_cost).abs() > 1e-9 * priced.max(1.0) {
            out.push(format!(
                "query {:?}: transfer cost {} does not re-price from its moves ({priced})",
                old.query, m.state_transfer_cost
            ));
        }
        match m.breakeven_time() {
            Some(t) => {
                if m.steady_state_saving <= 0.0 {
                    out.push(format!(
                        "query {:?}: break-even {t} with non-positive saving {}",
                        old.query, m.steady_state_saving
                    ));
                }
                if !t.is_finite() || t < 0.0 {
                    out.push(format!("query {:?}: bad break-even time {t}", old.query));
                } else {
                    let paid = t * m.steady_state_saving;
                    if (paid - m.state_transfer_cost).abs() > 1e-9 * m.state_transfer_cost.max(1.0)
                    {
                        out.push(format!(
                            "query {:?}: break-even {t} x saving {} != transfer {}",
                            old.query, m.steady_state_saving, m.state_transfer_cost
                        ));
                    }
                    if !m.worthwhile(t) {
                        out.push(format!(
                            "query {:?}: migration not worthwhile at its own break-even {t}",
                            old.query
                        ));
                    }
                    let mut last = None;
                    for h in [0.0, t * 0.5, t, t * 2.0, 1e15] {
                        let w = m.worthwhile(h);
                        if last == Some(true) && !w {
                            out.push(format!(
                                "query {:?}: worthwhile flipped back off at horizon {h}",
                                old.query
                            ));
                        }
                        last = Some(w);
                    }
                }
            }
            None => {
                if m.steady_state_saving > 0.0 {
                    out.push(format!(
                        "query {:?}: positive saving {} but no break-even time",
                        old.query, m.steady_state_saving
                    ));
                }
                if m.worthwhile(1e18) {
                    out.push(format!(
                        "query {:?}: worthwhile without a break-even time",
                        old.query
                    ));
                }
            }
        }
    }
    out
}
