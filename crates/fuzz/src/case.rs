//! A fuzz case: the complete, self-contained recipe for one random
//! instance — topology shape, hierarchy granularity, workload mix and
//! fault schedule — plus the shrinker's keep-masks.
//!
//! A case is pure data. [`FuzzCase::build`] materializes it into an
//! [`Instance`] deterministically (everything downstream is seeded), so a
//! case file alone reproduces a failure bit-for-bit. The text form is a
//! line-based `key = value` format with `#` comments, stable enough to
//! check into `tests/regressions/`.

use dsq_core::Environment;
use dsq_net::TransitStubConfig;
use dsq_sim::chaos::{FaultConfig, FaultSchedule};
use dsq_workload::{Workload, WorkloadConfig, WorkloadGenerator};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// One self-contained fuzz instance recipe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// Seed driving topology, workload and schedule generation.
    pub seed: u64,
    /// Transit domains of the transit-stub topology.
    pub transit_domains: usize,
    /// Transit nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains per transit node.
    pub stub_domains_per_transit_node: usize,
    /// Nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Hierarchy cluster-size cap.
    pub max_cs: usize,
    /// Base streams in the catalog.
    pub streams: usize,
    /// Queries generated (before the keep-mask).
    pub queries: usize,
    /// Minimum joins per query.
    pub joins_lo: usize,
    /// Maximum joins per query.
    pub joins_hi: usize,
    /// Zipf skew of the source draw, in thousandths (0 = uniform).
    pub skew_milli: u64,
    /// Fault-schedule events generated (before the keep-mask).
    pub events: usize,
    /// Deployment-protocol drop probability, in thousandths.
    pub drop_milli: u64,
    /// Reuse-registry advert budget the reuse oracle runs its bounded arm
    /// under (`0` = use the oracle's default small budget). Also forwarded
    /// to the service configuration of service-mode cases.
    pub advert_budget: usize,
    /// Query indexes kept by the shrinker (`None` = all).
    pub keep_queries: Option<Vec<usize>>,
    /// Fault-event indexes kept by the shrinker (`None` = all).
    pub keep_events: Option<Vec<usize>>,
    /// Canonicalize the generated statistics: round every stream rate and
    /// pairwise selectivity to one significant digit after generation.
    /// Set by the shrinker so minimized repros carry round numbers; the
    /// oracle re-check keeps the substitution sound.
    pub round_stats: bool,
    /// Service mode: the case additionally generates a request script plus
    /// a crash schedule and runs the `CheckId::Service` differential
    /// (uncrashed vs crashed-and-recovered vs journal-only replay). All
    /// `svc_*` fields below are meaningful only when this is set; a case
    /// with `service` off is byte-identical to a pre-service case.
    pub service: bool,
    /// Queries registered by the service script.
    pub svc_queries: usize,
    /// Forced replans in the script.
    pub svc_replans: usize,
    /// Unregistrations in the script.
    pub svc_unregisters: usize,
    /// Mutating requests per drain wave.
    pub svc_batch: usize,
    /// Read-only probes (`query`/`stats`) in the script.
    pub svc_reads: usize,
    /// Fault events on the script's fault timeline.
    pub svc_events: usize,
    /// Admission bound on queued mutating requests (small values force
    /// shedding, which is exactly the accounting the oracle checks).
    pub svc_max_queue: usize,
    /// Replans per drain wave before stale serving (0 = unbounded).
    pub svc_replan_budget: usize,
    /// Default per-request deadline at drain time (0 = none).
    pub svc_deadline_ms: u64,
    /// Snapshot every N drains in the crashed arm (0 = never).
    pub svc_snapshot_every: usize,
    /// Crash points drawn for the crash schedule.
    pub svc_kills: usize,
    /// Script line indexes kept by the shrinker (`None` = all).
    pub keep_requests: Option<Vec<usize>>,
    /// Crash-point indexes kept by the shrinker (`None` = all).
    pub keep_kills: Option<Vec<usize>>,
}

/// A materialized case: environment, workload and fault schedule.
pub struct Instance {
    /// Fresh environment (private cache, all nodes active).
    pub env: Environment,
    /// Catalog plus the (keep-masked) query batch.
    pub workload: Workload,
    /// The (keep-masked) fault timeline.
    pub schedule: FaultSchedule,
}

impl Default for FuzzCase {
    /// The parse-time defaults: the smallest valid planner case, service
    /// mode off, service knobs at the values a hand-written service case
    /// most likely wants.
    fn default() -> FuzzCase {
        FuzzCase {
            seed: 0,
            transit_domains: 1,
            transit_nodes_per_domain: 1,
            stub_domains_per_transit_node: 1,
            stub_nodes_per_domain: 2,
            max_cs: 4,
            streams: 4,
            queries: 1,
            joins_lo: 1,
            joins_hi: 2,
            skew_milli: 0,
            events: 0,
            drop_milli: 0,
            advert_budget: 0,
            keep_queries: None,
            keep_events: None,
            round_stats: false,
            service: false,
            svc_queries: 4,
            svc_replans: 2,
            svc_unregisters: 1,
            svc_batch: 4,
            svc_reads: 0,
            svc_events: 4,
            svc_max_queue: 4,
            svc_replan_budget: 0,
            svc_deadline_ms: 0,
            svc_snapshot_every: 0,
            svc_kills: 2,
            keep_requests: None,
            keep_kills: None,
        }
    }
}

impl FuzzCase {
    /// Like [`FuzzCase::sample`], but with probability `wide_milli`/1000
    /// the case instead draws a **wide** universe — queries joining 33+
    /// streams, past any one-word bitmask — exercising the engine's sparse
    /// reachable-set path and its typed `UniverseTooLarge` refusal — and
    /// with probability `service_milli`/1000 a **service** case carrying a
    /// request script and crash schedule. With both knobs 0 this is
    /// byte-identical to `sample` (the RNG is not consulted for either
    /// draw).
    pub fn sample_with(
        rng: &mut ChaCha8Rng,
        max_nodes: usize,
        wide_milli: u64,
        service_milli: u64,
    ) -> FuzzCase {
        if service_milli > 0 && rng.gen_bool((service_milli as f64 / 1000.0).min(1.0)) {
            return Self::sample_service(rng, max_nodes);
        }
        if wide_milli > 0 && rng.gen_bool((wide_milli as f64 / 1000.0).min(1.0)) {
            return Self::sample_wide(rng, max_nodes);
        }
        Self::sample(rng, max_nodes)
    }

    /// A service-mode case: a modest topology and planner workload (the
    /// planner checks still run, fast) plus a request script, admission
    /// knobs drawn small enough that shedding and budget-stale serving
    /// actually happen, and a seeded crash schedule.
    fn sample_service(rng: &mut ChaCha8Rng, max_nodes: usize) -> FuzzCase {
        loop {
            let joins_lo = rng.gen_range(1..=2);
            let joins_hi = rng.gen_range(joins_lo..=3);
            let case = FuzzCase {
                seed: rng.gen_range(0..u64::MAX),
                transit_domains: 1,
                transit_nodes_per_domain: rng.gen_range(1..=2),
                stub_domains_per_transit_node: rng.gen_range(1..=3),
                stub_nodes_per_domain: rng.gen_range(2..=5),
                max_cs: rng.gen_range(2..=8),
                streams: rng.gen_range(joins_hi + 2..=10),
                queries: rng.gen_range(1..=2),
                joins_lo,
                joins_hi,
                skew_milli: 0,
                events: rng.gen_range(0..=4),
                drop_milli: 0,
                service: true,
                svc_queries: rng.gen_range(1..=6),
                svc_replans: rng.gen_range(0..=3),
                svc_unregisters: rng.gen_range(0..=2),
                svc_batch: rng.gen_range(1..=5),
                svc_reads: rng.gen_range(0..=4),
                svc_events: rng.gen_range(0..=6),
                svc_max_queue: rng.gen_range(1..=8),
                svc_replan_budget: rng.gen_range(0..=3),
                svc_deadline_ms: if rng.gen_bool(0.5) {
                    0
                } else {
                    rng.gen_range(100..=2_000)
                },
                svc_snapshot_every: rng.gen_range(0..=3),
                svc_kills: rng.gen_range(0..=4),
                ..FuzzCase::default()
            };
            if case.total_nodes() <= max_nodes && case.total_nodes() >= 4 {
                return case;
            }
        }
    }

    /// A >32-atom universe case: one or two queries joining 33–40 streams.
    /// Kept lean elsewhere (no skew, no drops, few faults) so oracle time
    /// goes into the planning width, which is the point.
    fn sample_wide(rng: &mut ChaCha8Rng, max_nodes: usize) -> FuzzCase {
        loop {
            let joins_lo = rng.gen_range(32..=35);
            let joins_hi = rng.gen_range(joins_lo..=39);
            let case = FuzzCase {
                seed: rng.gen_range(0..u64::MAX),
                transit_domains: 1,
                transit_nodes_per_domain: rng.gen_range(1..=2),
                stub_domains_per_transit_node: rng.gen_range(1..=3),
                stub_nodes_per_domain: rng.gen_range(2..=6),
                max_cs: rng.gen_range(2..=6),
                streams: rng.gen_range(joins_hi + 1..=joins_hi + 8),
                queries: rng.gen_range(1..=2),
                joins_lo,
                joins_hi,
                skew_milli: 0,
                events: rng.gen_range(0..=6),
                drop_milli: 0,
                ..FuzzCase::default()
            };
            if case.total_nodes() <= max_nodes && case.total_nodes() >= 4 {
                return case;
            }
        }
    }

    /// Draw a random case from the generator ranges, keeping the topology
    /// under `max_nodes` total nodes.
    pub fn sample(rng: &mut ChaCha8Rng, max_nodes: usize) -> FuzzCase {
        loop {
            let joins_lo = rng.gen_range(1..=2);
            let joins_hi = rng.gen_range(joins_lo..=4);
            let case = FuzzCase {
                seed: rng.gen_range(0..u64::MAX),
                transit_domains: rng.gen_range(1..=2),
                transit_nodes_per_domain: rng.gen_range(1..=3),
                stub_domains_per_transit_node: rng.gen_range(1..=3),
                stub_nodes_per_domain: rng.gen_range(2..=6),
                max_cs: rng.gen_range(2..=12),
                streams: rng.gen_range(joins_hi + 2..=12),
                queries: rng.gen_range(1..=6),
                joins_lo,
                joins_hi,
                skew_milli: if rng.gen_bool(0.5) {
                    0
                } else {
                    rng.gen_range(500..=1500)
                },
                events: rng.gen_range(0..=12),
                drop_milli: if rng.gen_bool(0.5) {
                    0
                } else {
                    rng.gen_range(50..=200)
                },
                ..FuzzCase::default()
            };
            if case.total_nodes() <= max_nodes && case.total_nodes() >= 4 {
                return case;
            }
        }
    }

    /// Total node count of the case's topology.
    pub fn total_nodes(&self) -> usize {
        self.topology_config().total_nodes()
    }

    fn topology_config(&self) -> TransitStubConfig {
        TransitStubConfig {
            transit_domains: self.transit_domains,
            transit_nodes_per_domain: self.transit_nodes_per_domain,
            stub_domains_per_transit_node: self.stub_domains_per_transit_node,
            stub_nodes_per_domain: self.stub_nodes_per_domain,
            ..TransitStubConfig::default()
        }
    }

    /// Number of queries surviving the keep-mask.
    pub fn live_queries(&self) -> usize {
        self.keep_queries.as_ref().map_or(self.queries, |k| k.len())
    }

    /// Number of fault events surviving the keep-mask.
    pub fn live_events(&self) -> usize {
        self.keep_events.as_ref().map_or(self.events, |k| k.len())
    }

    /// Materialize the case. Deterministic: two builds of the same case
    /// produce identical networks, workloads and schedules.
    pub fn build(&self) -> Instance {
        let net = self.topology_config().generate(self.seed).network;
        let env = Environment::build(net, self.max_cs);
        let mut workload = WorkloadGenerator::new(
            WorkloadConfig {
                streams: self.streams,
                queries: self.queries,
                joins_per_query: self.joins_lo..=self.joins_hi,
                source_skew: if self.skew_milli == 0 {
                    None
                } else {
                    Some(self.skew_milli as f64 / 1000.0)
                },
                ..WorkloadConfig::default()
            },
            self.seed,
        )
        .generate(&env.network);
        if let Some(keep) = &self.keep_queries {
            workload.queries = keep
                .iter()
                .filter_map(|&i| workload.queries.get(i).cloned())
                .collect();
        }
        if self.round_stats {
            canonicalize_statistics(&mut workload.catalog);
        }
        let mut schedule = FaultSchedule::generate(
            &env,
            &FaultConfig {
                events: self.events,
                mean_gap_ms: 1_000.0,
                ..FaultConfig::default()
            },
            // Decorrelate the schedule stream from topology/workload while
            // staying a pure function of the case seed.
            self.seed ^ 0x9E37_79B9_7F4A_7C15,
        );
        if let Some(keep) = &self.keep_events {
            schedule.faults = keep
                .iter()
                .filter_map(|&i| schedule.faults.get(i).cloned())
                .collect();
        }
        Instance {
            env,
            workload,
            schedule,
        }
    }

    /// Serialize to the `.case` text form (round-trips via [`parse`]).
    ///
    /// [`parse`]: FuzzCase::parse
    pub fn to_text(&self, comment: &str) -> String {
        let mut out = String::from("# dsq-fuzz case v1\n");
        for line in comment.lines() {
            out.push_str(&format!("# {line}\n"));
        }
        let mut kv = |k: &str, v: String| out.push_str(&format!("{k} = {v}\n"));
        kv("seed", self.seed.to_string());
        kv("transit_domains", self.transit_domains.to_string());
        kv(
            "transit_nodes_per_domain",
            self.transit_nodes_per_domain.to_string(),
        );
        kv(
            "stub_domains_per_transit_node",
            self.stub_domains_per_transit_node.to_string(),
        );
        kv(
            "stub_nodes_per_domain",
            self.stub_nodes_per_domain.to_string(),
        );
        kv("max_cs", self.max_cs.to_string());
        kv("streams", self.streams.to_string());
        kv("queries", self.queries.to_string());
        kv("joins_lo", self.joins_lo.to_string());
        kv("joins_hi", self.joins_hi.to_string());
        kv("skew_milli", self.skew_milli.to_string());
        kv("events", self.events.to_string());
        kv("drop_milli", self.drop_milli.to_string());
        if self.advert_budget > 0 {
            kv("advert_budget", self.advert_budget.to_string());
        }
        if let Some(k) = &self.keep_queries {
            kv("keep_queries", join_indexes(k));
        }
        if let Some(k) = &self.keep_events {
            kv("keep_events", join_indexes(k));
        }
        if self.round_stats {
            kv("round_stats", "1".into());
        }
        if self.service {
            kv("service", "1".into());
            kv("svc_queries", self.svc_queries.to_string());
            kv("svc_replans", self.svc_replans.to_string());
            kv("svc_unregisters", self.svc_unregisters.to_string());
            kv("svc_batch", self.svc_batch.to_string());
            kv("svc_reads", self.svc_reads.to_string());
            kv("svc_events", self.svc_events.to_string());
            kv("svc_max_queue", self.svc_max_queue.to_string());
            kv("svc_replan_budget", self.svc_replan_budget.to_string());
            kv("svc_deadline_ms", self.svc_deadline_ms.to_string());
            kv("svc_snapshot_every", self.svc_snapshot_every.to_string());
            kv("svc_kills", self.svc_kills.to_string());
            if let Some(k) = &self.keep_requests {
                kv("keep_requests", join_indexes(k));
            }
            if let Some(k) = &self.keep_kills {
                kv("keep_kills", join_indexes(k));
            }
        }
        out
    }

    /// Parse the `.case` text form written by [`to_text`].
    ///
    /// [`to_text`]: FuzzCase::to_text
    pub fn parse(text: &str) -> Result<FuzzCase, String> {
        let mut case = FuzzCase::default();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`: {raw:?}", ln + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let as_usize =
                |v: &str| -> Result<usize, String> { v.parse().map_err(|e| format!("{key}: {e}")) };
            let as_u64 =
                |v: &str| -> Result<u64, String> { v.parse().map_err(|e| format!("{key}: {e}")) };
            match key {
                "seed" => case.seed = as_u64(value)?,
                "transit_domains" => case.transit_domains = as_usize(value)?,
                "transit_nodes_per_domain" => case.transit_nodes_per_domain = as_usize(value)?,
                "stub_domains_per_transit_node" => {
                    case.stub_domains_per_transit_node = as_usize(value)?
                }
                "stub_nodes_per_domain" => case.stub_nodes_per_domain = as_usize(value)?,
                "max_cs" => case.max_cs = as_usize(value)?,
                "streams" => case.streams = as_usize(value)?,
                "queries" => case.queries = as_usize(value)?,
                "joins_lo" => case.joins_lo = as_usize(value)?,
                "joins_hi" => case.joins_hi = as_usize(value)?,
                "skew_milli" => case.skew_milli = as_u64(value)?,
                "events" => case.events = as_u64(value)? as usize,
                "drop_milli" => case.drop_milli = as_u64(value)?,
                "advert_budget" => case.advert_budget = as_usize(value)?,
                "keep_queries" => case.keep_queries = Some(parse_indexes(value)?),
                "keep_events" => case.keep_events = Some(parse_indexes(value)?),
                "round_stats" => case.round_stats = as_u64(value)? != 0,
                "service" => case.service = as_u64(value)? != 0,
                "svc_queries" => case.svc_queries = as_usize(value)?,
                "svc_replans" => case.svc_replans = as_usize(value)?,
                "svc_unregisters" => case.svc_unregisters = as_usize(value)?,
                "svc_batch" => case.svc_batch = as_usize(value)?,
                "svc_reads" => case.svc_reads = as_usize(value)?,
                "svc_events" => case.svc_events = as_usize(value)?,
                "svc_max_queue" => case.svc_max_queue = as_usize(value)?,
                "svc_replan_budget" => case.svc_replan_budget = as_usize(value)?,
                "svc_deadline_ms" => case.svc_deadline_ms = as_u64(value)?,
                "svc_snapshot_every" => case.svc_snapshot_every = as_usize(value)?,
                "svc_kills" => case.svc_kills = as_usize(value)?,
                "keep_requests" => case.keep_requests = Some(parse_indexes(value)?),
                "keep_kills" => case.keep_kills = Some(parse_indexes(value)?),
                other => return Err(format!("line {}: unknown key {other:?}", ln + 1)),
            }
        }
        if case.transit_domains == 0
            || case.transit_nodes_per_domain == 0
            || case.stub_nodes_per_domain == 0
        {
            return Err("topology shape must be nonzero".into());
        }
        if case.joins_lo == 0 || case.joins_hi < case.joins_lo {
            return Err("joins range must satisfy 1 <= joins_lo <= joins_hi".into());
        }
        if case.streams <= case.joins_hi {
            return Err("need at least joins_hi + 1 streams".into());
        }
        if case.max_cs < 2 {
            return Err("max_cs must be at least 2".into());
        }
        if case.service {
            if case.svc_queries == 0 {
                return Err("service cases need svc_queries >= 1".into());
            }
            if case.svc_batch == 0 {
                return Err("service cases need svc_batch >= 1".into());
            }
            if case.svc_max_queue == 0 {
                return Err("service cases need svc_max_queue >= 1".into());
            }
        }
        Ok(case)
    }

    /// The service configuration a service-mode case runs under, sharing
    /// the case's topology/catalog shape with the planner checks.
    pub fn service_config(&self) -> dsq_server::ServiceConfig {
        dsq_server::ServiceConfig {
            seed: self.seed,
            transit_domains: self.transit_domains,
            transit_nodes_per_domain: self.transit_nodes_per_domain,
            stub_domains_per_transit_node: self.stub_domains_per_transit_node,
            stub_nodes_per_domain: self.stub_nodes_per_domain,
            max_cs: self.max_cs,
            streams: self.streams,
            max_queue: self.svc_max_queue,
            default_deadline_ms: self.svc_deadline_ms,
            replan_budget: self.svc_replan_budget,
            snapshot_every: self.svc_snapshot_every,
            advert_budget: self.advert_budget,
            ..dsq_server::ServiceConfig::default()
        }
    }

    /// The (keep-masked) request script of a service-mode case. The mask
    /// indexes the *generated* lines, so dropping any subset — drains
    /// included — still yields a protocol-valid script.
    pub fn service_script(&self) -> Vec<String> {
        let script = dsq_server::chaos::ScriptConfig {
            seed: self.seed,
            queries: self.svc_queries,
            replans: self.svc_replans,
            unregisters: self.svc_unregisters,
            batch: self.svc_batch,
            reads: self.svc_reads,
            faults: FaultConfig {
                events: self.svc_events,
                mean_gap_ms: 500.0,
                ..FaultConfig::default()
            },
            ..dsq_server::chaos::ScriptConfig::default()
        };
        let lines = dsq_server::generate_script(&self.service_config(), &script);
        match &self.keep_requests {
            Some(keep) => keep.iter().filter_map(|&i| lines.get(i).cloned()).collect(),
            None => lines,
        }
    }

    /// The (keep-masked) crash schedule for `lines`, whose kill points are
    /// journal lengths — drawn against the script's *journaled* line count
    /// (mutating requests and drains; reads never touch the journal).
    pub fn service_crashes(&self, lines: &[String]) -> dsq_server::CrashSchedule {
        let journaled = lines
            .iter()
            .filter(|l| {
                dsq_server::Request::parse(l).is_ok_and(|r| {
                    !matches!(
                        r,
                        dsq_server::Request::Query { .. } | dsq_server::Request::Stats
                    )
                })
            })
            .count();
        let schedule = dsq_server::CrashSchedule::generate(
            // Decorrelated from the script stream, pure in the case seed.
            self.seed ^ 0x5EED_C4A5,
            journaled,
            self.svc_kills,
        );
        match &self.keep_kills {
            Some(keep) => dsq_server::CrashSchedule {
                kill_at: keep
                    .iter()
                    .filter_map(|&i| schedule.kill_at.get(i).copied())
                    .collect(),
            },
            None => schedule,
        }
    }
}

/// Round a positive value to one significant digit (`0.0347 -> 0.03`,
/// `73.4 -> 70`). The result stays positive and finite.
fn round_sig(v: f64) -> f64 {
    if !v.is_finite() || v <= 0.0 {
        return v;
    }
    let mag = 10f64.powf(v.abs().log10().floor());
    let rounded = (v / mag).round().max(1.0) * mag;
    if rounded > 0.0 && rounded.is_finite() {
        rounded
    } else {
        v
    }
}

/// Canonicalize the catalog's statistics: every stream rate and every
/// registered pairwise selectivity is rounded to one significant digit.
/// Only already-registered selectivities are touched (unregistered pairs
/// stay at the implicit 1.0, so the workload's join structure is
/// preserved).
fn canonicalize_statistics(catalog: &mut dsq_query::Catalog) {
    use dsq_query::StreamId;
    let n = catalog.len() as u32;
    for id in 0..n {
        let rate = catalog.stream(StreamId(id)).rate;
        catalog.set_rate(StreamId(id), round_sig(rate));
    }
    for a in 0..n {
        for b in (a + 1)..n {
            let sigma = catalog.selectivity(StreamId(a), StreamId(b));
            if sigma != 1.0 {
                catalog.set_selectivity(StreamId(a), StreamId(b), round_sig(sigma));
            }
        }
    }
}

fn join_indexes(ix: &[usize]) -> String {
    ix.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_indexes(v: &str) -> Result<Vec<usize>, String> {
    if v.is_empty() {
        return Ok(Vec::new());
    }
    v.split(',')
        .map(|s| s.trim().parse().map_err(|e| format!("index list: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn case_text_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let mut case = FuzzCase::sample(&mut rng, 48);
            if rng.gen_bool(0.5) {
                case.keep_queries = Some(vec![0, 2]);
                case.keep_events = Some(vec![]);
            }
            let text = case.to_text("round trip");
            let back = FuzzCase::parse(&text).expect("parse back");
            assert_eq!(case, back);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let case = FuzzCase::sample(&mut rng, 40);
        let a = case.build();
        let b = case.build();
        assert_eq!(a.env.network.len(), b.env.network.len());
        assert_eq!(a.workload.queries.len(), b.workload.queries.len());
        assert_eq!(a.schedule.faults.len(), b.schedule.faults.len());
        for (qa, qb) in a.workload.queries.iter().zip(&b.workload.queries) {
            assert_eq!(qa.sources, qb.sources);
            assert_eq!(qa.sink, qb.sink);
        }
    }

    #[test]
    fn keep_masks_filter_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut case = FuzzCase::sample(&mut rng, 40);
        case.queries = 4;
        case.events = 6;
        case.keep_queries = Some(vec![1, 3]);
        case.keep_events = Some(vec![0, 5]);
        let inst = case.build();
        assert_eq!(inst.workload.queries.len(), 2);
        assert_eq!(inst.schedule.faults.len(), 2);
        let full = FuzzCase {
            keep_queries: None,
            keep_events: None,
            ..case.clone()
        }
        .build();
        assert_eq!(
            inst.workload.queries[0].sources,
            full.workload.queries[1].sources
        );
        assert_eq!(inst.schedule.faults[1].at_ms, full.schedule.faults[5].at_ms);
    }

    #[test]
    fn rejects_malformed_cases() {
        assert!(FuzzCase::parse("seed = x").is_err());
        assert!(FuzzCase::parse("nonsense").is_err());
        assert!(FuzzCase::parse("unknown_key = 3").is_err());
        assert!(FuzzCase::parse("streams = 2\njoins_hi = 4").is_err());
        assert!(FuzzCase::parse("service = 1\nsvc_queries = 0").is_err());
        assert!(FuzzCase::parse("service = 1\nsvc_batch = 0").is_err());
        assert!(FuzzCase::parse("service = 1\nsvc_max_queue = 0").is_err());
    }

    #[test]
    fn service_case_text_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        for _ in 0..25 {
            let mut case = FuzzCase::sample_with(&mut rng, 48, 0, 1000);
            assert!(case.service);
            if rng.gen_bool(0.5) {
                case.keep_requests = Some(vec![0, 3, 4]);
                case.keep_kills = Some(vec![0]);
            }
            let text = case.to_text("service round trip");
            let back = FuzzCase::parse(&text).expect("parse back");
            assert_eq!(case, back);
        }
    }

    #[test]
    fn sampling_without_service_milli_is_unchanged() {
        // The service draw must not consume RNG state when disabled:
        // campaigns from before service mode keep their exact cases.
        let a = FuzzCase::sample_with(&mut ChaCha8Rng::seed_from_u64(5), 48, 50, 0);
        let b = {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            if 50 > 0 && rng.gen_bool(0.05) {
                unreachable!("seed 5 does not draw wide");
            }
            FuzzCase::sample(&mut rng, 48)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn service_script_is_deterministic_and_keep_masked() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let case = FuzzCase::sample_with(&mut rng, 48, 0, 1000);
        let a = case.service_script();
        let b = case.service_script();
        assert_eq!(a, b, "script generation must be pure in the case");
        assert!(!a.is_empty());
        let masked = FuzzCase {
            keep_requests: Some(vec![0, 2]),
            ..case.clone()
        };
        let m = masked.service_script();
        assert_eq!(m.len(), 2.min(a.len()));
        assert_eq!(m[0], a[0]);
        let crashes = case.service_crashes(&a);
        assert_eq!(crashes, case.service_crashes(&a));
        let kill_masked = FuzzCase {
            keep_kills: Some(vec![]),
            ..case.clone()
        };
        assert!(kill_masked.service_crashes(&a).kill_at.is_empty());
    }
}
