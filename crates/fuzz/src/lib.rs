//! `dsq-fuzz` — deterministic differential fuzzer for the planner stack.
//!
//! Three pieces, composed by [`run_campaign`]:
//!
//! * [`case`] — seeded, self-contained instance recipes ([`FuzzCase`]):
//!   transit-stub topologies across parameter ranges, hierarchies at
//!   varying `max_cs`, multi-query SPJ batches with overlapping streams,
//!   and chaos fault schedules. A case serializes to a `.case` text file
//!   that alone reproduces the instance bit-for-bit.
//! * [`oracle`] — one invariant oracle ([`run_oracle`]) through which every
//!   planner arm runs: Top-Down / Bottom-Up / Optimal, serial / parallel,
//!   cache on / off, scoped / flush invalidation, incremental / full.
//! * [`shrink`] — a greedy minimizer ([`shrink`](shrink::shrink)) that
//!   reduces any violation to a minimal repro (drop queries → drop fault
//!   events → shrink topology) suitable for `tests/regressions/`.
//!
//! The whole pipeline is a pure function of the campaign seed; re-running
//! with the same seed reproduces the same findings in the same order.

pub mod case;
pub mod oracle;
pub mod shrink;

pub use case::{FuzzCase, Instance};
pub use oracle::{run_oracle, CheckId, Violation};
pub use shrink::{shrink, shrink_with, ShrinkReport};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::{Path, PathBuf};

/// Campaign knobs (the `dsqctl fuzz` flags).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Seed of the case stream.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub iters: usize,
    /// Ceiling on generated topology size.
    pub max_nodes: usize,
    /// Oracle-invocation budget per shrink.
    pub shrink_budget: usize,
    /// Where minimized repros are written (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Probability, in thousandths, that a case samples a >32-atom (wide)
    /// universe — the regime where one-word bitmask arithmetic used to
    /// overflow. `0` disables wide sampling entirely.
    pub wide_milli: u64,
    /// Probability, in thousandths, that a case samples **service mode** —
    /// a request script plus crash schedule driven through the resident
    /// planning service's three-way differential (`CheckId::Service`).
    /// `0` disables service sampling entirely (and consumes no RNG draws,
    /// so older campaigns replay unchanged).
    pub service_milli: u64,
    /// Reuse-registry advert budget forced on every sampled case (`0` =
    /// leave each case at its own default, where the reuse oracle picks a
    /// small budget for its bounded arm).
    pub advert_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            iters: 200,
            max_nodes: 48,
            shrink_budget: 150,
            out_dir: None,
            wide_milli: 50,
            service_milli: 100,
            advert_budget: 0,
        }
    }
}

/// One campaign finding: the original failing case, its minimized form and
/// the violation that defines it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Iteration index the case came from.
    pub iteration: usize,
    /// The case as generated.
    pub original: FuzzCase,
    /// The case after shrinking (still failing the same check).
    pub minimized: FuzzCase,
    /// The violation observed on the *minimized* case.
    pub violation: Violation,
    /// Repro file path, when `out_dir` was set.
    pub written: Option<PathBuf>,
}

/// Aggregate campaign result.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Cases generated and checked.
    pub iterations: usize,
    /// Every violation, minimized.
    pub findings: Vec<Finding>,
    /// Total oracle invocations (campaign + shrinking).
    pub oracle_runs: usize,
}

impl CampaignOutcome {
    /// Did every case survive the oracle?
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Install a quiet panic hook once: oracle arms convert panics into
/// violations, so the default hook's backtrace spam would drown the
/// campaign log. Call before [`run_campaign`] in CLI contexts.
pub fn silence_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

/// Run a fuzz campaign: sample `iters` cases, run each through the oracle,
/// shrink every violation and (optionally) write the minimized repro as a
/// self-contained `.case` file. `progress` is called once per iteration
/// with `(index, violations_so_far)`.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mut progress: impl FnMut(usize, usize),
) -> std::io::Result<CampaignOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut outcome = CampaignOutcome::default();
    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir)?;
    }
    for i in 0..cfg.iters {
        let mut case =
            FuzzCase::sample_with(&mut rng, cfg.max_nodes, cfg.wide_milli, cfg.service_milli);
        if cfg.advert_budget > 0 {
            case.advert_budget = cfg.advert_budget;
        }
        outcome.iterations += 1;
        outcome.oracle_runs += 1;
        let violations = run_oracle(&case);
        // One finding per distinct check: the same root cause commonly
        // trips several assertions at once.
        let mut seen = std::collections::HashSet::new();
        for v in violations {
            if !seen.insert(v.check) {
                continue;
            }
            let report = shrink::shrink(&case, v.check, cfg.shrink_budget);
            outcome.oracle_runs += report.oracle_runs;
            let minimized = report.case;
            let violation = run_oracle(&minimized)
                .into_iter()
                .find(|m| m.check == v.check)
                .unwrap_or(v);
            outcome.oracle_runs += 1;
            let written = match &cfg.out_dir {
                Some(dir) => Some(write_repro(dir, &minimized, &violation, cfg.seed, i)?),
                None => None,
            };
            outcome.findings.push(Finding {
                iteration: i,
                original: case.clone(),
                minimized,
                violation,
                written,
            });
        }
        progress(i, outcome.findings.len());
    }
    Ok(outcome)
}

/// Write one minimized repro as `<dir>/<check>-<campaign seed>-<iter>.case`
/// with the violation summary inlined as comments.
fn write_repro(
    dir: &Path,
    case: &FuzzCase,
    violation: &Violation,
    campaign_seed: u64,
    iteration: usize,
) -> std::io::Result<PathBuf> {
    let name = format!(
        "{}-{campaign_seed}-{iteration}.case",
        violation.check.slug()
    );
    let path = dir.join(name);
    let comment = format!(
        "minimized repro (campaign seed {campaign_seed}, iteration {iteration})\ncheck: {}\n{}",
        violation.check.slug(),
        violation.detail
    );
    std::fs::write(&path, case.to_text(&comment))?;
    Ok(path)
}

/// Load and verify one `.case` file against the full oracle; used by the
/// `tests/regressions/` corpus runner. Returns the violations (empty =
/// pass).
pub fn verify_case_file(path: &Path) -> Result<Vec<Violation>, String> {
    verify_case_file_check(path, None)
}

/// Like [`verify_case_file`], but optionally keep only one check's
/// violations — the whole oracle still runs (a repro can shift category as
/// the library evolves, and cross-check panics must not be masked), the
/// filter only narrows what is *reported*. Used by `dsqctl fuzz --check`.
pub fn verify_case_file_check(
    path: &Path,
    check: Option<CheckId>,
) -> Result<Vec<Violation>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let case =
        FuzzCase::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let mut violations = run_oracle(&case);
    if let Some(check) = check {
        violations.retain(|v| v.check == check);
    }
    Ok(violations)
}
