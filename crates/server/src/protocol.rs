//! The service's JSONL request protocol.
//!
//! One request per line, one JSON object per request, one JSON response
//! line per request. Parsing uses [`dsq_obs::mini_json`] (the offline
//! workspace has no serde implementation) and response building uses the
//! same escaping as [`dsq_obs::json`], so transcripts are byte-deterministic.
//!
//! Requests:
//!
//! ```json
//! {"op":"register","id":3,"sources":[0,2,5],"sink":7,"at_ms":120,"deadline_ms":500}
//! {"op":"unregister","id":3,"at_ms":900}
//! {"op":"replan","id":3,"at_ms":950}
//! {"op":"fault","kind":"crash","node":5,"at_ms":1200}
//! {"op":"fault","kind":"rejoin","node":5,"at_ms":1300}
//! {"op":"fault","kind":"degrade","a":1,"b":2,"factor_milli":8000,"at_ms":1400}
//! {"op":"drain","at_ms":1500}
//! {"op":"query","id":3}
//! {"op":"stats"}
//! ```
//!
//! `at_ms` is the request's *virtual* arrival time: the service is a
//! deterministic state machine over its input, so clients (and the journal)
//! carry time explicitly rather than reading a wall clock. Deadlines are
//! evaluated against the drain's `at_ms`.

use dsq_obs::mini_json::{self, Json};

/// A node-level fault report delivered to the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultReq {
    /// A physical node crashed.
    Crash(u32),
    /// A previously crashed node rejoined.
    Rejoin(u32),
    /// A link's cost was multiplied by `factor_milli / 1000`.
    Degrade {
        /// Link endpoint.
        a: u32,
        /// Link endpoint.
        b: u32,
        /// Cost multiplier in thousandths (8000 = 8×).
        factor_milli: u64,
    },
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Register a new standing query over catalog streams.
    Register {
        /// Client-chosen query id (must be unused).
        id: u32,
        /// Catalog stream ids the query joins.
        sources: Vec<u32>,
        /// Node results are delivered to.
        sink: u32,
        /// Per-request deadline override (`None` = config default).
        deadline_ms: Option<u64>,
        /// Virtual arrival time.
        at_ms: u64,
    },
    /// Remove a standing query.
    Unregister {
        /// Query id.
        id: u32,
        /// Virtual arrival time.
        at_ms: u64,
    },
    /// Force a replan of a standing query at the next drain.
    Replan {
        /// Query id.
        id: u32,
        /// Per-request deadline override.
        deadline_ms: Option<u64>,
        /// Virtual arrival time.
        at_ms: u64,
    },
    /// Report a node-level fault.
    Fault {
        /// The fault.
        fault: FaultReq,
        /// Virtual arrival time.
        at_ms: u64,
    },
    /// Flush the queue: apply every queued request and run one planning
    /// wave.
    Drain {
        /// Virtual drain time (deadlines are evaluated against this).
        at_ms: u64,
    },
    /// Read-only: current plan hand-off for one query.
    Query {
        /// Query id.
        id: u32,
    },
    /// Read-only: service counters and epoch.
    Stats,
}

impl Request {
    /// Does this request mutate service state (and therefore get journaled
    /// and queued)?
    pub fn is_mutating(&self) -> bool {
        !matches!(self, Request::Query { .. } | Request::Stats)
    }

    /// Is this a new-query registration (shed first under overload)?
    pub fn is_register(&self) -> bool {
        matches!(self, Request::Register { .. })
    }

    /// The protocol op name (echoed in responses).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::Unregister { .. } => "unregister",
            Request::Replan { .. } => "replan",
            Request::Fault { .. } => "fault",
            Request::Drain { .. } => "drain",
            Request::Query { .. } => "query",
            Request::Stats => "stats",
        }
    }

    /// The query id the request targets, if any.
    pub fn id(&self) -> Option<u32> {
        match self {
            Request::Register { id, .. }
            | Request::Unregister { id, .. }
            | Request::Replan { id, .. }
            | Request::Query { id } => Some(*id),
            _ => None,
        }
    }

    /// Parse one JSONL request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let j = mini_json::parse(line)?;
        let op = str_field(&j, "op")?;
        let at = |j: &Json| u64_field(j, "at_ms").unwrap_or(0);
        match op.as_str() {
            "register" => Ok(Request::Register {
                id: u32_field(&j, "id")?,
                sources: u32_list(&j, "sources")?,
                sink: u32_field(&j, "sink")?,
                deadline_ms: opt_u64_field(&j, "deadline_ms"),
                at_ms: at(&j),
            }),
            "unregister" => Ok(Request::Unregister {
                id: u32_field(&j, "id")?,
                at_ms: at(&j),
            }),
            "replan" => Ok(Request::Replan {
                id: u32_field(&j, "id")?,
                deadline_ms: opt_u64_field(&j, "deadline_ms"),
                at_ms: at(&j),
            }),
            "fault" => {
                let kind = str_field(&j, "kind")?;
                let fault = match kind.as_str() {
                    "crash" => FaultReq::Crash(u32_field(&j, "node")?),
                    "rejoin" => FaultReq::Rejoin(u32_field(&j, "node")?),
                    "degrade" => FaultReq::Degrade {
                        a: u32_field(&j, "a")?,
                        b: u32_field(&j, "b")?,
                        factor_milli: u64_field(&j, "factor_milli")?,
                    },
                    other => return Err(format!("unknown fault kind {other:?}")),
                };
                Ok(Request::Fault {
                    fault,
                    at_ms: at(&j),
                })
            }
            "drain" => Ok(Request::Drain { at_ms: at(&j) }),
            "query" => Ok(Request::Query {
                id: u32_field(&j, "id")?,
            }),
            "stats" => Ok(Request::Stats),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

fn str_field(j: &Json, key: &str) -> Result<String, String> {
    match j.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("{key} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn num_field(j: &Json, key: &str) -> Result<f64, String> {
    match j.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        Some(_) => Err(format!("{key} must be a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    let n = num_field(j, key)?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!("{key} must be a nonnegative integer"));
    }
    Ok(n as u64)
}

fn u32_field(j: &Json, key: &str) -> Result<u32, String> {
    let n = u64_field(j, key)?;
    u32::try_from(n).map_err(|_| format!("{key} out of range"))
}

fn opt_u64_field(j: &Json, key: &str) -> Option<u64> {
    u64_field(j, key).ok()
}

fn u32_list(j: &Json, key: &str) -> Result<Vec<u32>, String> {
    match j.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|it| match it {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                    Ok(*n as u32)
                }
                _ => Err(format!("{key} must be an array of stream ids")),
            })
            .collect(),
        Some(_) => Err(format!("{key} must be an array")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Build an error response line.
pub fn resp_error(op: &str, id: Option<u32>, error: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"op\":");
    dsq_obs::json::push_str(&mut out, op);
    if let Some(id) = id {
        out.push_str(&format!(",\"id\":{id}"));
    }
    out.push_str(",\"error\":");
    dsq_obs::json::push_str(&mut out, error);
    out.push('}');
    out
}

/// Build a success response line from pre-rendered `"key":value` pairs.
pub fn resp_ok(op: &str, fields: &[(&str, String)]) -> String {
    let mut out = String::from("{\"ok\":true,\"op\":");
    dsq_obs::json::push_str(&mut out, op);
    for (k, v) in fields {
        out.push(',');
        dsq_obs::json::push_str(&mut out, k);
        out.push(':');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// Render an `f64` exactly as the obs JSON writer would (deterministic).
pub fn render_f64(v: f64) -> String {
    let mut s = String::new();
    dsq_obs::json::push_f64(&mut s, v);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_requests() {
        let r = Request::parse(
            r#"{"op":"register","id":3,"sources":[0,2,5],"sink":7,"at_ms":120,"deadline_ms":500}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Register {
                id: 3,
                sources: vec![0, 2, 5],
                sink: 7,
                deadline_ms: Some(500),
                at_ms: 120
            }
        );
        assert!(Request::parse(r#"{"op":"stats"}"#).unwrap() == Request::Stats);
        let f = Request::parse(
            r#"{"op":"fault","kind":"degrade","a":1,"b":2,"factor_milli":8000,"at_ms":9}"#,
        )
        .unwrap();
        assert_eq!(
            f,
            Request::Fault {
                fault: FaultReq::Degrade {
                    a: 1,
                    b: 2,
                    factor_milli: 8000
                },
                at_ms: 9
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"register","id":-1}"#).is_err());
        assert!(Request::parse(r#"{"op":"warp"}"#).is_err());
        assert!(Request::parse(r#"{"op":"fault","kind":"meteor"}"#).is_err());
    }

    #[test]
    fn responses_are_well_formed_json() {
        let ok = resp_ok("drain", &[("epoch", "3".into()), ("planned", "2".into())]);
        let parsed = mini_json::parse(&ok).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("epoch"), Some(&Json::Num(3.0)));
        let err = resp_error("register", Some(7), "overloaded");
        let parsed = mini_json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("error"), Some(&Json::Str("overloaded".into())));
    }
}
