//! Service snapshots: a compact, textual checkpoint of the core that lets
//! recovery replay only the journal suffix.
//!
//! A snapshot does **not** serialize the environment (networks, distance
//! matrices and hierarchies are large and path-dependent). Instead it
//! stores the recipe: the config plus the fault history, which
//! [`restore`] re-applies — surgery only, via
//! [`crate::state::apply_fault_surgery`] — to a freshly built
//! environment. Deployments are stored as their join-tree shape plus
//! placement; [`Deployment::evaluate`] re-derives edges and cost, and the
//! recorded cost bits are asserted to match, so a snapshot whose
//! environment reconstruction diverged even by one ULP refuses to load
//! rather than silently serving wrong plans.
//!
//! Plans are guaranteed tree-reconstructible because drain waves always
//! plan against a fresh [`dsq_query::ReuseRegistry`] — every plan leaf is
//! a base stream, never a derived operator owned by another query.

use dsq_net::NodeId;
use dsq_query::{
    AdvertStats, Deployment, DerivedId, DerivedStream, FlatNode, FlatPlan, JoinTree, LeafSource,
    OperatorId, Query, QueryId, StreamId, StreamSet,
};

use crate::config::ServiceConfig;
use crate::journal::JournalEntry;
use crate::state::{apply_fault_surgery, QuerySlot, ServiceCore, SlotStatus};

/// Serialize a core (call only with an empty queue, i.e. right after a
/// drain — the service enforces this by snapshotting from the drain path).
pub fn write(core: &ServiceCore) -> String {
    let mut out = String::from("# dsq-server snapshot v1\n");
    out.push_str(&core.cfg.to_lines());
    out.push_str(&format!("epoch = {}\n", core.epoch));
    out.push_str(&format!("now_ms = {}\n", core.now_ms));
    out.push_str(&format!("entries_applied = {}\n", core.entries_applied));
    for (k, v) in core.counters.fields() {
        out.push_str(&format!("counter.{k} = {v}\n"));
    }
    for f in &core.fault_log {
        out.push_str(&format!("fault = {}\n", f.to_line()));
    }
    for (id, slot) in &core.slots {
        let sources: Vec<String> = slot.query.sources.iter().map(|s| s.0.to_string()).collect();
        out.push_str(&format!(
            "slot = id={id} status={} epoch={} stale={} dirty={} sources={} sink={} baseline={:016x}",
            slot.status.name(),
            slot.planned_epoch,
            u8::from(slot.stale),
            u8::from(slot.dirty),
            sources.join(","),
            slot.query.sink.0,
            slot.baseline_cost.to_bits(),
        ));
        if let Some(d) = &slot.deployment {
            let mut tree = String::new();
            render_tree(&d.plan, d.plan.root(), &mut tree);
            let placement: Vec<String> = d.placement.iter().map(|n| n.0.to_string()).collect();
            out.push_str(&format!(
                " cost={:016x} tree={tree} placement={}",
                d.cost.to_bits(),
                placement.join(","),
            ));
        }
        out.push('\n');
    }
    // The advert mirror is serialized verbatim (slot lines in id order plus
    // the scalars): unlike the environment it is cheap, and recovery must
    // reproduce its fingerprint bit-for-bit.
    for adv in core.registry.deriveds() {
        // Service queries are plain joins: adverts carry no selection
        // predicates, which keeps this line losslessly textual.
        assert!(
            adv.selections.is_empty(),
            "service adverts never carry selections"
        );
        let (gone, down, evicted, last) = core
            .registry
            .slot_flags(adv.id)
            .expect("iterating live registry");
        let covered: Vec<String> = adv.covered.iter().map(|s| s.0.to_string()).collect();
        out.push_str(&format!(
            "advert = id={} op={} covered={} rate={:016x} host={} origin={} gone={} down={} evicted={} last={last}\n",
            adv.id.0,
            adv.operator.0,
            covered.join(","),
            adv.rate.to_bits(),
            adv.host.0,
            adv.origin.0,
            u8::from(gone),
            u8::from(down),
            u8::from(evicted),
        ));
    }
    out.push_str(&format!("registry.clock = {}\n", core.registry.clock()));
    out.push_str(&format!(
        "registry.next_operator = {}\n",
        core.registry.next_operator()
    ));
    for (k, v) in core.registry.stats().fields() {
        out.push_str(&format!("advert_stat.{k} = {v}\n"));
    }
    out
}

/// Rebuild a core from [`write`]'s output.
pub fn restore(text: &str) -> Result<ServiceCore, String> {
    let mut config = ServiceConfig::default();
    let mut scalars: Vec<(String, String)> = Vec::new();
    let mut faults: Vec<JournalEntry> = Vec::new();
    let mut slots: Vec<String> = Vec::new();
    let mut adverts: Vec<String> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("snapshot line {}: expected `key = value`", i + 1))?;
        let (key, value) = (key.trim(), value.trim());
        if let Some(ck) = key.strip_prefix("config.") {
            config.set(ck, value)?;
        } else if key == "fault" {
            faults.push(JournalEntry::parse_line(value)?);
        } else if key == "slot" {
            slots.push(value.to_string());
        } else if key == "advert" {
            adverts.push(value.to_string());
        } else {
            scalars.push((key.to_string(), value.to_string()));
        }
    }
    config.validate()?;
    let mut core = ServiceCore::new(config);

    // Re-run the fault surgery in order: the environment is a pure
    // function of (config, fault history).
    for f in faults {
        let JournalEntry::Fault { fault, .. } = &f else {
            return Err("snapshot fault line is not a fault entry".into());
        };
        apply_fault_surgery(&mut core.env, fault);
        core.fault_log.push(f);
    }

    let mut reg_clock = 0u64;
    let mut reg_next_operator = 0u64;
    let mut advert_stats = AdvertStats::default();
    for (key, value) in scalars {
        let parse_u64 =
            |v: &str| -> Result<u64, String> { v.parse().map_err(|e| format!("{key}: {e}")) };
        match key.as_str() {
            "epoch" => core.epoch = parse_u64(&value)?,
            "now_ms" => core.now_ms = parse_u64(&value)?,
            "entries_applied" => core.entries_applied = parse_u64(&value)? as usize,
            "registry.clock" => reg_clock = parse_u64(&value)?,
            "registry.next_operator" => reg_next_operator = parse_u64(&value)?,
            _ => {
                if let Some(ck) = key.strip_prefix("counter.") {
                    core.counters.set(ck, parse_u64(&value)?)?;
                } else if let Some(ak) = key.strip_prefix("advert_stat.") {
                    advert_stats.set(ak, parse_u64(&value)?)?;
                } else {
                    return Err(format!("unknown snapshot key {key:?}"));
                }
            }
        }
    }

    for line in slots {
        let (id, slot) = parse_slot(&line, &core)?;
        core.slots.insert(id, slot);
    }

    for line in adverts {
        restore_advert(&line, &mut core)?;
    }
    core.registry
        .restore_finish(reg_clock, reg_next_operator, advert_stats)?;
    Ok(core)
}

/// Parse one `advert = …` line back into a registry slot.
fn restore_advert(line: &str, core: &mut ServiceCore) -> Result<(), String> {
    let mut fields = std::collections::BTreeMap::new();
    for tok in line.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("advert: expected k=v token, got {tok:?}"))?;
        fields.insert(k.to_string(), v.to_string());
    }
    let get = |k: &str| -> Result<&String, String> {
        fields.get(k).ok_or_else(|| format!("advert: missing {k}"))
    };
    let parse_u64 = |k: &str| -> Result<u64, String> {
        get(k)?.parse().map_err(|e| format!("advert.{k}: {e}"))
    };
    let parse_flag = |k: &str| -> Result<bool, String> {
        match get(k)?.as_str() {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(format!("advert.{k}: expected 0/1, got {other:?}")),
        }
    };
    let covered: Vec<StreamId> = get("covered")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<u32>()
                .map(StreamId)
                .map_err(|e| format!("advert.covered: {e}"))
        })
        .collect::<Result<_, String>>()?;
    let rate = f64::from_bits(
        u64::from_str_radix(get("rate")?, 16).map_err(|e| format!("advert.rate: {e}"))?,
    );
    let stream = DerivedStream {
        id: DerivedId(parse_u64("id")? as u32),
        operator: OperatorId(parse_u64("op")?),
        covered: StreamSet::from_iter(covered),
        selections: Vec::new(),
        rate,
        host: NodeId(parse_u64("host")? as u32),
        origin: QueryId(parse_u64("origin")? as u32),
    };
    core.registry.restore_slot(
        stream,
        parse_flag("gone")?,
        parse_flag("down")?,
        parse_flag("evicted")?,
        parse_u64("last")?,
    )
}

fn parse_slot(line: &str, core: &ServiceCore) -> Result<(u32, QuerySlot), String> {
    let mut fields = std::collections::BTreeMap::new();
    for tok in line.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("slot: expected k=v token, got {tok:?}"))?;
        fields.insert(k.to_string(), v.to_string());
    }
    let get = |k: &str| -> Result<&String, String> {
        fields.get(k).ok_or_else(|| format!("slot: missing {k}"))
    };
    let id: u32 = get("id")?.parse().map_err(|e| format!("slot.id: {e}"))?;
    let status = match get("status")?.as_str() {
        "pending" => SlotStatus::Pending,
        "planned" => SlotStatus::Planned,
        "parked" => SlotStatus::Parked,
        "lost" => SlotStatus::Lost,
        other => return Err(format!("slot.status: unknown {other:?}")),
    };
    let sources: Vec<u32> = get("sources")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|e| format!("slot.sources: {e}")))
        .collect::<Result<_, String>>()?;
    let sink: u32 = get("sink")?
        .parse()
        .map_err(|e| format!("slot.sink: {e}"))?;
    let hex_bits = |k: &str| -> Result<f64, String> {
        Ok(f64::from_bits(
            u64::from_str_radix(get(k)?, 16).map_err(|e| format!("slot.{k}: {e}"))?,
        ))
    };
    let query = Query::join(
        QueryId(id),
        sources.iter().map(|&s| StreamId(s)),
        NodeId(sink),
    );
    let deployment = if let Some(tree_text) = fields.get("tree") {
        let tree = parse_tree(tree_text)?;
        let plan = FlatPlan::from_tree(&tree, &query, &core.catalog);
        let placement: Vec<NodeId> = get("placement")?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<u32>()
                    .map(NodeId)
                    .map_err(|e| format!("slot.placement: {e}"))
            })
            .collect::<Result<_, String>>()?;
        if placement.len() != plan.nodes().len() {
            return Err(format!(
                "slot {id}: placement length {} does not match plan size {}",
                placement.len(),
                plan.nodes().len()
            ));
        }
        let d = Deployment::evaluate(QueryId(id), plan, placement, NodeId(sink), &core.env.dm);
        let recorded = hex_bits("cost")?;
        if d.cost.to_bits() != recorded.to_bits() {
            return Err(format!(
                "slot {id}: reconstructed cost {} != recorded {recorded} — \
                 environment reconstruction diverged, refusing to load",
                d.cost
            ));
        }
        Some(d)
    } else {
        None
    };
    Ok((
        id,
        QuerySlot {
            query,
            deployment,
            status,
            planned_epoch: get("epoch")?
                .parse()
                .map_err(|e| format!("slot.epoch: {e}"))?,
            stale: get("stale")? == "1",
            dirty: get("dirty")? == "1",
            baseline_cost: hex_bits("baseline")?,
        },
    ))
}

/// Render a plan's join tree in the compact `B<id>` / `J(l,r)` grammar.
fn render_tree(plan: &FlatPlan, idx: usize, out: &mut String) {
    match &plan.nodes()[idx] {
        FlatNode::Leaf { source, .. } => match source {
            LeafSource::Base(sid) => out.push_str(&format!("B{}", sid.0)),
            // Drain waves plan against a fresh registry, so derived leaves
            // cannot appear in a servable plan.
            LeafSource::Derived { .. } => {
                unreachable!("service plans never contain derived leaves")
            }
        },
        FlatNode::Join { left, right, .. } => {
            out.push_str("J(");
            render_tree(plan, *left, out);
            out.push(',');
            render_tree(plan, *right, out);
            out.push(')');
        }
    }
}

/// Parse the `B<id>` / `J(l,r)` grammar back into a [`JoinTree`].
fn parse_tree(text: &str) -> Result<JoinTree, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let tree = parse_tree_at(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!("tree: trailing input at byte {pos} in {text:?}"));
    }
    Ok(tree)
}

fn parse_tree_at(bytes: &[u8], pos: &mut usize) -> Result<JoinTree, String> {
    match bytes.get(*pos) {
        Some(b'B') => {
            *pos += 1;
            let start = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            if start == *pos {
                return Err("tree: expected digits after B".into());
            }
            let id: u32 = std::str::from_utf8(&bytes[start..*pos])
                .unwrap()
                .parse()
                .map_err(|e| format!("tree: {e}"))?;
            Ok(JoinTree::base(StreamId(id)))
        }
        Some(b'J') => {
            *pos += 1;
            if bytes.get(*pos) != Some(&b'(') {
                return Err("tree: expected ( after J".into());
            }
            *pos += 1;
            let left = parse_tree_at(bytes, pos)?;
            if bytes.get(*pos) != Some(&b',') {
                return Err("tree: expected , between join inputs".into());
            }
            *pos += 1;
            let right = parse_tree_at(bytes, pos)?;
            if bytes.get(*pos) != Some(&b')') {
                return Err("tree: expected ) after join".into());
            }
            *pos += 1;
            Ok(JoinTree::join(left, right))
        }
        other => Err(format!("tree: unexpected {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FaultReq;

    fn populated_core() -> ServiceCore {
        let mut core = ServiceCore::new(ServiceConfig::default());
        core.drain(
            &[
                JournalEntry::Register {
                    id: 1,
                    sources: vec![0, 1, 2],
                    sink: 3,
                    deadline_ms: None,
                    at_ms: 10,
                },
                JournalEntry::Register {
                    id: 2,
                    sources: vec![4, 5],
                    sink: 6,
                    deadline_ms: None,
                    at_ms: 11,
                },
            ],
            20,
        );
        core.drain(
            &[
                JournalEntry::Fault {
                    fault: FaultReq::Degrade {
                        a: 0,
                        b: 1,
                        factor_milli: 7000,
                    },
                    at_ms: 25,
                },
                JournalEntry::Fault {
                    fault: FaultReq::Crash(9),
                    at_ms: 26,
                },
            ],
            30,
        );
        core
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let core = populated_core();
        let restored = restore(&write(&core)).unwrap();
        assert_eq!(restored.fingerprint(), core.fingerprint());
        assert_eq!(restored.entries_applied, core.entries_applied);
        // And the restored snapshot re-serializes identically.
        assert_eq!(write(&restored), write(&core));
    }

    #[test]
    fn tree_grammar_round_trips() {
        let tree = JoinTree::join(
            JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(2))),
            JoinTree::base(StreamId(5)),
        );
        let core = ServiceCore::new(ServiceConfig::default());
        let q = Query::join(
            QueryId(7),
            [StreamId(0), StreamId(2), StreamId(5)],
            NodeId(1),
        );
        let plan = FlatPlan::from_tree(&tree, &q, &core.catalog);
        let mut text = String::new();
        render_tree(&plan, plan.root(), &mut text);
        assert_eq!(text, "J(J(B0,B2),B5)");
        let back = parse_tree(&text).unwrap();
        assert_eq!(format!("{back:?}"), format!("{tree:?}"));
        assert!(parse_tree("J(B0").is_err());
        assert!(parse_tree("B0,B1").is_err());
    }

    #[test]
    fn tampered_snapshots_refuse_to_load() {
        let core = populated_core();
        let text = write(&core);
        // Flip one placement digit in a slot line: the recomputed cost no
        // longer matches the recorded bits.
        let tampered: String = text
            .lines()
            .map(|l| {
                if l.starts_with("slot = id=1") {
                    let idx = l.rfind("placement=").unwrap() + "placement=".len();
                    let (head, tail) = l.split_at(idx);
                    let digit = tail.chars().next().unwrap();
                    let flipped = if digit == '0' { '1' } else { '0' };
                    format!("{head}{flipped}{}\n", &tail[1..])
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let err = restore(&tampered).unwrap_err();
        assert!(
            err.contains("diverged") || err.contains("placement"),
            "{err}"
        );
    }
}
