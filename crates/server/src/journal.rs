//! Deterministic write-ahead journal.
//!
//! Every state-mutating request is appended *before* it is applied, as one
//! `entry = <kind> k=v ...` line in the `.case` text idiom from `dsq-fuzz`
//! (`#` comments, `key = value`, human-diffable). Drain markers are
//! journaled too, so the journal is a complete replayable session: a fresh
//! service fed the entries through its normal processing path reconstructs
//! the crashed service bit-for-bit — state, responses and virtual-clock
//! obs trace alike (see `tests/recovery.rs`).
//!
//! The journal header carries the [`ServiceConfig`], making a journal file
//! self-contained the same way a `.case` file is.

use crate::config::ServiceConfig;
use crate::protocol::{FaultReq, Request};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One journaled, admitted, state-mutating request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalEntry {
    /// An admitted registration.
    Register {
        /// Query id.
        id: u32,
        /// Catalog stream ids.
        sources: Vec<u32>,
        /// Result sink node.
        sink: u32,
        /// Deadline override.
        deadline_ms: Option<u64>,
        /// Arrival time.
        at_ms: u64,
    },
    /// An admitted unregistration.
    Unregister {
        /// Query id.
        id: u32,
        /// Arrival time.
        at_ms: u64,
    },
    /// An admitted forced replan.
    Replan {
        /// Query id.
        id: u32,
        /// Deadline override.
        deadline_ms: Option<u64>,
        /// Arrival time.
        at_ms: u64,
    },
    /// An admitted fault report.
    Fault {
        /// The fault.
        fault: FaultReq,
        /// Arrival time.
        at_ms: u64,
    },
    /// A drain marker: everything journaled since the previous marker was
    /// applied in one wave at `at_ms`.
    Drain {
        /// Drain time.
        at_ms: u64,
    },
    /// A mutating request rejected by admission control (`overloaded`).
    /// Shed requests never reach a drain wave, but they *are* journaled so
    /// replay reproduces the admission accounting — a recovered service
    /// must report the same `shed` counter (and fingerprint) as the live
    /// run did.
    Shed {
        /// The rejected request's op name (`register`, `replan`, ...).
        op: String,
        /// Query id, when the rejected request carried one.
        id: Option<u32>,
        /// Arrival time.
        at_ms: u64,
    },
}

impl JournalEntry {
    /// Convert an admitted mutating request; `None` for read-only ops.
    pub fn from_request(req: &Request) -> Option<JournalEntry> {
        match req {
            Request::Register {
                id,
                sources,
                sink,
                deadline_ms,
                at_ms,
            } => Some(JournalEntry::Register {
                id: *id,
                sources: sources.clone(),
                sink: *sink,
                deadline_ms: *deadline_ms,
                at_ms: *at_ms,
            }),
            Request::Unregister { id, at_ms } => Some(JournalEntry::Unregister {
                id: *id,
                at_ms: *at_ms,
            }),
            Request::Replan {
                id,
                deadline_ms,
                at_ms,
            } => Some(JournalEntry::Replan {
                id: *id,
                deadline_ms: *deadline_ms,
                at_ms: *at_ms,
            }),
            Request::Fault { fault, at_ms } => Some(JournalEntry::Fault {
                fault: fault.clone(),
                at_ms: *at_ms,
            }),
            Request::Drain { at_ms } => Some(JournalEntry::Drain { at_ms: *at_ms }),
            Request::Query { .. } | Request::Stats => None,
        }
    }

    /// The request arrival / drain time.
    pub fn at_ms(&self) -> u64 {
        match self {
            JournalEntry::Register { at_ms, .. }
            | JournalEntry::Unregister { at_ms, .. }
            | JournalEntry::Replan { at_ms, .. }
            | JournalEntry::Fault { at_ms, .. }
            | JournalEntry::Drain { at_ms }
            | JournalEntry::Shed { at_ms, .. } => *at_ms,
        }
    }

    /// Serialize as the payload of one `entry = ...` line.
    pub fn to_line(&self) -> String {
        match self {
            JournalEntry::Register {
                id,
                sources,
                sink,
                deadline_ms,
                at_ms,
            } => {
                let srcs: Vec<String> = sources.iter().map(|s| s.to_string()).collect();
                let mut line = format!("register id={id} sources={} sink={sink}", srcs.join(","));
                if let Some(d) = deadline_ms {
                    line.push_str(&format!(" deadline={d}"));
                }
                line.push_str(&format!(" at={at_ms}"));
                line
            }
            JournalEntry::Unregister { id, at_ms } => format!("unregister id={id} at={at_ms}"),
            JournalEntry::Replan {
                id,
                deadline_ms,
                at_ms,
            } => {
                let mut line = format!("replan id={id}");
                if let Some(d) = deadline_ms {
                    line.push_str(&format!(" deadline={d}"));
                }
                line.push_str(&format!(" at={at_ms}"));
                line
            }
            JournalEntry::Fault { fault, at_ms } => match fault {
                FaultReq::Crash(n) => format!("fault kind=crash node={n} at={at_ms}"),
                FaultReq::Rejoin(n) => format!("fault kind=rejoin node={n} at={at_ms}"),
                FaultReq::Degrade { a, b, factor_milli } => {
                    format!("fault kind=degrade a={a} b={b} factor_milli={factor_milli} at={at_ms}")
                }
            },
            JournalEntry::Drain { at_ms } => format!("drain at={at_ms}"),
            JournalEntry::Shed { op, id, at_ms } => {
                let mut line = format!("shed op={op}");
                if let Some(id) = id {
                    line.push_str(&format!(" id={id}"));
                }
                line.push_str(&format!(" at={at_ms}"));
                line
            }
        }
    }

    /// Parse the payload of one `entry = ...` line.
    pub fn parse_line(line: &str) -> Result<JournalEntry, String> {
        let mut tokens = line.split_whitespace();
        let kind = tokens.next().ok_or("empty journal entry")?;
        let mut fields = std::collections::BTreeMap::new();
        for tok in tokens {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected k=v token, got {tok:?}"))?;
            fields.insert(k.to_string(), v.to_string());
        }
        let get_u64 = |k: &str| -> Result<u64, String> {
            fields
                .get(k)
                .ok_or_else(|| format!("{kind}: missing {k}"))?
                .parse()
                .map_err(|e| format!("{kind}.{k}: {e}"))
        };
        let get_u32 = |k: &str| -> Result<u32, String> {
            u32::try_from(get_u64(k)?).map_err(|_| format!("{kind}.{k}: out of range"))
        };
        let opt_u64 = |k: &str| -> Option<u64> { fields.get(k).and_then(|v| v.parse().ok()) };
        match kind {
            "register" => {
                let sources = fields
                    .get("sources")
                    .ok_or("register: missing sources")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().map_err(|e| format!("register.sources: {e}")))
                    .collect::<Result<Vec<u32>, String>>()?;
                Ok(JournalEntry::Register {
                    id: get_u32("id")?,
                    sources,
                    sink: get_u32("sink")?,
                    deadline_ms: opt_u64("deadline"),
                    at_ms: get_u64("at")?,
                })
            }
            "unregister" => Ok(JournalEntry::Unregister {
                id: get_u32("id")?,
                at_ms: get_u64("at")?,
            }),
            "replan" => Ok(JournalEntry::Replan {
                id: get_u32("id")?,
                deadline_ms: opt_u64("deadline"),
                at_ms: get_u64("at")?,
            }),
            "fault" => {
                let at_ms = get_u64("at")?;
                let fault = match fields.get("kind").map(String::as_str) {
                    Some("crash") => FaultReq::Crash(get_u32("node")?),
                    Some("rejoin") => FaultReq::Rejoin(get_u32("node")?),
                    Some("degrade") => FaultReq::Degrade {
                        a: get_u32("a")?,
                        b: get_u32("b")?,
                        factor_milli: get_u64("factor_milli")?,
                    },
                    other => return Err(format!("fault: unknown kind {other:?}")),
                };
                Ok(JournalEntry::Fault { fault, at_ms })
            }
            "drain" => Ok(JournalEntry::Drain {
                at_ms: get_u64("at")?,
            }),
            "shed" => {
                let op = fields.get("op").ok_or("shed: missing op")?.clone();
                let id = match fields.get("id") {
                    Some(_) => Some(get_u32("id")?),
                    None => None,
                };
                Ok(JournalEntry::Shed {
                    op,
                    id,
                    at_ms: get_u64("at")?,
                })
            }
            other => Err(format!("unknown journal entry kind {other:?}")),
        }
    }
}

/// The write-ahead journal: config header plus the admitted entries, in
/// admission order. Optionally backed by a file, in which case every
/// [`Journal::append`] lands on disk before the entry is applied.
#[derive(Debug)]
pub struct Journal {
    /// The service configuration the journal opens with.
    pub config: ServiceConfig,
    /// Admitted entries in order, starting at absolute index [`Journal::base`].
    pub entries: Vec<JournalEntry>,
    /// Number of entries compacted away: `entries[0]` is absolute entry
    /// `base`. A non-zero base means a snapshot covers the dropped prefix.
    base: usize,
    file: Option<File>,
    path: Option<PathBuf>,
}

impl Journal {
    /// Start a fresh journal; when `path` is given, the header is written
    /// immediately and appends go straight to disk.
    pub fn create(config: ServiceConfig, path: Option<&Path>) -> std::io::Result<Journal> {
        let mut file = None;
        if let Some(p) = path {
            let mut f = File::create(p)?;
            f.write_all(Self::header(&config).as_bytes())?;
            f.flush()?;
            file = Some(f);
        }
        Ok(Journal {
            config,
            entries: Vec::new(),
            base: 0,
            file,
            path: path.map(Path::to_path_buf),
        })
    }

    /// Absolute index of the first retained entry (0 = nothing compacted).
    pub fn base(&self) -> usize {
        self.base
    }

    /// Total entries ever journaled, the compacted prefix included.
    pub fn absolute_len(&self) -> usize {
        self.base + self.entries.len()
    }

    fn header(config: &ServiceConfig) -> String {
        format!("# dsq-server journal v1\n{}", config.to_lines())
    }

    /// The file backing this journal, when there is one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Write-ahead append: the entry is durable (when file-backed) before
    /// this returns.
    pub fn append(&mut self, entry: JournalEntry) -> std::io::Result<()> {
        if let Some(f) = &mut self.file {
            f.write_all(format!("entry = {}\n", entry.to_line()).as_bytes())?;
            f.flush()?;
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Serialize the whole journal (header + compaction marker + entries).
    pub fn to_text(&self) -> String {
        let mut out = Self::header(&self.config);
        if self.base > 0 {
            out.push_str(&format!("compacted = {}\n", self.base));
        }
        for e in &self.entries {
            out.push_str(&format!("entry = {}\n", e.to_line()));
        }
        out
    }

    /// Parse a journal written by [`Journal::to_text`] / the append path.
    /// Tolerates a torn final line (a crash mid-append): a last line that
    /// does not parse is dropped, matching the write-ahead contract that an
    /// entry is applied only once fully journaled.
    pub fn parse(text: &str) -> Result<Journal, String> {
        let mut config = ServiceConfig::default();
        let mut entries = Vec::new();
        let mut base = 0usize;
        let lines: Vec<&str> = text.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                if i + 1 == lines.len() {
                    break; // torn tail
                }
                return Err(format!("line {}: expected `key = value`: {raw:?}", i + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            if let Some(ck) = key.strip_prefix("config.") {
                config.set(ck, value)?;
            } else if key == "compacted" {
                base = value
                    .parse()
                    .map_err(|e| format!("line {}: compacted: {e}", i + 1))?;
            } else if key == "entry" {
                match JournalEntry::parse_line(value) {
                    Ok(e) => entries.push(e),
                    Err(err) => {
                        if i + 1 == lines.len() {
                            break; // torn tail
                        }
                        return Err(format!("line {}: {err}", i + 1));
                    }
                }
            } else {
                return Err(format!("line {}: unknown key {key:?}", i + 1));
            }
        }
        config.validate()?;
        Ok(Journal {
            config,
            entries,
            base,
            file: None,
            path: None,
        })
    }

    /// Load a journal from disk (recovery entry point). The returned
    /// journal is *detached* from the file; pass the path to
    /// [`crate::service::PlanningService::recover`] to reattach for
    /// continued appends.
    pub fn load(path: &Path) -> Result<Journal, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut j = Self::parse(&text)?;
        j.path = Some(path.to_path_buf());
        Ok(j)
    }

    /// Reattach to the backing file for appends, rewriting it from the
    /// in-memory state (drops any torn tail).
    pub fn reattach(&mut self) -> std::io::Result<()> {
        self.rewrite()
    }

    /// Drop every entry below absolute index `upto` (they are covered by a
    /// durable snapshot) and rewrite the backing file so recovery never
    /// re-reads the replayed prefix. No-op when `upto` is not past the
    /// current base; `upto` past the end is clamped.
    pub fn compact(&mut self, upto: usize) -> std::io::Result<()> {
        if upto <= self.base {
            return Ok(());
        }
        let upto = upto.min(self.absolute_len());
        self.entries.drain(..upto - self.base);
        self.base = upto;
        dsq_obs::counter("server.journal_compactions", 1);
        self.rewrite()
    }

    fn rewrite(&mut self) -> std::io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let mut f = OpenOptions::new()
            .write(true)
            .truncate(true)
            .create(true)
            .open(&path)?;
        f.write_all(self.to_text().as_bytes())?;
        f.flush()?;
        self.file = Some(f);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry::Register {
                id: 3,
                sources: vec![0, 2, 5],
                sink: 7,
                deadline_ms: Some(500),
                at_ms: 120,
            },
            JournalEntry::Replan {
                id: 3,
                deadline_ms: None,
                at_ms: 130,
            },
            JournalEntry::Fault {
                fault: FaultReq::Degrade {
                    a: 1,
                    b: 2,
                    factor_milli: 8000,
                },
                at_ms: 140,
            },
            JournalEntry::Fault {
                fault: FaultReq::Crash(5),
                at_ms: 150,
            },
            JournalEntry::Drain { at_ms: 160 },
            JournalEntry::Unregister { id: 3, at_ms: 170 },
            JournalEntry::Shed {
                op: "register".to_string(),
                id: Some(9),
                at_ms: 180,
            },
            JournalEntry::Shed {
                op: "fault".to_string(),
                id: None,
                at_ms: 190,
            },
        ]
    }

    #[test]
    fn journal_round_trips() {
        let mut j = Journal::create(ServiceConfig::default(), None).unwrap();
        for e in sample_entries() {
            j.append(e).unwrap();
        }
        let back = Journal::parse(&j.to_text()).unwrap();
        assert_eq!(back.config, j.config);
        assert_eq!(back.entries, j.entries);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let mut j = Journal::create(ServiceConfig::default(), None).unwrap();
        for e in sample_entries() {
            j.append(e).unwrap();
        }
        let mut text = j.to_text();
        text.push_str("entry = register id=9 sou"); // torn mid-append
        let back = Journal::parse(&text).unwrap();
        assert_eq!(back.entries.len(), j.entries.len());
    }

    #[test]
    fn compaction_drops_the_prefix_and_round_trips() {
        let mut j = Journal::create(ServiceConfig::default(), None).unwrap();
        for e in sample_entries() {
            j.append(e).unwrap();
        }
        let total = j.entries.len();
        j.compact(4).unwrap();
        assert_eq!(j.base(), 4);
        assert_eq!(j.entries.len(), total - 4);
        assert_eq!(j.absolute_len(), total);
        // Compacting backwards or to the same point is a no-op.
        j.compact(2).unwrap();
        assert_eq!(j.base(), 4);
        // The marker survives serialization.
        let back = Journal::parse(&j.to_text()).unwrap();
        assert_eq!(back.base(), 4);
        assert_eq!(back.entries, j.entries);
        // Past-the-end requests clamp.
        j.compact(total + 10).unwrap();
        assert_eq!(j.base(), total);
        assert!(j.entries.is_empty());
    }

    #[test]
    fn file_backed_appends_are_durable() {
        let dir = std::env::temp_dir().join(format!("dsq-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.journal");
        let mut j = Journal::create(ServiceConfig::default(), Some(&path)).unwrap();
        for e in sample_entries() {
            j.append(e).unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.entries, j.entries);
        std::fs::remove_dir_all(&dir).ok();
    }
}
