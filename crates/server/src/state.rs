//! The service's deterministic core: registered queries, their current
//! plans, and the batched drain wave that (re)plans them.
//!
//! [`ServiceCore`] is a pure state machine over journal entries: feed the
//! same entries in the same order and every bit of state — deployments,
//! costs, epochs, counters, the obs trace — comes out identical. That is
//! the whole crash-recovery story (see `tests/recovery.rs`); nothing here
//! reads a clock or an RNG.

use std::collections::{BTreeMap, HashSet};

use dsq_core::{optimize_all, optimize_dirty, Environment, ParallelConfig, TopDown};
use dsq_hierarchy::membership;
use dsq_net::{DistanceMatrix, LinkRepair, NodeId};
use dsq_obs::Value;
use dsq_query::{Catalog, Deployment, Query, QueryId, ReuseRegistry, StreamId};

use crate::config::ServiceConfig;
use crate::journal::JournalEntry;
use crate::protocol::FaultReq;

/// Fewest overlay members the service will keep: crash reports that would
/// shrink the hierarchy below this floor are skipped (and counted), not
/// applied — a two-member overlay is the smallest the membership machinery
/// supports without forfeiting the partition structure entirely.
pub const OVERLAY_FLOOR: usize = 2;

/// Lifecycle of a registered query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotStatus {
    /// Registered, not yet planned (awaiting the next drain wave).
    Pending,
    /// Carrying a valid deployment.
    Planned,
    /// Cannot currently be planned (a source's origin node is down, or the
    /// optimizer found no feasible deployment); retried when possible.
    Parked,
    /// Terminally unservable (its sink node crashed). The client must
    /// re-register under a fresh id.
    Lost,
}

impl SlotStatus {
    /// Lowercase protocol name.
    pub fn name(self) -> &'static str {
        match self {
            SlotStatus::Pending => "pending",
            SlotStatus::Planned => "planned",
            SlotStatus::Parked => "parked",
            SlotStatus::Lost => "lost",
        }
    }
}

/// One registered query and its plan hand-off state.
#[derive(Clone, Debug)]
pub struct QuerySlot {
    /// The standing query.
    pub query: Query,
    /// Current deployment (`Some` iff status is [`SlotStatus::Planned`]).
    pub deployment: Option<Deployment>,
    /// Lifecycle state.
    pub status: SlotStatus,
    /// Epoch of the drain wave that produced the current deployment.
    pub planned_epoch: u64,
    /// The deployment is from a pre-fault epoch and known degraded or
    /// budget-deferred: still served (stale-but-safe), flagged in responses.
    pub stale: bool,
    /// Needs (re)planning at the next drain wave.
    pub dirty: bool,
    /// Cost at plan time; degradation is judged against this.
    pub baseline_cost: f64,
}

/// Deterministic service counters (also mirrored to obs counters under
/// `server.*` so they land in traces and bench snapshots).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Mutating requests admitted (journaled).
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Queued requests dropped at drain because their deadline passed.
    pub timed_out: u64,
    /// Queries left serving a stale plan by a budget-limited drain.
    pub stale_served: u64,
    /// Drain waves run.
    pub drains: u64,
    /// Fault reports applied to the environment.
    pub faults_applied: u64,
    /// Fault reports skipped (inactive node, overlay floor, missing link).
    pub faults_skipped: u64,
    /// Journal entries replayed by crash recovery.
    pub recovery_replayed: u64,
}

impl ServiceCounters {
    /// `(name, value)` pairs in serialization order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("admitted", self.admitted),
            ("shed", self.shed),
            ("timed_out", self.timed_out),
            ("stale_served", self.stale_served),
            ("drains", self.drains),
            ("faults_applied", self.faults_applied),
            ("faults_skipped", self.faults_skipped),
            ("recovery_replayed", self.recovery_replayed),
        ]
    }

    /// Set one field by name (snapshot restore).
    pub fn set(&mut self, name: &str, value: u64) -> Result<(), String> {
        match name {
            "admitted" => self.admitted = value,
            "shed" => self.shed = value,
            "timed_out" => self.timed_out = value,
            "stale_served" => self.stale_served = value,
            "drains" => self.drains = value,
            "faults_applied" => self.faults_applied = value,
            "faults_skipped" => self.faults_skipped = value,
            "recovery_replayed" => self.recovery_replayed = value,
            other => return Err(format!("unknown counter {other:?}")),
        }
        Ok(())
    }
}

/// What one drain wave did (rendered into the drain response).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DrainSummary {
    /// Epoch this wave established.
    pub epoch: u64,
    /// Journal entries applied (batch size, drain marker excluded).
    pub applied: usize,
    /// Queries planned for the first time (or un-parked).
    pub planned: usize,
    /// Dirty queries replanned.
    pub replanned: usize,
    /// New/parked queries deferred past the budget (still pending).
    pub deferred: usize,
    /// Queued requests dropped on deadline.
    pub timed_out: usize,
    /// Planned queries left serving their previous epoch's plan, flagged
    /// stale, because the replan budget ran out.
    pub stale: usize,
    /// Queries parked after the wave.
    pub parked: usize,
    /// Queries lost after the wave.
    pub lost: usize,
    /// Sum of planned deployment costs.
    pub total_cost: f64,
}

/// What a fault report did to the environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Surgery {
    /// Nothing (inactive node crash, active node rejoin, unknown link,
    /// overlay floor, zero factor).
    Skipped,
    /// Node removed from the overlay.
    Crashed(NodeId),
    /// Node re-added to the overlay.
    Rejoined(NodeId),
    /// Link cost changed, distance matrix rebuilt.
    Degraded,
}

/// How the `Degrade` arm repairs the distance matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Incremental single-link repair: only rows whose shortest paths used
    /// the changed link are re-relaxed. Falls back to a full rebuild when
    /// the weight *decreases* past its alternatives (or the link vanished) —
    /// the only case where the server still pays a full APSP on `Degrade`.
    #[default]
    Incremental,
    /// Always rebuild the full matrix. Kept as the differential control arm
    /// (`tests/fault_surgery.rs` proves both arms bit-identical); never the
    /// live default.
    FullRebuild,
}

/// Apply one fault report to the environment only (no query bookkeeping),
/// using the default [`RepairStrategy::Incremental`] degrade repair.
pub fn apply_fault_surgery(env: &mut Environment, fault: &FaultReq) -> Surgery {
    apply_fault_surgery_with(env, fault, RepairStrategy::Incremental)
}

/// Apply one fault report to the environment only (no query bookkeeping).
/// Shared between the live drain path and snapshot reconstruction, which
/// re-applies the fault history to a freshly built environment — so this
/// must stay a pure function of `(env, fault)`. Both repair strategies
/// produce bit-identical matrices, so snapshot replay may use either.
pub fn apply_fault_surgery_with(
    env: &mut Environment,
    fault: &FaultReq,
    repair: RepairStrategy,
) -> Surgery {
    match fault {
        FaultReq::Crash(n) => {
            let node = NodeId(*n);
            if node.index() >= env.network.len() || !env.hierarchy.is_active(node) {
                return Surgery::Skipped;
            }
            if env.hierarchy.active_nodes().len() <= OVERLAY_FLOOR {
                return Surgery::Skipped; // below the floor the overlay forfeits
            }
            let before = env.hierarchy.snapshot();
            membership::remove_node(&mut env.hierarchy, &env.dm, node)
                .expect("guarded: node active, above floor");
            let delta = before.diff(&env.hierarchy.snapshot());
            env.plan_cache.retire_membership(&env.hierarchy, &delta);
            Surgery::Crashed(node)
        }
        FaultReq::Rejoin(n) => {
            let node = NodeId(*n);
            if node.index() >= env.network.len() || env.hierarchy.is_active(node) {
                return Surgery::Skipped;
            }
            // The rejoining node contacts its nearest active member, as the
            // chaos runner does.
            let via = *env
                .hierarchy
                .active_nodes()
                .iter()
                .min_by(|&&a, &&b| {
                    env.dm
                        .get(a, node)
                        .total_cmp(&env.dm.get(b, node))
                        .then(a.0.cmp(&b.0))
                })
                .expect("overlay is never empty");
            let before = env.hierarchy.snapshot();
            membership::add_node(&mut env.hierarchy, &env.dm, node, via);
            let delta = before.diff(&env.hierarchy.snapshot());
            env.plan_cache.retire_membership(&env.hierarchy, &delta);
            Surgery::Rejoined(node)
        }
        FaultReq::Degrade { a, b, factor_milli } => {
            let (a, b) = (NodeId(*a), NodeId(*b));
            if *factor_milli == 0
                || a.index() >= env.network.len()
                || b.index() >= env.network.len()
            {
                return Surgery::Skipped;
            }
            let Some(link) = env.network.find_link(a, b) else {
                return Surgery::Skipped;
            };
            let new_cost = link.cost * (*factor_milli as f64 / 1000.0);
            let old_w = env.metric.weight(link);
            env.network.set_link_cost(a, b, new_cost);
            let new_dm = match repair {
                RepairStrategy::FullRebuild => {
                    dsq_obs::counter("server.degrade_rebuilds", 1);
                    DistanceMatrix::build(&env.network, env.metric)
                }
                RepairStrategy::Incremental => {
                    let (dm, outcome) =
                        env.dm.repaired_after_link_change(&env.network, a, b, old_w);
                    // Obs-only accounting: deliberately NOT in
                    // `ServiceCounters`, so the two strategies keep
                    // identical fingerprints in the differential tests.
                    match outcome {
                        LinkRepair::Incremental { rows } => {
                            dsq_obs::counter("server.degrade_rows_repaired", rows as u64);
                        }
                        LinkRepair::Rebuilt => dsq_obs::counter("server.degrade_rebuilds", 1),
                    }
                    dm
                }
            };
            env.plan_cache.retire_metric(&env.dm, &new_dm);
            env.dm = new_dm;
            env.hierarchy.refresh_statistics(&env.dm);
            Surgery::Degraded
        }
    }
}

/// The deterministic service state machine.
#[derive(Debug)]
pub struct ServiceCore {
    /// The immutable configuration.
    pub cfg: ServiceConfig,
    /// Planning environment (mutated by fault surgery).
    pub env: Environment,
    /// Base-stream catalog.
    pub catalog: Catalog,
    /// Registered queries by id (BTreeMap: every iteration is id-ordered,
    /// which is what makes waves deterministic).
    pub slots: BTreeMap<u32, QuerySlot>,
    /// Plan epoch: increments once per drain wave; every response carries
    /// it, so clients observe a monotone hand-off sequence.
    pub epoch: u64,
    /// Virtual service time (max of drain times seen).
    pub now_ms: u64,
    /// Deterministic counters.
    pub counters: ServiceCounters,
    /// Degrade repair strategy (incremental by default; tests pin the
    /// full-rebuild control arm against it).
    pub repair: RepairStrategy,
    /// Fault entries applied so far, in order — the part of the journal a
    /// snapshot cannot summarize (the environment is path-dependent), so
    /// snapshots carry it verbatim for replay.
    pub fault_log: Vec<JournalEntry>,
    /// Journal entries fully applied (through drain markers).
    pub entries_applied: usize,
    /// Shed entries journaled since the last drain marker. Shed requests
    /// never enter a drain batch, but they occupy journal indexes, so the
    /// next drain folds them into [`ServiceCore::entries_applied`] to keep
    /// snapshot compaction index-consistent. Always 0 right after a drain
    /// (the only moment snapshots are written), so it is never serialized.
    pub pending_shed: usize,
    /// Lifecycle-managed advert store mirroring the served deployments:
    /// planned slots publish, unregister/crash/forfeit retire, rejoins
    /// reinstate, and the configured budget evicts cold adverts (probes
    /// that miss an evicted advert queue re-derivation for the next
    /// drain). Pure function of the journal, like everything else here —
    /// its fingerprint is part of [`ServiceCore::fingerprint`].
    pub registry: ReuseRegistry,
}

impl ServiceCore {
    /// Fresh core from a configuration.
    pub fn new(cfg: ServiceConfig) -> ServiceCore {
        let (env, catalog) = cfg.build();
        let registry = ReuseRegistry::with_budget(cfg.advert_budget);
        ServiceCore {
            cfg,
            env,
            catalog,
            registry,
            slots: BTreeMap::new(),
            epoch: 0,
            now_ms: 0,
            counters: ServiceCounters::default(),
            repair: RepairStrategy::default(),
            fault_log: Vec::new(),
            entries_applied: 0,
            pending_shed: 0,
        }
    }

    /// Account one shed (admission-rejected) request. Called by the live
    /// admission path *and* by journal replay when it meets a
    /// [`JournalEntry::Shed`] — the same code path on both sides is what
    /// keeps the `shed` counter (and therefore the fingerprint) identical
    /// across a crash.
    pub fn note_shed(&mut self) {
        self.counters.shed += 1;
        self.pending_shed += 1;
        dsq_obs::counter("server.requests_shed", 1);
    }

    /// Is every stream origin and the sink currently an overlay member?
    fn data_available(&self, query: &Query) -> bool {
        if !self.env.hierarchy.is_active(query.sink) {
            return false;
        }
        query
            .sources
            .iter()
            .all(|&s| self.env.hierarchy.is_active(self.catalog.stream(s).node))
    }

    /// Validate a registration against the catalog/topology (admission-time
    /// check; journaled registers are valid by construction).
    pub fn validate_register(&self, id: u32, sources: &[u32], sink: u32) -> Result<(), String> {
        if self.slots.contains_key(&id) {
            return Err(format!("query id {id} already registered"));
        }
        if sources.is_empty() {
            return Err("sources must be non-empty".into());
        }
        let mut seen = HashSet::new();
        for &s in sources {
            if s as usize >= self.catalog.len() {
                return Err(format!("unknown stream {s}"));
            }
            if !seen.insert(s) {
                return Err(format!("duplicate stream {s}"));
            }
        }
        if sink as usize >= self.env.network.len() {
            return Err(format!("unknown sink node {sink}"));
        }
        Ok(())
    }

    /// Effective deadline for a queued request, if any.
    fn deadline(&self, explicit: Option<u64>) -> Option<u64> {
        explicit
            .or_else(|| (self.cfg.default_deadline_ms > 0).then_some(self.cfg.default_deadline_ms))
    }

    /// Apply one batch of journal entries and run one planning wave. The
    /// batch is everything admitted since the previous drain, in admission
    /// order; `at_ms` is the drain marker's time.
    pub fn drain(&mut self, batch: &[JournalEntry], at_ms: u64) -> DrainSummary {
        self.epoch += 1;
        self.now_ms = self.now_ms.max(at_ms);
        let _span = dsq_obs::span("server.drain", || {
            vec![
                ("epoch", Value::U64(self.epoch)),
                ("batch", Value::U64(batch.len() as u64)),
            ]
        });
        let mut summary = DrainSummary {
            epoch: self.epoch,
            applied: batch.len(),
            ..DrainSummary::default()
        };

        // 1. Apply the batch in admission order.
        for entry in batch {
            match entry {
                JournalEntry::Register {
                    id,
                    sources,
                    sink,
                    deadline_ms,
                    at_ms,
                } => {
                    if let Some(d) = self.deadline(*deadline_ms) {
                        if self.now_ms > at_ms.saturating_add(d) {
                            summary.timed_out += 1;
                            continue;
                        }
                    }
                    if self.validate_register(*id, sources, *sink).is_err() {
                        continue; // defensive: journaled registers are pre-validated
                    }
                    let query = Query::join(
                        QueryId(*id),
                        sources.iter().map(|&s| StreamId(s)),
                        NodeId(*sink),
                    );
                    self.slots.insert(
                        *id,
                        QuerySlot {
                            query,
                            deployment: None,
                            status: SlotStatus::Pending,
                            planned_epoch: 0,
                            stale: false,
                            dirty: true,
                            baseline_cost: 0.0,
                        },
                    );
                }
                JournalEntry::Unregister { id, .. } => {
                    if self.slots.remove(id).is_some() {
                        // The departing query's operators are torn down, so
                        // its adverts must stop being served (terminally —
                        // a re-registration publishes fresh ones).
                        self.registry.retire_query(QueryId(*id));
                    }
                }
                JournalEntry::Replan {
                    id,
                    deadline_ms,
                    at_ms,
                } => {
                    if let Some(d) = self.deadline(*deadline_ms) {
                        if self.now_ms > at_ms.saturating_add(d) {
                            summary.timed_out += 1;
                            continue;
                        }
                    }
                    if let Some(slot) = self.slots.get_mut(id) {
                        if slot.status == SlotStatus::Planned {
                            slot.dirty = true;
                        }
                    }
                }
                JournalEntry::Fault { fault, .. } => self.apply_fault(fault),
                JournalEntry::Drain { .. } => {} // markers separate batches
                JournalEntry::Shed { .. } => {}  // shed entries never reach a batch
            }
        }
        // Batch + this drain marker + any shed entries journaled since the
        // previous marker (they hold journal indexes without being queued).
        self.entries_applied += batch.len() + 1 + std::mem::take(&mut self.pending_shed);

        // 2. Pick the wave under the replan budget: queries with no plan at
        //    all first, then dirty replans — so under pressure the service
        //    degrades replans (stale-but-safe) before it starves new work.
        let budget = if self.cfg.replan_budget == 0 {
            usize::MAX
        } else {
            self.cfg.replan_budget
        };
        let mut selected: HashSet<u32> = HashSet::new();
        let mut park: Vec<u32> = Vec::new();
        let mut stale_now: Vec<u32> = Vec::new();
        for (&id, slot) in &self.slots {
            if !matches!(slot.status, SlotStatus::Pending | SlotStatus::Parked) {
                continue;
            }
            if !self.data_available(&slot.query) {
                if slot.status == SlotStatus::Pending {
                    park.push(id);
                }
                continue;
            }
            if selected.len() < budget {
                selected.insert(id);
            } else {
                summary.deferred += 1;
            }
        }
        for (&id, slot) in &self.slots {
            if slot.status == SlotStatus::Planned && slot.dirty {
                if selected.len() < budget {
                    selected.insert(id);
                } else {
                    stale_now.push(id);
                }
            }
        }
        for id in park {
            self.slots.get_mut(&id).unwrap().status = SlotStatus::Parked;
        }
        for id in &stale_now {
            let slot = self.slots.get_mut(id).unwrap();
            if !slot.stale {
                slot.stale = true;
            }
            self.counters.stale_served += 1;
            summary.stale += 1;
        }
        dsq_obs::counter("server.stale_served", stale_now.len() as u64);

        // 3. One planner call over the id-ordered planning set: kept slots
        //    pass their prior deployment (bit-for-bit preserved), selected
        //    slots pass `None` and get replanned.
        let mut ids: Vec<u32> = Vec::new();
        let mut queries: Vec<Query> = Vec::new();
        let mut prior: Vec<Option<Deployment>> = Vec::new();
        for (&id, slot) in &self.slots {
            let in_wave = selected.contains(&id);
            if slot.status == SlotStatus::Planned || in_wave {
                ids.push(id);
                queries.push(slot.query.clone());
                prior.push(if in_wave {
                    None
                } else {
                    slot.deployment.clone()
                });
            }
        }
        if !ids.is_empty() {
            let optimizer = TopDown::new(&self.env);
            let registry = ReuseRegistry::new();
            let pcfg = ParallelConfig::serial();
            let outcome = if prior.iter().all(Option::is_none) {
                optimize_all(
                    &self.env,
                    &optimizer,
                    &self.catalog,
                    &queries,
                    &registry,
                    &pcfg,
                )
            } else {
                optimize_dirty(
                    &self.env,
                    &optimizer,
                    &self.catalog,
                    &queries,
                    &prior,
                    &HashSet::new(),
                    &registry,
                    &pcfg,
                )
            };
            for (i, id) in ids.iter().enumerate() {
                if !selected.contains(id) {
                    continue;
                }
                // Advert lifecycle mirror, in id order (deterministic): the
                // slot's previous operators are torn down by the replan, so
                // its old adverts retire; a successful plan then probes the
                // registry (recency + re-derivation demand accounting — the
                // planning wave itself ran on base leaves) and publishes the
                // new deployment's operators.
                self.registry.retire_query(QueryId(*id));
                let replanned_ok = outcome.deployments[i].is_some();
                if replanned_ok {
                    let hierarchy = &self.env.hierarchy;
                    let _ = self
                        .registry
                        .usable_for_live(&queries[i], |n| hierarchy.is_active(n));
                    self.registry
                        .register_deployment(&queries[i], outcome.deployments[i].as_ref().unwrap());
                }
                let slot = self.slots.get_mut(id).unwrap();
                let was_planned = slot.status == SlotStatus::Planned;
                match outcome.deployments[i].clone() {
                    Some(d) => {
                        if was_planned {
                            summary.replanned += 1;
                        } else {
                            summary.planned += 1;
                        }
                        slot.baseline_cost = d.cost;
                        slot.deployment = Some(d);
                        slot.status = SlotStatus::Planned;
                        slot.planned_epoch = self.epoch;
                        slot.stale = false;
                        slot.dirty = false;
                    }
                    None => {
                        slot.deployment = None;
                        slot.status = SlotStatus::Parked;
                        slot.stale = false;
                        slot.dirty = false;
                        slot.baseline_cost = 0.0;
                    }
                }
            }
        }

        // Re-derivation drain: probes above (and in earlier epochs) recorded
        // demand for evicted adverts; re-publish each from its owning
        // deployment — still possible only while the owner is Planned and
        // the advert's host is an active member.
        for id in self.registry.drain_rederive_requests() {
            let Some(adv) = self.registry.derived(id) else {
                continue;
            };
            let (origin, host) = (adv.origin.0, adv.host);
            let owner_serving = self
                .slots
                .get(&origin)
                .is_some_and(|s| s.status == SlotStatus::Planned);
            if owner_serving && self.env.hierarchy.is_active(host) {
                self.registry.rederive(id);
            }
        }

        self.counters.drains += 1;
        self.counters.timed_out += summary.timed_out as u64;
        dsq_obs::counter("server.requests_timed_out", summary.timed_out as u64);
        for slot in self.slots.values() {
            match slot.status {
                SlotStatus::Planned => {
                    summary.total_cost += slot.deployment.as_ref().map_or(0.0, |d| d.cost)
                }
                SlotStatus::Parked => summary.parked += 1,
                SlotStatus::Lost => summary.lost += 1,
                SlotStatus::Pending => {}
            }
        }
        summary
    }

    /// Apply one fault report: environment surgery, then reclassify slots.
    fn apply_fault(&mut self, fault: &FaultReq) {
        let surgery = apply_fault_surgery_with(&mut self.env, fault, self.repair);
        self.fault_log.push(JournalEntry::Fault {
            fault: fault.clone(),
            at_ms: self.now_ms,
        });
        match surgery {
            Surgery::Skipped => {
                self.counters.faults_skipped += 1;
                dsq_obs::counter("server.faults_skipped", 1);
                return;
            }
            _ => {
                self.counters.faults_applied += 1;
                dsq_obs::counter("server.faults_applied", 1);
            }
        }
        match surgery {
            Surgery::Crashed(node) => {
                // Adverts hosted on the dead node stop being served until
                // it rejoins; queries that lose their deployment below are
                // retired outright (their surviving operators are torn
                // down too).
                self.registry.host_crashed(node);
                let mut retire: Vec<u32> = Vec::new();
                for (&id, slot) in self.slots.iter_mut() {
                    if slot.status == SlotStatus::Lost {
                        continue;
                    }
                    if slot.query.sink == node {
                        // Results are undeliverable: terminally lost.
                        slot.status = SlotStatus::Lost;
                        slot.deployment = None;
                        slot.stale = false;
                        slot.dirty = false;
                        retire.push(id);
                    } else if slot
                        .query
                        .sources
                        .iter()
                        .any(|&s| self.catalog.stream(s).node == node)
                    {
                        // A source went dark: park until the origin rejoins.
                        slot.status = SlotStatus::Parked;
                        slot.deployment = None;
                        slot.stale = false;
                        slot.dirty = false;
                        retire.push(id);
                    } else if slot
                        .deployment
                        .as_ref()
                        .is_some_and(|d| d.placement.contains(&node))
                    {
                        // The plan routed through the dead node: it is not
                        // safe to keep serving, so back to pending (never
                        // served stale).
                        slot.status = SlotStatus::Pending;
                        slot.deployment = None;
                        slot.stale = false;
                        slot.dirty = true;
                        retire.push(id);
                    }
                }
                for id in retire {
                    self.registry.retire_query(QueryId(id));
                }
            }
            Surgery::Rejoined(node) => {
                // Parked slots are re-examined by the wave's
                // data-availability check; planned slots keep their
                // baselines (repairs do not re-baseline). Adverts hosted
                // on the rejoined node are servable again.
                self.registry.host_rejoined(node);
            }
            Surgery::Degraded => {
                let threshold = self.cfg.threshold_milli as f64 / 1000.0;
                for slot in self.slots.values_mut() {
                    if slot.status != SlotStatus::Planned {
                        continue;
                    }
                    let Some(d) = slot.deployment.as_mut() else {
                        continue;
                    };
                    d.recompute_cost(&self.env.dm);
                    if d.cost > slot.baseline_cost * (1.0 + threshold) + 1e-12 {
                        slot.dirty = true;
                    }
                }
            }
            Surgery::Skipped => unreachable!(),
        }
    }

    /// Deterministic state fingerprint: epoch, time, counters and every
    /// slot's exact plan (cost as raw bits). Two cores with equal
    /// fingerprints hold bit-identical servable state — the equality the
    /// crash-recovery differential asserts.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("epoch = {}\n", self.epoch));
        out.push_str(&format!("now_ms = {}\n", self.now_ms));
        for (k, v) in self.counters.fields() {
            // Recovery itself increments `recovery_replayed`; every other
            // counter must match bit-for-bit across a crash.
            if k != "recovery_replayed" {
                out.push_str(&format!("counter.{k} = {v}\n"));
            }
        }
        for (id, slot) in &self.slots {
            out.push_str(&format!(
                "slot = id={id} status={} epoch={} stale={} dirty={}",
                slot.status.name(),
                slot.planned_epoch,
                u8::from(slot.stale),
                u8::from(slot.dirty),
            ));
            if let Some(d) = &slot.deployment {
                let placement: Vec<String> = d.placement.iter().map(|n| n.0.to_string()).collect();
                out.push_str(&format!(
                    " cost={:016x} sink={} placement={}",
                    d.cost.to_bits(),
                    d.sink.0,
                    placement.join(",")
                ));
            }
            out.push('\n');
        }
        // The advert mirror is journal-derived state like everything above:
        // recovery must reproduce it exactly.
        out.push_str(&format!("registry = {}\n", self.registry.fingerprint()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register(id: u32, sources: &[u32], sink: u32, at_ms: u64) -> JournalEntry {
        JournalEntry::Register {
            id,
            sources: sources.to_vec(),
            sink,
            deadline_ms: None,
            at_ms,
        }
    }

    #[test]
    fn drain_plans_registered_queries() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let batch = vec![register(1, &[0, 1], 3, 10), register(2, &[2, 3, 4], 5, 11)];
        let s = core.drain(&batch, 20);
        assert_eq!(s.epoch, 1);
        assert_eq!(s.planned, 2);
        assert_eq!(core.slots[&1].status, SlotStatus::Planned);
        assert!(s.total_cost > 0.0);
        // Unregister removes; replan marks dirty and replans.
        let s = core.drain(
            &[
                JournalEntry::Unregister { id: 2, at_ms: 30 },
                JournalEntry::Replan {
                    id: 1,
                    deadline_ms: None,
                    at_ms: 31,
                },
            ],
            40,
        );
        assert_eq!(s.replanned, 1);
        assert_eq!(core.slots.len(), 1);
        assert_eq!(core.slots[&1].planned_epoch, 2);
    }

    #[test]
    fn drains_are_deterministic() {
        let run = || {
            let mut core = ServiceCore::new(ServiceConfig::default());
            core.drain(&[register(1, &[0, 1], 3, 10)], 20);
            core.drain(
                &[JournalEntry::Fault {
                    fault: FaultReq::Degrade {
                        a: 0,
                        b: 1,
                        factor_milli: 9000,
                    },
                    at_ms: 25,
                }],
                30,
            );
            core.fingerprint()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sink_crash_loses_the_query_and_source_crash_parks_it() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        // Pick sinks that are not also stream origins, so the crashes below
        // hit exactly the role the test means them to.
        let src_node = core.catalog.stream(StreamId(0)).node;
        let other_src = core.catalog.stream(StreamId(1)).node;
        let mut sinks =
            (0..core.env.network.len() as u32).filter(|&n| n != src_node.0 && n != other_src.0);
        let sink1 = sinks.next().unwrap();
        let sink2 = sinks.next().unwrap();
        core.drain(&[register(1, &[0, 1], sink1, 10)], 20);
        // Crash the sink: lost, terminally.
        core.drain(
            &[JournalEntry::Fault {
                fault: FaultReq::Crash(sink1),
                at_ms: 30,
            }],
            40,
        );
        assert_eq!(core.slots[&1].status, SlotStatus::Lost);
        // A second query whose source origin crashes parks, then recovers
        // when the origin rejoins.
        core.drain(&[register(2, &[0, 1], sink2, 50)], 60);
        core.drain(
            &[JournalEntry::Fault {
                fault: FaultReq::Crash(src_node.0),
                at_ms: 70,
            }],
            80,
        );
        assert_eq!(core.slots[&2].status, SlotStatus::Parked);
        core.drain(
            &[JournalEntry::Fault {
                fault: FaultReq::Rejoin(src_node.0),
                at_ms: 90,
            }],
            100,
        );
        assert_eq!(core.slots[&2].status, SlotStatus::Planned);
        assert_eq!(core.counters.faults_applied, 3);
    }

    #[test]
    fn replan_budget_serves_stale_plans() {
        let cfg = ServiceConfig {
            replan_budget: 1,
            ..ServiceConfig::default()
        };
        let mut core = ServiceCore::new(cfg);
        core.drain(&[register(1, &[0, 1], 3, 10)], 20);
        let s = core.drain(&[register(2, &[2, 3], 5, 25)], 30);
        assert_eq!(s.planned, 1);
        // Now dirty both; budget 1 → one replans, one serves stale.
        let s = core.drain(
            &[
                JournalEntry::Replan {
                    id: 1,
                    deadline_ms: None,
                    at_ms: 35,
                },
                JournalEntry::Replan {
                    id: 2,
                    deadline_ms: None,
                    at_ms: 36,
                },
            ],
            40,
        );
        assert_eq!(s.replanned + s.stale, 2);
        assert_eq!(s.stale, 1);
        let stale_slot = core.slots.values().find(|s| s.stale).unwrap();
        assert_eq!(stale_slot.status, SlotStatus::Planned);
        assert!(stale_slot.deployment.is_some(), "stale is still served");
        assert_eq!(core.counters.stale_served, 1);
        // Storm passes: next drain catches up and clears the flag.
        let s = core.drain(&[], 50);
        assert_eq!(s.replanned, 1);
        assert!(core.slots.values().all(|s| !s.stale));
    }

    #[test]
    fn deadlines_drop_overdue_requests() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let s = core.drain(
            &[JournalEntry::Register {
                id: 1,
                sources: vec![0, 1],
                sink: 3,
                deadline_ms: Some(5),
                at_ms: 10,
            }],
            100, // drained 90ms after arrival, deadline was 5ms
        );
        assert_eq!(s.timed_out, 1);
        assert!(core.slots.is_empty());
        assert_eq!(core.counters.timed_out, 1);
    }
}
