//! The resident planning service: admission control in front of the
//! [`ServiceCore`] state machine, a write-ahead [`Journal`] underneath it,
//! and snapshot + replay crash recovery.
//!
//! Request lifecycle:
//!
//! 1. **Admission** — read-only requests answer immediately; mutating
//!    requests pass validation, deadline and backpressure checks. Shed
//!    requests get a typed error and a [`JournalEntry::Shed`] marker —
//!    they never enter a drain batch, but replay must reproduce the
//!    admission accounting (the `shed` counter is part of the
//!    fingerprint), so the rejection itself is journaled.
//! 2. **Journal** — admitted requests are appended to the write-ahead
//!    journal *before* being queued (crash after the append replays the
//!    request; crash before it means the client never got an ack).
//! 3. **Drain** — a `drain` request applies the whole queue as one batch
//!    and runs one planning wave ([`ServiceCore::drain`]), bumping the
//!    plan epoch.
//!
//! Recovery ([`PlanningService::recover_from_path`]) rebuilds the service
//! by replaying the journal through the exact same code path — optionally
//! fast-forwarded from a snapshot — so the recovered service is
//! bit-identical to the crashed one (see `tests/recovery.rs`).

use std::path::{Path, PathBuf};

use crate::config::ServiceConfig;
use crate::journal::{Journal, JournalEntry};
use crate::protocol::{render_f64, resp_error, resp_ok, Request};
use crate::snapshot;
use crate::state::{ServiceCore, SlotStatus};

/// The resident planning service.
#[derive(Debug)]
pub struct PlanningService {
    core: ServiceCore,
    journal: Journal,
    /// Admitted-but-undrained entries (the current batch).
    queue: Vec<JournalEntry>,
}

impl PlanningService {
    /// Start a fresh service. When `journal_path` is given, every admitted
    /// request is durably journaled there and snapshots (if configured) go
    /// to `<journal_path>.snap`.
    pub fn new(cfg: ServiceConfig, journal_path: Option<&Path>) -> std::io::Result<Self> {
        let journal = Journal::create(cfg.clone(), journal_path)?;
        Ok(PlanningService {
            core: ServiceCore::new(cfg),
            journal,
            queue: Vec::new(),
        })
    }

    /// The deterministic core (inspection / tests).
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }

    /// Entries admitted since the last drain.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total entries ever journaled (drain markers and any compacted
    /// prefix included).
    pub fn journal_len(&self) -> usize {
        self.journal.absolute_len()
    }

    /// Entries currently retained on disk / in memory (compaction drops
    /// the snapshot-covered prefix).
    pub fn journal_retained(&self) -> usize {
        self.journal.entries.len()
    }

    /// Delegates to [`ServiceCore::fingerprint`].
    pub fn fingerprint(&self) -> String {
        self.core.fingerprint()
    }

    /// Where this service's snapshots go, if journaled to disk.
    pub fn snapshot_path(&self) -> Option<PathBuf> {
        self.journal
            .path()
            .map(|p| PathBuf::from(format!("{}.snap", p.display())))
    }

    /// Handle one raw protocol line.
    pub fn submit_line(&mut self, line: &str) -> String {
        match Request::parse(line) {
            Ok(req) => self.submit(&req),
            Err(e) => resp_error("parse", None, &e),
        }
    }

    /// Handle one parsed request, returning the JSONL response line.
    pub fn submit(&mut self, req: &Request) -> String {
        match req {
            Request::Query { id } => return self.answer_query(*id),
            Request::Stats => return self.answer_stats(),
            Request::Drain { at_ms } => return self.apply_drain(*at_ms),
            _ => {}
        }
        // Mutating, non-drain: validate, then admission-control, then
        // journal (write-ahead) and queue.
        if let Request::Register {
            id, sources, sink, ..
        } = req
        {
            if let Err(e) = self.core.validate_register(*id, sources, *sink) {
                return resp_error(req.op(), req.id(), &e);
            }
            if self
                .queue
                .iter()
                .any(|e| matches!(e, JournalEntry::Register { id: qid, .. } if qid == id))
            {
                return resp_error(req.op(), req.id(), &format!("query id {id} already queued"));
            }
        }
        if let Some(resp) = self.admission_check(req) {
            return resp;
        }
        let entry = JournalEntry::from_request(req).expect("mutating requests journal");
        if let Err(e) = self.journal.append(entry.clone()) {
            return resp_error(req.op(), req.id(), &format!("journal append failed: {e}"));
        }
        self.queue.push(entry);
        self.core.counters.admitted += 1;
        dsq_obs::counter("server.requests_admitted", 1);
        let mut fields: Vec<(&str, String)> = Vec::new();
        if let Some(id) = req.id() {
            fields.push(("id", id.to_string()));
        }
        fields.push(("queued", self.queue.len().to_string()));
        fields.push(("epoch", self.core.epoch.to_string()));
        resp_ok(req.op(), &fields)
    }

    /// Backpressure: at `max_queue` queued entries new registrations are
    /// shed; at twice that, every mutating request is — so under overload
    /// the service stops taking on *new* work first and keeps servicing
    /// replans and fault reports for the queries it already owns.
    fn admission_check(&mut self, req: &Request) -> Option<String> {
        let limit = if req.is_register() {
            self.core.cfg.max_queue
        } else {
            self.core.cfg.max_queue * 2
        };
        if self.queue.len() >= limit {
            // Write-ahead even for rejections: a recovered service must
            // report the same `shed` counter as the live run did, and the
            // only way replay can know about a rejection is the journal.
            let at_ms = JournalEntry::from_request(req).map_or(0, |e| e.at_ms());
            let entry = JournalEntry::Shed {
                op: req.op().to_string(),
                id: req.id(),
                at_ms,
            };
            if let Err(e) = self.journal.append(entry) {
                return Some(resp_error(
                    req.op(),
                    req.id(),
                    &format!("journal append failed: {e}"),
                ));
            }
            self.core.note_shed();
            return Some(resp_error(req.op(), req.id(), "overloaded"));
        }
        None
    }

    fn apply_drain(&mut self, at_ms: u64) -> String {
        if let Err(e) = self.journal.append(JournalEntry::Drain { at_ms }) {
            return resp_error("drain", None, &format!("journal append failed: {e}"));
        }
        let batch = std::mem::take(&mut self.queue);
        let summary = self.core.drain(&batch, at_ms);
        self.maybe_snapshot();
        resp_ok(
            "drain",
            &[
                ("epoch", summary.epoch.to_string()),
                ("applied", summary.applied.to_string()),
                ("planned", summary.planned.to_string()),
                ("replanned", summary.replanned.to_string()),
                ("deferred", summary.deferred.to_string()),
                ("timed_out", summary.timed_out.to_string()),
                ("stale", summary.stale.to_string()),
                ("parked", summary.parked.to_string()),
                ("lost", summary.lost.to_string()),
                ("total_cost", render_f64(summary.total_cost)),
            ],
        )
    }

    fn maybe_snapshot(&mut self) {
        let every = self.core.cfg.snapshot_every;
        if every == 0 || !self.core.counters.drains.is_multiple_of(every as u64) {
            return;
        }
        if let Some(path) = self.snapshot_path() {
            // Snapshots are an optimization; failing to write one only
            // costs recovery time, so errors are not fatal. Compaction runs
            // only once the snapshot is durably on disk — a failed write
            // must leave the full journal replayable.
            if std::fs::write(&path, snapshot::write(&self.core)).is_ok() {
                let _ = self.journal.compact(self.core.entries_applied);
            }
        }
    }

    fn answer_query(&self, id: u32) -> String {
        let Some(slot) = self.core.slots.get(&id) else {
            return resp_error("query", Some(id), "unknown query");
        };
        let mut fields: Vec<(&str, String)> = vec![
            ("id", id.to_string()),
            ("status", json_str(slot.status.name())),
            ("epoch", self.core.epoch.to_string()),
            ("planned_epoch", slot.planned_epoch.to_string()),
            ("stale", slot.stale.to_string()),
        ];
        if let Some(d) = &slot.deployment {
            fields.push(("cost", render_f64(d.cost)));
            fields.push(("sink", d.sink.0.to_string()));
            let placement: Vec<String> = d.placement.iter().map(|n| n.0.to_string()).collect();
            fields.push(("placement", format!("[{}]", placement.join(","))));
        }
        resp_ok("query", &fields)
    }

    fn answer_stats(&self) -> String {
        let mut fields: Vec<(&str, String)> = vec![
            ("epoch", self.core.epoch.to_string()),
            ("queued", self.queue.len().to_string()),
            ("queries", self.core.slots.len().to_string()),
            (
                "planned",
                self.core
                    .slots
                    .values()
                    .filter(|s| s.status == SlotStatus::Planned)
                    .count()
                    .to_string(),
            ),
        ];
        for (k, v) in self.core.counters.fields() {
            fields.push((k, v.to_string()));
        }
        let adverts = self.core.registry.stats();
        fields.push(("adverts_published", adverts.published.to_string()));
        fields.push(("adverts_live", adverts.live.to_string()));
        fields.push(("adverts_retired", adverts.retired.to_string()));
        fields.push(("adverts_evicted", adverts.evicted.to_string()));
        fields.push(("adverts_rederived", adverts.rederived.to_string()));
        let fields: Vec<(&str, String)> = fields;
        resp_ok("stats", &fields)
    }

    /// Recover a service from its on-disk journal: restore the latest
    /// snapshot if one exists (verifying it matches the journal's config),
    /// then replay the journal suffix through the normal drain path. The
    /// journal is reattached for continued appends.
    pub fn recover_from_path(journal_path: &Path) -> Result<Self, String> {
        let journal = Journal::load(journal_path)?;
        let snap_path = PathBuf::from(format!("{}.snap", journal_path.display()));
        let snap_core = match std::fs::read_to_string(&snap_path) {
            Ok(text) => {
                let core = snapshot::restore(&text)?;
                if core.cfg != journal.config {
                    return Err("snapshot config does not match journal config".into());
                }
                Some(core)
            }
            Err(_) => None,
        };
        Self::recover_with(journal, snap_core)
    }

    /// Recover purely from an in-memory journal (full replay, no snapshot).
    pub fn recover(journal: Journal) -> Result<Self, String> {
        Self::recover_with(journal, None)
    }

    fn recover_with(mut journal: Journal, snap_core: Option<ServiceCore>) -> Result<Self, String> {
        journal.config.validate()?;
        let (mut core, skip) = match snap_core {
            Some(core) => {
                // Entry indices in the snapshot are absolute; the journal
                // may have compacted everything the snapshot covers.
                if core.entries_applied < journal.base() {
                    return Err("snapshot is behind the compacted journal".into());
                }
                let skip = core.entries_applied - journal.base();
                if skip > journal.entries.len() {
                    return Err("snapshot is ahead of the journal".into());
                }
                (core, skip)
            }
            None => {
                if journal.base() > 0 {
                    return Err(
                        "journal is compacted but no snapshot covers the dropped prefix".into(),
                    );
                }
                (ServiceCore::new(journal.config.clone()), 0)
            }
        };
        let suffix = &journal.entries[skip..];
        let replayed = suffix.len();
        let mut queue: Vec<JournalEntry> = Vec::new();
        for entry in suffix {
            // Same path as live traffic: entries batch up until a drain
            // marker applies them as one wave, and admission counters are
            // re-emitted so the recovered trace matches the original.
            match entry {
                JournalEntry::Drain { at_ms } => {
                    let batch = std::mem::take(&mut queue);
                    core.drain(&batch, *at_ms);
                }
                JournalEntry::Shed { .. } => {
                    // Rejected at admission: re-count, never queue — shed
                    // entries must not consume queue capacity on replay.
                    core.note_shed();
                }
                other => {
                    core.counters.admitted += 1;
                    dsq_obs::counter("server.requests_admitted", 1);
                    queue.push(other.clone());
                }
            }
        }
        core.counters.recovery_replayed += replayed as u64;
        dsq_obs::counter("server.recovery_replayed", replayed as u64);
        dsq_obs::observe("server.recovery_replay_len", replayed as f64);
        journal
            .reattach()
            .map_err(|e| format!("cannot reattach journal: {e}"))?;
        Ok(PlanningService {
            core,
            journal,
            queue,
        })
    }
}

/// Render a JSON string literal (for pre-rendered response fields).
fn json_str(s: &str) -> String {
    let mut out = String::new();
    dsq_obs::json::push_str(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(cfg: ServiceConfig) -> PlanningService {
        PlanningService::new(cfg, None).unwrap()
    }

    #[test]
    fn register_drain_query_round_trip() {
        let mut s = svc(ServiceConfig::default());
        let r = s.submit_line(r#"{"op":"register","id":1,"sources":[0,1],"sink":3,"at_ms":10}"#);
        assert!(r.contains("\"ok\":true"), "{r}");
        let r = s.submit_line(r#"{"op":"drain","at_ms":20}"#);
        assert!(r.contains("\"planned\":1"), "{r}");
        let r = s.submit_line(r#"{"op":"query","id":1}"#);
        assert!(r.contains("\"status\":\"planned\""), "{r}");
        assert!(r.contains("\"placement\":["), "{r}");
        let r = s.submit_line(r#"{"op":"stats"}"#);
        assert!(r.contains("\"admitted\":1"), "{r}");
    }

    #[test]
    fn invalid_registrations_are_rejected_not_journaled() {
        let mut s = svc(ServiceConfig::default());
        let r = s.submit_line(r#"{"op":"register","id":1,"sources":[999],"sink":3,"at_ms":1}"#);
        assert!(r.contains("unknown stream"), "{r}");
        let r = s.submit_line(r#"{"op":"register","id":1,"sources":[0,0],"sink":3,"at_ms":1}"#);
        assert!(r.contains("duplicate stream"), "{r}");
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.core().counters.admitted, 0);
    }

    #[test]
    fn registrations_shed_before_replans() {
        let mut s = svc(ServiceConfig {
            max_queue: 2,
            ..ServiceConfig::default()
        });
        for id in 0..2 {
            let r = s.submit_line(&format!(
                r#"{{"op":"register","id":{id},"sources":[0,1],"sink":3,"at_ms":1}}"#
            ));
            assert!(r.contains("\"ok\":true"), "{r}");
        }
        // Queue is at max_queue: registers shed, replans still admitted.
        let r = s.submit_line(r#"{"op":"register","id":9,"sources":[0,1],"sink":3,"at_ms":2}"#);
        assert!(r.contains("overloaded"), "{r}");
        let r = s.submit_line(r#"{"op":"replan","id":0,"at_ms":2}"#);
        assert!(r.contains("\"ok\":true"), "{r}");
        assert_eq!(s.core().counters.shed, 1);
        // At 2× max_queue everything mutating is shed.
        s.submit_line(r#"{"op":"fault","kind":"crash","node":0,"at_ms":3}"#);
        let r = s.submit_line(r#"{"op":"replan","id":1,"at_ms":3}"#);
        assert!(r.contains("overloaded"), "{r}");
        // Drain is never shed — it is the pressure release.
        let r = s.submit_line(r#"{"op":"drain","at_ms":10}"#);
        assert!(r.contains("\"ok\":true"), "{r}");
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn shed_requests_survive_recovery() {
        // A shed request never reaches a drain batch, but its accounting is
        // part of the fingerprint — so the rejection must be journaled and
        // replayed, or recovery diverges from the live run.
        let mut s = svc(ServiceConfig {
            max_queue: 1,
            ..ServiceConfig::default()
        });
        s.submit_line(r#"{"op":"register","id":1,"sources":[0,1],"sink":3,"at_ms":10}"#);
        let r = s.submit_line(r#"{"op":"register","id":2,"sources":[2,3],"sink":5,"at_ms":11}"#);
        assert!(r.contains("overloaded"), "{r}");
        s.submit_line(r#"{"op":"drain","at_ms":20}"#);
        assert_eq!(s.core().counters.shed, 1);
        // Shed entries hold journal indexes: drain folds them into the
        // applied count so snapshot compaction stays index-consistent.
        assert_eq!(s.core().entries_applied, s.journal_len());
        let text = s.journal.to_text();
        let recovered = PlanningService::recover(Journal::parse(&text).unwrap()).unwrap();
        assert_eq!(recovered.core().counters.shed, 1);
        assert_eq!(recovered.fingerprint(), s.fingerprint());
        assert_eq!(recovered.core().entries_applied, s.core().entries_applied);
    }

    #[test]
    fn recovery_replays_the_journal() {
        let mut s = svc(ServiceConfig::default());
        s.submit_line(r#"{"op":"register","id":1,"sources":[0,1],"sink":3,"at_ms":10}"#);
        s.submit_line(r#"{"op":"drain","at_ms":20}"#);
        s.submit_line(r#"{"op":"register","id":2,"sources":[2,3],"sink":5,"at_ms":30}"#);
        let text = s.journal.to_text();
        // "Crash": rebuild purely from the journal text.
        let recovered = PlanningService::recover(Journal::parse(&text).unwrap()).unwrap();
        assert_eq!(recovered.fingerprint(), s.fingerprint());
        assert_eq!(recovered.queue_len(), 1, "undrained register survives");
        assert_eq!(recovered.core().counters.recovery_replayed, 3);
    }
}
