//! Service configuration: the seeded world the service plans in, plus the
//! admission-control and degradation knobs.
//!
//! The configuration is the first thing written to a journal (as
//! `config.<key> = <value>` lines, the `.case` idiom from `dsq-fuzz`), so a
//! journal file alone reconstructs the service bit-for-bit: topology,
//! hierarchy and catalog are pure functions of these fields.

use dsq_core::Environment;
use dsq_net::TransitStubConfig;
use dsq_query::Catalog;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

/// Complete recipe for a service instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Seed driving topology generation and the catalog's rates and
    /// selectivities.
    pub seed: u64,
    /// Transit domains of the transit-stub topology.
    pub transit_domains: usize,
    /// Transit nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains per transit node.
    pub stub_domains_per_transit_node: usize,
    /// Nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Hierarchy cluster-size cap.
    pub max_cs: usize,
    /// Base streams in the catalog (registrations reference these by id).
    pub streams: usize,
    /// Memoized subplan cache on/off.
    pub cache: bool,
    /// Bound on queued state-mutating requests. At the bound, new
    /// registrations are shed; every mutating request is shed at twice the
    /// bound (registrations go first — replans and fault reports keep
    /// flowing while the service degrades).
    pub max_queue: usize,
    /// Default per-request deadline: a queued register/replan older than
    /// this at drain time is dropped with a typed timeout error. `0`
    /// disables the default (requests can still carry their own).
    pub default_deadline_ms: u64,
    /// Maximum queries (re)planned per drain wave; `0` = unbounded. When a
    /// drain exceeds the budget, dirty-but-still-valid queries keep serving
    /// their last valid epoch's plan, flagged stale.
    pub replan_budget: usize,
    /// Degradation threshold: a planned query whose re-costed deployment
    /// exceeds its baseline by this fraction (in thousandths) is marked for
    /// replanning after a link change.
    pub threshold_milli: u64,
    /// Write a snapshot every this many drains (`0` = never). Recovery from
    /// a snapshot replays only the journal suffix.
    pub snapshot_every: usize,
    /// Maximum live adverts in the reuse registry (`0` = unbounded).
    /// Publishing past the budget evicts the coldest advert; a probe that
    /// would have matched an evicted advert triggers re-derivation at the
    /// next drain.
    pub advert_budget: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 42,
            transit_domains: 1,
            transit_nodes_per_domain: 2,
            stub_domains_per_transit_node: 2,
            stub_nodes_per_domain: 4,
            max_cs: 4,
            streams: 8,
            cache: true,
            max_queue: 64,
            default_deadline_ms: 0,
            replan_budget: 0,
            threshold_milli: 200,
            snapshot_every: 0,
            advert_budget: 0,
        }
    }
}

impl ServiceConfig {
    /// Materialize the environment this configuration describes: topology,
    /// hierarchy and an (initially query-free) catalog. Deterministic — two
    /// builds of the same config are bit-identical.
    pub fn build(&self) -> (Environment, Catalog) {
        let net = TransitStubConfig {
            transit_domains: self.transit_domains,
            transit_nodes_per_domain: self.transit_nodes_per_domain,
            stub_domains_per_transit_node: self.stub_domains_per_transit_node,
            stub_nodes_per_domain: self.stub_nodes_per_domain,
            ..TransitStubConfig::default()
        }
        .generate(self.seed)
        .network;
        let mut env = Environment::build(net, self.max_cs);
        env.isolate_cache(self.cache);
        let workload = WorkloadGenerator::new(
            WorkloadConfig {
                streams: self.streams,
                queries: 0,
                joins_per_query: 1..=1,
                ..WorkloadConfig::default()
            },
            self.seed,
        )
        .generate(&env.network);
        (env, workload.catalog)
    }

    /// Serialize as `config.<key> = <value>` lines (one per field).
    pub fn to_lines(&self) -> String {
        let mut out = String::new();
        let mut kv = |k: &str, v: String| out.push_str(&format!("config.{k} = {v}\n"));
        kv("seed", self.seed.to_string());
        kv("transit_domains", self.transit_domains.to_string());
        kv(
            "transit_nodes_per_domain",
            self.transit_nodes_per_domain.to_string(),
        );
        kv(
            "stub_domains_per_transit_node",
            self.stub_domains_per_transit_node.to_string(),
        );
        kv(
            "stub_nodes_per_domain",
            self.stub_nodes_per_domain.to_string(),
        );
        kv("max_cs", self.max_cs.to_string());
        kv("streams", self.streams.to_string());
        kv("cache", u64::from(self.cache).to_string());
        kv("max_queue", self.max_queue.to_string());
        kv("default_deadline_ms", self.default_deadline_ms.to_string());
        kv("replan_budget", self.replan_budget.to_string());
        kv("threshold_milli", self.threshold_milli.to_string());
        kv("snapshot_every", self.snapshot_every.to_string());
        kv("advert_budget", self.advert_budget.to_string());
        out
    }

    /// Apply one `config.<key> = <value>` line (key passed without the
    /// `config.` prefix).
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let as_usize =
            |v: &str| -> Result<usize, String> { v.parse().map_err(|e| format!("{key}: {e}")) };
        let as_u64 =
            |v: &str| -> Result<u64, String> { v.parse().map_err(|e| format!("{key}: {e}")) };
        match key {
            "seed" => self.seed = as_u64(value)?,
            "transit_domains" => self.transit_domains = as_usize(value)?,
            "transit_nodes_per_domain" => self.transit_nodes_per_domain = as_usize(value)?,
            "stub_domains_per_transit_node" => {
                self.stub_domains_per_transit_node = as_usize(value)?
            }
            "stub_nodes_per_domain" => self.stub_nodes_per_domain = as_usize(value)?,
            "max_cs" => self.max_cs = as_usize(value)?,
            "streams" => self.streams = as_usize(value)?,
            "cache" => self.cache = as_u64(value)? != 0,
            "max_queue" => self.max_queue = as_usize(value)?,
            "default_deadline_ms" => self.default_deadline_ms = as_u64(value)?,
            "replan_budget" => self.replan_budget = as_usize(value)?,
            "threshold_milli" => self.threshold_milli = as_u64(value)?,
            "snapshot_every" => self.snapshot_every = as_usize(value)?,
            "advert_budget" => self.advert_budget = as_usize(value)?,
            other => return Err(format!("unknown config key {other:?}")),
        }
        Ok(())
    }

    /// Validate the shape (mirrors the `.case` floor checks).
    pub fn validate(&self) -> Result<(), String> {
        if self.transit_domains == 0
            || self.transit_nodes_per_domain == 0
            || self.stub_nodes_per_domain == 0
        {
            return Err("topology shape must be nonzero".into());
        }
        if self.streams < 2 {
            return Err("need at least 2 streams".into());
        }
        if self.max_cs < 2 {
            return Err("max_cs must be at least 2".into());
        }
        if self.max_queue == 0 {
            return Err("max_queue must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_lines_round_trip() {
        let cfg = ServiceConfig {
            seed: 7,
            max_queue: 3,
            replan_budget: 2,
            default_deadline_ms: 250,
            snapshot_every: 4,
            advert_budget: 5,
            ..ServiceConfig::default()
        };
        let mut back = ServiceConfig::default();
        for line in cfg.to_lines().lines() {
            let (k, v) = line.split_once('=').unwrap();
            let k = k.trim().strip_prefix("config.").unwrap();
            back.set(k, v.trim()).unwrap();
        }
        assert_eq!(cfg, back);
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = ServiceConfig::default();
        let (a, ca) = cfg.build();
        let (b, cb) = cfg.build();
        assert_eq!(a.network.len(), b.network.len());
        assert_eq!(ca.len(), cb.len());
        for (sa, sb) in ca.streams().iter().zip(cb.streams()) {
            assert_eq!(sa.rate.to_bits(), sb.rate.to_bits());
            assert_eq!(sa.node, sb.node);
        }
    }
}
