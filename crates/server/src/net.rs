//! Transport front-ends: the in-process line harness (tests, `--script`,
//! stdin) and a minimal sequential TCP listener.
//!
//! Both speak the same JSONL protocol and drive the same
//! [`PlanningService`]; the TCP path handles connections one at a time so
//! the service stays a single deterministic state machine — concurrency is
//! batched by admission control, not by threads.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

use crate::service::PlanningService;

/// Control line that closes the current connection / input stream.
pub const QUIT: &str = "quit";
/// Control line that closes the connection *and* stops a TCP server.
pub const SHUTDOWN: &str = "shutdown";

/// Serve one line stream: read JSONL requests from `input`, write one
/// JSONL response per request to `output`. Blank lines and `#` comments
/// are skipped; [`QUIT`] or [`SHUTDOWN`] ends the stream. Returns whether
/// a [`SHUTDOWN`] was seen.
pub fn serve_lines<R: BufRead, W: Write>(
    svc: &mut PlanningService,
    input: R,
    output: &mut W,
) -> std::io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == QUIT {
            return Ok(false);
        }
        if line == SHUTDOWN {
            return Ok(true);
        }
        writeln!(output, "{}", svc.submit_line(line))?;
        output.flush()?;
    }
    Ok(false)
}

/// Run a script (a slice of request lines) and collect the responses —
/// the in-process harness used by tests and `dsqctl serve --script`.
pub fn run_script(svc: &mut PlanningService, lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#') && *l != QUIT && *l != SHUTDOWN)
        .map(|l| svc.submit_line(l))
        .collect()
}

/// Bind `addr` and serve connections sequentially until a client sends
/// [`SHUTDOWN`]. Prints the bound address to `status` once listening (so
/// harnesses can bind port 0 and discover the port).
pub fn serve_tcp<W: Write>(
    svc: &mut PlanningService,
    addr: &str,
    status: &mut W,
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    writeln!(status, "listening on {}", listener.local_addr()?)?;
    status.flush()?;
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        if serve_lines(svc, reader, &mut writer)? {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;

    #[test]
    fn line_harness_serves_and_quits() {
        let mut svc = PlanningService::new(ServiceConfig::default(), None).unwrap();
        let input = "\
# a comment\n\
{\"op\":\"register\",\"id\":1,\"sources\":[0,1],\"sink\":3,\"at_ms\":5}\n\
\n\
{\"op\":\"drain\",\"at_ms\":10}\n\
quit\n\
{\"op\":\"stats\"}\n";
        let mut out = Vec::new();
        let shutdown = serve_lines(&mut svc, input.as_bytes(), &mut out).unwrap();
        assert!(!shutdown);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "quit stops before the stats request");
        assert!(lines[1].contains("\"planned\":1"));
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        // Serve on an ephemeral port in a thread; client registers, drains,
        // then shuts the server down.
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let mut svc = PlanningService::new(ServiceConfig::default(), None).unwrap();
            let mut status = Vec::new();
            serve_tcp(&mut svc, "127.0.0.1:0", &mut StatusTee(&mut status, tx)).unwrap();
            svc.core().epoch
        });
        let addr: String = rx.recv().unwrap();
        let mut conn = TcpStream::connect(addr.trim()).unwrap();
        conn.write_all(
            b"{\"op\":\"register\",\"id\":1,\"sources\":[0,1],\"sink\":3,\"at_ms\":5}\n\
              {\"op\":\"drain\",\"at_ms\":10}\nshutdown\n",
        )
        .unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"planned\":1"), "{line}");
        assert_eq!(server.join().unwrap(), 1);
    }

    /// Captures the "listening on ..." status line and forwards the
    /// address to the test thread.
    struct StatusTee<'a>(&'a mut Vec<u8>, std::sync::mpsc::Sender<String>);

    impl Write for StatusTee<'_> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.extend_from_slice(buf);
            let text = String::from_utf8_lossy(self.0);
            if let Some(rest) = text.strip_prefix("listening on ") {
                if rest.contains('\n') {
                    let _ = self.1.send(rest.trim().to_string());
                }
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
