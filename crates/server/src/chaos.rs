//! Service-level fault injection: seeded request scripts with interleaved
//! faults, and seeded kill-and-recover schedules that crash the service
//! at chosen journal lengths and restart it through recovery.
//!
//! The fault timeline itself comes from the existing chaos machinery —
//! [`dsq_sim::chaos::FaultSchedule`] with the same [`FaultConfig`] knobs
//! the `ChaosRunner` uses — translated into protocol fault requests, so
//! the service is exercised by the same churn storms as the adaptive
//! runtime. Everything is a pure function of the seeds: the same config
//! produces the same script, the same kill points and (the property
//! `tests/recovery.rs` drives) the same final service state whether or not
//! the process died along the way.

use std::path::Path;

use dsq_sim::chaos::{Fault, FaultConfig, FaultSchedule};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::config::ServiceConfig;
use crate::service::PlanningService;

/// Decorrelates the script RNG from the fault-schedule RNG (the same
/// constant `dsq-fuzz` uses for its schedule stream).
const SCRIPT_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Knobs for [`generate_script`].
#[derive(Clone, Debug)]
pub struct ScriptConfig {
    /// Seed for the script and the fault schedule.
    pub seed: u64,
    /// Queries registered over the run.
    pub queries: usize,
    /// Streams joined per query (2..=cap, clamped to the catalog).
    pub max_sources: usize,
    /// Forced replans sprinkled over registered queries.
    pub replans: usize,
    /// Unregistrations sprinkled over registered queries.
    pub unregisters: usize,
    /// Mutating requests per drain wave.
    pub batch: usize,
    /// Read-only probes (`query` / every fourth a `stats`) sprinkled over
    /// the timeline. Reads are never journaled, so they do not shift crash
    /// schedules; they pin response-level state (slot status, epochs,
    /// counters) across recovery. 0 (the default) consumes no RNG draws,
    /// keeping scripts from older configs byte-identical.
    pub reads: usize,
    /// Fault-timeline knobs (shared with the sim chaos runner).
    pub faults: FaultConfig,
}

impl Default for ScriptConfig {
    fn default() -> Self {
        ScriptConfig {
            seed: 42,
            queries: 6,
            max_sources: 3,
            replans: 3,
            unregisters: 1,
            batch: 4,
            reads: 0,
            faults: FaultConfig {
                events: 6,
                mean_gap_ms: 500.0,
                ..FaultConfig::default()
            },
        }
    }
}

/// Generate a deterministic JSONL request script: registrations, replans
/// and unregistrations interleaved by virtual time with the seeded fault
/// timeline, a drain after every `batch` mutations, and a final drain.
pub fn generate_script(cfg: &ServiceConfig, script: &ScriptConfig) -> Vec<String> {
    let (env, catalog) = cfg.build();
    let schedule = FaultSchedule::generate(&env, &script.faults, script.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(script.seed ^ SCRIPT_STREAM);
    let horizon = schedule
        .faults
        .last()
        .map(|f| f.at_ms.ceil() as u64 + 1)
        .max(Some(1_000))
        .unwrap();

    // (time, sequence, request-JSON) — sequence keeps ties stable.
    let mut timeline: Vec<(u64, usize, String)> = Vec::new();
    let mut seq = 0usize;
    let mut push = |timeline: &mut Vec<(u64, usize, String)>, t: u64, line: String| {
        timeline.push((t, seq, line));
        seq += 1;
    };

    let mut ids: Vec<u32> = Vec::new();
    for q in 0..script.queries {
        let id = q as u32 + 1;
        let t = rng.gen_range(0..horizon);
        let n_src = rng
            .gen_range(2..=script.max_sources.max(2))
            .min(catalog.len());
        let mut sources: Vec<u32> = Vec::new();
        while sources.len() < n_src {
            let s = rng.gen_range(0..catalog.len() as u32);
            if !sources.contains(&s) {
                sources.push(s);
            }
        }
        let sink = rng.gen_range(0..env.network.len() as u32);
        let src_list: Vec<String> = sources.iter().map(u32::to_string).collect();
        push(
            &mut timeline,
            t,
            format!(
                r#"{{"op":"register","id":{id},"sources":[{}],"sink":{sink},"at_ms":{t}}}"#,
                src_list.join(",")
            ),
        );
        ids.push(id);
    }
    for _ in 0..script.replans {
        let id = ids[rng.gen_range(0..ids.len())];
        let t = rng.gen_range(horizon / 2..horizon);
        push(
            &mut timeline,
            t,
            format!(r#"{{"op":"replan","id":{id},"at_ms":{t}}}"#),
        );
    }
    for _ in 0..script.unregisters.min(ids.len()) {
        let id = ids[rng.gen_range(0..ids.len())];
        let t = rng.gen_range(horizon / 2..horizon);
        push(
            &mut timeline,
            t,
            format!(r#"{{"op":"unregister","id":{id},"at_ms":{t}}}"#),
        );
    }
    for r in 0..script.reads {
        let t = rng.gen_range(0..horizon);
        if r % 4 == 3 || ids.is_empty() {
            push(&mut timeline, t, r#"{"op":"stats"}"#.to_string());
        } else {
            let id = ids[rng.gen_range(0..ids.len())];
            push(&mut timeline, t, format!(r#"{{"op":"query","id":{id}}}"#));
        }
    }
    for tf in &schedule.faults {
        let t = tf.at_ms.ceil() as u64;
        match &tf.fault {
            Fault::Crash(n) => push(
                &mut timeline,
                t,
                format!(
                    r#"{{"op":"fault","kind":"crash","node":{},"at_ms":{t}}}"#,
                    n.0
                ),
            ),
            Fault::CrashCluster(nodes) => {
                for n in nodes {
                    push(
                        &mut timeline,
                        t,
                        format!(
                            r#"{{"op":"fault","kind":"crash","node":{},"at_ms":{t}}}"#,
                            n.0
                        ),
                    );
                }
            }
            Fault::Rejoin(n) => push(
                &mut timeline,
                t,
                format!(
                    r#"{{"op":"fault","kind":"rejoin","node":{},"at_ms":{t}}}"#,
                    n.0
                ),
            ),
            Fault::DegradeLink { a, b, factor } => {
                let factor_milli = ((factor * 1000.0).round() as u64).max(1);
                push(
                    &mut timeline,
                    t,
                    format!(
                        r#"{{"op":"fault","kind":"degrade","a":{},"b":{},"factor_milli":{factor_milli},"at_ms":{t}}}"#,
                        a.0, b.0
                    ),
                );
            }
        }
    }

    timeline.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
    let mut lines = Vec::new();
    let mut since_drain = 0usize;
    let mut last_t = 0u64;
    for (t, _, line) in timeline {
        lines.push(line);
        last_t = last_t.max(t);
        since_drain += 1;
        if since_drain >= script.batch.max(1) {
            last_t += 1;
            lines.push(format!(r#"{{"op":"drain","at_ms":{last_t}}}"#));
            since_drain = 0;
        }
    }
    last_t += 1;
    lines.push(format!(r#"{{"op":"drain","at_ms":{last_t}}}"#));
    lines
}

/// A seeded crash/restart schedule: after which journal lengths to kill
/// the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Kill points, as journal entry counts, strictly increasing.
    pub kill_at: Vec<usize>,
}

impl CrashSchedule {
    /// Pick `kills` distinct kill points within a journal of
    /// `journal_len` entries.
    pub fn generate(seed: u64, journal_len: usize, kills: usize) -> CrashSchedule {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut kill_at: Vec<usize> = Vec::new();
        let mut attempts = 0;
        while kill_at.len() < kills && attempts < kills * 20 && journal_len > 0 {
            let k = rng.gen_range(1..=journal_len);
            if !kill_at.contains(&k) {
                kill_at.push(k);
            }
            attempts += 1;
        }
        kill_at.sort_unstable();
        CrashSchedule { kill_at }
    }

    /// Every possible kill point (exhaustive crash-recovery sweeps).
    pub fn exhaustive(journal_len: usize) -> CrashSchedule {
        CrashSchedule {
            kill_at: (1..=journal_len).collect(),
        }
    }
}

/// What a chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// One response line per request line.
    pub responses: Vec<String>,
    /// Kill-and-recover cycles actually executed.
    pub kills: usize,
    /// Final plan epoch.
    pub final_epoch: u64,
    /// Final state fingerprint ([`crate::state::ServiceCore::fingerprint`]).
    pub fingerprint: String,
}

/// Run a script against an in-memory service (the uncrashed reference).
pub fn run_plain(cfg: &ServiceConfig, lines: &[String]) -> std::io::Result<ChaosOutcome> {
    let mut svc = PlanningService::new(cfg.clone(), None)?;
    let responses = lines.iter().map(|l| svc.submit_line(l)).collect();
    Ok(ChaosOutcome {
        responses,
        kills: 0,
        final_epoch: svc.core().epoch,
        fingerprint: svc.fingerprint(),
    })
}

/// Run a script against a journaled service, killing the process state and
/// recovering from disk every time the journal reaches the next kill
/// point. The outcome's fingerprint must equal the uncrashed run's — that
/// is the crash-recovery contract.
pub fn run_with_crashes(
    cfg: &ServiceConfig,
    lines: &[String],
    schedule: &CrashSchedule,
    journal_path: &Path,
) -> Result<ChaosOutcome, String> {
    let mut svc = PlanningService::new(cfg.clone(), Some(journal_path))
        .map_err(|e| format!("cannot start journaled service: {e}"))?;
    let mut kill_iter = schedule.kill_at.iter().copied().peekable();
    let mut kills = 0usize;
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        responses.push(svc.submit_line(line));
        while kill_iter.peek().is_some_and(|&k| svc.journal_len() >= k) {
            kill_iter.next();
            drop(svc); // the "crash": all in-memory state is gone
            svc = PlanningService::recover_from_path(journal_path)?;
            kills += 1;
        }
    }
    Ok(ChaosOutcome {
        responses,
        kills,
        final_epoch: svc.core().epoch,
        fingerprint: svc.fingerprint(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_parse() {
        let cfg = ServiceConfig::default();
        let script = ScriptConfig::default();
        let a = generate_script(&cfg, &script);
        let b = generate_script(&cfg, &script);
        assert_eq!(a, b);
        assert!(a.len() > script.queries);
        for line in &a {
            crate::protocol::Request::parse(line).unwrap();
        }
        assert!(a.last().unwrap().contains("\"op\":\"drain\""));
    }

    #[test]
    fn crash_schedules_are_seeded_and_bounded() {
        let s = CrashSchedule::generate(7, 20, 4);
        assert_eq!(s, CrashSchedule::generate(7, 20, 4));
        assert!(s.kill_at.len() <= 4);
        assert!(s.kill_at.windows(2).all(|w| w[0] < w[1]));
        assert!(s.kill_at.iter().all(|&k| (1..=20).contains(&k)));
        assert_eq!(CrashSchedule::exhaustive(3).kill_at, vec![1, 2, 3]);
    }

    #[test]
    fn killed_and_recovered_run_matches_the_uncrashed_run() {
        let cfg = ServiceConfig::default();
        let script = ScriptConfig {
            queries: 4,
            faults: FaultConfig {
                events: 4,
                mean_gap_ms: 300.0,
                ..FaultConfig::default()
            },
            ..ScriptConfig::default()
        };
        let lines = generate_script(&cfg, &script);
        let reference = run_plain(&cfg, &lines).unwrap();
        let dir = std::env::temp_dir().join(format!("dsq-chaos-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chaos.journal");
        let schedule = CrashSchedule::generate(9, lines.len(), 3);
        let crashed = run_with_crashes(&cfg, &lines, &schedule, &path).unwrap();
        assert!(crashed.kills > 0);
        assert_eq!(crashed.fingerprint, reference.fingerprint);
        assert_eq!(crashed.final_epoch, reference.final_epoch);
        assert_eq!(crashed.responses, reference.responses);
        std::fs::remove_dir_all(&dir).ok();
    }
}
