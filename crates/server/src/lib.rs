//! # dsq-server — the fault-tolerant resident planning service
//!
//! A long-lived front-end over the multi-query planner (`dsqctl serve`):
//! clients register, unregister and replan standing queries and report
//! node/link faults over a JSONL protocol ([`protocol`]); the service
//! batches admission bursts and applies each batch as a single
//! [`dsq_core::optimize_all`] / [`dsq_core::optimize_dirty`] planning
//! wave, handing plans off under a monotone epoch number.
//!
//! Robustness is the point of the crate:
//!
//! * **Write-ahead journal** ([`journal`]) — every admitted mutating
//!   request is journaled (in the `.case` text idiom from `dsq-fuzz`)
//!   before it is applied. The service is a deterministic state machine
//!   over journal entries, so replaying the journal reconstructs a crashed
//!   service *bit-for-bit* — deployments, cost bits, counters and the
//!   virtual-clock obs trace (`tests/recovery.rs` proves this at every
//!   possible crash point).
//! * **Snapshots** ([`snapshot`]) — periodic textual checkpoints that let
//!   recovery replay only the journal suffix; deployments are re-derived
//!   from their join-tree shape and verified against recorded cost bits.
//! * **Admission control** ([`service`]) — bounded request queues with
//!   typed `overloaded` errors: new registrations shed first, replans and
//!   fault reports later, drains never. Per-request deadlines drop overdue
//!   queued work with `timed_out` accounting.
//! * **Graceful degradation** ([`state`]) — when a drain wave exceeds the
//!   replan budget, still-valid queries keep serving their last valid
//!   epoch's plan, flagged `stale` in responses, and catch up once the
//!   storm passes. Plans invalidated by a crash are *never* served stale.
//! * **Fault injection** ([`chaos`]) — seeded request scripts built on the
//!   sim crate's [`dsq_sim::chaos::FaultSchedule`], plus seeded
//!   crash/restart schedules that kill the service mid-run and recover it
//!   through the journal.
//!
//! Observability: the service emits `server.*` counters
//! (`requests_admitted` / `requests_shed` / `requests_timed_out`,
//! `stale_served`, `faults_applied` / `faults_skipped`,
//! `recovery_replayed`) and a `server.drain` span per wave, all on the
//! deterministic virtual clock of [`dsq_obs`].

pub mod chaos;
pub mod config;
pub mod journal;
pub mod net;
pub mod protocol;
pub mod service;
pub mod snapshot;
pub mod state;

pub use chaos::{
    generate_script, run_plain, run_with_crashes, ChaosOutcome, CrashSchedule, ScriptConfig,
};
pub use config::ServiceConfig;
pub use journal::{Journal, JournalEntry};
pub use protocol::{FaultReq, Request};
pub use service::PlanningService;
pub use state::{DrainSummary, ServiceCore, ServiceCounters, SlotStatus};
