//! Fault surgery at scale: the incremental-repair Degrade path must be
//! indistinguishable from the full-rebuild control arm. Two `ServiceCore`s
//! fed the same seeded Degrade/Crash/Rejoin schedule — one with
//! `RepairStrategy::Incremental`, one with `RepairStrategy::FullRebuild` —
//! must produce identical fingerprints, epoch sequences, distance-matrix
//! bits and `plan_cache` retirement accounting after every drain wave,
//! while the incremental arm pays a full APSP only on the documented
//! weight-decrease fallback.

use dsq_net::NodeId;
use dsq_obs::{scoped, ClockMode, Sink};
use dsq_server::state::RepairStrategy;
use dsq_server::{FaultReq, JournalEntry, ServiceConfig, ServiceCore};

/// Deterministic xorshift step driving the schedule.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// All undirected links of the core's network as (a, b) pairs, a < b.
fn links_of(core: &ServiceCore) -> Vec<(u32, u32)> {
    let net = &core.env.network;
    let mut links = Vec::new();
    for u in 0..net.len() as u32 {
        for l in net.neighbors(NodeId(u)) {
            if u < l.to.0 {
                links.push((u, l.to.0));
            }
        }
    }
    links
}

/// A core with a few registered-and-planned queries, so fault surgery has
/// plans to dirty, park and retire.
fn seeded_core(repair: RepairStrategy) -> ServiceCore {
    let cfg = ServiceConfig {
        // A larger topology than the default so degrade repair has real
        // rows to skip: 2×2 transit, 3 stubs of 4 → ~52 nodes.
        transit_domains: 2,
        transit_nodes_per_domain: 2,
        stub_domains_per_transit_node: 3,
        stub_nodes_per_domain: 4,
        streams: 12,
        ..ServiceConfig::default()
    };
    let mut core = ServiceCore::new(cfg);
    core.repair = repair;
    let sinks: Vec<u32> = core
        .env
        .hierarchy
        .active_nodes()
        .iter()
        .map(|n| n.0)
        .collect();
    let batch: Vec<JournalEntry> = (0..6u32)
        .map(|id| JournalEntry::Register {
            id,
            sources: vec![id % 12, (id + 5) % 12],
            sink: sinks[(3 * id as usize + 1) % sinks.len()],
            deadline_ms: None,
            at_ms: 0,
        })
        .collect();
    core.drain(&batch, 10);
    core
}

/// Build the seeded fault schedule: `waves` drain batches, each carrying a
/// mix of degrades (mostly increases), crashes and rejoins.
fn schedule(
    core: &ServiceCore,
    seed: u64,
    waves: usize,
    decreases: bool,
) -> Vec<Vec<JournalEntry>> {
    let links = links_of(core);
    let n = core.env.network.len() as u32;
    let mut state = seed | 1;
    let mut crashed: Vec<u32> = Vec::new();
    let mut out = Vec::with_capacity(waves);
    for w in 0..waves {
        let at_ms = 20 + 10 * w as u64;
        let mut batch = Vec::new();
        for _ in 0..3 {
            let fault = match next(&mut state) % 4 {
                0 | 1 => {
                    let (a, b) = links[next(&mut state) as usize % links.len()];
                    // Increases by default; the decrease menu entry is only
                    // offered when the caller wants the fallback exercised.
                    let menu: &[u64] = if decreases {
                        &[1500, 3000, 700]
                    } else {
                        &[1500, 3000, 9000]
                    };
                    let factor_milli = menu[next(&mut state) as usize % menu.len()];
                    FaultReq::Degrade { a, b, factor_milli }
                }
                2 => {
                    let node = next(&mut state) as u32 % n;
                    crashed.push(node);
                    FaultReq::Crash(node)
                }
                _ => match crashed.pop() {
                    Some(node) => FaultReq::Rejoin(node),
                    None => FaultReq::Rejoin(next(&mut state) as u32 % n),
                },
            };
            batch.push(JournalEntry::Fault { fault, at_ms });
        }
        out.push(batch);
    }
    out
}

/// Drive both arms through the same schedule, asserting equivalence after
/// every wave. Returns (incremental trace, control trace) as obs JSONL.
fn run_differential(seed: u64, waves: usize, decreases: bool) -> (String, String) {
    let mut inc = seeded_core(RepairStrategy::Incremental);
    let mut ctl = seeded_core(RepairStrategy::FullRebuild);
    assert_eq!(inc.fingerprint(), ctl.fingerprint(), "seeding diverged");
    let batches = schedule(&inc, seed, waves, decreases);

    let inc_sink = Sink::new(ClockMode::Virtual);
    let ctl_sink = Sink::new(ClockMode::Virtual);
    for (w, batch) in batches.iter().enumerate() {
        let at_ms = 20 + 10 * w as u64;
        let si = {
            let _g = scoped(inc_sink.clone());
            inc.drain(batch, at_ms)
        };
        let sc = {
            let _g = scoped(ctl_sink.clone());
            ctl.drain(batch, at_ms)
        };
        assert_eq!(si.epoch, sc.epoch, "seed {seed} wave {w}: epoch diverged");
        assert_eq!(
            inc.fingerprint(),
            ctl.fingerprint(),
            "seed {seed} wave {w}: fingerprints diverged"
        );
        assert_eq!(
            inc.env.plan_cache.retired(),
            ctl.env.plan_cache.retired(),
            "seed {seed} wave {w}: retirement accounting diverged"
        );
        let n = inc.env.dm.len();
        assert_eq!(n, ctl.env.dm.len());
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                assert_eq!(
                    inc.env.dm.get(NodeId(a), NodeId(b)).to_bits(),
                    ctl.env.dm.get(NodeId(a), NodeId(b)).to_bits(),
                    "seed {seed} wave {w}: dm bits diverged at ({a},{b})"
                );
            }
        }
    }
    (inc_sink.to_jsonl(), ctl_sink.to_jsonl())
}

fn count_counter(trace: &str, name: &str) -> usize {
    trace.lines().filter(|l| l.contains(name)).count()
}

#[test]
fn incremental_and_full_rebuild_arms_are_bit_identical() {
    for seed in [11u64, 47] {
        let (inc_trace, ctl_trace) = run_differential(seed, 8, false);
        // The increase-only schedule must never trip the fallback: the
        // incremental arm pays zero full rebuilds while the control arm
        // pays one per applied degrade.
        assert_eq!(
            count_counter(&inc_trace, "server.degrade_rebuilds"),
            0,
            "seed {seed}: incremental arm paid a full rebuild on an increase"
        );
        assert!(
            count_counter(&inc_trace, "server.degrade_rows_repaired") > 0,
            "seed {seed}: schedule never exercised incremental repair"
        );
        assert!(
            count_counter(&ctl_trace, "server.degrade_rebuilds") > 0,
            "seed {seed}: control arm recorded no rebuilds"
        );
    }
}

#[test]
fn weight_decreases_take_the_documented_fallback() {
    let (inc_trace, _ctl) = run_differential(23, 8, true);
    // With decreases in the menu the fallback must fire at least once —
    // and the equivalence assertions inside run_differential prove the
    // fallback path is also bit-identical to the control arm.
    assert!(
        count_counter(&inc_trace, "server.degrade_rebuilds") > 0,
        "decrease schedule never hit the fallback rebuild"
    );
    assert!(
        count_counter(&inc_trace, "server.degrade_rows_repaired") > 0,
        "decrease schedule never repaired incrementally"
    );
}
