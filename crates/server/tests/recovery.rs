//! Crash-recovery differentials: the service killed at *every possible
//! journal index* must recover to exactly the state the uncrashed run
//! reaches — same fingerprint (plans, cost bits, counters), same epoch,
//! same responses — and a pure journal replay must reproduce the original
//! run's virtual-clock observability trace byte-for-byte.

use std::path::{Path, PathBuf};

use dsq_obs::{scoped, ClockMode, Sink};
use dsq_server::{
    generate_script, run_plain, run_with_crashes, CrashSchedule, PlanningService, ScriptConfig,
    ServiceConfig,
};
use dsq_sim::chaos::FaultConfig;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsq-recovery-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Journal length the script produces (every scripted line is mutating or
/// a drain, so each is journaled).
fn journal_len_of(cfg: &ServiceConfig, lines: &[String], dir: &Path) -> usize {
    let path = dir.join("probe.journal");
    let mut svc = PlanningService::new(cfg.clone(), Some(&path)).unwrap();
    for l in lines {
        svc.submit_line(l);
    }
    svc.journal_len()
}

fn small_script() -> ScriptConfig {
    ScriptConfig {
        queries: 4,
        replans: 2,
        unregisters: 1,
        faults: FaultConfig {
            events: 4,
            mean_gap_ms: 300.0,
            ..FaultConfig::default()
        },
        ..ScriptConfig::default()
    }
}

#[test]
fn kill_at_every_journal_index_recovers_exactly() {
    let cfg = ServiceConfig::default();
    let lines = generate_script(&cfg, &small_script());
    let reference = run_plain(&cfg, &lines).unwrap();
    let dir = temp_dir("sweep");
    let len = journal_len_of(&cfg, &lines, &dir);
    assert_eq!(len, lines.len(), "every scripted request is journaled");

    for k in 1..=len {
        let path = dir.join(format!("kill-{k}.journal"));
        let schedule = CrashSchedule { kill_at: vec![k] };
        let crashed = run_with_crashes(&cfg, &lines, &schedule, &path).unwrap();
        assert_eq!(crashed.kills, 1, "kill point {k} never triggered");
        assert_eq!(
            crashed.fingerprint, reference.fingerprint,
            "state diverged after a crash at journal index {k}"
        );
        assert_eq!(crashed.final_epoch, reference.final_epoch, "kill point {k}");
        assert_eq!(
            crashed.responses, reference.responses,
            "responses diverged after a crash at journal index {k}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn surviving_a_crash_after_every_single_entry_in_one_run() {
    let cfg = ServiceConfig::default();
    let lines = generate_script(&cfg, &small_script());
    let reference = run_plain(&cfg, &lines).unwrap();
    let dir = temp_dir("exhaustive");
    let path = dir.join("exhaustive.journal");
    let schedule = CrashSchedule::exhaustive(lines.len());
    let crashed = run_with_crashes(&cfg, &lines, &schedule, &path).unwrap();
    assert_eq!(crashed.kills, lines.len(), "one crash per journal entry");
    assert_eq!(crashed.fingerprint, reference.fingerprint);
    assert_eq!(crashed.final_epoch, reference.final_epoch);
    assert_eq!(crashed.responses, reference.responses);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replay_trace_is_bit_identical() {
    // Journal-only recovery (no snapshot) re-drives every entry through the
    // same code path as live traffic, so the recovered run's virtual-clock
    // JSONL trace must equal the original's — the only additions are the
    // recovery accounting lines themselves.
    let cfg = ServiceConfig::default();
    let lines = generate_script(&cfg, &ScriptConfig::default());
    let dir = temp_dir("trace");
    let path = dir.join("trace.journal");

    let live = Sink::new(ClockMode::Virtual);
    {
        let _g = scoped(live.clone());
        let mut svc = PlanningService::new(cfg.clone(), Some(&path)).unwrap();
        for l in &lines {
            svc.submit_line(l);
        }
    }
    let live_trace = live.to_jsonl();
    assert!(
        live_trace.contains("server.drain"),
        "live run recorded drain spans"
    );

    let replay = Sink::new(ClockMode::Virtual);
    {
        let _g = scoped(replay.clone());
        PlanningService::recover_from_path(&path).unwrap();
    }
    let replay_trace: String = replay
        .to_jsonl()
        .lines()
        .filter(|l| !l.contains("server.recovery_replay"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        replay_trace, live_trace,
        "journal replay must reproduce the live obs trace byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compacted_and_uncompacted_replays_are_fingerprint_identical() {
    // One service snapshots (and therefore compacts its journal) after
    // every drain; the other never does. Fed the same script, both their
    // live states and their recovered states must match bit-for-bit —
    // compaction changes only what is *stored*, never what is *replayed*.
    let compacting = ServiceConfig {
        snapshot_every: 1,
        ..ServiceConfig::default()
    };
    let plain = ServiceConfig::default();
    let lines = generate_script(&plain, &small_script());
    let dir = temp_dir("compaction");
    let cpath = dir.join("compacting.journal");
    let upath = dir.join("uncompacted.journal");

    let mut c = PlanningService::new(compacting, Some(&cpath)).unwrap();
    let mut u = PlanningService::new(plain, Some(&upath)).unwrap();
    for l in &lines {
        c.submit_line(l);
        u.submit_line(l);
    }
    assert!(
        c.journal_retained() < c.journal_len(),
        "snapshot_every=1 must actually truncate the replayed prefix \
         (retained {}, absolute {})",
        c.journal_retained(),
        c.journal_len()
    );
    assert_eq!(
        c.journal_len(),
        u.journal_len(),
        "absolute journal accounting is compaction-invariant"
    );
    assert_eq!(c.fingerprint(), u.fingerprint(), "live states diverged");

    let rc = PlanningService::recover_from_path(&cpath).unwrap();
    let ru = PlanningService::recover_from_path(&upath).unwrap();
    assert_eq!(
        rc.fingerprint(),
        ru.fingerprint(),
        "compacted recovery diverged from full replay"
    );
    assert_eq!(rc.fingerprint(), c.fingerprint(), "recovery lost state");
    assert_eq!(rc.queue_len(), u.queue_len());

    // A compacted journal without its snapshot is typed-unrecoverable:
    // the prefix is gone, so silently replaying the suffix would be wrong.
    let snap = PathBuf::from(format!("{}.snap", cpath.display()));
    std::fs::remove_file(&snap).unwrap();
    let err = PlanningService::recover_from_path(&cpath).unwrap_err();
    assert!(err.contains("compacted"), "unexpected error: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_fast_forward_recovery_matches_full_replay() {
    let cfg = ServiceConfig {
        snapshot_every: 2,
        ..ServiceConfig::default()
    };
    let lines = generate_script(&cfg, &small_script());
    let reference = run_plain(&cfg, &lines).unwrap();
    let dir = temp_dir("snapshot");
    let path = dir.join("snap.journal");
    let schedule = CrashSchedule::generate(3, lines.len(), 4);
    let crashed = run_with_crashes(&cfg, &lines, &schedule, &path).unwrap();
    assert!(crashed.kills > 0);
    let snap_path = PathBuf::from(format!("{}.snap", path.display()));
    assert!(
        snap_path.exists(),
        "snapshots were configured but never written"
    );
    assert_eq!(crashed.fingerprint, reference.fingerprint);
    assert_eq!(crashed.final_epoch, reference.final_epoch);
    assert_eq!(crashed.responses, reference.responses);
    std::fs::remove_dir_all(&dir).ok();
}
