//! Admission control and graceful degradation: shed-load ordering under a
//! full queue, per-request deadlines, and stale-serve behaviour when a
//! churn storm exceeds the replan budget — plus the `server.*` counters
//! that make each visible.

use dsq_obs::{scoped, ClockMode, Sink};
use dsq_server::{PlanningService, ServiceConfig};

fn service(cfg: ServiceConfig) -> PlanningService {
    PlanningService::new(cfg, None).unwrap()
}

#[test]
fn churn_storm_serves_stale_plans_then_recovers() {
    let sink = Sink::new(ClockMode::Virtual);
    let _g = scoped(sink.clone());
    // Budget of one plan per drain; the budget bounds initial planning too,
    // so admit the three queries one drain at a time.
    let mut s = service(ServiceConfig {
        replan_budget: 1,
        ..ServiceConfig::default()
    });
    let regs = [
        r#"{"op":"register","id":1,"sources":[0,1],"sink":3,"at_ms":1}"#,
        r#"{"op":"register","id":2,"sources":[2,3],"sink":5,"at_ms":2}"#,
        r#"{"op":"register","id":3,"sources":[4,5],"sink":7,"at_ms":3}"#,
    ];
    for (i, reg) in regs.iter().enumerate() {
        let r = s.submit_line(reg);
        assert!(r.contains(r#""ok":true"#), "{r}");
        let r = s.submit_line(&format!(r#"{{"op":"drain","at_ms":{}}}"#, 10 + i));
        assert!(r.contains(r#""planned":1"#), "{r}");
    }

    // Storm: every query goes dirty at once, but only one replan fits per
    // drain. The other two keep serving their last valid epoch's plans,
    // flagged stale, until later drains work the backlog off.
    for id in 1..=3 {
        let r = s.submit_line(&format!(r#"{{"op":"replan","id":{id},"at_ms":20}}"#));
        assert!(r.contains(r#""ok":true"#), "{r}");
    }
    let r = s.submit_line(r#"{"op":"drain","at_ms":21}"#);
    assert!(r.contains(r#""replanned":1"#), "{r}");
    assert!(r.contains(r#""stale":2"#), "{r}");
    let r = s.submit_line(r#"{"op":"query","id":2}"#);
    assert!(r.contains(r#""stale":true"#), "{r}");
    assert!(r.contains(r#""status":"planned""#), "{r}");
    assert!(
        r.contains(r#""cost":"#),
        "stale slots still serve a plan: {r}"
    );

    // Storm over: two more drains retry the deferred replans and clear the
    // stale flags.
    let r = s.submit_line(r#"{"op":"drain","at_ms":22}"#);
    assert!(
        r.contains(r#""replanned":1"#) && r.contains(r#""stale":1"#),
        "{r}"
    );
    let r = s.submit_line(r#"{"op":"drain","at_ms":23}"#);
    assert!(
        r.contains(r#""replanned":1"#) && r.contains(r#""stale":0"#),
        "{r}"
    );
    for id in 1..=3 {
        let r = s.submit_line(&format!(r#"{{"op":"query","id":{id}}}"#));
        assert!(r.contains(r#""stale":false"#), "{r}");
    }
    // 2 stale serves in the storm drain + 1 in the next.
    let r = s.submit_line(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""stale_served":3"#), "{r}");

    drop(_g);
    let trace = sink.to_jsonl();
    assert!(
        trace.contains(r#""counter":"server.stale_served","value":3"#),
        "stale serving is observable:\n{trace}"
    );
}

#[test]
fn overload_sheds_registrations_before_replans() {
    let sink = Sink::new(ClockMode::Virtual);
    let _g = scoped(sink.clone());
    let mut s = service(ServiceConfig {
        max_queue: 2,
        ..ServiceConfig::default()
    });
    // Registrations shed at max_queue…
    let r = s.submit_line(r#"{"op":"register","id":1,"sources":[0,1],"sink":3,"at_ms":1}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.submit_line(r#"{"op":"register","id":2,"sources":[2,3],"sink":5,"at_ms":1}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.submit_line(r#"{"op":"register","id":3,"sources":[4,5],"sink":7,"at_ms":1}"#);
    assert!(r.contains("overloaded"), "{r}");
    // …but replans and fault reports for existing work are still admitted
    // up to twice that.
    let r = s.submit_line(r#"{"op":"replan","id":1,"at_ms":2}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.submit_line(r#"{"op":"fault","kind":"crash","node":0,"at_ms":2}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.submit_line(r#"{"op":"replan","id":2,"at_ms":2}"#);
    assert!(r.contains("overloaded"), "{r}");
    // Drains are never shed: they are the only way out of overload.
    let r = s.submit_line(r#"{"op":"drain","at_ms":5}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.submit_line(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""shed":2"#), "{r}");

    drop(_g);
    let trace = sink.to_jsonl();
    assert!(
        trace.contains(r#""counter":"server.requests_shed","value":2"#),
        "shedding is observable:\n{trace}"
    );
}

#[test]
fn deadline_expired_requests_time_out_with_typed_error_accounting() {
    let mut s = service(ServiceConfig {
        default_deadline_ms: 50,
        ..ServiceConfig::default()
    });
    let r = s.submit_line(r#"{"op":"register","id":1,"sources":[0,1],"sink":3,"at_ms":0}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.submit_line(r#"{"op":"register","id":2,"sources":[2,3],"sink":5,"at_ms":100}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    // The drain arrives 100 ms in: query 1's 50 ms deadline has lapsed,
    // query 2's has not.
    let r = s.submit_line(r#"{"op":"drain","at_ms":100}"#);
    assert!(r.contains(r#""timed_out":1"#), "{r}");
    assert!(r.contains(r#""planned":1"#), "{r}");
    let r = s.submit_line(r#"{"op":"query","id":1}"#);
    assert!(
        r.contains("unknown query"),
        "timed-out work never lands: {r}"
    );
    let r = s.submit_line(r#"{"op":"query","id":2}"#);
    assert!(r.contains(r#""status":"planned""#), "{r}");
    let r = s.submit_line(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""timed_out":1"#), "{r}");
}

#[test]
fn explicit_deadline_overrides_the_default() {
    let mut s = service(ServiceConfig {
        default_deadline_ms: 50,
        ..ServiceConfig::default()
    });
    let r = s.submit_line(
        r#"{"op":"register","id":1,"sources":[0,1],"sink":3,"at_ms":0,"deadline_ms":500}"#,
    );
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.submit_line(r#"{"op":"drain","at_ms":100}"#);
    assert!(r.contains(r#""timed_out":0"#), "{r}");
    assert!(r.contains(r#""planned":1"#), "{r}");
}
