//! Property tests for the chaos script generator: same seed must mean a
//! byte-identical script, and every generated script must be
//! protocol-valid — each line parses back through `protocol::Request`, the
//! mutating prefix of every script is drain-terminated, and registrations
//! pass the catalog/topology validation a live service would apply.

use dsq_server::{generate_script, Request, ScriptConfig, ServiceConfig};
use dsq_sim::chaos::FaultConfig;

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

    /// Same `(ServiceConfig, ScriptConfig)` ⇒ byte-identical script, for
    /// arbitrary knob combinations (not just the defaults).
    #[test]
    fn generate_script_is_deterministic(
        seed in 0u64..1000,
        queries in 1usize..=8,
        replans in 0usize..=4,
        unregisters in 0usize..=3,
        batch in 1usize..=6,
        reads in 0usize..=6,
        events in 0usize..=6,
    ) {
        let cfg = ServiceConfig { seed, ..ServiceConfig::default() };
        let script = ScriptConfig {
            seed,
            queries,
            replans,
            unregisters,
            batch,
            reads,
            faults: FaultConfig {
                events,
                mean_gap_ms: 400.0,
                ..FaultConfig::default()
            },
            ..ScriptConfig::default()
        };
        let a = generate_script(&cfg, &script);
        let b = generate_script(&cfg, &script);
        proptest::prop_assert_eq!(&a, &b, "script generation consumed nondeterministic state");
        proptest::prop_assert!(!a.is_empty());
    }

    /// Every generated line is protocol-valid: it parses, registrations
    /// reference real streams/nodes without duplicates, and the script ends
    /// on a drain so no admitted work is left unapplied.
    #[test]
    fn generated_scripts_are_protocol_valid(
        seed in 0u64..1000,
        queries in 1usize..=8,
        reads in 0usize..=8,
        events in 0usize..=6,
    ) {
        let cfg = ServiceConfig { seed, ..ServiceConfig::default() };
        let script = ScriptConfig {
            seed,
            queries,
            reads,
            faults: FaultConfig {
                events,
                mean_gap_ms: 400.0,
                ..FaultConfig::default()
            },
            ..ScriptConfig::default()
        };
        let (env, catalog) = cfg.build();
        let lines = generate_script(&cfg, &script);
        let mut registers = 0usize;
        for line in &lines {
            let req = Request::parse(line);
            proptest::prop_assert!(
                req.is_ok(),
                "unparseable script line {:?}: {:?}",
                line,
                req.as_ref().err()
            );
            let req = req.unwrap();
            if let Request::Register { sources, sink, .. } = &req {
                registers += 1;
                proptest::prop_assert!(!sources.is_empty());
                let mut seen = std::collections::HashSet::new();
                for &s in sources {
                    proptest::prop_assert!((s as usize) < catalog.len(), "unknown stream {}", s);
                    proptest::prop_assert!(seen.insert(s), "duplicate stream {}", s);
                }
                proptest::prop_assert!((*sink as usize) < env.network.len(), "unknown sink {}", sink);
            }
        }
        proptest::prop_assert_eq!(registers, queries, "one register per configured query");
        let last = lines.last().unwrap();
        proptest::prop_assert!(
            last.contains(r#""op":"drain""#),
            "script must end on a drain, got {}", last
        );
    }
}
