//! Workload generation.
//!
//! "We used a synthetic workload so that we could experiment with a large
//! variety of stream rates, query complexities, and operator selectivities.
//! Our workload was generated using a uniformly random workload generator.
//! The workload generator generated stream rates, selectivities and source
//! placements for a specified number of streams according to a uniform
//! distribution. It also generated queries with the number of joins per
//! query varying within a specified range (2-5 joins per query) with random
//! sink placements." (Section 3.)
//!
//! [`WorkloadGenerator`] reproduces exactly that, deterministically under a
//! seed. [`scenario`] additionally provides the paper's motivating airline
//! OIS example (Section 1.1) as a concrete named workload.

pub mod generator;
pub mod scenario;
pub mod trace;

pub use generator::{Workload, WorkloadConfig, WorkloadGenerator};
pub use scenario::{airline_scenario, AirlineScenario};
pub use trace::{RateTrace, RateTraceConfig};
