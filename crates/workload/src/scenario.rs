//! The airline Operational Information System scenario of Section 1.1.
//!
//! Reconstructs the paper's motivating example: Delta's OIS operating over
//! the small network `N` of Figure 3, with stream sources `WEATHER`,
//! `FLIGHTS` and `CHECK-INS`, processing nodes `N1–N5`, and overhead-display
//! sinks. Query `Q1` joins all three streams for flights departing Atlanta
//! in the next 12 hours; query `Q2` (deployed first) joins `FLIGHTS` with
//! `CHECK-INS` under the same filters — so a joint optimizer can reuse Q2's
//! join for Q1 by picking the `(FLIGHTS ⋈ CHECK-INS) ⋈ WEATHER` ordering.

use dsq_net::{LinkKind, Network, NodeId, NodeKind};
use dsq_query::{Catalog, CmpOp, JoinPredicate, Query, QueryId, Schema, SelectionPredicate};

/// The reconstructed airline scenario.
#[derive(Clone, Debug)]
pub struct AirlineScenario {
    /// The example network `N` of Figure 3.
    pub network: Network,
    /// Streams `WEATHER`, `FLIGHTS`, `CHECK-INS` with estimated statistics.
    pub catalog: Catalog,
    /// `Q2` then `Q1`, in the deployment order the paper discusses.
    pub queries: Vec<Query>,
    /// Named node handles for examples and tests.
    pub nodes: AirlineNodes,
}

/// Named nodes of the Figure 3 network.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub struct AirlineNodes {
    pub weather_src: NodeId,
    pub flights_src: NodeId,
    pub checkins_src: NodeId,
    pub n1: NodeId,
    pub n2: NodeId,
    pub n3: NodeId,
    pub n4: NodeId,
    pub n5: NodeId,
    pub sink3: NodeId,
    pub sink4: NodeId,
}

/// Build the airline scenario.
pub fn airline_scenario() -> AirlineScenario {
    // Figure 3: sources on the left, N1–N5 available for processing, sinks
    // on the right. Link costs make intra-cluster hops cheap and the
    // WEATHER side slightly remote, mirroring the paper's narrative that
    // FLIGHTS ⋈ CHECK-INS at N1 is attractive.
    let mut net = Network::new(0);
    let weather_src = net.add_node(NodeKind::Stub);
    let flights_src = net.add_node(NodeKind::Stub);
    let checkins_src = net.add_node(NodeKind::Stub);
    let n1 = net.add_node(NodeKind::Stub);
    let n2 = net.add_node(NodeKind::Stub);
    let n3 = net.add_node(NodeKind::Stub);
    let n4 = net.add_node(NodeKind::Stub);
    let n5 = net.add_node(NodeKind::Stub);
    let sink3 = net.add_node(NodeKind::Stub);
    let sink4 = net.add_node(NodeKind::Stub);

    let link = |net: &mut Network, a, b, cost| {
        net.add_link(a, b, cost, 2.0, LinkKind::Stub);
    };
    link(&mut net, flights_src, n1, 1.0);
    link(&mut net, checkins_src, n1, 1.0);
    link(&mut net, flights_src, n2, 2.0);
    link(&mut net, weather_src, n2, 1.0);
    link(&mut net, n1, n3, 1.0);
    link(&mut net, n2, n3, 1.0);
    link(&mut net, n1, n4, 2.0);
    link(&mut net, n2, n5, 2.0);
    link(&mut net, n4, n5, 1.0);
    link(&mut net, n3, sink3, 1.0);
    link(&mut net, n3, sink4, 1.0);
    link(&mut net, n4, sink4, 2.0);

    let mut catalog = Catalog::new();
    let weather = catalog.add_stream(
        "WEATHER",
        40.0,
        weather_src,
        Schema::new(["CITY", "FORECAST"]),
    );
    let flights = catalog.add_stream(
        "FLIGHTS",
        60.0,
        flights_src,
        Schema::new(["NUM", "STATUS", "DEPARTING", "DESTN", "DP-TIME"]),
    );
    let checkins = catalog.add_stream(
        "CHECK-INS",
        80.0,
        checkins_src,
        Schema::new(["FLNUM", "STATUS"]),
    );
    // FLIGHTS ⋈ CHECK-INS on flight number is selective; FLIGHTS ⋈ WEATHER
    // on destination city matches most flights to one forecast.
    catalog.set_selectivity(flights, checkins, 0.005);
    catalog.set_selectivity(flights, weather, 0.02);

    // Shared filters of Q1/Q2: departing Atlanta within 12 hours. Constants
    // are numeric codes ("ATLANTA" hashed to 1.0; hours as numbers).
    let departing_atlanta = SelectionPredicate::new(flights, "DEPARTING", CmpOp::Eq, 1.0, 0.2);
    let within_12h = SelectionPredicate::new(flights, "DP-TIME", CmpOp::Lt, 12.0, 0.5);

    let mut q2 = Query::join(QueryId(0), [flights, checkins], sink3);
    q2.selections = vec![departing_atlanta.clone(), within_12h.clone()];
    q2.join_predicates = vec![JoinPredicate::new(flights, "NUM", checkins, "FLNUM")];
    q2.projection = vec![(flights, "STATUS".into()), (checkins, "STATUS".into())];
    q2.validate();

    let mut q1 = Query::join(QueryId(1), [flights, weather, checkins], sink4);
    q1.selections = vec![departing_atlanta, within_12h];
    q1.join_predicates = vec![
        JoinPredicate::new(flights, "DESTN", weather, "CITY"),
        JoinPredicate::new(flights, "NUM", checkins, "FLNUM"),
    ];
    q1.projection = vec![
        (flights, "STATUS".into()),
        (weather, "FORECAST".into()),
        (checkins, "STATUS".into()),
    ];
    q1.validate();

    AirlineScenario {
        network: net,
        catalog,
        queries: vec![q2, q1],
        nodes: AirlineNodes {
            weather_src,
            flights_src,
            checkins_src,
            n1,
            n2,
            n3,
            n4,
            n5,
            sink3,
            sink4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::{DistanceMatrix, Metric};

    #[test]
    fn scenario_is_well_formed() {
        let s = airline_scenario();
        assert!(s.network.is_connected());
        assert_eq!(s.catalog.len(), 3);
        assert_eq!(s.queries.len(), 2);
        assert_eq!(s.queries[0].join_count(), 1, "Q2 has one join");
        assert_eq!(s.queries[1].join_count(), 2, "Q1 has two joins");
    }

    #[test]
    fn flights_checkins_join_is_cheap_at_n1() {
        // Both inputs of FLIGHTS ⋈ CHECK-INS are one cheap hop from N1 —
        // the placement the paper's narrative expects for Q2.
        let s = airline_scenario();
        let dm = DistanceMatrix::build(&s.network, Metric::Cost);
        let f = s.catalog.stream(dsq_query::StreamId(1)).node;
        let c = s.catalog.stream(dsq_query::StreamId(2)).node;
        assert_eq!(dm.get(f, s.nodes.n1), 1.0);
        assert_eq!(dm.get(c, s.nodes.n1), 1.0);
    }

    #[test]
    fn q1_filters_subsume_q2_filters() {
        let s = airline_scenario();
        let q2 = &s.queries[0];
        let q1 = &s.queries[1];
        assert!(dsq_query::predicate::selections_compatible(
            &q2.selections,
            &q1.selections
        ));
    }
}
