//! Evolving data conditions: stream-rate traces.
//!
//! The paper's middleware "re-triggers the query optimization algorithm
//! when the changes in network, load or **data** conditions demand
//! recomputing of query plans and deployments". This module generates the
//! data-condition side of that story: a seeded per-step rate trace where
//! every stream follows a multiplicative random walk and occasionally
//! surges (a flash crowd on one stream), to drive the adaptivity loop over
//! simulated time.

use dsq_query::{Catalog, StreamId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Trace generation parameters.
#[derive(Clone, Debug)]
pub struct RateTraceConfig {
    /// Number of time steps.
    pub steps: usize,
    /// Per-step multiplicative drift: each rate is scaled by a uniform
    /// factor in `[1 − drift, 1 + drift]`.
    pub drift: f64,
    /// Probability that a given stream surges in a given step.
    pub surge_prob: f64,
    /// Multiplier applied on a surge (decays back through the drift).
    pub surge_factor: f64,
    /// Rates are clamped to this range to keep the system stable.
    pub rate_bounds: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for RateTraceConfig {
    fn default() -> Self {
        RateTraceConfig {
            steps: 20,
            drift: 0.05,
            surge_prob: 0.02,
            surge_factor: 8.0,
            rate_bounds: (1.0, 1000.0),
            seed: 0xDA7A,
        }
    }
}

/// One step of rate updates: `(stream, new_rate)` for every stream.
pub type RateStep = Vec<(StreamId, f64)>;

/// A generated sequence of rate updates.
#[derive(Clone, Debug)]
pub struct RateTrace {
    /// Per-step new rates, full snapshot each step.
    pub steps: Vec<RateStep>,
    /// `(step, stream)` surge events, for assertions and reporting.
    pub surges: Vec<(usize, StreamId)>,
}

impl RateTrace {
    /// Generate a trace starting from the catalog's current rates.
    pub fn generate(catalog: &Catalog, cfg: &RateTraceConfig) -> Self {
        assert!(cfg.drift >= 0.0 && cfg.drift < 1.0);
        assert!(cfg.rate_bounds.0 > 0.0 && cfg.rate_bounds.0 <= cfg.rate_bounds.1);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut rates: Vec<f64> = catalog.streams().iter().map(|s| s.rate).collect();
        let mut steps = Vec::with_capacity(cfg.steps);
        let mut surges = Vec::new();
        for step in 0..cfg.steps {
            let mut snapshot = Vec::with_capacity(rates.len());
            for (i, r) in rates.iter_mut().enumerate() {
                let factor = if cfg.drift > 0.0 {
                    rng.gen_range(1.0 - cfg.drift..1.0 + cfg.drift)
                } else {
                    1.0
                };
                *r *= factor;
                if cfg.surge_prob > 0.0 && rng.gen_bool(cfg.surge_prob) {
                    *r *= cfg.surge_factor;
                    surges.push((step, StreamId(i as u32)));
                }
                *r = r.clamp(cfg.rate_bounds.0, cfg.rate_bounds.1);
                snapshot.push((StreamId(i as u32), *r));
            }
            steps.push(snapshot);
        }
        RateTrace { steps, surges }
    }

    /// Apply one step's rates to a catalog.
    pub fn apply(&self, catalog: &mut Catalog, step: usize) {
        for &(s, r) in &self.steps[step] {
            catalog.set_rate(s, r);
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::NodeId;
    use dsq_query::Schema;

    fn catalog(n: usize) -> Catalog {
        let mut c = Catalog::new();
        for i in 0..n {
            c.add_stream(format!("S{i}"), 50.0, NodeId(0), Schema::default());
        }
        c
    }

    #[test]
    fn trace_is_seeded_and_bounded() {
        let c = catalog(10);
        let cfg = RateTraceConfig::default();
        let a = RateTrace::generate(&c, &cfg);
        let b = RateTrace::generate(&c, &cfg);
        assert_eq!(a.len(), cfg.steps);
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa, sb, "deterministic under the seed");
        }
        for step in &a.steps {
            for &(_, r) in step {
                assert!(r >= cfg.rate_bounds.0 && r <= cfg.rate_bounds.1);
            }
        }
    }

    #[test]
    fn surges_jump_rates() {
        let c = catalog(20);
        let cfg = RateTraceConfig {
            steps: 50,
            surge_prob: 0.05,
            drift: 0.0,
            ..RateTraceConfig::default()
        };
        let t = RateTrace::generate(&c, &cfg);
        assert!(!t.surges.is_empty(), "50 steps × 20 streams × 5% surges");
        let (step, stream) = t.surges[0];
        let rate_at =
            |st: usize| -> f64 { t.steps[st].iter().find(|(s, _)| *s == stream).unwrap().1 };
        let before = if step == 0 { 50.0 } else { rate_at(step - 1) };
        assert!(rate_at(step) > before * 2.0, "surge multiplies the rate");
    }

    #[test]
    fn apply_updates_the_catalog() {
        let mut c = catalog(5);
        let t = RateTrace::generate(&c, &RateTraceConfig::default());
        t.apply(&mut c, t.len() - 1);
        for (i, s) in c.streams().iter().enumerate() {
            assert_eq!(s.rate, t.steps[t.len() - 1][i].1);
        }
    }
}
