//! The uniformly random workload generator of Section 3.

use dsq_net::{Network, NodeId};
use dsq_query::{Catalog, Query, QueryId, Schema, StreamId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::RangeInclusive;

/// Parameters of the random workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of base streams to create.
    pub streams: usize,
    /// Number of queries to create.
    pub queries: usize,
    /// Joins per query, drawn uniformly from this range (the paper uses
    /// 2–5 for the simulation experiments and 1–4 on Emulab).
    pub joins_per_query: RangeInclusive<usize>,
    /// Uniform range of base stream rates.
    pub rate_range: (f64, f64),
    /// Uniform range of pairwise join selectivities.
    pub selectivity_range: (f64, f64),
    /// Place sources and sinks only on stub nodes (the realistic choice on
    /// transit-stub topologies; set to `false` to use every node).
    pub stubs_only: bool,
    /// Zipf skew for the per-query source draw. `None` = uniform.
    ///
    /// With a uniform draw over 100 streams, the expected number of
    /// operator-level sharing opportunities across 20 queries is below 2,
    /// so the paper's reuse savings (27–30%, Figure 7) cannot materialize;
    /// real monitoring workloads concentrate on popular streams. A skew of
    /// `Some(1.0)` makes hot streams recur across queries, which is the
    /// regime the reuse experiments reproduce (see EXPERIMENTS.md).
    pub source_skew: Option<f64>,
    /// Probability that a query filters each of its sources with a
    /// timestamp-window selection (`ts < v`, `v ∈ {6, 12, 24}` with
    /// selectivity `v/24`). Windows drawn from a shared discrete set create
    /// exact matches *and* subsumption relationships between queries, which
    /// the reuse-matching ablation needs. Default 0.0 (pure joins, as in
    /// the paper's simulation workload).
    pub selection_prob: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            streams: 100,
            queries: 20,
            joins_per_query: 2..=5,
            rate_range: (10.0, 100.0),
            // Chosen so a join's output rate is comparable to its input
            // rates on average: with rates ~55 and σ ~0.02 the output is
            // ~60. Uniform per the paper.
            selectivity_range: (0.002, 0.04),
            stubs_only: true,
            source_skew: None,
            selection_prob: 0.0,
        }
    }
}

/// A generated workload: the stream catalog plus the query batch.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Streams, rates, placements and the selectivity matrix.
    pub catalog: Catalog,
    /// Queries in arrival order (experiments deploy them incrementally).
    pub queries: Vec<Query>,
}

/// Seeded random workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: ChaCha8Rng,
}

impl WorkloadGenerator {
    /// Create a generator with the given configuration and seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        assert!(
            config.streams > *config.joins_per_query.end(),
            "need at least max joins + 1 streams"
        );
        assert!(*config.joins_per_query.start() >= 1);
        WorkloadGenerator {
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Generate a workload over `net`. Repeated calls produce fresh
    /// workloads from the same seeded sequence (the paper averages over 10
    /// generated workloads).
    pub fn generate(&mut self, net: &Network) -> Workload {
        let placement_pool: Vec<NodeId> = if self.config.stubs_only {
            let stubs = net.stub_nodes();
            if stubs.is_empty() {
                net.nodes().collect()
            } else {
                stubs
            }
        } else {
            net.nodes().collect()
        };
        assert!(!placement_pool.is_empty(), "network has no placement nodes");

        let mut catalog = Catalog::new();
        for i in 0..self.config.streams {
            let rate = self.uniform(self.config.rate_range);
            let node = *placement_pool.choose(&mut self.rng).unwrap();
            catalog.add_stream(
                format!("S{i}"),
                rate,
                node,
                Schema::new([format!("k{i}"), "ts".to_string()]),
            );
        }
        // Full pairwise selectivity matrix, so every join ordering the
        // optimizers may consider has a defined estimate.
        for a in 0..self.config.streams {
            for b in (a + 1)..self.config.streams {
                let sigma = self.uniform(self.config.selectivity_range);
                catalog.set_selectivity(StreamId(a as u32), StreamId(b as u32), sigma);
            }
        }

        let mut queries = Vec::with_capacity(self.config.queries);
        let all_streams: Vec<StreamId> = (0..self.config.streams as u32).map(StreamId).collect();
        for qi in 0..self.config.queries {
            let joins = self.rng.gen_range(self.config.joins_per_query.clone());
            let k = joins + 1;
            let sources: Vec<StreamId> = match self.config.source_skew {
                None => all_streams
                    .choose_multiple(&mut self.rng, k)
                    .copied()
                    .collect(),
                Some(s) => self.zipf_sample(&all_streams, k, s),
            };
            let sink = *placement_pool.choose(&mut self.rng).unwrap();
            let mut query = Query::join(QueryId(qi as u32), sources, sink);
            if self.config.selection_prob > 0.0 {
                const WINDOWS: [f64; 3] = [6.0, 12.0, 24.0];
                for &s in &query.sources.clone() {
                    if self.rng.gen_bool(self.config.selection_prob) {
                        let v = WINDOWS[self.rng.gen_range(0..WINDOWS.len())];
                        query.selections.push(dsq_query::SelectionPredicate::new(
                            s,
                            "ts",
                            dsq_query::CmpOp::Lt,
                            v,
                            v / 24.0,
                        ));
                    }
                }
                query.validate();
            }
            queries.push(query);
        }
        Workload { catalog, queries }
    }

    /// Draw `k` distinct streams with Zipf(`s`) popularity over stream id
    /// rank (weighted sampling without replacement).
    fn zipf_sample(&mut self, streams: &[StreamId], k: usize, s: f64) -> Vec<StreamId> {
        let mut weights: Vec<f64> = (0..streams.len())
            .map(|r| 1.0 / ((r + 1) as f64).powf(s))
            .collect();
        let mut chosen = Vec::with_capacity(k);
        for _ in 0..k {
            let total: f64 = weights.iter().sum();
            let mut target = self.rng.gen_range(0.0..total);
            let mut pick = streams.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            chosen.push(streams[pick]);
            weights[pick] = 0.0;
        }
        chosen
    }

    fn uniform(&mut self, range: (f64, f64)) -> f64 {
        if range.0 >= range.1 {
            range.0
        } else {
            self.rng.gen_range(range.0..range.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::TransitStubConfig;

    fn net() -> Network {
        TransitStubConfig::paper_64().generate(1).network
    }

    #[test]
    fn generates_requested_counts() {
        let net = net();
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 1);
        let wl = gen.generate(&net);
        assert_eq!(wl.catalog.len(), 100);
        assert_eq!(wl.queries.len(), 20);
        for q in &wl.queries {
            let joins = q.join_count();
            assert!((2..=5).contains(&joins), "joins {joins}");
            q.validate();
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let net = net();
        let a = WorkloadGenerator::new(WorkloadConfig::default(), 42).generate(&net);
        let b = WorkloadGenerator::new(WorkloadConfig::default(), 42).generate(&net);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.sources, y.sources);
            assert_eq!(x.sink, y.sink);
        }
        for (x, y) in a.catalog.streams().iter().zip(b.catalog.streams()) {
            assert_eq!(x.rate, y.rate);
            assert_eq!(x.node, y.node);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let net = net();
        let a = WorkloadGenerator::new(WorkloadConfig::default(), 1).generate(&net);
        let b = WorkloadGenerator::new(WorkloadConfig::default(), 2).generate(&net);
        assert!(
            a.queries
                .iter()
                .zip(&b.queries)
                .any(|(x, y)| x.sources != y.sources)
                || a.catalog
                    .streams()
                    .iter()
                    .zip(b.catalog.streams())
                    .any(|(x, y)| x.rate != y.rate)
        );
    }

    #[test]
    fn repeated_calls_yield_fresh_workloads() {
        let net = net();
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 5);
        let a = gen.generate(&net);
        let b = gen.generate(&net);
        assert!(a
            .queries
            .iter()
            .zip(&b.queries)
            .any(|(x, y)| x.sources != y.sources));
    }

    #[test]
    fn stubs_only_places_on_stub_nodes() {
        let net = net();
        let stubs = net.stub_nodes();
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 3);
        let wl = gen.generate(&net);
        for s in wl.catalog.streams() {
            assert!(stubs.contains(&s.node));
        }
        for q in &wl.queries {
            assert!(stubs.contains(&q.sink));
        }
    }

    #[test]
    fn rates_and_selectivities_in_range() {
        let net = net();
        let cfg = WorkloadConfig::default();
        let mut gen = WorkloadGenerator::new(cfg.clone(), 4);
        let wl = gen.generate(&net);
        for s in wl.catalog.streams() {
            assert!(s.rate >= cfg.rate_range.0 && s.rate < cfg.rate_range.1);
        }
        let sigma = wl.catalog.selectivity(StreamId(0), StreamId(1));
        assert!(sigma >= cfg.selectivity_range.0 && sigma < cfg.selectivity_range.1);
    }

    #[test]
    fn zipf_skew_concentrates_sources() {
        let net = net();
        let cfg = WorkloadConfig {
            source_skew: Some(1.2),
            queries: 30,
            ..WorkloadConfig::default()
        };
        let wl = WorkloadGenerator::new(cfg, 6).generate(&net);
        // Count how often the 10 hottest stream ids appear across queries.
        let mut hot = 0usize;
        let mut total = 0usize;
        for q in &wl.queries {
            for s in &q.sources {
                total += 1;
                if s.0 < 10 {
                    hot += 1;
                }
            }
            q.validate(); // sources stay distinct
        }
        assert!(
            hot * 3 > total,
            "hot streams should dominate: {hot}/{total}"
        );
    }

    #[test]
    fn zipf_draws_distinct_sources() {
        let net = net();
        let cfg = WorkloadConfig {
            source_skew: Some(2.0), // extreme skew still must not repeat
            queries: 20,
            ..WorkloadConfig::default()
        };
        let wl = WorkloadGenerator::new(cfg, 9).generate(&net);
        for q in &wl.queries {
            let set = dsq_query::StreamSet::from_iter(q.sources.iter().copied());
            assert_eq!(set.len(), q.sources.len());
        }
    }

    #[test]
    fn selections_are_generated_and_valid() {
        let net = net();
        let cfg = WorkloadConfig {
            selection_prob: 0.8,
            ..WorkloadConfig::default()
        };
        let wl = WorkloadGenerator::new(cfg, 13).generate(&net);
        let with_sel = wl
            .queries
            .iter()
            .filter(|q| !q.selections.is_empty())
            .count();
        assert!(with_sel > wl.queries.len() / 2);
        for q in &wl.queries {
            for sel in &q.selections {
                assert_eq!(sel.attr, "ts");
                assert!(sel.selectivity > 0.0 && sel.selectivity <= 1.0);
                // Effective rate shrinks accordingly.
                assert!(
                    q.effective_rate(&wl.catalog, sel.stream)
                        <= wl.catalog.stream(sel.stream).rate + 1e-9
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "streams")]
    fn too_few_streams_rejected() {
        WorkloadGenerator::new(
            WorkloadConfig {
                streams: 3,
                joins_per_query: 2..=5,
                ..WorkloadConfig::default()
            },
            0,
        );
    }
}
