//! Stream and query model for distributed stream query optimization.
//!
//! This crate defines everything the optimizers reason about *above* the
//! network layer:
//!
//! * [`stream`] — base data streams (rate, schema, source node) and the
//!   [`Catalog`] of streams plus pairwise join selectivities.
//! * [`predicate`] — selection and join predicates with an implication
//!   (subsumption) test, used when deciding whether an already-deployed
//!   operator can be reused for a new query.
//! * [`query`] — continuous select-project-join queries and the
//!   [`StreamSet`] source-set arithmetic used throughout planning.
//! * [`plan`] — bushy join trees, their flattened [`FlatPlan`] form with
//!   estimated per-operator output rates, and concrete [`Deployment`]s
//!   (operator → node assignments with costed data-flow edges).
//! * [`enumerate`] — exhaustive enumeration and counting of bushy join
//!   trees, the combinatorial heart of Lemma 1.
//! * [`advert`] — stream advertisements: derived streams published by
//!   deployed operators, and the [`ReuseRegistry`] matching them against new
//!   queries (Section 2.1.2 of the paper).
//! * [`sql`] — a parser for the paper's SQL query syntax; [`containment`] —
//!   result-set containment; [`viz`] — Graphviz export.
//!
//! ```
//! use dsq_net::NodeId;
//! use dsq_query::{Catalog, FlatPlan, JoinTree, Query, QueryId, Schema};
//!
//! // Two streams with estimated statistics.
//! let mut catalog = Catalog::new();
//! let flights = catalog.add_stream("FLIGHTS", 60.0, NodeId(0), Schema::new(["NUM"]));
//! let checkins = catalog.add_stream("CHECK-INS", 80.0, NodeId(1), Schema::new(["FLNUM"]));
//! catalog.set_selectivity(flights, checkins, 0.005);
//!
//! // A join query and one of its plans, with rate estimates.
//! let q = Query::join(QueryId(0), [flights, checkins], NodeId(2));
//! let tree = JoinTree::join(JoinTree::base(flights), JoinTree::base(checkins));
//! let plan = FlatPlan::from_tree(&tree, &q, &catalog);
//! assert_eq!(plan.output_rate(), 0.005 * 60.0 * 80.0);
//! ```

pub mod advert;
pub mod containment;
pub mod enumerate;
pub mod inputset;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod sql;
pub mod stream;
pub mod viz;

pub use advert::{AdvertState, AdvertStats, DerivedId, DerivedStream, ReuseRegistry};
pub use containment::{answerable_from, compare as compare_containment, Containment};
pub use enumerate::{bushy_tree_count, enumerate_trees};
pub use inputset::InputSet;
pub use plan::{DeployedEdge, Deployment, FlatNode, FlatPlan, JoinTree, LeafSource, OperatorId};
pub use predicate::{CmpOp, JoinPredicate, SelectionPredicate};
pub use query::{Query, QueryId, StreamSet};
pub use sql::{parse_query, ParseError, SelectivityHints};
pub use stream::{BaseStream, Catalog, Schema, StreamId};
pub use viz::deployment_to_dot;
