//! Query containment (the paper's Section 5 future-work direction:
//! "other optimization opportunities achievable through query containment").
//!
//! For the select-project-join queries of this system — where join
//! semantics are determined by the source pair (catalog selectivity model)
//! — containment reduces to predicate implication over identical source
//! sets:
//!
//! * query `A` *contains* query `B` (every result tuple of `B` appears in
//!   `A`'s result) iff they join the same sources and every selection of
//!   `A` is implied by some selection of `B` (`B` filters at least as
//!   strictly);
//! * `B` is then *answerable from* `A`'s standing result by applying the
//!   residual predicates and projecting — no upstream data movement at all.
//!
//! [`answerable_from`] is the deployment-facing check (it also verifies the
//! projection columns survive), which the sink advertisements make
//! actionable: a contained query can be served entirely from the containing
//! query's sink stream.

use crate::inputset::InputSet;
use crate::predicate::{residual_selections, selections_compatible, SelectionPredicate};
use crate::query::Query;

/// Lattice relation between two queries' result sets.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Containment {
    /// Identical results.
    Equivalent,
    /// The left query's result is a superset of the right's.
    Contains,
    /// The left query's result is a subset of the right's.
    ContainedIn,
    /// Neither contains the other (or sources differ).
    Incomparable,
}

/// Compare the result sets of two queries (projection ignored; see
/// [`answerable_from`] for the full check).
pub fn compare(a: &Query, b: &Query) -> Containment {
    // Source-set equality as word bitsets: no sort, no id-vector build.
    let a_bits = InputSet::from_bits(a.sources.iter().map(|s| s.0 as usize));
    let b_bits = InputSet::from_bits(b.sources.iter().map(|s| s.0 as usize));
    if a_bits != b_bits {
        return Containment::Incomparable;
    }
    // `a` contains `b` iff b's tuples all pass a's filters: every selection
    // of `a` is implied by b's selection set.
    let a_superset = selections_compatible(&a.selections, &b.selections);
    let b_superset = selections_compatible(&b.selections, &a.selections);
    match (a_superset, b_superset) {
        (true, true) => Containment::Equivalent,
        (true, false) => Containment::Contains,
        (false, true) => Containment::ContainedIn,
        (false, false) => Containment::Incomparable,
    }
}

/// Can `consumer` be answered entirely from `provider`'s standing result
/// stream? Requires `provider` to contain `consumer` *and* to have kept the
/// columns `consumer` projects (an empty projection means "all columns",
/// which only an all-columns provider preserves).
pub fn answerable_from(consumer: &Query, provider: &Query) -> bool {
    match compare(provider, consumer) {
        Containment::Contains | Containment::Equivalent => {}
        _ => return false,
    }
    projection_covers(provider, consumer)
}

/// The residual filters `consumer` must apply on top of `provider`'s
/// result. Only meaningful when [`answerable_from`] holds.
pub fn residual_filters(consumer: &Query, provider: &Query) -> Vec<SelectionPredicate> {
    residual_selections(&provider.selections, &consumer.selections)
}

fn projection_covers(provider: &Query, consumer: &Query) -> bool {
    if provider.projection.is_empty() {
        return true; // provider keeps every column
    }
    if consumer.projection.is_empty() {
        // Consumer wants everything; a projecting provider dropped columns.
        return false;
    }
    consumer
        .projection
        .iter()
        .any(|_| true) // non-empty
        && consumer
            .projection
            .iter()
            .all(|c| provider.projection.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::query::QueryId;
    use crate::stream::StreamId;
    use dsq_net::NodeId;

    fn q(
        id: u32,
        selections: Vec<SelectionPredicate>,
        projection: Vec<(StreamId, String)>,
    ) -> Query {
        let mut query = Query::join(QueryId(id), [StreamId(0), StreamId(1)], NodeId(0));
        query.selections = selections;
        query.projection = projection;
        query
    }

    fn lt(v: f64) -> SelectionPredicate {
        SelectionPredicate::new(StreamId(0), "ts", CmpOp::Lt, v, 0.5)
    }

    #[test]
    fn equivalence_and_strict_containment() {
        let wide = q(0, vec![lt(24.0)], vec![]);
        let narrow = q(1, vec![lt(6.0)], vec![]);
        let same = q(2, vec![lt(24.0)], vec![]);
        assert_eq!(compare(&wide, &narrow), Containment::Contains);
        assert_eq!(compare(&narrow, &wide), Containment::ContainedIn);
        assert_eq!(compare(&wide, &same), Containment::Equivalent);
    }

    #[test]
    fn different_sources_are_incomparable() {
        let a = q(0, vec![], vec![]);
        let b = Query::join(QueryId(1), [StreamId(0), StreamId(2)], NodeId(0));
        assert_eq!(compare(&a, &b), Containment::Incomparable);
    }

    #[test]
    fn disjoint_filters_are_incomparable() {
        let lo = q(0, vec![lt(6.0)], vec![]);
        let hi = q(
            1,
            vec![SelectionPredicate::new(
                StreamId(0),
                "ts",
                CmpOp::Gt,
                12.0,
                0.5,
            )],
            vec![],
        );
        assert_eq!(compare(&lo, &hi), Containment::Incomparable);
    }

    #[test]
    fn answerability_requires_columns() {
        let provider_all = q(0, vec![lt(24.0)], vec![]);
        let provider_narrow_cols = q(1, vec![lt(24.0)], vec![(StreamId(0), "x".into())]);
        let consumer = q(2, vec![lt(6.0)], vec![(StreamId(0), "x".into())]);
        let consumer_more_cols = q(
            3,
            vec![lt(6.0)],
            vec![(StreamId(0), "x".into()), (StreamId(1), "y".into())],
        );
        assert!(answerable_from(&consumer, &provider_all));
        assert!(answerable_from(&consumer, &provider_narrow_cols));
        assert!(!answerable_from(&consumer_more_cols, &provider_narrow_cols));
        // A projecting provider cannot answer a select-* consumer.
        let star_consumer = q(4, vec![lt(6.0)], vec![]);
        assert!(!answerable_from(&star_consumer, &provider_narrow_cols));
        assert!(answerable_from(&star_consumer, &provider_all));
    }

    #[test]
    fn residuals_are_the_stricter_filters() {
        let provider = q(0, vec![lt(24.0)], vec![]);
        let consumer = q(1, vec![lt(6.0)], vec![]);
        assert!(answerable_from(&consumer, &provider));
        let res = residual_filters(&consumer, &provider);
        assert_eq!(res, vec![lt(6.0)]);
        // Equivalent queries need no residual.
        let twin = q(2, vec![lt(24.0)], vec![]);
        assert!(residual_filters(&twin, &provider).is_empty());
    }

    #[test]
    fn containment_is_antisymmetric_on_this_lattice() {
        let a = q(0, vec![lt(10.0)], vec![]);
        let b = q(1, vec![lt(20.0)], vec![]);
        let ab = compare(&a, &b);
        let ba = compare(&b, &a);
        match ab {
            Containment::Contains => assert_eq!(ba, Containment::ContainedIn),
            Containment::ContainedIn => assert_eq!(ba, Containment::Contains),
            Containment::Equivalent => assert_eq!(ba, Containment::Equivalent),
            Containment::Incomparable => assert_eq!(ba, Containment::Incomparable),
        }
    }
}
