//! Join trees, flattened plans with estimated rates, and deployments.
//!
//! A [`JoinTree`] is a *logical* plan: an unordered binary tree whose leaves
//! are base streams or reused derived streams. A [`FlatPlan`] is the tree
//! flattened into postorder with every node annotated with its covered
//! source set and estimated output rate. A [`Deployment`] maps every plan
//! node to a physical network node and carries the costed data-flow edges —
//! the object whose total cost the paper's experiments report.

use crate::advert::DerivedId;
use crate::query::{Query, QueryId, StreamSet};
use crate::stream::{Catalog, StreamId};
use dsq_net::{DistanceMatrix, NodeId};
use serde::{Deserialize, Serialize};

/// Globally unique identifier of a *deployed operator instance*, assigned by
/// the [`ReuseRegistry`](crate::ReuseRegistry) when a deployment is
/// registered.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct OperatorId(pub u64);

/// What a plan leaf reads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LeafSource {
    /// A base stream from the catalog.
    Base(StreamId),
    /// An already-deployed operator's output, reused. Carrying the derived
    /// stream's facts inline keeps plan costing registry-free.
    Derived {
        /// Registry id of the reused derived stream.
        id: DerivedId,
        /// Base streams the derived stream covers.
        covered: StreamSet,
        /// Output rate of the derived stream.
        rate: f64,
        /// Node the derived stream is produced at.
        host: NodeId,
    },
}

impl LeafSource {
    /// Source set this leaf contributes.
    pub fn covered(&self) -> StreamSet {
        match self {
            LeafSource::Base(id) => StreamSet::singleton(*id),
            LeafSource::Derived { covered, .. } => covered.clone(),
        }
    }
}

/// An unordered binary join tree (bushy trees included).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JoinTree {
    /// Scan of a base or derived stream.
    Leaf(LeafSource),
    /// Windowed stream join of two subtrees.
    Join(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Leaf over a base stream.
    pub fn base(id: StreamId) -> Self {
        JoinTree::Leaf(LeafSource::Base(id))
    }

    /// Join two subtrees.
    pub fn join(left: JoinTree, right: JoinTree) -> Self {
        JoinTree::Join(Box::new(left), Box::new(right))
    }

    /// Base streams covered by the tree.
    pub fn covered(&self) -> StreamSet {
        match self {
            JoinTree::Leaf(l) => l.covered(),
            JoinTree::Join(l, r) => l.covered().union(&r.covered()),
        }
    }

    /// Number of join operators.
    pub fn join_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.join_count() + r.join_count(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Join(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    /// All leaves, left to right.
    pub fn leaves(&self) -> Vec<&LeafSource> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a LeafSource>) {
        match self {
            JoinTree::Leaf(l) => out.push(l),
            JoinTree::Join(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// A canonical string form in which logically identical trees (up to
    /// child order within each join) compare equal. Used in tests and for
    /// deduplicating enumerations.
    pub fn canonical(&self) -> String {
        match self {
            JoinTree::Leaf(LeafSource::Base(id)) => format!("{id}"),
            JoinTree::Leaf(LeafSource::Derived { id, .. }) => format!("d{}", id.0),
            JoinTree::Join(l, r) => {
                let (a, b) = (l.canonical(), r.canonical());
                if a <= b {
                    format!("({a}*{b})")
                } else {
                    format!("({b}*{a})")
                }
            }
        }
    }
}

/// A plan node in flattened (postorder) form, annotated with its covered
/// source set and estimated output rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FlatNode {
    /// Stream scan.
    Leaf {
        /// What the leaf reads.
        source: LeafSource,
        /// Covered base streams.
        covered: StreamSet,
        /// Estimated post-selection output rate.
        rate: f64,
    },
    /// Stream join of two earlier nodes.
    Join {
        /// Index of the left input node.
        left: usize,
        /// Index of the right input node.
        right: usize,
        /// Covered base streams.
        covered: StreamSet,
        /// Estimated output rate.
        rate: f64,
    },
}

impl FlatNode {
    /// Covered source set.
    pub fn covered(&self) -> &StreamSet {
        match self {
            FlatNode::Leaf { covered, .. } | FlatNode::Join { covered, .. } => covered,
        }
    }

    /// Estimated output rate.
    pub fn rate(&self) -> f64 {
        match self {
            FlatNode::Leaf { rate, .. } | FlatNode::Join { rate, .. } => *rate,
        }
    }

    /// Is this a join operator (as opposed to a scan)?
    pub fn is_join(&self) -> bool {
        matches!(self, FlatNode::Join { .. })
    }
}

/// A flattened, rate-annotated query plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlatPlan {
    nodes: Vec<FlatNode>,
    root: usize,
}

impl FlatPlan {
    /// Flatten `tree` for `query`, estimating rates from the catalog:
    /// base leaves get the post-selection rate, derived leaves their
    /// advertised rate, joins `σ_cross · r_left · r_right`.
    pub fn from_tree(tree: &JoinTree, query: &Query, catalog: &Catalog) -> FlatPlan {
        let mut nodes = Vec::with_capacity(2 * tree.leaf_count());
        let root = Self::flatten(tree, query, catalog, &mut nodes);
        FlatPlan { nodes, root }
    }

    fn flatten(
        tree: &JoinTree,
        query: &Query,
        catalog: &Catalog,
        nodes: &mut Vec<FlatNode>,
    ) -> usize {
        match tree {
            JoinTree::Leaf(source) => {
                let covered = source.covered();
                let rate = match source {
                    LeafSource::Base(id) => query.effective_rate(catalog, *id),
                    LeafSource::Derived { rate, .. } => *rate,
                };
                nodes.push(FlatNode::Leaf {
                    source: source.clone(),
                    covered,
                    rate,
                });
                nodes.len() - 1
            }
            JoinTree::Join(l, r) => {
                let li = Self::flatten(l, query, catalog, nodes);
                let ri = Self::flatten(r, query, catalog, nodes);
                let lc = nodes[li].covered().clone();
                let rc = nodes[ri].covered().clone();
                debug_assert!(
                    lc.is_disjoint_from(&rc),
                    "join inputs must cover disjoint source sets"
                );
                let sigma = catalog.cross_selectivity(lc.as_slice(), rc.as_slice());
                let rate = sigma * nodes[li].rate() * nodes[ri].rate();
                nodes.push(FlatNode::Join {
                    left: li,
                    right: ri,
                    covered: lc.union(&rc),
                    rate,
                });
                nodes.len() - 1
            }
        }
    }

    /// All plan nodes in postorder.
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Root output rate (what flows to the sink).
    pub fn output_rate(&self) -> f64 {
        self.nodes[self.root].rate()
    }

    /// Sum of the output rates of all *join* nodes — the "size of
    /// intermediate results" objective classic optimizers (and the paper's
    /// plan-then-deploy baselines) minimize.
    pub fn intermediate_rate_sum(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.is_join())
            .map(FlatNode::rate)
            .sum()
    }

    /// Indices of the join nodes.
    pub fn join_indices(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_join())
            .collect()
    }

    /// Re-estimate every node's rate against updated catalog statistics
    /// (stream rates, selectivities), keeping the plan structure. Derived
    /// leaves are re-derived from the covered atoms' current statistics —
    /// valid because, under the independence model, a derived stream's rate
    /// equals the from-scratch estimate of its covered set.
    pub fn reestimate(&self, query: &Query, catalog: &Catalog) -> FlatPlan {
        let mut nodes = self.nodes.clone();
        for i in 0..nodes.len() {
            match &nodes[i] {
                FlatNode::Leaf {
                    source, covered, ..
                } => {
                    let rate = match source {
                        LeafSource::Base(id) => query.effective_rate(catalog, *id),
                        LeafSource::Derived { .. } => {
                            // Formula rate over the covered atoms.
                            let atoms = covered.as_slice();
                            let mut r = 1.0;
                            for (k, &a) in atoms.iter().enumerate() {
                                r *= query.effective_rate(catalog, a);
                                for &b in &atoms[k + 1..] {
                                    r *= catalog.selectivity(a, b);
                                }
                            }
                            r
                        }
                    };
                    if let FlatNode::Leaf { rate: rr, .. } = &mut nodes[i] {
                        *rr = rate;
                    }
                }
                FlatNode::Join { left, right, .. } => {
                    let (l, r) = (*left, *right);
                    let sigma = catalog.cross_selectivity(
                        nodes[l].covered().as_slice(),
                        nodes[r].covered().as_slice(),
                    );
                    let rate = sigma * nodes[l].rate() * nodes[r].rate();
                    if let FlatNode::Join { rate: rr, .. } = &mut nodes[i] {
                        *rr = rate;
                    }
                }
            }
        }
        FlatPlan {
            nodes,
            root: self.root,
        }
    }
}

/// A single costed data-flow edge of a deployment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeployedEdge {
    /// Physical node data flows from.
    pub from: NodeId,
    /// Physical node data flows to.
    pub to: NodeId,
    /// Data rate on the edge.
    pub rate: f64,
    /// Plan-node index of the *consumer* (`usize::MAX` for the final edge
    /// into the sink).
    pub consumer: usize,
}

/// Marker for the edge that delivers results to the sink.
pub const SINK_CONSUMER: usize = usize::MAX;

/// A concrete deployment: every plan node assigned to a physical node, with
/// costed data-flow edges.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Deployment {
    /// Query this deployment serves.
    pub query: QueryId,
    /// The deployed plan.
    pub plan: FlatPlan,
    /// Physical node per plan node (parallel to `plan.nodes()`); leaves sit
    /// where their stream is produced.
    pub placement: Vec<NodeId>,
    /// Node results are delivered to.
    pub sink: NodeId,
    /// Costed data-flow edges (inputs of every join, plus the sink edge).
    pub edges: Vec<DeployedEdge>,
    /// Total communication cost per unit time: Σ rate(e) · dist(e).
    pub cost: f64,
}

impl Deployment {
    /// Build a deployment by costing `placement` against the *actual*
    /// shortest-path distances.
    ///
    /// Leaf placements must equal the producing node of the leaf's stream
    /// (that is where the data originates); join placements are free.
    pub fn evaluate(
        query: QueryId,
        plan: FlatPlan,
        placement: Vec<NodeId>,
        sink: NodeId,
        dm: &DistanceMatrix,
    ) -> Deployment {
        assert_eq!(placement.len(), plan.nodes().len());
        let mut edges = Vec::new();
        for (i, node) in plan.nodes().iter().enumerate() {
            if let FlatNode::Join { left, right, .. } = node {
                for &child in &[*left, *right] {
                    edges.push(DeployedEdge {
                        from: placement[child],
                        to: placement[i],
                        rate: plan.nodes()[child].rate(),
                        consumer: i,
                    });
                }
            }
        }
        edges.push(DeployedEdge {
            from: placement[plan.root()],
            to: sink,
            rate: plan.output_rate(),
            consumer: SINK_CONSUMER,
        });
        let cost = edges.iter().map(|e| e.rate * dm.get(e.from, e.to)).sum();
        Deployment {
            query,
            plan,
            placement,
            sink,
            edges,
            cost,
        }
    }

    /// Re-cost the same placement against (possibly changed) distances;
    /// used by the adaptivity middleware after link-cost updates.
    pub fn recompute_cost(&mut self, dm: &DistanceMatrix) {
        self.cost = self
            .edges
            .iter()
            .map(|e| e.rate * dm.get(e.from, e.to))
            .sum();
    }

    /// Re-estimate the deployment against updated catalog statistics
    /// (stream rates / selectivities changed at runtime): same structure
    /// and placement, fresh rates, fresh edge costs.
    pub fn reestimate(&self, query: &Query, catalog: &Catalog, dm: &DistanceMatrix) -> Deployment {
        let plan = self.plan.reestimate(query, catalog);
        Deployment::evaluate(self.query, plan, self.placement.clone(), self.sink, dm)
    }

    /// Nodes hosting at least one join operator.
    pub fn operator_nodes(&self) -> Vec<NodeId> {
        self.plan
            .join_indices()
            .into_iter()
            .map(|i| self.placement[i])
            .collect()
    }

    /// Human-readable description of the deployed plan: one line per plan
    /// node, indented by tree depth, with stream names, estimated rates and
    /// the hosting node. Intended for examples and debugging output.
    pub fn describe(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.describe_node(self.plan.root(), 0, catalog, &mut out);
        out.push_str(&format!(
            "=> sink {} (total cost/time: {:.2})\n",
            self.sink, self.cost
        ));
        out
    }

    fn describe_node(&self, i: usize, depth: usize, catalog: &Catalog, out: &mut String) {
        let pad = "  ".repeat(depth);
        match &self.plan.nodes()[i] {
            FlatNode::Leaf { source, rate, .. } => match source {
                crate::plan::LeafSource::Base(id) => {
                    out.push_str(&format!(
                        "{pad}scan {} @ {} (rate {:.2})\n",
                        catalog.stream(*id).name,
                        self.placement[i],
                        rate
                    ));
                }
                crate::plan::LeafSource::Derived { id, covered, .. } => {
                    out.push_str(&format!(
                        "{pad}reuse derived d{} covering {:?} @ {} (rate {:.2})\n",
                        id.0,
                        covered,
                        self.placement[i],
                        self.plan.nodes()[i].rate()
                    ));
                }
            },
            FlatNode::Join {
                left, right, rate, ..
            } => {
                out.push_str(&format!(
                    "{pad}join @ {} (output rate {:.2})\n",
                    self.placement[i], rate
                ));
                self.describe_node(*left, depth + 1, catalog, out);
                self.describe_node(*right, depth + 1, catalog, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Schema;
    use dsq_net::{LinkKind, Metric, Network};

    fn setup() -> (Catalog, Query, DistanceMatrix) {
        // Line network: n0 -1- n1 -1- n2 -1- n3.
        let mut net = Network::new(4);
        for i in 0..3u32 {
            net.add_link(NodeId(i), NodeId(i + 1), 1.0, 1.0, LinkKind::Stub);
        }
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let mut c = Catalog::new();
        let a = c.add_stream("A", 10.0, NodeId(0), Schema::new(["x"]));
        let b = c.add_stream("B", 4.0, NodeId(3), Schema::new(["x"]));
        c.set_selectivity(a, b, 0.1);
        let q = Query::join(QueryId(0), [a, b], NodeId(2));
        (c, q, dm)
    }

    #[test]
    fn flat_plan_rates() {
        let (c, q, _) = setup();
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        assert_eq!(plan.nodes().len(), 3);
        assert_eq!(plan.output_rate(), 0.1 * 10.0 * 4.0);
        assert_eq!(plan.intermediate_rate_sum(), 4.0);
        assert_eq!(plan.join_indices(), vec![2]);
    }

    #[test]
    fn deployment_cost_is_rate_times_distance() {
        let (c, q, dm) = setup();
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        // Place the join at n1: A travels 1 hop (10·1), B travels 2 hops
        // (4·2), result travels 1 hop to the sink n2 (4·1).
        let placement = vec![NodeId(0), NodeId(3), NodeId(1)];
        let d = Deployment::evaluate(QueryId(0), plan, placement, NodeId(2), &dm);
        assert_eq!(d.cost, 10.0 + 8.0 + 4.0);
        assert_eq!(d.edges.len(), 3);
        assert_eq!(d.operator_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn derived_leaf_charges_no_upstream_cost() {
        let (c, q, dm) = setup();
        // A derived stream covering both sources already lives at n1;
        // reusing it only pays the delivery edge to the sink.
        let tree = JoinTree::Leaf(LeafSource::Derived {
            id: DerivedId(0),
            covered: StreamSet::from_iter([StreamId(0), StreamId(1)]),
            rate: 4.0,
            host: NodeId(1),
        });
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let d = Deployment::evaluate(QueryId(0), plan, vec![NodeId(1)], NodeId(2), &dm);
        assert_eq!(d.cost, 4.0, "only the sink edge is paid");
    }

    #[test]
    fn recompute_tracks_distance_changes() {
        let (c, q, _) = setup();
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let mut net = Network::new(4);
        for i in 0..3u32 {
            net.add_link(NodeId(i), NodeId(i + 1), 1.0, 1.0, LinkKind::Stub);
        }
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let mut d = Deployment::evaluate(
            QueryId(0),
            plan,
            vec![NodeId(0), NodeId(3), NodeId(1)],
            NodeId(2),
            &dm,
        );
        let before = d.cost;
        net.set_link_cost(NodeId(0), NodeId(1), 10.0);
        let dm2 = DistanceMatrix::build(&net, Metric::Cost);
        d.recompute_cost(&dm2);
        assert!(d.cost > before);
    }

    #[test]
    fn reestimate_tracks_rate_changes() {
        let (mut c, q, dm) = setup();
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let d = Deployment::evaluate(
            QueryId(0),
            plan,
            vec![NodeId(0), NodeId(3), NodeId(1)],
            NodeId(2),
            &dm,
        );
        assert_eq!(d.cost, 22.0);
        // Stream A's rate doubles: its edge cost doubles, the join output
        // doubles, and so does the sink edge.
        c.set_rate(StreamId(0), 20.0);
        let d2 = d.reestimate(&q, &c, &dm);
        assert_eq!(d2.cost, 20.0 + 8.0 + 8.0);
        assert_eq!(d2.placement, d.placement, "structure unchanged");
        // Selectivity changes propagate too.
        c.set_selectivity(StreamId(0), StreamId(1), 0.2);
        let d3 = d.reestimate(&q, &c, &dm);
        assert_eq!(d3.plan.output_rate(), 0.2 * 20.0 * 4.0);
    }

    #[test]
    fn reestimate_recomputes_derived_leaves_from_formula() {
        let (mut c, q, dm) = setup();
        let tree = JoinTree::Leaf(LeafSource::Derived {
            id: DerivedId(0),
            covered: StreamSet::from_iter([StreamId(0), StreamId(1)]),
            rate: 4.0,
            host: NodeId(1),
        });
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let d = Deployment::evaluate(QueryId(0), plan, vec![NodeId(1)], NodeId(2), &dm);
        c.set_rate(StreamId(1), 8.0); // was 4.0
        let d2 = d.reestimate(&q, &c, &dm);
        assert_eq!(d2.plan.output_rate(), 0.1 * 10.0 * 8.0);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let t1 = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let t2 = JoinTree::join(JoinTree::base(StreamId(1)), JoinTree::base(StreamId(0)));
        assert_eq!(t1.canonical(), t2.canonical());
        let t3 = JoinTree::join(t1.clone(), JoinTree::base(StreamId(2)));
        let t4 = JoinTree::join(JoinTree::base(StreamId(2)), t2);
        assert_eq!(t3.canonical(), t4.canonical());
    }
}
