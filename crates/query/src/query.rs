//! Continuous SPJ queries and source-set arithmetic.

use crate::predicate::{JoinPredicate, SelectionPredicate};
use crate::stream::{Catalog, StreamId};
use dsq_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a registered continuous query.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u32);

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A sorted, duplicate-free set of base stream ids.
///
/// Source sets identify what a (sub)plan computes: two operators over the
/// same source set (under compatible predicates) produce the same logical
/// stream, which is exactly the reuse condition. Sets are small (queries join
/// 2–6 streams), so a sorted vector beats hash sets here.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct StreamSet(Vec<StreamId>);

impl StreamSet {
    /// An empty set.
    pub fn new() -> Self {
        StreamSet(Vec::new())
    }

    /// Set with a single element.
    pub fn singleton(id: StreamId) -> Self {
        StreamSet(vec![id])
    }

    /// Build from any iterator (sorts and dedups). Also available through
    /// the `FromIterator` impl; this inherent method keeps call sites terse.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(ids: impl IntoIterator<Item = StreamId>) -> Self {
        let mut v: Vec<StreamId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        StreamSet(v)
    }

    /// Number of streams in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: StreamId) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// Subset test.
    pub fn is_subset_of(&self, other: &StreamSet) -> bool {
        self.0.iter().all(|id| other.contains(*id))
    }

    /// Disjointness test.
    pub fn is_disjoint_from(&self, other: &StreamSet) -> bool {
        self.0.iter().all(|id| !other.contains(*id))
    }

    /// Union of two sets.
    pub fn union(&self, other: &StreamSet) -> StreamSet {
        StreamSet::from_iter(self.0.iter().chain(other.0.iter()).copied())
    }

    /// Elements of `self` not in `other`.
    pub fn difference(&self, other: &StreamSet) -> StreamSet {
        StreamSet(
            self.0
                .iter()
                .filter(|id| !other.contains(**id))
                .copied()
                .collect(),
        )
    }

    /// Elements present in both sets.
    pub fn intersection(&self, other: &StreamSet) -> StreamSet {
        StreamSet(
            self.0
                .iter()
                .filter(|id| other.contains(**id))
                .copied()
                .collect(),
        )
    }

    /// Sorted member slice.
    pub fn as_slice(&self) -> &[StreamId] {
        &self.0
    }

    /// Iterate over members in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.0.iter().copied()
    }
}

impl fmt::Debug for StreamSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<StreamId> for StreamSet {
    fn from_iter<T: IntoIterator<Item = StreamId>>(iter: T) -> Self {
        StreamSet::from_iter(iter)
    }
}

/// A continuous select-project-join query.
///
/// The query requests the join of `sources` (filtered by `selections`,
/// joined on `join_predicates`) to be streamed to `sink`. Projections are
/// tracked as attribute names for reuse bookkeeping; they do not change
/// estimated rates (the paper's cost model works on stream rates).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Query {
    /// Query identifier.
    pub id: QueryId,
    /// Base streams joined by the query (at least one, all distinct).
    pub sources: Vec<StreamId>,
    /// Node where results must be delivered.
    pub sink: NodeId,
    /// Per-stream selection predicates.
    pub selections: Vec<SelectionPredicate>,
    /// Equi-join predicates (informational; selectivities live in the
    /// [`Catalog`]). May be empty for workloads that specify selectivities
    /// directly.
    pub join_predicates: Vec<JoinPredicate>,
    /// Projected output attributes as `(stream, attribute)`; empty = all.
    pub projection: Vec<(StreamId, String)>,
}

impl Query {
    /// Build a plain join query (no selections/projections).
    pub fn join(id: QueryId, sources: impl IntoIterator<Item = StreamId>, sink: NodeId) -> Self {
        let sources: Vec<StreamId> = sources.into_iter().collect();
        let q = Query {
            id,
            sources,
            sink,
            selections: Vec::new(),
            join_predicates: Vec::new(),
            projection: Vec::new(),
        };
        q.validate();
        q
    }

    /// Panics if the query is malformed (duplicate or missing sources).
    pub fn validate(&self) {
        assert!(!self.sources.is_empty(), "query must have sources");
        let set = StreamSet::from_iter(self.sources.iter().copied());
        assert_eq!(
            set.len(),
            self.sources.len(),
            "query sources must be distinct"
        );
        for sel in &self.selections {
            assert!(set.contains(sel.stream), "selection on non-source stream");
        }
        for jp in &self.join_predicates {
            assert!(
                set.contains(jp.left) && set.contains(jp.right),
                "join predicate on non-source stream"
            );
        }
    }

    /// The query's source set.
    pub fn source_set(&self) -> StreamSet {
        StreamSet::from_iter(self.sources.iter().copied())
    }

    /// Number of join operators a plan for this query contains.
    pub fn join_count(&self) -> usize {
        self.sources.len().saturating_sub(1)
    }

    /// Selection predicates that apply to one stream.
    pub fn selections_on(&self, stream: StreamId) -> Vec<&SelectionPredicate> {
        self.selections
            .iter()
            .filter(|s| s.stream == stream)
            .collect()
    }

    /// Effective (post-selection) input rate of one source stream.
    pub fn effective_rate(&self, catalog: &Catalog, stream: StreamId) -> f64 {
        let base = catalog.stream(stream).rate;
        self.selections_on(stream)
            .iter()
            .fold(base, |r, s| r * s.selectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::stream::Schema;

    fn ids(v: &[u32]) -> StreamSet {
        StreamSet::from_iter(v.iter().map(|&i| StreamId(i)))
    }

    #[test]
    fn set_ops() {
        let a = ids(&[3, 1, 2, 2]);
        assert_eq!(a.len(), 3, "dedup");
        assert_eq!(a.as_slice(), &[StreamId(1), StreamId(2), StreamId(3)]);
        let b = ids(&[2, 4]);
        assert!(ids(&[1, 2]).is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(ids(&[4, 5]).is_disjoint_from(&a));
        assert!(!b.is_disjoint_from(&a));
        assert_eq!(a.union(&b), ids(&[1, 2, 3, 4]));
        assert_eq!(a.difference(&b), ids(&[1, 3]));
        assert_eq!(a.intersection(&b), ids(&[2]));
        assert!(StreamSet::new().is_empty());
    }

    #[test]
    fn query_effective_rate_applies_selections() {
        let mut c = Catalog::new();
        let s = c.add_stream("A", 100.0, NodeId(0), Schema::new(["x"]));
        let mut q = Query::join(QueryId(0), [s], NodeId(1));
        q.selections
            .push(SelectionPredicate::new(s, "x", CmpOp::Lt, 5.0, 0.25));
        q.selections
            .push(SelectionPredicate::new(s, "x", CmpOp::Gt, 1.0, 0.5));
        assert!((q.effective_rate(&c, s) - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_sources_rejected() {
        Query::join(QueryId(0), [StreamId(1), StreamId(1)], NodeId(0));
    }

    #[test]
    #[should_panic(expected = "non-source")]
    fn selection_on_foreign_stream_rejected() {
        let mut q = Query::join(QueryId(0), [StreamId(1)], NodeId(0));
        q.selections.push(SelectionPredicate::new(
            StreamId(9),
            "x",
            CmpOp::Eq,
            1.0,
            0.5,
        ));
        q.validate();
    }
}
