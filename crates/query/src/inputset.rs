//! Word-array bitset over small non-negative indices (stream ids, atom
//! indices).
//!
//! [`StreamSet`](crate::StreamSet) is the planner's *reference* set type: a
//! sorted, deduplicated id vector that is pleasant to debug and cheap for
//! the handful of streams a single query touches. The planning hot paths —
//! the subset/placement dynamic program, subplan-cache keys, and the reuse
//! registry's containment checks — want the word-parallel operations of a
//! bitset instead, with no width cliff at 32 or 64 elements. `InputSet` is
//! that bitset: `Vec<u64>` words, canonical form (no trailing zero words),
//! so equality, hashing and ordering are straight word comparisons.
//!
//! The `proptest` suite at the bottom pins every operation against the
//! `StreamSet` reference implementation.

use crate::query::StreamSet;

/// A set of small indices stored one bit per element in `u64` words.
///
/// Canonical invariant: `words` never ends with a zero word. Every
/// constructor and mutator restores the invariant, which makes the derived
/// `PartialEq`/`Hash` structural equality also *set* equality.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct InputSet {
    words: Vec<u64>,
}

impl InputSet {
    /// The empty set.
    pub fn new() -> Self {
        InputSet { words: Vec::new() }
    }

    /// Bitset of a [`StreamSet`], one bit per raw stream id.
    pub fn from_stream_set(set: &StreamSet) -> Self {
        let mut s = InputSet::new();
        for id in set.iter() {
            s.insert(id.0 as usize);
        }
        s
    }

    /// Bitset from arbitrary bit indices.
    pub fn from_bits<I: IntoIterator<Item = usize>>(bits: I) -> Self {
        let mut s = InputSet::new();
        for b in bits {
            s.insert(b);
        }
        s
    }

    fn canonicalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Insert one bit.
    pub fn insert(&mut self, bit: usize) {
        let w = bit / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (bit % 64);
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        let w = bit / 64;
        w < self.words.len() && self.words[w] & (1u64 << (bit % 64)) != 0
    }

    /// Number of elements (popcount).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// `self ⊆ other`, word-parallel.
    pub fn is_subset_of(&self, other: &InputSet) -> bool {
        if self.words.len() > other.words.len() {
            return false;
        }
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `self ∩ other = ∅`, word-parallel.
    pub fn is_disjoint_from(&self, other: &InputSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &InputSet) -> InputSet {
        let (long, short) = if self.words.len() >= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        let mut words = long.clone();
        for (w, s) in words.iter_mut().zip(short) {
            *w |= s;
        }
        InputSet { words }
    }

    /// `self ∖ other`.
    pub fn difference(&self, other: &InputSet) -> InputSet {
        let mut words = self.words.clone();
        for (w, o) in words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        let mut s = InputSet { words };
        s.canonicalize();
        s
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &InputSet) -> InputSet {
        let n = self.words.len().min(other.words.len());
        let mut words: Vec<u64> = self.words[..n]
            .iter()
            .zip(&other.words[..n])
            .map(|(a, b)| a & b)
            .collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        InputSet { words }
    }

    /// Lowest set bit, if any.
    pub fn min_bit(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| i * 64 + self.words[i].trailing_zeros() as usize)
    }

    /// Set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(i * 64 + b)
            })
        })
    }

    /// The backing words (canonical, low word first). Exposed for hashing
    /// into externally keyed structures.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Big-integer order: longer canonical word vectors are larger, otherwise
/// words compare most-significant first. Total, and consistent with `Eq`.
impl Ord for InputSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.words
            .len()
            .cmp(&other.words.len())
            .then_with(|| self.words.iter().rev().cmp(other.words.iter().rev()))
    }
}

impl PartialOrd for InputSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl FromIterator<usize> for InputSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        InputSet::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamId;
    use proptest::prelude::*;

    fn stream_set(ids: &[usize]) -> StreamSet {
        StreamSet::from_iter(ids.iter().map(|&i| StreamId(i as u32)))
    }

    #[test]
    fn wide_universe_has_no_32_or_64_bit_cliff() {
        // The regression this type exists for: bits past 31 (the old u32
        // mask width) and past 63 must behave like any other bit.
        for bit in [0usize, 31, 32, 63, 64, 100, 129] {
            let s = InputSet::from_bits([bit]);
            assert!(s.contains(bit), "bit {bit}");
            assert_eq!(s.len(), 1);
            assert_eq!(s.min_bit(), Some(bit));
        }
        let wide = InputSet::from_bits(0..130);
        assert_eq!(wide.len(), 130);
        assert!(InputSet::from_bits([129]).is_subset_of(&wide));
    }

    #[test]
    fn canonical_form_makes_equality_set_equality() {
        let a = InputSet::from_bits([3, 70]);
        let b = a.difference(&InputSet::from_bits([70]));
        assert_eq!(b, InputSet::from_bits([3]));
        assert_eq!(b.words().len(), 1, "trailing zero word must be dropped");
    }

    proptest! {
        #[test]
        fn ops_agree_with_stream_set_reference(
            a in proptest::collection::vec(0usize..150, 0..20),
            b in proptest::collection::vec(0usize..150, 0..20),
        ) {
            let (sa, sb) = (stream_set(&a), stream_set(&b));
            let (ia, ib) = (InputSet::from_stream_set(&sa), InputSet::from_stream_set(&sb));

            prop_assert_eq!(ia.len(), sa.len());
            prop_assert_eq!(ia.is_empty(), sa.is_empty());
            prop_assert_eq!(ia.is_subset_of(&ib), sa.is_subset_of(&sb));
            prop_assert_eq!(ia.is_disjoint_from(&ib), sa.is_disjoint_from(&sb));

            let union_ref: Vec<usize> = sa.union(&sb).iter().map(|s| s.0 as usize).collect();
            prop_assert_eq!(ia.union(&ib).iter().collect::<Vec<_>>(), union_ref);

            let diff_ref: Vec<usize> = sa.difference(&sb).iter().map(|s| s.0 as usize).collect();
            prop_assert_eq!(ia.difference(&ib).iter().collect::<Vec<_>>(), diff_ref);

            let inter_ref: Vec<usize> =
                sa.intersection(&sb).iter().map(|s| s.0 as usize).collect();
            prop_assert_eq!(ia.intersection(&ib).iter().collect::<Vec<_>>(), inter_ref);

            let iter_ref: Vec<usize> = sa.iter().map(|s| s.0 as usize).collect();
            prop_assert_eq!(ia.iter().collect::<Vec<_>>(), iter_ref);
            prop_assert_eq!(ia.min_bit(), iter_ref.first().copied());

            for probe in [0usize, 31, 32, 64, 149] {
                prop_assert_eq!(ia.contains(probe), sa.contains(StreamId(probe as u32)));
            }

            // Eq/Ord consistency: equality mirrors the reference type and
            // the total order agrees with it.
            prop_assert_eq!(ia == ib, sa == sb);
            prop_assert_eq!(ia.cmp(&ib) == std::cmp::Ordering::Equal, ia == ib);
        }

        #[test]
        fn round_trips_and_canonical(bits in proptest::collection::vec(0usize..200, 0..30)) {
            let s = InputSet::from_bits(bits.clone());
            let back: Vec<usize> = s.iter().collect();
            let mut want = bits;
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(back, want);
            prop_assert!(s.words().last() != Some(&0u64), "canonical form");
            // Removing everything yields the canonical empty set.
            let empty = s.difference(&s);
            prop_assert_eq!(empty, InputSet::new());
        }
    }
}
