//! A small SQL-ish parser for continuous SPJ queries.
//!
//! The paper writes its queries in SQL (Section 1.1):
//!
//! ```sql
//! SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
//! FROM FLIGHTS, WEATHER, CHECK-INS
//! WHERE FLIGHTS.DEPARTING = 'ATLANTA'
//!   AND FLIGHTS.DESTN = WEATHER.CITY
//!   AND FLIGHTS.NUM = CHECK-INS.FLNUM
//!   AND FLIGHTS.DP-TIME < 12
//! ```
//!
//! [`parse_query`] turns exactly that subset — `SELECT` projection list (or
//! `*`), `FROM` stream list, `WHERE` conjunction of equi-join predicates
//! (`a.x = b.y`) and selections (`a.x <op> literal`) — into a validated
//! [`Query`] against a [`Catalog`]. String literals are folded to stable
//! numeric codes (the statistics model is numeric); selection selectivities
//! come from a [`SelectivityHints`] table with conservative per-operator
//! defaults.

use crate::predicate::{CmpOp, JoinPredicate, SelectionPredicate};
use crate::query::{Query, QueryId};
use crate::stream::{Catalog, StreamId};
use dsq_net::NodeId;
use std::fmt;

/// Parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Selectivity estimates for selection predicates, used when the catalog
/// has no per-attribute statistics.
#[derive(Clone, Debug)]
pub struct SelectivityHints {
    /// `(attribute name, selectivity)` overrides.
    pub per_attribute: Vec<(String, f64)>,
    /// Default selectivity of equality selections.
    pub eq_default: f64,
    /// Default selectivity of range selections.
    pub range_default: f64,
}

impl Default for SelectivityHints {
    fn default() -> Self {
        SelectivityHints {
            per_attribute: Vec::new(),
            eq_default: 0.1,
            range_default: 0.3,
        }
    }
}

impl SelectivityHints {
    /// Add a per-attribute override.
    pub fn with(mut self, attr: impl Into<String>, selectivity: f64) -> Self {
        self.per_attribute.push((attr.into(), selectivity));
        self
    }

    fn lookup(&self, attr: &str, op: CmpOp) -> f64 {
        self.per_attribute
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(attr))
            .map(|(_, s)| *s)
            .unwrap_or(match op {
                CmpOp::Eq => self.eq_default,
                _ => self.range_default,
            })
    }
}

/// Fold a string literal to a stable numeric code (FNV-1a over the
/// uppercased bytes, mapped into [0, 1e6)).
pub fn string_code(s: &str) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.to_ascii_uppercase().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % 1_000_000) as f64
}

/// Parse a `SELECT … FROM … [WHERE …]` statement into a [`Query`].
///
/// Stream names are resolved against the catalog (case-insensitive); the
/// result is delivered to `sink`.
pub fn parse_query(
    sql: &str,
    catalog: &Catalog,
    id: QueryId,
    sink: NodeId,
    hints: &SelectivityHints,
) -> Result<Query, ParseError> {
    let upper = sql.to_ascii_uppercase();
    let select_pos = match upper.find("SELECT") {
        Some(p) => p,
        None => return err("missing SELECT"),
    };
    let from_pos = match upper.find(" FROM ") {
        Some(p) => p,
        None => return err("missing FROM"),
    };
    let where_pos = upper.find(" WHERE ");

    let select_clause = sql[select_pos + "SELECT".len()..from_pos].trim();
    let from_clause = match where_pos {
        Some(w) => sql[from_pos + " FROM ".len()..w].trim(),
        None => sql[from_pos + " FROM ".len()..].trim(),
    };
    let where_clause = where_pos.map(|w| sql[w + " WHERE ".len()..].trim());

    // FROM: resolve stream names.
    let mut sources = Vec::new();
    for name in from_clause.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return err("empty stream name in FROM");
        }
        let sid = resolve_stream(catalog, name)?;
        if sources.contains(&sid) {
            return err(format!("duplicate stream {name} in FROM"));
        }
        sources.push(sid);
    }
    if sources.is_empty() {
        return err("FROM lists no streams");
    }

    // SELECT: projection list.
    let mut projection = Vec::new();
    if select_clause != "*" {
        for item in select_clause.split(',') {
            let item = item.trim();
            let (stream, attr) = split_qualified(item)?;
            let sid = resolve_stream(catalog, stream)?;
            if !sources.contains(&sid) {
                return err(format!("projected stream {stream} not in FROM"));
            }
            if !catalog.stream(sid).schema.has(&attr)
                && !catalog.stream(sid).schema.attributes.is_empty()
            {
                return err(format!("unknown attribute {stream}.{attr}"));
            }
            projection.push((sid, attr));
        }
    }

    // WHERE: conjunction of joins and selections.
    let mut selections = Vec::new();
    let mut join_predicates = Vec::new();
    if let Some(clause) = where_clause {
        for cond in split_conjuncts(clause) {
            parse_condition(
                &cond,
                catalog,
                &sources,
                hints,
                &mut selections,
                &mut join_predicates,
            )?;
        }
    }

    let query = Query {
        id,
        sources,
        sink,
        selections,
        join_predicates,
        projection,
    };
    query.validate();
    Ok(query)
}

fn resolve_stream(catalog: &Catalog, name: &str) -> Result<StreamId, ParseError> {
    catalog
        .streams()
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .map(|s| s.id)
        .ok_or_else(|| ParseError(format!("unknown stream {name}")))
}

/// Split `STREAM.ATTR` (stream names may contain `-`, attributes may too,
/// so split on the *first* dot).
fn split_qualified(item: &str) -> Result<(&str, String), ParseError> {
    match item.split_once('.') {
        Some((s, a)) if !s.trim().is_empty() && !a.trim().is_empty() => {
            Ok((s.trim(), a.trim().to_string()))
        }
        _ => err(format!("expected STREAM.ATTR, got {item:?}")),
    }
}

/// Split a WHERE clause on top-level `AND` (case-insensitive), respecting
/// single-quoted strings.
fn split_conjuncts(clause: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut cur = String::new();
    let chars: Vec<char> = clause.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\'' {
            depth_quote = !depth_quote;
        }
        // Look for the word AND outside quotes.
        if !depth_quote
            && i + 3 <= chars.len()
            && chars[i..]
                .iter()
                .take(3)
                .collect::<String>()
                .eq_ignore_ascii_case("and")
            && (i == 0 || chars[i - 1].is_whitespace())
            && (i + 3 == chars.len() || chars[i + 3].is_whitespace())
        {
            out.push(cur.trim().to_string());
            cur.clear();
            i += 3;
            continue;
        }
        cur.push(chars[i]);
        i += 1;
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out.retain(|c| !c.is_empty());
    out
}

fn parse_condition(
    cond: &str,
    catalog: &Catalog,
    sources: &[StreamId],
    hints: &SelectivityHints,
    selections: &mut Vec<SelectionPredicate>,
    joins: &mut Vec<JoinPredicate>,
) -> Result<(), ParseError> {
    // Find the comparison operator (longest first).
    let ops = [
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("=", CmpOp::Eq),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
    ];
    let (op_str, op, pos) = ops
        .iter()
        .filter_map(|(s, o)| cond.find(s).map(|p| (*s, *o, p)))
        .min_by_key(|(_, _, p)| *p)
        .ok_or_else(|| ParseError(format!("no comparison operator in {cond:?}")))?;
    let lhs = cond[..pos].trim();
    let rhs = cond[pos + op_str.len()..].trim();

    let (lstream_name, lattr) = split_qualified(lhs)?;
    let lstream = resolve_stream(catalog, lstream_name)?;
    if !sources.contains(&lstream) {
        return err(format!("stream {lstream_name} not in FROM"));
    }

    // RHS: another qualified attribute (join) or a literal (selection).
    let looks_like_attr = rhs.contains('.')
        && !rhs.starts_with('\'')
        && rhs.parse::<f64>().is_err()
        && resolve_stream(catalog, rhs.split('.').next().unwrap_or("")).is_ok();
    if looks_like_attr {
        if op != CmpOp::Eq {
            return err("only equi-joins are supported");
        }
        let (rstream_name, rattr) = split_qualified(rhs)?;
        let rstream = resolve_stream(catalog, rstream_name)?;
        if !sources.contains(&rstream) {
            return err(format!("stream {rstream_name} not in FROM"));
        }
        if rstream == lstream {
            return err("self-joins are not supported");
        }
        joins.push(JoinPredicate::new(lstream, lattr, rstream, rattr));
    } else {
        let value = if let Some(stripped) = rhs.strip_prefix('\'') {
            let inner = stripped
                .strip_suffix('\'')
                .ok_or_else(|| ParseError(format!("unterminated string literal {rhs:?}")))?;
            string_code(inner)
        } else {
            rhs.parse::<f64>()
                .map_err(|_| ParseError(format!("bad literal {rhs:?}")))?
        };
        let selectivity = hints.lookup(&lattr, op);
        selections.push(SelectionPredicate::new(
            lstream,
            lattr,
            op,
            value,
            selectivity,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream(
            "FLIGHTS",
            60.0,
            NodeId(0),
            Schema::new(["NUM", "STATUS", "DEPARTING", "DESTN", "DP-TIME"]),
        );
        c.add_stream(
            "WEATHER",
            40.0,
            NodeId(1),
            Schema::new(["CITY", "FORECAST"]),
        );
        c.add_stream(
            "CHECK-INS",
            80.0,
            NodeId(2),
            Schema::new(["FLNUM", "STATUS"]),
        );
        c
    }

    #[test]
    fn parses_the_papers_q1() {
        let c = catalog();
        let sql = "SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS \
                   FROM FLIGHTS, WEATHER, CHECK-INS \
                   WHERE FLIGHTS.DEPARTING = 'ATLANTA' \
                     AND FLIGHTS.DESTN = WEATHER.CITY \
                     AND FLIGHTS.NUM = CHECK-INS.FLNUM \
                     AND FLIGHTS.DP-TIME < 12";
        let q = parse_query(sql, &c, QueryId(1), NodeId(5), &SelectivityHints::default()).unwrap();
        assert_eq!(q.sources.len(), 3);
        assert_eq!(q.join_predicates.len(), 2);
        assert_eq!(q.selections.len(), 2);
        assert_eq!(q.projection.len(), 3);
        let departing = q.selections.iter().find(|s| s.attr == "DEPARTING").unwrap();
        assert_eq!(departing.op, CmpOp::Eq);
        assert_eq!(departing.value, string_code("ATLANTA"));
        let dptime = q.selections.iter().find(|s| s.attr == "DP-TIME").unwrap();
        assert_eq!(dptime.op, CmpOp::Lt);
        assert_eq!(dptime.value, 12.0);
    }

    #[test]
    fn parses_the_papers_q2_and_filters_subsume() {
        let c = catalog();
        let q2 = parse_query(
            "SELECT FLIGHTS.STATUS, CHECK-INS.STATUS FROM FLIGHTS, CHECK-INS \
             WHERE FLIGHTS.DEPARTING = 'ATLANTA' AND FLIGHTS.NUM = CHECK-INS.FLNUM \
             AND FLIGHTS.DP-TIME < 12",
            &c,
            QueryId(0),
            NodeId(4),
            &SelectivityHints::default(),
        )
        .unwrap();
        let q1 = parse_query(
            "SELECT * FROM FLIGHTS, WEATHER, CHECK-INS \
             WHERE FLIGHTS.DEPARTING = 'ATLANTA' AND FLIGHTS.DESTN = WEATHER.CITY \
             AND FLIGHTS.NUM = CHECK-INS.FLNUM AND FLIGHTS.DP-TIME < 12",
            &c,
            QueryId(1),
            NodeId(5),
            &SelectivityHints::default(),
        )
        .unwrap();
        assert!(crate::predicate::selections_compatible(
            &q2.selections,
            &q1.selections
        ));
    }

    #[test]
    fn select_star_means_no_projection() {
        let c = catalog();
        let q = parse_query(
            "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY",
            &c,
            QueryId(0),
            NodeId(3),
            &SelectivityHints::default(),
        )
        .unwrap();
        assert!(q.projection.is_empty());
        assert_eq!(q.join_predicates.len(), 1);
    }

    #[test]
    fn case_insensitive_keywords_and_names() {
        let c = catalog();
        let q = parse_query(
            "select flights.STATUS from Flights, weather where FLIGHTS.DESTN = weather.CITY",
            &c,
            QueryId(0),
            NodeId(3),
            &SelectivityHints::default(),
        )
        .unwrap();
        assert_eq!(q.sources.len(), 2);
    }

    #[test]
    fn selectivity_hints_apply() {
        let c = catalog();
        let hints = SelectivityHints::default().with("DEPARTING", 0.02);
        let q = parse_query(
            "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'ATLANTA'",
            &c,
            QueryId(0),
            NodeId(3),
            &hints,
        )
        .unwrap();
        assert_eq!(q.selections[0].selectivity, 0.02);
    }

    #[test]
    fn error_cases() {
        let c = catalog();
        let h = SelectivityHints::default();
        for (sql, needle) in [
            ("FROM FLIGHTS", "missing SELECT"),
            ("SELECT * FLIGHTS", "missing FROM"),
            ("SELECT * FROM NOPE", "unknown stream"),
            ("SELECT * FROM FLIGHTS, FLIGHTS", "duplicate stream"),
            (
                "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN < WEATHER.CITY",
                "equi-join",
            ),
            (
                "SELECT * FROM FLIGHTS WHERE FLIGHTS.NUM = FLIGHTS.STATUS",
                "self-join",
            ),
            (
                "SELECT * FROM FLIGHTS WHERE FLIGHTS.DP-TIME ! 5",
                "no comparison",
            ),
            (
                "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'ATLANTA",
                "unterminated",
            ),
            ("SELECT WEATHER.CITY FROM FLIGHTS", "not in FROM"),
            ("SELECT FLIGHTS.NOPE FROM FLIGHTS", "unknown attribute"),
        ] {
            let e = parse_query(sql, &c, QueryId(0), NodeId(0), &h).unwrap_err();
            assert!(
                e.0.contains(needle),
                "for {sql:?} expected {needle:?} in {:?}",
                e.0
            );
        }
    }

    #[test]
    fn string_codes_are_stable_and_case_insensitive() {
        assert_eq!(string_code("Atlanta"), string_code("ATLANTA"));
        assert_ne!(string_code("ATLANTA"), string_code("BOSTON"));
        assert!(string_code("ATLANTA") >= 0.0 && string_code("ATLANTA") < 1e6);
    }

    #[test]
    fn quoted_and_inside_string_is_not_a_conjunction() {
        let c = catalog();
        let q = parse_query(
            "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'PORT AND HARBOR'",
            &c,
            QueryId(0),
            NodeId(0),
            &SelectivityHints::default(),
        )
        .unwrap();
        assert_eq!(q.selections.len(), 1);
        assert_eq!(q.selections[0].value, string_code("PORT AND HARBOR"));
    }
}
