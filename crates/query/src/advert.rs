//! Stream advertisements and the operator-reuse registry.
//!
//! "We observe that each sink and deployed operator is a new stream source
//! for the data computed by its underlying query or sub-query. We refer to
//! these stream sources as derived stream sources" (Section 2.1.2). The
//! [`ReuseRegistry`] collects those derived streams as deployments are
//! registered and matches them against later queries, so an optimizer can
//! treat a compatible deployed operator as a free-upstream leaf.
//!
//! ## Advert lifecycle
//!
//! Adverts are not append-only: an advertisement is only worth matching
//! while the operator behind it is still running somewhere reachable. Each
//! advert therefore moves through an explicit state machine:
//!
//! ```text
//!            publish                    evict (budget)
//!   (new) ────────────► Live ────────────────────────► Evicted
//!                        ▲  │                             │
//!            host_rejoin │  │ host_crash / retire_query   │ re-derive
//!                        │  ▼                             │ ("upquery")
//!                      Retired ◄──────────────────────────┘
//!                                  host_crash / retire_query
//! ```
//!
//! * **Live** — served by [`ReuseRegistry::usable_for`].
//! * **Retired** — the origin query unregistered ([`ReuseRegistry::retire_query`],
//!   terminal) or the host node crashed ([`ReuseRegistry::host_crashed`],
//!   reversed by [`ReuseRegistry::host_rejoined`]). Never served.
//! * **Evicted** — dropped by the advert-memory budget (Noria-style partial
//!   state: the *slot* survives with a stable [`DerivedId`], the
//!   materialized stream does not). A probe that would have matched an
//!   evicted advert records a re-derivation request instead of serving it;
//!   [`ReuseRegistry::rederive`] (driven from the owning deployment at the
//!   next drain) re-publishes the stream in place.
//!
//! With an unbounded budget (the default) and no retirement calls, every
//! advert stays Live and the registry behaves exactly like the historical
//! append-only list — planner output is bit-identical.
//!
//! Join compatibility note: join selectivities (and thus join semantics) are
//! global per stream pair in the [`Catalog`](crate::Catalog), so two join
//! results over the same covered set under compatible selections are
//! interchangeable; selection compatibility is checked with predicate
//! subsumption ([`crate::predicate::selections_compatible`]).

use std::collections::BTreeSet;

use crate::inputset::InputSet;
use crate::plan::{Deployment, LeafSource, OperatorId};
use crate::predicate::{residual_selections, selections_compatible, SelectionPredicate};
use crate::query::{Query, QueryId, StreamSet};
use dsq_net::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of an advertised derived stream. Stable for the lifetime of
/// the registry: eviction and retirement never renumber ids.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct DerivedId(pub u32);

/// An advertised derived stream: the output of a deployed operator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DerivedStream {
    /// Advertisement id.
    pub id: DerivedId,
    /// Deployed operator instance producing this stream.
    pub operator: OperatorId,
    /// Base streams whose join this stream carries.
    pub covered: StreamSet,
    /// Selection predicates already applied upstream.
    pub selections: Vec<SelectionPredicate>,
    /// Output rate.
    pub rate: f64,
    /// Node the stream is produced at.
    pub host: NodeId,
    /// Query whose deployment created the operator.
    pub origin: QueryId,
}

/// Lifecycle state of one advert (see the module-level diagram).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AdvertState {
    /// Operator running, host reachable: served to optimizers.
    Live,
    /// Origin query gone or host crashed: never served. Terminal when the
    /// origin unregistered; reversed on host rejoin otherwise.
    Retired,
    /// Dropped by the advert budget; a matching probe records a
    /// re-derivation request instead of a candidate.
    Evicted,
}

/// Bookkeeping counters for the advertisement protocol. Advertisements are
/// "one-time messages exchanged only at the initial time of operator
/// instantiation" — these counters let experiments report that overhead.
/// `live`, `retired` and `evicted` are current bucket populations, so
/// `published == live + retired + evicted` holds at every instant (see
/// [`AdvertStats::conserved`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdvertStats {
    /// Advertisements published (new derived streams).
    pub published: u64,
    /// Duplicate advertisements suppressed (same signature and host).
    pub suppressed: u64,
    /// Successful reuse matches handed to optimizers.
    pub reuse_candidates_served: u64,
    /// Adverts currently live.
    pub live: u64,
    /// Adverts currently retired (origin gone or host down).
    pub retired: u64,
    /// Adverts currently evicted by the budget.
    pub evicted: u64,
    /// Probes that would have matched an evicted advert (re-derivation
    /// demand; the upquery trigger).
    pub rederive_requested: u64,
    /// Evicted adverts re-published from their owning deployment.
    pub rederived: u64,
}

impl AdvertStats {
    /// The lifecycle conservation law: every advert ever published is in
    /// exactly one bucket.
    pub fn conserved(&self) -> bool {
        self.published == self.live + self.retired + self.evicted
    }

    /// `(name, value)` pairs in serialization order (snapshot round-trip).
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("published", self.published),
            ("suppressed", self.suppressed),
            ("reuse_candidates_served", self.reuse_candidates_served),
            ("live", self.live),
            ("retired", self.retired),
            ("evicted", self.evicted),
            ("rederive_requested", self.rederive_requested),
            ("rederived", self.rederived),
        ]
    }

    /// Set one field by name (snapshot restore).
    pub fn set(&mut self, name: &str, value: u64) -> Result<(), String> {
        match name {
            "published" => self.published = value,
            "suppressed" => self.suppressed = value,
            "reuse_candidates_served" => self.reuse_candidates_served = value,
            "live" => self.live = value,
            "retired" => self.retired = value,
            "evicted" => self.evicted = value,
            "rederive_requested" => self.rederive_requested = value,
            "rederived" => self.rederived = value,
            other => return Err(format!("unknown advert stat {other:?}")),
        }
        Ok(())
    }
}

/// One advert slot: the stream plus its lifecycle flags. The slot (and its
/// id) survives eviction and retirement; only the Live set is budgeted.
#[derive(Clone, Debug)]
struct AdvertSlot {
    stream: DerivedStream,
    /// Word-bitset of the covered streams: the subset probe every
    /// `usable_for` call runs per advert is word-parallel instead of a
    /// sorted-id-vector walk.
    bits: InputSet,
    /// Origin query unregistered — terminal.
    gone: bool,
    /// Host node currently out of the overlay; cleared on rejoin.
    host_down: bool,
    /// Dropped by the advert budget; cleared by re-derivation.
    evicted: bool,
    /// LRU clock value of the last publish or served probe hit.
    last_used: u64,
}

impl AdvertSlot {
    fn state(&self) -> AdvertState {
        if self.gone || self.host_down {
            AdvertState::Retired
        } else if self.evicted {
            AdvertState::Evicted
        } else {
            AdvertState::Live
        }
    }
}

/// Registry of every deployed operator and its advertised derived stream,
/// with lifecycle management and a bounded Live set (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct ReuseRegistry {
    slots: Vec<AdvertSlot>,
    next_operator: u64,
    /// Maximum Live adverts (`0` = unbounded). Publishing past the budget
    /// evicts the coldest Live advert.
    budget: usize,
    /// Monotone recency clock, bumped on every publish and served probe.
    clock: u64,
    stats: AdvertStats,
    /// Evicted adverts a probe would have matched, awaiting re-derivation.
    rederive_wanted: BTreeSet<DerivedId>,
}

impl ReuseRegistry {
    /// An empty, unbounded registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry keeping at most `budget` live adverts
    /// (`0` = unbounded).
    pub fn with_budget(budget: usize) -> Self {
        ReuseRegistry {
            budget,
            ..Self::default()
        }
    }

    /// Current advert budget (`0` = unbounded).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Change the advert budget, evicting cold adverts if the live set now
    /// exceeds it.
    pub fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
        self.enforce_budget();
    }

    /// Every advert ever published, regardless of lifecycle state.
    pub fn deriveds(&self) -> impl Iterator<Item = &DerivedStream> {
        self.slots.iter().map(|s| &s.stream)
    }

    /// The currently live adverts (the only ones an operator is actually
    /// producing — e.g. what the advertisement-traffic accounting counts).
    pub fn live_deriveds(&self) -> impl Iterator<Item = &DerivedStream> {
        self.slots
            .iter()
            .filter(|s| s.state() == AdvertState::Live)
            .map(|s| &s.stream)
    }

    /// Advertisement protocol counters.
    pub fn stats(&self) -> AdvertStats {
        self.stats
    }

    /// Allocate a fresh operator instance id.
    pub fn allocate_operator(&mut self) -> OperatorId {
        let id = OperatorId(self.next_operator);
        self.next_operator += 1;
        id
    }

    /// Register a finished deployment: every join operator (and the sink
    /// output, hosted at the sink) is advertised as a derived stream.
    /// Returns the ids of the newly published advertisements.
    pub fn register_deployment(
        &mut self,
        query: &Query,
        deployment: &Deployment,
    ) -> Vec<DerivedId> {
        let mut published = Vec::new();
        for i in deployment.plan.join_indices() {
            let node = &deployment.plan.nodes()[i];
            let covered = node.covered().clone();
            let selections = restrict_selections(&query.selections, &covered);
            if let Some(id) = self.advertise(
                covered,
                selections,
                node.rate(),
                deployment.placement[i],
                query.id,
            ) {
                published.push(id);
            }
        }
        // The sink's delivered result is also a derived stream, hosted at
        // the sink node.
        let root = &deployment.plan.nodes()[deployment.plan.root()];
        if root.is_join() {
            let covered = root.covered().clone();
            let selections = restrict_selections(&query.selections, &covered);
            if let Some(id) =
                self.advertise(covered, selections, root.rate(), deployment.sink, query.id)
            {
                published.push(id);
            }
        }
        published
    }

    /// Advertise one derived stream. Exact duplicates of a *live* advert
    /// (same covered set, selection signature and host) are suppressed; an
    /// exact duplicate of an *evicted* advert re-derives it in place (the
    /// original id comes back live). Returns the advert's id, or `None`
    /// when suppressed or rejected.
    pub fn advertise(
        &mut self,
        covered: StreamSet,
        selections: Vec<SelectionPredicate>,
        rate: f64,
        host: NodeId,
        origin: QueryId,
    ) -> Option<DerivedId> {
        if covered.len() < 2 {
            // Single-stream "deriveds" are just (filtered) base streams; the
            // base advertisement already covers them.
            return None;
        }
        let mut reinstate: Option<usize> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if s.stream.host != host
                || s.stream.covered != covered
                || !same_selection_set(&s.stream.selections, &selections)
            {
                continue;
            }
            match s.state() {
                AdvertState::Live => {
                    self.stats.suppressed += 1;
                    dsq_obs::counter("advert.suppressed", 1);
                    return None;
                }
                // The same stream is being materialized again: the evicted
                // slot comes back under its original id instead of leaking
                // a duplicate.
                AdvertState::Evicted => {
                    reinstate = Some(i);
                    break;
                }
                // Retired slots are dead history; a new operator with the
                // same signature gets a fresh advert below.
                AdvertState::Retired => {}
            }
        }
        if let Some(i) = reinstate {
            let id = self.slots[i].stream.id;
            self.rederive(id);
            return Some(id);
        }
        let id = DerivedId(self.slots.len() as u32);
        let operator = self.allocate_operator();
        self.clock += 1;
        let slot = AdvertSlot {
            bits: InputSet::from_stream_set(&covered),
            stream: DerivedStream {
                id,
                operator,
                covered,
                selections,
                rate,
                host,
                origin,
            },
            gone: false,
            host_down: false,
            evicted: false,
            last_used: self.clock,
        };
        self.slots.push(slot);
        self.stats.published += 1;
        self.stats.live += 1;
        dsq_obs::counter("advert.published", 1);
        self.enforce_budget();
        Some(id)
    }

    /// Evict the coldest live adverts until the live set fits the budget.
    fn enforce_budget(&mut self) {
        if self.budget == 0 {
            return;
        }
        while self.stats.live as usize > self.budget {
            let coldest = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.state() == AdvertState::Live)
                .min_by_key(|(i, s)| (s.last_used, *i))
                .map(|(i, _)| i)
                .expect("live count > 0");
            self.transition(coldest, |s| s.evicted = true);
            dsq_obs::counter("advert.evicted", 1);
        }
    }

    /// Apply a flag change to one slot, keeping the bucket gauges
    /// conserved across the state transition.
    fn transition(&mut self, idx: usize, f: impl FnOnce(&mut AdvertSlot)) {
        let before = self.slots[idx].state();
        f(&mut self.slots[idx]);
        let after = self.slots[idx].state();
        if before == after {
            return;
        }
        match before {
            AdvertState::Live => self.stats.live -= 1,
            AdvertState::Retired => self.stats.retired -= 1,
            AdvertState::Evicted => self.stats.evicted -= 1,
        }
        match after {
            AdvertState::Live => self.stats.live += 1,
            AdvertState::Retired => self.stats.retired += 1,
            AdvertState::Evicted => self.stats.evicted += 1,
        }
        debug_assert!(self.stats.conserved());
    }

    /// Retire every advert published by `origin`'s deployments (the query
    /// unregistered, forfeited, or is being replanned — its operators are
    /// torn down). Terminal: a later deployment of the same query publishes
    /// fresh adverts. Returns how many adverts changed state.
    pub fn retire_query(&mut self, origin: QueryId) -> usize {
        let mut changed = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].stream.origin == origin && !self.slots[i].gone {
                let before = self.slots[i].state();
                self.transition(i, |s| s.gone = true);
                self.rederive_wanted.remove(&self.slots[i].stream.id);
                if before != AdvertState::Retired {
                    changed += 1;
                }
            }
        }
        if changed > 0 {
            dsq_obs::counter("advert.retired", changed as u64);
        }
        changed
    }

    /// Retire every advert hosted on `node` (it crashed out of the
    /// overlay). Reversed by [`Self::host_rejoined`] unless the origin
    /// query also went away. Returns how many adverts changed state.
    pub fn host_crashed(&mut self, node: NodeId) -> usize {
        let mut changed = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].stream.host == node && !self.slots[i].host_down {
                let before = self.slots[i].state();
                self.transition(i, |s| s.host_down = true);
                self.rederive_wanted.remove(&self.slots[i].stream.id);
                if before != AdvertState::Retired {
                    changed += 1;
                }
            }
        }
        if changed > 0 {
            dsq_obs::counter("advert.retired", changed as u64);
        }
        changed
    }

    /// Reinstate the adverts hosted on `node` after it rejoined the
    /// overlay (unless their origin query is gone — that retirement is
    /// terminal). Returns how many adverts changed state.
    pub fn host_rejoined(&mut self, node: NodeId) -> usize {
        let mut changed = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].stream.host == node && self.slots[i].host_down {
                let before = self.slots[i].state();
                self.transition(i, |s| s.host_down = false);
                if self.slots[i].state() != before {
                    changed += 1;
                }
            }
        }
        if changed > 0 {
            dsq_obs::counter("advert.reinstated", changed as u64);
        }
        changed
    }

    /// Derived streams usable for `query`, already converted into plan
    /// leaves with residual-selection-adjusted rates.
    ///
    /// A derived stream is usable when it is live, covers a subset (≥ 2) of
    /// the query's sources and every selection it applied is implied by the
    /// query's selections. Residual selections the query still requires are
    /// folded into the leaf's rate. Served adverts have their recency
    /// bumped (the eviction policy's LRU signal); matching *evicted*
    /// adverts record a re-derivation request instead of a candidate.
    pub fn usable_for(&mut self, query: &Query) -> Vec<LeafSource> {
        self.usable_for_live(query, |_| true)
    }

    /// Like [`Self::usable_for`], but filtered through the caller's
    /// liveness view (typically the hierarchy's active-node set): adverts
    /// whose host `is_active` rejects are not served, so planning under
    /// churn never consumes a derived stream hosted on a dead node even
    /// before the registry hears about the crash.
    pub fn usable_for_live(
        &mut self,
        query: &Query,
        is_active: impl Fn(NodeId) -> bool,
    ) -> Vec<LeafSource> {
        let source_bits = InputSet::from_bits(query.sources.iter().map(|s| s.0 as usize));
        let mut out = Vec::new();
        for i in 0..self.slots.len() {
            let s = &self.slots[i];
            if !s.bits.is_subset_of(&source_bits) {
                continue;
            }
            let required = restrict_selections(&query.selections, &s.stream.covered);
            if !selections_compatible(&s.stream.selections, &required) {
                continue;
            }
            match s.state() {
                AdvertState::Retired => continue,
                AdvertState::Live if !is_active(s.stream.host) => continue,
                AdvertState::Evicted => {
                    if is_active(s.stream.host) {
                        self.note_rederive_wanted(i);
                    }
                    continue;
                }
                AdvertState::Live => {}
            }
            let residual = residual_selections(&s.stream.selections, &required);
            let rate = residual
                .iter()
                .fold(s.stream.rate, |r, p| r * p.selectivity);
            out.push(LeafSource::Derived {
                id: s.stream.id,
                covered: s.stream.covered.clone(),
                rate,
                host: s.stream.host,
            });
            self.clock += 1;
            self.slots[i].last_used = self.clock;
        }
        self.stats.reuse_candidates_served += out.len() as u64;
        dsq_obs::counter("advert.reuse_candidates_served", out.len() as u64);
        out
    }

    /// Like [`Self::usable_for`], but requiring the derived stream's
    /// selections to match the query's (restricted to the covered streams)
    /// *exactly*, with no subsumption reasoning and no residual predicates.
    /// This is the naive matching rule the reuse-matching ablation compares
    /// against.
    pub fn usable_for_exact(&mut self, query: &Query) -> Vec<LeafSource> {
        let source_bits = InputSet::from_bits(query.sources.iter().map(|s| s.0 as usize));
        let mut out = Vec::new();
        for i in 0..self.slots.len() {
            let s = &self.slots[i];
            if !s.bits.is_subset_of(&source_bits) {
                continue;
            }
            let required = restrict_selections(&query.selections, &s.stream.covered);
            if !same_selection_set(&s.stream.selections, &required) {
                continue;
            }
            match s.state() {
                AdvertState::Retired => continue,
                AdvertState::Evicted => {
                    self.note_rederive_wanted(i);
                    continue;
                }
                AdvertState::Live => {}
            }
            out.push(LeafSource::Derived {
                id: s.stream.id,
                covered: s.stream.covered.clone(),
                rate: s.stream.rate,
                host: s.stream.host,
            });
            self.clock += 1;
            self.slots[i].last_used = self.clock;
        }
        self.stats.reuse_candidates_served += out.len() as u64;
        out
    }

    fn note_rederive_wanted(&mut self, idx: usize) {
        self.stats.rederive_requested += 1;
        dsq_obs::counter("advert.rederive_requested", 1);
        self.rederive_wanted.insert(self.slots[idx].stream.id);
    }

    /// Take (and clear) the evicted adverts that probes wanted since the
    /// last drain, in id order. The caller re-publishes each from its
    /// owning deployment via [`Self::rederive`] — or drops the request if
    /// the owner is gone.
    pub fn drain_rederive_requests(&mut self) -> Vec<DerivedId> {
        std::mem::take(&mut self.rederive_wanted)
            .into_iter()
            .collect()
    }

    /// Re-publish an evicted advert in place (the "upquery": its owning
    /// deployment still runs the operator, so the stream can be
    /// re-materialized on demand). Returns false unless `id` names an
    /// evicted advert.
    pub fn rederive(&mut self, id: DerivedId) -> bool {
        let Some(idx) = self.slot_index(id) else {
            return false;
        };
        if self.slots[idx].state() != AdvertState::Evicted {
            return false;
        }
        self.transition(idx, |s| s.evicted = false);
        self.clock += 1;
        self.slots[idx].last_used = self.clock;
        self.rederive_wanted.remove(&id);
        self.stats.rederived += 1;
        dsq_obs::counter("advert.rederived", 1);
        // Re-materializing one advert can push another past the budget.
        self.enforce_budget();
        true
    }

    fn slot_index(&self, id: DerivedId) -> Option<usize> {
        let idx = id.0 as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// Look up an advertisement. `None` when `id` was never issued by this
    /// registry (the slot map keeps evicted and retired adverts
    /// addressable, so a once-valid id always resolves).
    pub fn derived(&self, id: DerivedId) -> Option<&DerivedStream> {
        self.slot_index(id).map(|i| &self.slots[i].stream)
    }

    /// Lifecycle state of an advertisement, if `id` was ever issued.
    pub fn state(&self, id: DerivedId) -> Option<AdvertState> {
        self.slot_index(id).map(|i| self.slots[i].state())
    }

    /// Number of advert slots ever published (evicted and retired
    /// included — ids are stable, so slots are never dropped).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently live adverts.
    pub fn live_len(&self) -> usize {
        self.stats.live as usize
    }

    /// True when nothing has been advertised.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Deterministic fingerprint of the full registry state: every slot's
    /// identity, flags and recency plus the protocol counters. Two
    /// registries with equal fingerprints hold identical advert state —
    /// what the service's crash-recovery differential asserts.
    pub fn fingerprint(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            hash ^= v;
            hash = hash.wrapping_mul(0x1_0000_01b3);
        };
        for s in &self.slots {
            mix(u64::from(s.stream.id.0));
            mix(s.stream.operator.0);
            mix(u64::from(s.stream.host.0));
            mix(u64::from(s.stream.origin.0));
            mix(s.stream.rate.to_bits());
            for st in s.stream.covered.iter() {
                mix(u64::from(st.0));
            }
            mix(u64::from(s.gone) | u64::from(s.host_down) << 1 | u64::from(s.evicted) << 2);
            mix(s.last_used);
        }
        for (_, v) in self.stats.fields() {
            mix(v);
        }
        format!(
            "published={} live={} retired={} evicted={} rederived={} hash={hash:016x}",
            self.stats.published,
            self.stats.live,
            self.stats.retired,
            self.stats.evicted,
            self.stats.rederived,
        )
    }

    /// Reinsert a fully specified advert slot (snapshot restore). Slots
    /// must arrive in id order; bucket gauges are recomputed by
    /// [`Self::restore_finish`].
    pub fn restore_slot(
        &mut self,
        stream: DerivedStream,
        gone: bool,
        host_down: bool,
        evicted: bool,
        last_used: u64,
    ) -> Result<(), String> {
        if stream.id.0 as usize != self.slots.len() {
            return Err(format!(
                "advert slots must restore in id order: got {} at position {}",
                stream.id.0,
                self.slots.len()
            ));
        }
        self.slots.push(AdvertSlot {
            bits: InputSet::from_stream_set(&stream.covered),
            stream,
            gone,
            host_down,
            evicted,
            last_used,
        });
        Ok(())
    }

    /// Finish a snapshot restore: install the recorded scalars and
    /// counters, then cross-check the recorded bucket gauges against the
    /// restored slots — a mismatch means the snapshot was tampered with or
    /// the slot lines diverged from the counters, so refuse to load.
    pub fn restore_finish(
        &mut self,
        clock: u64,
        next_operator: u64,
        stats: AdvertStats,
    ) -> Result<(), String> {
        let mut live = 0u64;
        let mut retired = 0u64;
        let mut evicted = 0u64;
        for s in &self.slots {
            match s.state() {
                AdvertState::Live => live += 1,
                AdvertState::Retired => retired += 1,
                AdvertState::Evicted => evicted += 1,
            }
        }
        if (live, retired, evicted) != (stats.live, stats.retired, stats.evicted) {
            return Err(format!(
                "advert gauges diverge from restored slots: slots say \
                 live={live} retired={retired} evicted={evicted}, counters say \
                 live={} retired={} evicted={}",
                stats.live, stats.retired, stats.evicted
            ));
        }
        if !stats.conserved() {
            return Err(format!(
                "advert stats violate conservation: published={} != live+retired+evicted={}",
                stats.published,
                stats.live + stats.retired + stats.evicted
            ));
        }
        self.clock = clock;
        self.next_operator = next_operator;
        self.stats = stats;
        Ok(())
    }

    /// The recency clock (snapshot serialization).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The next operator id to be allocated (snapshot serialization).
    pub fn next_operator(&self) -> u64 {
        self.next_operator
    }

    /// Lifecycle flags of one slot, `(gone, host_down, evicted, last_used)`
    /// (snapshot serialization).
    pub fn slot_flags(&self, id: DerivedId) -> Option<(bool, bool, bool, u64)> {
        self.slot_index(id).map(|i| {
            let s = &self.slots[i];
            (s.gone, s.host_down, s.evicted, s.last_used)
        })
    }
}

/// The subset of `selections` that applies to streams in `covered`.
fn restrict_selections(
    selections: &[SelectionPredicate],
    covered: &StreamSet,
) -> Vec<SelectionPredicate> {
    selections
        .iter()
        .filter(|s| covered.contains(s.stream))
        .cloned()
        .collect()
}

/// Set equality of selection lists (order-insensitive, exact filters).
fn same_selection_set(a: &[SelectionPredicate], b: &[SelectionPredicate]) -> bool {
    a.len() == b.len()
        && a.iter().all(|x| b.iter().any(|y| x.same_filter(y)))
        && b.iter().all(|y| a.iter().any(|x| y.same_filter(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FlatPlan, JoinTree};
    use crate::predicate::CmpOp;
    use crate::stream::{Catalog, Schema, StreamId};
    use dsq_net::{DistanceMatrix, LinkKind, Metric, Network};

    fn setup() -> (Catalog, DistanceMatrix) {
        let mut net = Network::new(4);
        for i in 0..3u32 {
            net.add_link(NodeId(i), NodeId(i + 1), 1.0, 1.0, LinkKind::Stub);
        }
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let mut c = Catalog::new();
        let a = c.add_stream("A", 10.0, NodeId(0), Schema::new(["x"]));
        let b = c.add_stream("B", 4.0, NodeId(3), Schema::new(["x"]));
        c.add_stream("C", 7.0, NodeId(1), Schema::new(["x"]));
        c.set_selectivity(a, b, 0.1);
        (c, dm)
    }

    fn deploy_ab(c: &Catalog, dm: &DistanceMatrix) -> (Query, Deployment) {
        let q = Query::join(QueryId(0), [StreamId(0), StreamId(1)], NodeId(2));
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, c);
        let d = Deployment::evaluate(
            QueryId(0),
            plan,
            vec![NodeId(0), NodeId(3), NodeId(1)],
            NodeId(2),
            dm,
        );
        (q, d)
    }

    #[test]
    fn register_publishes_operator_and_sink_streams() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        let published = reg.register_deployment(&q, &d);
        // One join operator at n1 and the sink copy at n2.
        assert_eq!(published.len(), 2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().published, 2);
        assert_eq!(reg.derived(published[0]).unwrap().host, NodeId(1));
        assert_eq!(reg.derived(published[1]).unwrap().host, NodeId(2));
        assert!(reg.stats().conserved());
    }

    #[test]
    fn duplicate_advertisements_are_suppressed() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        reg.register_deployment(&q, &d);
        let again = reg.register_deployment(&q, &d);
        assert!(again.is_empty());
        assert_eq!(reg.stats().suppressed, 2);
    }

    #[test]
    fn usable_for_matches_subset_queries_only() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        reg.register_deployment(&q, &d);

        // Query over {A, B, C} can reuse the {A, B} operator.
        let q2 = Query::join(
            QueryId(1),
            [StreamId(0), StreamId(1), StreamId(2)],
            NodeId(0),
        );
        let leaves = reg.usable_for(&q2);
        assert_eq!(leaves.len(), 2, "operator copy and sink copy both usable");

        // Query over {A, C} cannot.
        let q3 = Query::join(QueryId(2), [StreamId(0), StreamId(2)], NodeId(0));
        assert!(reg.usable_for(&q3).is_empty());
    }

    #[test]
    fn selection_subsumption_gates_reuse_and_adjusts_rate() {
        let (c, dm) = setup();
        // Deployed operator applied x < 12 on stream A.
        let mut q = Query::join(QueryId(0), [StreamId(0), StreamId(1)], NodeId(2));
        q.selections.push(SelectionPredicate::new(
            StreamId(0),
            "x",
            CmpOp::Lt,
            12.0,
            0.5,
        ));
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let rate_ab = plan.output_rate();
        let d = Deployment::evaluate(
            QueryId(0),
            plan,
            vec![NodeId(0), NodeId(3), NodeId(1)],
            NodeId(2),
            &dm,
        );
        let mut reg = ReuseRegistry::new();
        reg.register_deployment(&q, &d);

        // A consumer requiring the same filter plus a *stricter* one reuses
        // with a rate scaled by the residual predicate.
        let mut strict = Query::join(QueryId(1), [StreamId(0), StreamId(1)], NodeId(0));
        strict.selections.push(SelectionPredicate::new(
            StreamId(0),
            "x",
            CmpOp::Lt,
            12.0,
            0.5,
        ));
        strict.selections.push(SelectionPredicate::new(
            StreamId(1),
            "x",
            CmpOp::Eq,
            1.0,
            0.2,
        ));
        let leaves = reg.usable_for(&strict);
        assert!(!leaves.is_empty());
        match &leaves[0] {
            LeafSource::Derived { rate, .. } => {
                assert!((rate - rate_ab * 0.2).abs() < 1e-9, "residual Eq folded in")
            }
            _ => panic!("expected derived leaf"),
        }

        // A consumer requiring a *weaker* filter (x < 20) cannot reuse: the
        // deployed operator already dropped tuples in [12, 20).
        let mut weak = Query::join(QueryId(2), [StreamId(0), StreamId(1)], NodeId(0));
        weak.selections.push(SelectionPredicate::new(
            StreamId(0),
            "x",
            CmpOp::Lt,
            20.0,
            0.7,
        ));
        assert!(reg.usable_for(&weak).is_empty());
    }

    #[test]
    fn single_stream_adverts_rejected() {
        let mut reg = ReuseRegistry::new();
        let out = reg.advertise(
            StreamSet::singleton(StreamId(0)),
            vec![],
            1.0,
            NodeId(0),
            QueryId(0),
        );
        assert!(out.is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn derived_lookup_is_fallible_not_panicking() {
        let mut reg = ReuseRegistry::new();
        assert!(reg.derived(DerivedId(0)).is_none());
        assert!(reg.state(DerivedId(7)).is_none());
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let ids = reg.register_deployment(&q, &d);
        assert!(reg.derived(ids[0]).is_some());
        assert!(reg.derived(DerivedId(ids.len() as u32 + 5)).is_none());
    }

    #[test]
    fn crash_retires_and_rejoin_reinstates() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        let ids = reg.register_deployment(&q, &d);
        let probe = Query::join(
            QueryId(1),
            [StreamId(0), StreamId(1), StreamId(2)],
            NodeId(0),
        );
        assert_eq!(reg.usable_for(&probe).len(), 2);

        // Host of the operator copy crashes: only the sink copy is served.
        let host = reg.derived(ids[0]).unwrap().host;
        assert_eq!(reg.host_crashed(host), 1);
        assert_eq!(reg.state(ids[0]), Some(AdvertState::Retired));
        assert_eq!(reg.usable_for(&probe).len(), 1);
        assert!(reg.stats().conserved());

        // Rejoin brings it back.
        assert_eq!(reg.host_rejoined(host), 1);
        assert_eq!(reg.state(ids[0]), Some(AdvertState::Live));
        assert_eq!(reg.usable_for(&probe).len(), 2);
        assert!(reg.stats().conserved());
    }

    #[test]
    fn liveness_view_filters_without_registry_surgery() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        let ids = reg.register_deployment(&q, &d);
        let down = reg.derived(ids[0]).unwrap().host;
        let probe = Query::join(
            QueryId(1),
            [StreamId(0), StreamId(1), StreamId(2)],
            NodeId(0),
        );
        // The probe's own view of the overlay filters the dead host even
        // though the registry has not heard about the crash.
        let leaves = reg.usable_for_live(&probe, |n| n != down);
        assert_eq!(leaves.len(), 1);
        assert!(leaves
            .iter()
            .all(|l| !matches!(l, LeafSource::Derived { host, .. } if *host == down)));
        assert_eq!(reg.state(ids[0]), Some(AdvertState::Live));
    }

    #[test]
    fn query_retirement_is_terminal() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        let ids = reg.register_deployment(&q, &d);
        assert_eq!(reg.retire_query(q.id), 2);
        let probe = Query::join(
            QueryId(1),
            [StreamId(0), StreamId(1), StreamId(2)],
            NodeId(0),
        );
        assert!(reg.usable_for(&probe).is_empty());
        // Rejoining the host does not resurrect a gone query's adverts.
        let host = reg.derived(ids[0]).unwrap().host;
        reg.host_crashed(host);
        reg.host_rejoined(host);
        assert_eq!(reg.state(ids[0]), Some(AdvertState::Retired));
        assert!(reg.stats().conserved());
        // Retiring again is a no-op.
        assert_eq!(reg.retire_query(q.id), 0);
    }

    #[test]
    fn budget_evicts_coldest_and_rederive_restores() {
        let mut reg = ReuseRegistry::with_budget(2);
        let mk = |reg: &mut ReuseRegistry, a: u32, b: u32, host: u32, origin: u32| {
            reg.advertise(
                StreamSet::from_iter([StreamId(a), StreamId(b)]),
                vec![],
                1.0,
                NodeId(host),
                QueryId(origin),
            )
            .unwrap()
        };
        let id0 = mk(&mut reg, 0, 1, 0, 0);
        let id1 = mk(&mut reg, 1, 2, 1, 1);
        // Touch id0 so id1 is the coldest when the budget overflows.
        let probe = Query::join(QueryId(9), [StreamId(0), StreamId(1)], NodeId(3));
        assert_eq!(reg.usable_for(&probe).len(), 1);
        let id2 = mk(&mut reg, 2, 3, 2, 2);
        assert_eq!(reg.live_len(), 2);
        assert_eq!(reg.state(id1), Some(AdvertState::Evicted));
        assert_eq!(reg.state(id0), Some(AdvertState::Live));
        assert_eq!(reg.state(id2), Some(AdvertState::Live));
        assert!(reg.stats().conserved());

        // A probe that would have matched the evicted advert records a
        // re-derivation request instead of serving it.
        let probe1 = Query::join(QueryId(10), [StreamId(1), StreamId(2)], NodeId(3));
        assert!(reg.usable_for(&probe1).is_empty());
        assert_eq!(reg.drain_rederive_requests(), vec![id1]);
        assert_eq!(reg.stats().rederive_requested, 1);

        // Re-deriving it re-publishes in place (stable id) and pushes the
        // new coldest advert out.
        assert!(reg.rederive(id1));
        assert_eq!(reg.state(id1), Some(AdvertState::Live));
        assert_eq!(reg.live_len(), 2);
        assert_eq!(reg.stats().rederived, 1);
        assert_eq!(reg.usable_for(&probe1).len(), 1);
        assert!(reg.stats().conserved());
        // The drained request list was cleared.
        assert!(reg.drain_rederive_requests().is_empty());
    }

    #[test]
    fn readvertising_an_evicted_signature_reinstates_the_slot() {
        let mut reg = ReuseRegistry::with_budget(1);
        let a = reg
            .advertise(
                StreamSet::from_iter([StreamId(0), StreamId(1)]),
                vec![],
                1.0,
                NodeId(0),
                QueryId(0),
            )
            .unwrap();
        let b = reg
            .advertise(
                StreamSet::from_iter([StreamId(1), StreamId(2)]),
                vec![],
                1.0,
                NodeId(1),
                QueryId(1),
            )
            .unwrap();
        assert_eq!(reg.state(a), Some(AdvertState::Evicted));
        // Advertising the same signature again re-derives the original slot
        // instead of minting a duplicate id.
        let again = reg
            .advertise(
                StreamSet::from_iter([StreamId(0), StreamId(1)]),
                vec![],
                1.0,
                NodeId(0),
                QueryId(0),
            )
            .unwrap();
        assert_eq!(again, a);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.state(a), Some(AdvertState::Live));
        assert_eq!(reg.state(b), Some(AdvertState::Evicted));
        assert_eq!(reg.stats().published, 2);
        assert_eq!(reg.stats().rederived, 1);
        assert!(reg.stats().conserved());
    }

    #[test]
    fn unbounded_budget_never_evicts() {
        let mut reg = ReuseRegistry::new();
        for i in 0..64u32 {
            reg.advertise(
                StreamSet::from_iter([StreamId(i), StreamId(i + 1)]),
                vec![],
                1.0,
                NodeId(0),
                QueryId(i),
            );
        }
        assert_eq!(reg.live_len(), 64);
        assert_eq!(reg.stats().evicted, 0);
        assert!(reg.stats().conserved());
    }

    #[test]
    fn fingerprint_tracks_lifecycle_state() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut a = ReuseRegistry::new();
        let mut b = ReuseRegistry::new();
        a.register_deployment(&q, &d);
        b.register_deployment(&q, &d);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.retire_query(q.id);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.retire_query(q.id);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
