//! Stream advertisements and the operator-reuse registry.
//!
//! "We observe that each sink and deployed operator is a new stream source
//! for the data computed by its underlying query or sub-query. We refer to
//! these stream sources as derived stream sources" (Section 2.1.2). The
//! [`ReuseRegistry`] collects those derived streams as deployments are
//! registered and matches them against later queries, so an optimizer can
//! treat a compatible deployed operator as a free-upstream leaf.
//!
//! Join compatibility note: join selectivities (and thus join semantics) are
//! global per stream pair in the [`Catalog`](crate::Catalog), so two join
//! results over the same covered set under compatible selections are
//! interchangeable; selection compatibility is checked with predicate
//! subsumption ([`crate::predicate::selections_compatible`]).

use crate::inputset::InputSet;
use crate::plan::{Deployment, LeafSource, OperatorId};
use crate::predicate::{residual_selections, selections_compatible, SelectionPredicate};
use crate::query::{Query, QueryId, StreamSet};
use dsq_net::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of an advertised derived stream.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct DerivedId(pub u32);

/// An advertised derived stream: the output of a deployed operator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DerivedStream {
    /// Advertisement id.
    pub id: DerivedId,
    /// Deployed operator instance producing this stream.
    pub operator: OperatorId,
    /// Base streams whose join this stream carries.
    pub covered: StreamSet,
    /// Selection predicates already applied upstream.
    pub selections: Vec<SelectionPredicate>,
    /// Output rate.
    pub rate: f64,
    /// Node the stream is produced at.
    pub host: NodeId,
    /// Query whose deployment created the operator.
    pub origin: QueryId,
}

/// Bookkeeping counters for the advertisement protocol. Advertisements are
/// "one-time messages exchanged only at the initial time of operator
/// instantiation" — these counters let experiments report that overhead.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AdvertStats {
    /// Advertisements published (new derived streams).
    pub published: u64,
    /// Duplicate advertisements suppressed (same signature and host).
    pub suppressed: u64,
    /// Successful reuse matches handed to optimizers.
    pub reuse_candidates_served: u64,
}

/// Registry of every deployed operator and its advertised derived stream.
#[derive(Clone, Debug, Default)]
pub struct ReuseRegistry {
    deriveds: Vec<DerivedStream>,
    /// Word-bitset of each derived's covered streams, index-aligned with
    /// `deriveds`: the subset probe every `usable_for` call runs per
    /// derived is word-parallel instead of a sorted-id-vector walk.
    covered_bits: Vec<InputSet>,
    next_operator: u64,
    stats: AdvertStats,
}

impl ReuseRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// All advertised derived streams.
    pub fn deriveds(&self) -> &[DerivedStream] {
        &self.deriveds
    }

    /// Advertisement protocol counters.
    pub fn stats(&self) -> AdvertStats {
        self.stats
    }

    /// Allocate a fresh operator instance id.
    pub fn allocate_operator(&mut self) -> OperatorId {
        let id = OperatorId(self.next_operator);
        self.next_operator += 1;
        id
    }

    /// Register a finished deployment: every join operator (and the sink
    /// output, hosted at the sink) is advertised as a derived stream.
    /// Returns the ids of the newly published advertisements.
    pub fn register_deployment(
        &mut self,
        query: &Query,
        deployment: &Deployment,
    ) -> Vec<DerivedId> {
        let mut published = Vec::new();
        for i in deployment.plan.join_indices() {
            let node = &deployment.plan.nodes()[i];
            let covered = node.covered().clone();
            let selections = restrict_selections(&query.selections, &covered);
            if let Some(id) = self.advertise(
                covered,
                selections,
                node.rate(),
                deployment.placement[i],
                query.id,
            ) {
                published.push(id);
            }
        }
        // The sink's delivered result is also a derived stream, hosted at
        // the sink node.
        let root = &deployment.plan.nodes()[deployment.plan.root()];
        if root.is_join() {
            let covered = root.covered().clone();
            let selections = restrict_selections(&query.selections, &covered);
            if let Some(id) =
                self.advertise(covered, selections, root.rate(), deployment.sink, query.id)
            {
                published.push(id);
            }
        }
        published
    }

    /// Advertise one derived stream. Exact duplicates (same covered set,
    /// selection signature and host) are suppressed. Returns the new id, or
    /// `None` when suppressed.
    pub fn advertise(
        &mut self,
        covered: StreamSet,
        selections: Vec<SelectionPredicate>,
        rate: f64,
        host: NodeId,
        origin: QueryId,
    ) -> Option<DerivedId> {
        if covered.len() < 2 {
            // Single-stream "deriveds" are just (filtered) base streams; the
            // base advertisement already covers them.
            return None;
        }
        let duplicate = self.deriveds.iter().any(|d| {
            d.host == host && d.covered == covered && same_selection_set(&d.selections, &selections)
        });
        if duplicate {
            self.stats.suppressed += 1;
            dsq_obs::counter("advert.suppressed", 1);
            return None;
        }
        let id = DerivedId(self.deriveds.len() as u32);
        let operator = self.allocate_operator();
        self.covered_bits.push(InputSet::from_stream_set(&covered));
        self.deriveds.push(DerivedStream {
            id,
            operator,
            covered,
            selections,
            rate,
            host,
            origin,
        });
        self.stats.published += 1;
        dsq_obs::counter("advert.published", 1);
        Some(id)
    }

    /// Derived streams usable for `query`, already converted into plan
    /// leaves with residual-selection-adjusted rates.
    ///
    /// A derived stream is usable when it covers a subset (≥ 2) of the
    /// query's sources and every selection it applied is implied by the
    /// query's selections. Residual selections the query still requires are
    /// folded into the leaf's rate.
    pub fn usable_for(&mut self, query: &Query) -> Vec<LeafSource> {
        let source_bits = InputSet::from_bits(query.sources.iter().map(|s| s.0 as usize));
        let mut out = Vec::new();
        for (d, bits) in self.deriveds.iter().zip(&self.covered_bits) {
            if !bits.is_subset_of(&source_bits) {
                continue;
            }
            let required = restrict_selections(&query.selections, &d.covered);
            if !selections_compatible(&d.selections, &required) {
                continue;
            }
            let residual = residual_selections(&d.selections, &required);
            let rate = residual.iter().fold(d.rate, |r, p| r * p.selectivity);
            out.push(LeafSource::Derived {
                id: d.id,
                covered: d.covered.clone(),
                rate,
                host: d.host,
            });
        }
        self.stats.reuse_candidates_served += out.len() as u64;
        dsq_obs::counter("advert.reuse_candidates_served", out.len() as u64);
        out
    }

    /// Like [`Self::usable_for`], but requiring the derived stream's
    /// selections to match the query's (restricted to the covered streams)
    /// *exactly*, with no subsumption reasoning and no residual predicates.
    /// This is the naive matching rule the reuse-matching ablation compares
    /// against.
    pub fn usable_for_exact(&mut self, query: &Query) -> Vec<LeafSource> {
        let source_bits = InputSet::from_bits(query.sources.iter().map(|s| s.0 as usize));
        let mut out = Vec::new();
        for (d, bits) in self.deriveds.iter().zip(&self.covered_bits) {
            if !bits.is_subset_of(&source_bits) {
                continue;
            }
            let required = restrict_selections(&query.selections, &d.covered);
            if !same_selection_set(&d.selections, &required) {
                continue;
            }
            out.push(LeafSource::Derived {
                id: d.id,
                covered: d.covered.clone(),
                rate: d.rate,
                host: d.host,
            });
        }
        self.stats.reuse_candidates_served += out.len() as u64;
        out
    }

    /// Look up an advertisement.
    pub fn derived(&self, id: DerivedId) -> &DerivedStream {
        &self.deriveds[id.0 as usize]
    }

    /// Number of advertised derived streams.
    pub fn len(&self) -> usize {
        self.deriveds.len()
    }

    /// True when nothing has been advertised.
    pub fn is_empty(&self) -> bool {
        self.deriveds.is_empty()
    }
}

/// The subset of `selections` that applies to streams in `covered`.
fn restrict_selections(
    selections: &[SelectionPredicate],
    covered: &StreamSet,
) -> Vec<SelectionPredicate> {
    selections
        .iter()
        .filter(|s| covered.contains(s.stream))
        .cloned()
        .collect()
}

/// Set equality of selection lists (order-insensitive, exact filters).
fn same_selection_set(a: &[SelectionPredicate], b: &[SelectionPredicate]) -> bool {
    a.len() == b.len()
        && a.iter().all(|x| b.iter().any(|y| x.same_filter(y)))
        && b.iter().all(|y| a.iter().any(|x| y.same_filter(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FlatPlan, JoinTree};
    use crate::predicate::CmpOp;
    use crate::stream::{Catalog, Schema, StreamId};
    use dsq_net::{DistanceMatrix, LinkKind, Metric, Network};

    fn setup() -> (Catalog, DistanceMatrix) {
        let mut net = Network::new(4);
        for i in 0..3u32 {
            net.add_link(NodeId(i), NodeId(i + 1), 1.0, 1.0, LinkKind::Stub);
        }
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let mut c = Catalog::new();
        let a = c.add_stream("A", 10.0, NodeId(0), Schema::new(["x"]));
        let b = c.add_stream("B", 4.0, NodeId(3), Schema::new(["x"]));
        c.add_stream("C", 7.0, NodeId(1), Schema::new(["x"]));
        c.set_selectivity(a, b, 0.1);
        (c, dm)
    }

    fn deploy_ab(c: &Catalog, dm: &DistanceMatrix) -> (Query, Deployment) {
        let q = Query::join(QueryId(0), [StreamId(0), StreamId(1)], NodeId(2));
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, c);
        let d = Deployment::evaluate(
            QueryId(0),
            plan,
            vec![NodeId(0), NodeId(3), NodeId(1)],
            NodeId(2),
            dm,
        );
        (q, d)
    }

    #[test]
    fn register_publishes_operator_and_sink_streams() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        let published = reg.register_deployment(&q, &d);
        // One join operator at n1 and the sink copy at n2.
        assert_eq!(published.len(), 2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().published, 2);
        assert_eq!(reg.derived(published[0]).host, NodeId(1));
        assert_eq!(reg.derived(published[1]).host, NodeId(2));
    }

    #[test]
    fn duplicate_advertisements_are_suppressed() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        reg.register_deployment(&q, &d);
        let again = reg.register_deployment(&q, &d);
        assert!(again.is_empty());
        assert_eq!(reg.stats().suppressed, 2);
    }

    #[test]
    fn usable_for_matches_subset_queries_only() {
        let (c, dm) = setup();
        let (q, d) = deploy_ab(&c, &dm);
        let mut reg = ReuseRegistry::new();
        reg.register_deployment(&q, &d);

        // Query over {A, B, C} can reuse the {A, B} operator.
        let q2 = Query::join(
            QueryId(1),
            [StreamId(0), StreamId(1), StreamId(2)],
            NodeId(0),
        );
        let leaves = reg.usable_for(&q2);
        assert_eq!(leaves.len(), 2, "operator copy and sink copy both usable");

        // Query over {A, C} cannot.
        let q3 = Query::join(QueryId(2), [StreamId(0), StreamId(2)], NodeId(0));
        assert!(reg.usable_for(&q3).is_empty());
    }

    #[test]
    fn selection_subsumption_gates_reuse_and_adjusts_rate() {
        let (c, dm) = setup();
        // Deployed operator applied x < 12 on stream A.
        let mut q = Query::join(QueryId(0), [StreamId(0), StreamId(1)], NodeId(2));
        q.selections.push(SelectionPredicate::new(
            StreamId(0),
            "x",
            CmpOp::Lt,
            12.0,
            0.5,
        ));
        let tree = JoinTree::join(JoinTree::base(StreamId(0)), JoinTree::base(StreamId(1)));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let rate_ab = plan.output_rate();
        let d = Deployment::evaluate(
            QueryId(0),
            plan,
            vec![NodeId(0), NodeId(3), NodeId(1)],
            NodeId(2),
            &dm,
        );
        let mut reg = ReuseRegistry::new();
        reg.register_deployment(&q, &d);

        // A consumer requiring the same filter plus a *stricter* one reuses
        // with a rate scaled by the residual predicate.
        let mut strict = Query::join(QueryId(1), [StreamId(0), StreamId(1)], NodeId(0));
        strict.selections.push(SelectionPredicate::new(
            StreamId(0),
            "x",
            CmpOp::Lt,
            12.0,
            0.5,
        ));
        strict.selections.push(SelectionPredicate::new(
            StreamId(1),
            "x",
            CmpOp::Eq,
            1.0,
            0.2,
        ));
        let leaves = reg.usable_for(&strict);
        assert!(!leaves.is_empty());
        match &leaves[0] {
            LeafSource::Derived { rate, .. } => {
                assert!((rate - rate_ab * 0.2).abs() < 1e-9, "residual Eq folded in")
            }
            _ => panic!("expected derived leaf"),
        }

        // A consumer requiring a *weaker* filter (x < 20) cannot reuse: the
        // deployed operator already dropped tuples in [12, 20).
        let mut weak = Query::join(QueryId(2), [StreamId(0), StreamId(1)], NodeId(0));
        weak.selections.push(SelectionPredicate::new(
            StreamId(0),
            "x",
            CmpOp::Lt,
            20.0,
            0.7,
        ));
        assert!(reg.usable_for(&weak).is_empty());
    }

    #[test]
    fn single_stream_adverts_rejected() {
        let mut reg = ReuseRegistry::new();
        let out = reg.advertise(
            StreamSet::singleton(StreamId(0)),
            vec![],
            1.0,
            NodeId(0),
            QueryId(0),
        );
        assert!(out.is_none());
        assert!(reg.is_empty());
    }
}
