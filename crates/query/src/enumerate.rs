//! Exhaustive enumeration and counting of bushy join trees.
//!
//! Traditional optimizers enumerate join orders exhaustively; Lemma 1 of the
//! paper multiplies the number of join orders by the number of operator
//! placements to obtain the exhaustive search-space size. This module
//! provides the tree side of that product: [`enumerate_trees`] yields every
//! distinct unordered binary tree over a given set of inputs (left/right
//! mirror images are identified, since a stream join is symmetric), and
//! [`bushy_tree_count`] is its closed form `(2k-3)!! = 1, 1, 3, 15, 105, 945…`.

use crate::plan::JoinTree;

/// Enumerate every distinct unordered binary join tree over `leaves`.
///
/// Mirror-image trees are produced once: each split keeps the first
/// remaining leaf on the left side. The output length equals
/// [`bushy_tree_count`]`(leaves.len())`.
///
/// The number of trees grows as `(2k-3)!!`; callers cap `k` (the paper's
/// queries join at most 6 streams).
pub fn enumerate_trees(leaves: &[JoinTree]) -> Vec<JoinTree> {
    assert!(
        !leaves.is_empty(),
        "cannot enumerate trees over zero leaves"
    );
    assert!(
        leaves.len() <= 12,
        "tree enumeration over {} leaves would explode",
        leaves.len()
    );
    let idx: Vec<usize> = (0..leaves.len()).collect();
    enumerate_over(&idx, leaves)
}

fn enumerate_over(idx: &[usize], leaves: &[JoinTree]) -> Vec<JoinTree> {
    if idx.len() == 1 {
        return vec![leaves[idx[0]].clone()];
    }
    let mut out = Vec::new();
    // Enumerate subsets of idx[1..] joined with idx[0] on the left: every
    // unordered split {L, R} with idx[0] ∈ L is produced exactly once.
    let rest = &idx[1..];
    let subsets = 1u32 << rest.len();
    for mask in 0..subsets {
        // Left side: idx[0] plus the masked elements; right side: the rest.
        let mut left = vec![idx[0]];
        let mut right = Vec::new();
        for (bit, &item) in rest.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                left.push(item);
            } else {
                right.push(item);
            }
        }
        if right.is_empty() {
            continue; // the full set is not a split
        }
        let left_trees = enumerate_over(&left, leaves);
        let right_trees = enumerate_over(&right, leaves);
        for lt in &left_trees {
            for rt in &right_trees {
                out.push(JoinTree::join(lt.clone(), rt.clone()));
            }
        }
    }
    out
}

/// Number of distinct unordered binary join trees over `k` labeled leaves:
/// the double factorial `(2k-3)!!` (1 for `k ≤ 1`).
pub fn bushy_tree_count(k: usize) -> u128 {
    if k <= 1 {
        return 1;
    }
    let mut count: u128 = 1;
    let mut f = 1u128;
    while f + 2 <= (2 * k - 3) as u128 {
        f += 2;
        count = count.checked_mul(f).expect("tree count overflow");
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamId;
    use std::collections::HashSet;

    fn leaves(k: usize) -> Vec<JoinTree> {
        (0..k as u32).map(|i| JoinTree::base(StreamId(i))).collect()
    }

    #[test]
    fn closed_form_matches_known_values() {
        assert_eq!(bushy_tree_count(1), 1);
        assert_eq!(bushy_tree_count(2), 1);
        assert_eq!(bushy_tree_count(3), 3);
        assert_eq!(bushy_tree_count(4), 15);
        assert_eq!(bushy_tree_count(5), 105);
        assert_eq!(bushy_tree_count(6), 945);
    }

    #[test]
    fn enumeration_count_matches_closed_form() {
        for k in 1..=6 {
            assert_eq!(
                enumerate_trees(&leaves(k)).len() as u128,
                bushy_tree_count(k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn enumeration_has_no_duplicates_up_to_mirror() {
        for k in 2..=5 {
            let trees = enumerate_trees(&leaves(k));
            let canon: HashSet<String> = trees.iter().map(JoinTree::canonical).collect();
            assert_eq!(canon.len(), trees.len(), "k = {k}");
        }
    }

    #[test]
    fn every_tree_covers_all_leaves() {
        let trees = enumerate_trees(&leaves(4));
        for t in &trees {
            assert_eq!(t.leaf_count(), 4);
            assert_eq!(t.covered().len(), 4);
        }
    }

    #[test]
    fn includes_bushy_shapes() {
        // For k = 4 there must be a tree where both root children are joins.
        let trees = enumerate_trees(&leaves(4));
        assert!(trees.iter().any(|t| matches!(
            t,
            JoinTree::Join(l, r)
                if matches!(**l, JoinTree::Join(..)) && matches!(**r, JoinTree::Join(..))
        )));
    }
}
