//! Selection and join predicates, with implication (subsumption) tests.
//!
//! Subsumption matters for operator reuse: a deployed operator that applied
//! selection `σ_d` can serve a new query requiring `σ_q` only if every tuple
//! the new query needs survived `σ_d` — i.e. each predicate of `σ_d` is
//! *implied by* some predicate of `σ_q`. ("Note that, reuse may require
//! additional columns to be projected", Section 1.1 — projections widen, and
//! residual selections are re-applied by the consumer.)

use crate::stream::StreamId;
use serde::{Deserialize, Serialize};

/// Comparison operator of a selection predicate.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A single-stream selection predicate `stream.attr <op> value` with its
/// estimated selectivity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectionPredicate {
    /// Stream the predicate filters.
    pub stream: StreamId,
    /// Attribute name compared.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant compared against (numeric domain; string constants are
    /// hashed to a numeric code by the workload layer).
    pub value: f64,
    /// Fraction of tuples satisfying the predicate.
    pub selectivity: f64,
}

impl SelectionPredicate {
    /// Build a predicate.
    pub fn new(
        stream: StreamId,
        attr: impl Into<String>,
        op: CmpOp,
        value: f64,
        selectivity: f64,
    ) -> Self {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        SelectionPredicate {
            stream,
            attr: attr.into(),
            op,
            value,
            selectivity,
        }
    }

    /// Does `self` imply `other`? I.e. is the set of tuples satisfying
    /// `self` a subset of those satisfying `other`?
    ///
    /// Predicates on different streams or attributes never imply each other.
    pub fn implies(&self, other: &SelectionPredicate) -> bool {
        if self.stream != other.stream || self.attr != other.attr {
            return false;
        }
        use CmpOp::*;
        match (self.op, other.op) {
            (Eq, Eq) => self.value == other.value,
            (Eq, Lt) => self.value < other.value,
            (Eq, Le) => self.value <= other.value,
            (Eq, Gt) => self.value > other.value,
            (Eq, Ge) => self.value >= other.value,
            (Lt, Lt) => self.value <= other.value,
            (Lt, Le) => self.value <= other.value,
            (Le, Le) => self.value <= other.value,
            (Le, Lt) => self.value < other.value,
            (Gt, Gt) => self.value >= other.value,
            (Gt, Ge) => self.value >= other.value,
            (Ge, Ge) => self.value >= other.value,
            (Ge, Gt) => self.value > other.value,
            _ => false,
        }
    }

    /// True when the predicates describe the exact same filter.
    pub fn same_filter(&self, other: &SelectionPredicate) -> bool {
        self.stream == other.stream
            && self.attr == other.attr
            && self.op == other.op
            && self.value == other.value
    }
}

/// An equi-join predicate `left.left_attr = right.right_attr`.
///
/// The join's selectivity is looked up in the [`Catalog`](crate::Catalog)
/// selectivity matrix keyed by the stream pair, so the predicate itself only
/// records *which* attributes join (needed for reuse signatures and for the
/// tuple-level simulator's hash join).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPredicate {
    /// Left stream.
    pub left: StreamId,
    /// Left join attribute.
    pub left_attr: String,
    /// Right stream.
    pub right: StreamId,
    /// Right join attribute.
    pub right_attr: String,
}

impl JoinPredicate {
    /// Build an equi-join predicate, normalizing stream order so that
    /// logically identical predicates compare equal.
    pub fn new(
        left: StreamId,
        left_attr: impl Into<String>,
        right: StreamId,
        right_attr: impl Into<String>,
    ) -> Self {
        let (left_attr, right_attr) = (left_attr.into(), right_attr.into());
        if left <= right {
            JoinPredicate {
                left,
                left_attr,
                right,
                right_attr,
            }
        } else {
            JoinPredicate {
                left: right,
                left_attr: right_attr,
                right: left,
                right_attr: left_attr,
            }
        }
    }

    /// The pair of streams the predicate connects, in normalized order.
    pub fn pair(&self) -> (StreamId, StreamId) {
        (self.left, self.right)
    }
}

/// Can a derived stream that applied `applied` selections serve a consumer
/// that requires `required` selections (on the streams the derived stream
/// covers)? True iff every applied predicate is implied by some required
/// predicate, so no tuple the consumer needs was dropped.
pub fn selections_compatible(
    applied: &[SelectionPredicate],
    required: &[SelectionPredicate],
) -> bool {
    applied
        .iter()
        .all(|a| required.iter().any(|r| r.implies(a)))
}

/// The residual predicates the consumer must still apply on top of a reused
/// derived stream: every required predicate not already guaranteed by an
/// applied one.
pub fn residual_selections(
    applied: &[SelectionPredicate],
    required: &[SelectionPredicate],
) -> Vec<SelectionPredicate> {
    required
        .iter()
        .filter(|r| !applied.iter().any(|a| a.implies(r)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(op: CmpOp, v: f64) -> SelectionPredicate {
        SelectionPredicate::new(StreamId(0), "x", op, v, 0.5)
    }

    #[test]
    fn eq_implications() {
        assert!(p(CmpOp::Eq, 3.0).implies(&p(CmpOp::Eq, 3.0)));
        assert!(!p(CmpOp::Eq, 3.0).implies(&p(CmpOp::Eq, 4.0)));
        assert!(p(CmpOp::Eq, 3.0).implies(&p(CmpOp::Lt, 4.0)));
        assert!(p(CmpOp::Eq, 3.0).implies(&p(CmpOp::Le, 3.0)));
        assert!(!p(CmpOp::Eq, 3.0).implies(&p(CmpOp::Lt, 3.0)));
        assert!(p(CmpOp::Eq, 3.0).implies(&p(CmpOp::Ge, 2.0)));
    }

    #[test]
    fn range_implications() {
        assert!(p(CmpOp::Lt, 3.0).implies(&p(CmpOp::Lt, 5.0)));
        assert!(!p(CmpOp::Lt, 5.0).implies(&p(CmpOp::Lt, 3.0)));
        assert!(p(CmpOp::Le, 3.0).implies(&p(CmpOp::Lt, 4.0)));
        assert!(!p(CmpOp::Le, 4.0).implies(&p(CmpOp::Lt, 4.0)));
        assert!(p(CmpOp::Gt, 5.0).implies(&p(CmpOp::Ge, 5.0)));
        assert!(!p(CmpOp::Ge, 5.0).implies(&p(CmpOp::Gt, 5.0)));
        assert!(
            !p(CmpOp::Lt, 3.0).implies(&p(CmpOp::Gt, 1.0)),
            "ranges overlap but neither contains"
        );
    }

    #[test]
    fn different_attr_never_implies() {
        let a = SelectionPredicate::new(StreamId(0), "x", CmpOp::Lt, 3.0, 0.5);
        let b = SelectionPredicate::new(StreamId(0), "y", CmpOp::Lt, 5.0, 0.5);
        assert!(!a.implies(&b));
        let c = SelectionPredicate::new(StreamId(1), "x", CmpOp::Lt, 5.0, 0.5);
        assert!(!a.implies(&c));
    }

    #[test]
    fn join_predicate_normalizes_order() {
        let a = JoinPredicate::new(StreamId(3), "u", StreamId(1), "v");
        let b = JoinPredicate::new(StreamId(1), "v", StreamId(3), "u");
        assert_eq!(a, b);
        assert_eq!(a.pair(), (StreamId(1), StreamId(3)));
    }

    #[test]
    fn compatibility_and_residuals() {
        // Derived applied x < 12 (the "DP-TIME - now < 12h" of query Q2);
        // consumer requires x < 12 AND y = 1 — compatible, residual is y = 1.
        let applied = vec![p(CmpOp::Lt, 12.0)];
        let y = SelectionPredicate::new(StreamId(0), "y", CmpOp::Eq, 1.0, 0.1);
        let required = vec![p(CmpOp::Lt, 12.0), y.clone()];
        assert!(selections_compatible(&applied, &required));
        assert_eq!(residual_selections(&applied, &required), vec![y]);

        // Derived applied the *stricter* x < 6 — cannot serve x < 12.
        let strict = vec![p(CmpOp::Lt, 6.0)];
        assert!(!selections_compatible(&strict, &required));
    }

    #[test]
    fn empty_applied_is_always_compatible() {
        assert!(selections_compatible(&[], &[p(CmpOp::Eq, 1.0)]));
        assert_eq!(residual_selections(&[], &[p(CmpOp::Eq, 1.0)]).len(), 1);
    }
}
