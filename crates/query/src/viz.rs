//! Graphviz (DOT) export of deployments, for inspecting plans visually.
//!
//! `dot -Tsvg deployment.dot -o deployment.svg` renders the operator tree
//! with its node assignments and per-edge rates.

use crate::plan::{Deployment, FlatNode, LeafSource};
use crate::stream::Catalog;
use std::fmt::Write;

/// Render a deployment as a DOT digraph. Leaves are boxes labeled with
/// their stream and host, joins are ellipses labeled with their node and
/// output rate, edges carry the data rate, and the sink is a double circle.
pub fn deployment_to_dot(d: &Deployment, catalog: &Catalog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", d.query);
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for (i, node) in d.plan.nodes().iter().enumerate() {
        match node {
            FlatNode::Leaf { source, rate, .. } => {
                let label = match source {
                    LeafSource::Base(id) => format!(
                        "{}\\n@{} r={:.1}",
                        catalog.stream(*id).name,
                        d.placement[i],
                        rate
                    ),
                    LeafSource::Derived { id, .. } => {
                        format!("derived d{}\\n@{} r={:.1}", id.0, d.placement[i], rate)
                    }
                };
                let shape = if matches!(source, LeafSource::Derived { .. }) {
                    "box,style=dashed"
                } else {
                    "box"
                };
                let _ = writeln!(out, "  n{i} [shape={shape},label=\"{label}\"];");
            }
            FlatNode::Join { rate, .. } => {
                let _ = writeln!(
                    out,
                    "  n{i} [shape=ellipse,label=\"⋈ @{}\\nout={:.2}\"];",
                    d.placement[i], rate
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "  sink [shape=doublecircle,label=\"sink\\n{}\"];",
        d.sink
    );
    for edge in &d.edges {
        let to = if edge.consumer == usize::MAX {
            "sink".to_string()
        } else {
            format!("n{}", edge.consumer)
        };
        // Identify the producing plan node by placement + rate match.
        let from = d
            .plan
            .nodes()
            .iter()
            .enumerate()
            .position(|(i, n)| d.placement[i] == edge.from && (n.rate() - edge.rate).abs() < 1e-12)
            .map(|i| format!("n{i}"))
            .unwrap_or_else(|| format!("\"{}\"", edge.from));
        let _ = writeln!(out, "  {from} -> {to} [label=\"{:.1}\"];", edge.rate);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FlatPlan, JoinTree};
    use crate::query::{Query, QueryId};
    use crate::stream::Schema;
    use dsq_net::{DistanceMatrix, LinkKind, Metric, Network, NodeId};

    #[test]
    fn dot_output_is_well_formed() {
        let mut net = Network::new(3);
        net.add_link(NodeId(0), NodeId(1), 1.0, 1.0, LinkKind::Stub);
        net.add_link(NodeId(1), NodeId(2), 1.0, 1.0, LinkKind::Stub);
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let mut c = Catalog::new();
        let a = c.add_stream("A", 10.0, NodeId(0), Schema::default());
        let b = c.add_stream("B", 4.0, NodeId(2), Schema::default());
        c.set_selectivity(a, b, 0.1);
        let q = Query::join(QueryId(3), [a, b], NodeId(2));
        let tree = JoinTree::join(JoinTree::base(a), JoinTree::base(b));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let d = Deployment::evaluate(
            q.id,
            plan,
            vec![NodeId(0), NodeId(2), NodeId(1)],
            NodeId(2),
            &dm,
        );
        let dot = deployment_to_dot(&d, &c);
        assert!(dot.starts_with("digraph q3 {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.matches("->").count() == d.edges.len());
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
