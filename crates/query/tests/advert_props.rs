//! Property tests for the reuse registry's advert lifecycle: the
//! publish → hit → evict → re-derive round trip, conservation of the
//! `AdvertStats` buckets under arbitrary lifecycle interleavings, and
//! bit-exactness of an effectively-unbounded budget against the
//! budget-free registry.

use dsq_net::NodeId;
use dsq_query::{AdvertState, DerivedId, Query, QueryId, ReuseRegistry, StreamId, StreamSet};
use proptest::{prop_assert, prop_assert_eq, proptest};

/// Streams the generated adverts draw their covered sets from.
const UNIVERSE: u32 = 8;

/// A query whose source set is the whole universe — every advert is
/// containment-compatible with it, so probes exercise lifecycle filtering
/// and nothing else.
fn omnivore() -> Query {
    Query::join(QueryId(1_000), (0..UNIVERSE).map(StreamId), NodeId(0))
}

/// Decode one generated op: a covered pair (distinct streams), a host and
/// an origin query, all folded down from three raw draws.
fn decode(a: usize, b: usize, c: usize) -> (StreamSet, NodeId, QueryId) {
    let s1 = (a % UNIVERSE as usize) as u32;
    let s2_raw = (b % (UNIVERSE as usize - 1)) as u32;
    let s2 = if s2_raw >= s1 { s2_raw + 1 } else { s2_raw };
    let covered = StreamSet::from_iter([StreamId(s1), StreamId(s2)]);
    (covered, NodeId((c % 5) as u32), QueryId((c % 3) as u32))
}

/// Recompute the bucket gauges from slot states and demand they agree with
/// the running `AdvertStats`.
fn assert_gauges(reg: &ReuseRegistry) {
    let stats = reg.stats();
    assert!(
        stats.conserved(),
        "published != live+retired+evicted: {stats:?}"
    );
    let mut live = 0u64;
    let mut retired = 0u64;
    let mut evicted = 0u64;
    for i in 0..reg.len() {
        match reg.state(DerivedId(i as u32)).expect("dense ids") {
            AdvertState::Live => live += 1,
            AdvertState::Retired => retired += 1,
            AdvertState::Evicted => evicted += 1,
        }
    }
    assert_eq!(stats.live, live);
    assert_eq!(stats.retired, retired);
    assert_eq!(stats.evicted, evicted);
    assert_eq!(stats.published as usize, reg.len());
}

proptest! {
    /// Publishing past the budget evicts; a probe that would have matched
    /// the evicted advert queues a re-derivation request; `rederive` brings
    /// the advert back Live under its original id and the probe serves it.
    #[test]
    fn publish_hit_evict_rederive_round_trip(
        ops in proptest::collection::vec((0usize..64, 0usize..64, 0usize..64), 2..24),
        budget in 1usize..4,
    ) {
        let mut reg = ReuseRegistry::with_budget(budget);
        let mut issued: Vec<DerivedId> = Vec::new();
        for &(a, b, c) in &ops {
            let (covered, host, origin) = decode(a, b, c);
            if let Some(id) = reg.advertise(covered, Vec::new(), 10.0, host, origin) {
                if !issued.contains(&id) {
                    issued.push(id);
                }
            }
            prop_assert!(reg.live_len() <= budget);
            assert_gauges(&reg);
        }

        // Probe: only live adverts are served, every evicted advert whose
        // covered set matches is queued for re-derivation.
        let q = omnivore();
        let served: Vec<DerivedId> = reg
            .usable_for_live(&q, |_| true)
            .into_iter()
            .filter_map(|l| match l {
                dsq_query::LeafSource::Derived { id, .. } => Some(id),
                dsq_query::LeafSource::Base(_) => None,
            })
            .collect();
        for &id in &served {
            prop_assert_eq!(reg.state(id), Some(AdvertState::Live));
        }
        let evicted: Vec<DerivedId> = issued
            .iter()
            .copied()
            .filter(|&id| reg.state(id) == Some(AdvertState::Evicted))
            .collect();
        let wanted = reg.drain_rederive_requests();
        for id in &evicted {
            prop_assert!(
                wanted.contains(id),
                "probe missed evicted advert {:?}", id
            );
        }

        // Re-derive everything the probe asked for: each request comes back
        // Live under its original id (re-derivation warms the slot, so the
        // budget evicts some *other*, colder advert if it overflows).
        for id in wanted {
            prop_assert!(reg.rederive(id));
            prop_assert_eq!(reg.state(id), Some(AdvertState::Live));
            prop_assert!(reg.live_len() <= budget);
            assert_gauges(&reg);
        }
        prop_assert!(reg.drain_rederive_requests().is_empty());
    }

    /// `published == live + retired + evicted` (and the per-bucket gauges
    /// match a recount from slot states) after every operation of an
    /// arbitrary lifecycle interleaving.
    #[test]
    fn advert_stats_conserve_under_lifecycle_churn(
        ops in proptest::collection::vec((0usize..6, 0usize..64, 0usize..64), 1..48),
    ) {
        let mut reg = ReuseRegistry::with_budget(2);
        let q = omnivore();
        for &(kind, a, b) in &ops {
            let (covered, host, origin) = decode(a, b, a ^ b);
            match kind {
                0 | 1 => {
                    reg.advertise(covered, Vec::new(), 5.0, host, origin);
                }
                2 => {
                    reg.retire_query(origin);
                }
                3 => {
                    reg.host_crashed(host);
                }
                4 => {
                    reg.host_rejoined(host);
                }
                _ => {
                    let _ = reg.usable_for_live(&q, |n| n.0 % 2 == 0);
                    for id in reg.drain_rederive_requests() {
                        reg.rederive(id);
                    }
                }
            }
            assert_gauges(&reg);
        }
    }

    /// An effectively-unbounded budget is bit-identical to the budget-free
    /// registry: same ids issued, same probe results, same fingerprint.
    #[test]
    fn unbounded_budget_is_bit_exact(
        ops in proptest::collection::vec((0usize..3, 0usize..64, 0usize..64), 1..32),
    ) {
        let mut free = ReuseRegistry::new();
        let mut huge = ReuseRegistry::with_budget(usize::MAX);
        let q = omnivore();
        for &(kind, a, b) in &ops {
            let (covered, host, origin) = decode(a, b, a.wrapping_mul(31) ^ b);
            match kind {
                0 | 1 => {
                    let i1 = free.advertise(covered.clone(), Vec::new(), 7.0, host, origin);
                    let i2 = huge.advertise(covered, Vec::new(), 7.0, host, origin);
                    prop_assert_eq!(i1, i2);
                }
                _ => {
                    let s1 = free.usable_for(&q);
                    let s2 = huge.usable_for(&q);
                    prop_assert_eq!(s1.len(), s2.len());
                }
            }
            prop_assert_eq!(free.fingerprint(), huge.fingerprint());
            prop_assert_eq!(free.live_len(), free.len());
        }
    }
}
