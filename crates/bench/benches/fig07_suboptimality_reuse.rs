//! Figure 7 — "Sub-optimality": cumulative cost of the optimal (DP)
//! deployment vs. Top-Down and Bottom-Up, each with and without operator
//! reuse, at `max_cs = 32`.
//!
//! Expected shape (paper): reuse saves ~27% (Top-Down) and ~30% (Bottom-Up)
//! per unit time; with reuse, Top-Down ends ~10% above optimal, Bottom-Up
//! ~34%; Top-Down ≈ 19% better than Bottom-Up.
//!
//! Reuse only materializes when queries share source subsets; the workload
//! uses the Zipf(1.6) source draw (see EXPERIMENTS.md for why).

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{mean_curve, paper_env, paper_workload, run_batch, workload_repeats, Table};
use dsq_core::{BottomUp, Optimal, Optimizer, SearchStats, TopDown};
use dsq_query::ReuseRegistry;

fn bench(c: &mut Criterion) {
    let env = paper_env(32, 1);
    let arms: Vec<(&str, bool)> = vec![
        ("top-down", false),
        ("top-down+reuse", true),
        ("bottom-up", false),
        ("bottom-up+reuse", true),
        ("optimal", true),
    ];
    let mut curves: Vec<Vec<Vec<f64>>> = vec![Vec::new(); arms.len()];
    for w in 0..workload_repeats() {
        let wl = paper_workload(&env, 300 + w as u64, Some(1.6));
        for (i, (name, reuse)) in arms.iter().enumerate() {
            let alg: Box<dyn Optimizer> = match *name {
                n if n.starts_with("top-down") => Box::new(TopDown::new(&env)),
                n if n.starts_with("bottom-up") => Box::new(BottomUp::new(&env)),
                _ => Box::new(Optimal::new(&env)),
            };
            let (curve, _) = run_batch(alg.as_ref(), &wl, *reuse);
            curves[i].push(curve);
        }
    }
    let means: Vec<Vec<f64>> = curves.iter().map(|c| mean_curve(c)).collect();
    let last = means[0].len() - 1;
    let by_name = |n: &str| -> f64 { means[arms.iter().position(|(a, _)| *a == n).unwrap()][last] };

    println!("\nfig07 headlines (paper values in parentheses):");
    println!(
        "  reuse saves {:.1}% for top-down (27%), {:.1}% for bottom-up (30%)",
        (1.0 - by_name("top-down+reuse") / by_name("top-down")) * 100.0,
        (1.0 - by_name("bottom-up+reuse") / by_name("bottom-up")) * 100.0,
    );
    println!(
        "  vs optimal: top-down+reuse {:+.1}% (10%), bottom-up+reuse {:+.1}% (34%)",
        (by_name("top-down+reuse") / by_name("optimal") - 1.0) * 100.0,
        (by_name("bottom-up+reuse") / by_name("optimal") - 1.0) * 100.0,
    );
    println!(
        "  top-down+reuse is {:.1}% cheaper than bottom-up+reuse (19%)",
        (1.0 - by_name("top-down+reuse") / by_name("bottom-up+reuse")) * 100.0,
    );

    Table {
        name: "fig07",
        caption: "cumulative cost: optimal vs hierarchical algorithms ± reuse (max_cs = 32)",
        x_label: "queries",
        x: (1..=means[0].len()).map(|i| i as f64).collect(),
        series: arms
            .iter()
            .zip(&means)
            .map(|((n, _), m)| (n.to_string(), m.clone()))
            .collect(),
    }
    .emit();

    // Criterion: single-query latency of the three algorithms.
    let wl = paper_workload(&env, 999, Some(1.6));
    let q = &wl.queries[0];
    let mut group = c.benchmark_group("fig07_single_query");
    group.sample_size(10);
    for (name, alg) in [
        (
            "top-down",
            Box::new(TopDown::new(&env)) as Box<dyn Optimizer>,
        ),
        ("bottom-up", Box::new(BottomUp::new(&env))),
        ("optimal", Box::new(Optimal::new(&env))),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut reg = ReuseRegistry::new();
                let mut stats = SearchStats::new();
                alg.optimize(&wl.catalog, q, &mut reg, &mut stats)
                    .unwrap()
                    .cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
