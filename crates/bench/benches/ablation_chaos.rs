//! Ablation — fault dose × retry policy for the chaos harness:
//!
//! * availability and MTTR as the fault dose grows (10 → 60 injected
//!   events over the same mean pacing, i.e. an ever-longer exposure);
//! * the same sweep under three deployment protocols: reliable (no loss),
//!   lossy 10% and lossy 30% message drop with exponential-backoff retry.
//!
//! The interesting read-out: availability is governed almost entirely by
//! the fault rate (lost sources cannot be replanned around), while MTTR
//! and protocol overhead are governed by the drop probability — losses
//! slow recovery down but rarely prevent it while the retry cap holds.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{small_env, Table};
use dsq_sim::chaos::{ChaosRunner, FaultConfig, FaultSchedule};
use dsq_sim::emulab::RetryPolicy;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

fn bench(c: &mut Criterion) {
    let env = small_env(16, 1);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 12,
            queries: 8,
            joins_per_query: 2..=3,
            ..WorkloadConfig::default()
        },
        5,
    )
    .generate(&env.network);

    let doses = [10usize, 25, 40, 60];
    let policies: [(&str, RetryPolicy); 3] = [
        ("reliable", RetryPolicy::reliable()),
        ("lossy-10", RetryPolicy::lossy(0.1)),
        ("lossy-30", RetryPolicy::lossy(0.3)),
    ];

    let mut x = Vec::new();
    let mut availability: Vec<(String, Vec<f64>)> = policies
        .iter()
        .map(|(name, _)| (format!("avail_{name}"), Vec::new()))
        .collect();
    let mut mttr: Vec<(String, Vec<f64>)> = policies
        .iter()
        .map(|(name, _)| (format!("mttr_{name}"), Vec::new()))
        .collect();

    for &dose in &doses {
        x.push(dose as f64);
        let cfg = FaultConfig {
            events: dose,
            mean_gap_ms: 2_500.0,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&env, &cfg, 21);
        for (i, (name, policy)) in policies.iter().enumerate() {
            let runner = ChaosRunner {
                policy: *policy,
                protocol_seed: 9,
                threshold: 0.2,
                ..ChaosRunner::default()
            };
            let r = runner.run(env.clone(), &wl.catalog, &wl.queries, &schedule);
            availability[i].1.push(r.availability);
            mttr[i].1.push(r.mttr_ms);
            println!(
                "{dose:>3} events, {name:<9}: availability {:.4}, MTTR {:>7.1} ms, \
                 {} redeploys, {} instantiation failures, {:.0} ms in timeouts",
                r.availability,
                r.mttr_ms,
                r.redeployments,
                r.instantiation_failures,
                r.protocol_retry_ms
            );
        }
    }

    Table {
        name: "ablation_chaos_availability",
        caption: "Availability vs fault dose under three retry policies (64 nodes, 8 queries)",
        x_label: "events",
        x: x.clone(),
        series: availability,
    }
    .emit();
    Table {
        name: "ablation_chaos_mttr",
        caption: "Mean time to repair vs fault dose under three retry policies",
        x_label: "events",
        x,
        series: mttr,
    }
    .emit();

    // Criterion: one mid-intensity lossy cell, end to end.
    let cfg = FaultConfig {
        events: 20,
        mean_gap_ms: 2_500.0,
        ..FaultConfig::default()
    };
    let schedule = FaultSchedule::generate(&env, &cfg, 33);
    let runner = ChaosRunner {
        policy: RetryPolicy::lossy(0.1),
        protocol_seed: 3,
        threshold: 0.2,
        ..ChaosRunner::default()
    };
    c.bench_function("ablation_chaos_run_20_events", |b| {
        b.iter(|| runner.run(env.clone(), &wl.catalog, &wl.queries, &schedule))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
