//! Ablation — analytical bounds vs. measured behaviour:
//!
//! * Theorem 1: the distance-estimate error at each hierarchy level vs. the
//!   `Σ 2·d_i` slack (how loose is the bound in practice?).
//! * Theorem 3: Top-Down's actual sub-optimality vs. its per-query bound.
//!
//! The paper proves the bounds; this bench measures how much head-room they
//! leave on the evaluation topology, which justifies using Top-Down even
//! when the worst case looks scary.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{paper_env, paper_workload, Table};
use dsq_core::{bounds, Optimal, Optimizer, SearchStats, TopDown};
use dsq_query::ReuseRegistry;

fn bench(c: &mut Criterion) {
    let env = paper_env(8, 1);
    let h = &env.hierarchy;

    // Theorem 1: measured max/mean estimate error per level vs slack.
    let nodes = h.active_nodes();
    let mut x = Vec::new();
    let (mut slack_s, mut max_err_s, mut mean_err_s) = (vec![], vec![], vec![]);
    for level in 1..=h.height() {
        let slack = h.theorem1_slack(level);
        let mut max_err = 0.0f64;
        let mut sum_err = 0.0;
        let mut count = 0usize;
        for (i, &a) in nodes.iter().enumerate().step_by(3) {
            for &b in nodes.iter().skip(i + 1).step_by(3) {
                let err = (env.dm.get(a, b) - h.estimated_cost(&env.dm, a, b, level)).abs();
                max_err = max_err.max(err);
                sum_err += err;
                count += 1;
            }
        }
        assert!(max_err <= slack + 1e-9, "Theorem 1 violated");
        x.push(level as f64);
        slack_s.push(slack);
        max_err_s.push(max_err);
        mean_err_s.push(sum_err / count as f64);
        println!(
            "level {level}: slack {slack:>8.1}, measured max error {max_err:>8.1}, mean {:>8.2}",
            sum_err / count as f64
        );
    }
    Table {
        name: "ablation_bounds_thm1",
        caption: "Theorem 1 slack vs measured estimate error by level (max_cs = 8)",
        x_label: "level",
        x,
        series: vec![
            ("slack".into(), slack_s),
            ("max_error".into(), max_err_s),
            ("mean_error".into(), mean_err_s),
        ],
    }
    .emit();

    // Theorem 3: per-query Top-Down gap vs bound.
    let wl = paper_workload(&env, 42, None);
    let mut gaps = Vec::new();
    let mut bounds_v = Vec::new();
    for q in &wl.queries {
        let mut r1 = ReuseRegistry::new();
        let mut r2 = ReuseRegistry::new();
        let mut s = SearchStats::new();
        let td = TopDown::new(&env)
            .optimize(&wl.catalog, q, &mut r1, &mut s)
            .unwrap();
        let opt = Optimal::new(&env)
            .optimize(&wl.catalog, q, &mut r2, &mut s)
            .unwrap();
        let gap = td.cost - opt.cost;
        let bound = bounds::theorem3_bound(&td, &env.hierarchy);
        assert!(
            gap <= bound + 1e-6,
            "Theorem 3 violated: gap {gap} bound {bound}"
        );
        gaps.push(gap);
        bounds_v.push(bound);
    }
    let tightness: f64 = gaps
        .iter()
        .zip(&bounds_v)
        .map(|(g, b)| if *b > 0.0 { g / b } else { 0.0 })
        .sum::<f64>()
        / gaps.len() as f64;
    println!(
        "\nTheorem 3: mean measured-gap / bound = {:.3} (bound holds on all {} queries; \
         small ratio = bound is conservative, as expected of a worst case)",
        tightness,
        gaps.len()
    );
    Table {
        name: "ablation_bounds_thm3",
        caption: "Theorem 3 bound vs measured top-down gap per query (max_cs = 8)",
        x_label: "query",
        x: (1..=gaps.len()).map(|i| i as f64).collect(),
        series: vec![("gap".into(), gaps), ("bound".into(), bounds_v)],
    }
    .emit();

    // Criterion: bound computations are cheap (they run inside planners).
    let wl2 = paper_workload(&env, 43, None);
    let q = &wl2.queries[0];
    let mut r = ReuseRegistry::new();
    let mut s = SearchStats::new();
    let d = TopDown::new(&env)
        .optimize(&wl2.catalog, q, &mut r, &mut s)
        .unwrap();
    c.bench_function("ablation_bounds_theorem3_eval", |b| {
        b.iter(|| bounds::theorem3_bound(&d, &env.hierarchy))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
