//! Figure 6 — "Top-Down: Cost": the cluster-size sweep of Figure 5 run with
//! the Top-Down algorithm.
//!
//! Expected shape: "large values of max_cs (> 4) result in deployed costs
//! that are close to each other" (Top-Down always considers all operator
//! orderings at the top level, so the plan choice is stable); very small
//! max_cs adds levels and therefore approximation error, so it is worst.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{cluster_size_sweep, paper_env, paper_workload, run_batch, Hierarchical};

fn bench(c: &mut Criterion) {
    let table = cluster_size_sweep(
        Hierarchical::TopDown,
        "fig06",
        "Top-Down cumulative cost vs queries, by max_cs",
    );
    let last = table.x.len() - 1;
    let at = |name: &str| table.series.iter().find(|(n, _)| n == name).unwrap().1[last];
    let spread_large = (at("max_cs=8") - at("max_cs=64")).abs() / at("max_cs=64");
    println!(
        "\nfig06 headline: max_cs=2 costs {:+.1}% vs max_cs=64; spread among max_cs ≥ 8 is {:.1}% \
         (paper: curves for larger max_cs nearly coincide, tiny max_cs worst)",
        (at("max_cs=2") / at("max_cs=64") - 1.0) * 100.0,
        spread_large * 100.0
    );
    table.emit();

    let mut group = c.benchmark_group("fig06_topdown_batch");
    group.sample_size(10);
    for max_cs in [8usize, 64] {
        let env = paper_env(max_cs, 1);
        let wl = paper_workload(&env, 500, None);
        group.bench_function(format!("max_cs={max_cs}"), |b| {
            b.iter(|| {
                let opt = Hierarchical::TopDown.build(&env);
                run_batch(opt.as_ref(), &wl, true).0.last().copied()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
