//! Ablation — planning engines: the dynamic program used by every
//! coordinator returns the same optimum as literal exhaustive enumeration
//! (DESIGN.md's engine substitution). This bench verifies the equality on
//! sampled within-cluster problems and quantifies the speed difference.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_core::{ClusterPlanner, PlannerInput, SearchStats};
use dsq_net::{DistanceMatrix, Metric, NodeId, TransitStubConfig};
use dsq_query::{Query, QueryId, ReuseRegistry};
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

fn bench(c: &mut Criterion) {
    let ts = TransitStubConfig::emulab_32().generate(3);
    let dm = DistanceMatrix::build(&ts.network, Metric::Cost);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 12,
            queries: 20,
            joins_per_query: 2..=3,
            ..WorkloadConfig::default()
        },
        77,
    )
    .generate(&ts.network);
    // A small candidate set so the exhaustive engine stays tractable.
    let candidates: Vec<NodeId> = ts.network.nodes().take(8).collect();

    let mut agree = 0usize;
    let mut _reg = ReuseRegistry::new();
    let mut cases: Vec<(Query, Vec<PlannerInput>)> = Vec::new();
    for q in &wl.queries {
        let inputs: Vec<PlannerInput> = q
            .sources
            .iter()
            .map(|&s| PlannerInput::base(&wl.catalog, s))
            .collect();
        cases.push((q.clone(), inputs));
    }
    for (q, inputs) in &cases {
        let planner = ClusterPlanner::new(&wl.catalog, q);
        let mut s1 = SearchStats::new();
        let mut s2 = SearchStats::new();
        let dp = planner
            .plan(inputs, &candidates, &dm, Some(q.sink), None, &mut s1)
            .unwrap()
            .unwrap();
        let ex = planner
            .plan_exhaustive(inputs, &candidates, &dm, Some(q.sink), None, &mut s2)
            .unwrap()
            .unwrap();
        assert!(
            (dp.est_cost - ex.est_cost).abs() < 1e-6,
            "engines disagree: dp {} vs exhaustive {}",
            dp.est_cost,
            ex.est_cost
        );
        agree += 1;
    }
    println!(
        "\nablation_engines: DP optimum == exhaustive optimum on {agree}/{} cases",
        cases.len()
    );

    let (q, inputs) = &cases[0];
    let planner = ClusterPlanner::new(&wl.catalog, q);
    let mut group = c.benchmark_group("ablation_engines");
    group.bench_function("dp", |b| {
        b.iter(|| {
            let mut s = SearchStats::new();
            planner
                .plan(inputs, &candidates, &dm, Some(q.sink), None, &mut s)
                .unwrap()
                .unwrap()
                .est_cost
        })
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            let mut s = SearchStats::new();
            planner
                .plan_exhaustive(inputs, &candidates, &dm, Some(q.sink), None, &mut s)
                .unwrap()
                .unwrap()
                .est_cost
        })
    });
    group.finish();
    let _ = QueryId(0);
}

criterion_group!(benches, bench);
criterion_main!(benches);
