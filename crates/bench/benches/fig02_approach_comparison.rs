//! Figure 2 — "Comparison with typical approaches".
//!
//! "The graph shows the total communication cost incurred by 100 queries
//! over 5 stream sources each, on a 64-node network. … Our approach that
//! considers query plans and deployments simultaneously reduces the cost by
//! more than 50% [vs. plan-then-deploy] as it was able to exploit
//! optimization opportunities such as operator reuse even during planning."
//!
//! Expected shape: our joint approach (Top-Down) clearly cheapest;
//! plan-then-deploy (optimal placement of a network-oblivious plan) in the
//! middle; Relaxation worst.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_baselines::{PlanThenDeploy, Relaxation};
use dsq_bench::{quick_mode, run_batch, small_env, Table};
use dsq_core::{Optimizer, SearchStats, TopDown};
use dsq_query::ReuseRegistry;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

/// Per-approach rows of `(name, total cost, wall ms)` plus the shared case.
fn experiment() -> (Vec<(&'static str, f64, f64)>, dsq_bench::BenchCase) {
    let env = small_env(16, 2);
    let queries = if quick_mode() { 25 } else { 100 };
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 40,
            queries,
            joins_per_query: 4..=4, // 5 stream sources each
            source_skew: Some(1.0), // shared hot streams => reuse matters
            ..WorkloadConfig::default()
        },
        7,
    )
    .generate(&env.network);

    let td = TopDown::new(&env);
    let ptd = PlanThenDeploy::new(&env);
    let rel = Relaxation::new(&env);
    let timed = |name: &'static str, alg: &dyn Optimizer| {
        let t0 = std::time::Instant::now();
        let cost = run_batch(alg, &wl, true).0.last().copied().unwrap();
        (name, cost, t0.elapsed().as_secs_f64() * 1e3)
    };
    let rows = vec![
        timed("our-approach (top-down)", &td),
        timed("plan-then-deploy", &ptd),
        timed("relaxation", &rel),
    ];
    (rows, dsq_bench::BenchCase { env, wl })
}

fn bench(c: &mut Criterion) {
    // Capture planner counters for the whole experiment and emit them with
    // the per-approach wall times as BENCH_plan.json (CI uploads it).
    let sink = dsq_obs::Sink::new(dsq_obs::ClockMode::Monotonic);
    let (rows, case) = {
        let _scope = dsq_obs::scoped(sink.clone());
        experiment()
    };
    dsq_bench::emit_bench_json(
        "plan",
        &rows
            .iter()
            .map(|&(name, _, ms)| (name, ms))
            .collect::<Vec<_>>(),
        &sink.snapshot(),
    );
    let ours = rows[0].1;
    println!("\n=== fig02 — total cost of 100 5-source queries, 64-node network ===");
    for (name, cost, wall_ms) in &rows {
        println!(
            "{name:>26}: {cost:>12.1}  ({:+.1}% vs ours, {wall_ms:.0} ms)",
            (cost / ours - 1.0) * 100.0
        );
    }
    let ptd = rows[1].1;
    println!(
        "joint planning saves {:.1}% vs plan-then-deploy (paper: > 50%)",
        (1.0 - ours / ptd) * 100.0
    );
    Table {
        name: "fig02",
        caption:
            "total cost per unit time by approach (row order: ours, plan-then-deploy, relaxation)",
        x_label: "approach_idx",
        x: (0..rows.len()).map(|i| i as f64).collect(),
        series: vec![("total_cost".into(), rows.iter().map(|r| r.1).collect())],
    }
    .emit();

    // Criterion measurement: single-query optimization latency per approach.
    let q = &case.wl.queries[0];
    let mut group = c.benchmark_group("fig02_single_query");
    group.sample_size(10);
    group.bench_function("top-down", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            TopDown::new(&case.env)
                .optimize(&case.wl.catalog, q, &mut reg, &mut stats)
                .unwrap()
                .cost
        })
    });
    group.bench_function("plan-then-deploy", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            PlanThenDeploy::new(&case.env)
                .optimize(&case.wl.catalog, q, &mut reg, &mut stats)
                .unwrap()
                .cost
        })
    });
    group.bench_function("relaxation", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            Relaxation::new(&case.env)
                .optimize(&case.wl.catalog, q, &mut reg, &mut stats)
                .unwrap()
                .cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
