//! Figure 2 — "Comparison with typical approaches".
//!
//! "The graph shows the total communication cost incurred by 100 queries
//! over 5 stream sources each, on a 64-node network. … Our approach that
//! considers query plans and deployments simultaneously reduces the cost by
//! more than 50% [vs. plan-then-deploy] as it was able to exploit
//! optimization opportunities such as operator reuse even during planning."
//!
//! Expected shape: our joint approach (Top-Down) clearly cheapest;
//! plan-then-deploy (optimal placement of a network-oblivious plan) in the
//! middle; Relaxation worst.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_baselines::{PlanThenDeploy, Relaxation};
use dsq_bench::{quick_mode, run_batch, small_env, Table};
use dsq_core::{optimize_all, Optimizer, ParallelConfig, SearchStats, TopDown};
use dsq_query::ReuseRegistry;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

/// Wall-clock of the multi-query planning driver on a fig09-style sweep
/// (~1024 nodes full mode, ~128 quick): serial without the subplan cache,
/// parallel (4-thread pool) with a cold cache, a warm-cache replanning
/// pass, and an adaptation-after-change pair — full replan (flush) vs
/// incremental (scoped retirement + `optimize_dirty`) after a localized
/// link-cost drift. Returns `(name, ms)` rows plus the cache-hit count for
/// `BENCH_plan.json`.
fn driver_experiment() -> (Vec<(&'static str, f64)>, u64) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build_global();
    let size = if quick_mode() { 128 } else { 1024 };
    let net = dsq_net::TransitStubConfig::sized(size).generate(9).network;
    let env = dsq_core::Environment::build(net, 32);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 100,
            queries: if quick_mode() { 10 } else { 40 },
            joins_per_query: 4..=4, // 5 stream sources each, as in fig02
            source_skew: Some(1.0), // shared hot streams => shared subplans
            ..WorkloadConfig::default()
        },
        33,
    )
    .generate(&env.network);
    let td = TopDown::new(&env);
    let timed = |cfg: &ParallelConfig| {
        let t0 = std::time::Instant::now();
        let out = optimize_all(
            &env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            cfg,
        );
        assert!(out.planned() > 0);
        t0.elapsed().as_secs_f64() * 1e3
    };

    env.plan_cache.set_enabled(false);
    let serial_ms = timed(&ParallelConfig::serial());
    env.plan_cache.set_enabled(true);
    let parallel_ms = timed(&ParallelConfig::default());
    // Second pass over the warmed cache: what a replan after an adaptation
    // check (no epoch bump) costs.
    let replanning_ms = timed(&ParallelConfig::default());

    // Adaptation-after-change scenario: one stub access link drifts 40x,
    // the way `sim::adapt` sees metric drift. Full replan flushes the cache
    // and replans every query; incremental replanning retires only the
    // entries whose DP consulted a drifted distance (`retire_metric`) and
    // replans only the queries whose standing deployment touches the dirty
    // set (`optimize_dirty`).
    let drift = dsq_bench::localized_drift(&env);
    let cfg = ParallelConfig::default();

    let mut full_env = env.clone();
    full_env.isolate_cache(true); // flush semantics: enabled but empty
    assert!(full_env
        .network
        .set_link_cost(drift.a, drift.b, drift.new_cost));
    full_env.dm = drift.new_dm.clone();
    full_env.hierarchy.refresh_statistics(&full_env.dm);
    let (full_ms, full_out) = {
        let td = TopDown::new(&full_env);
        let t0 = std::time::Instant::now();
        let out = optimize_all(
            &full_env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &cfg,
        );
        (t0.elapsed().as_secs_f64() * 1e3, out)
    };

    // Standing deployments for the incremental arm (pure warm hits, untimed).
    let warm = optimize_all(
        &env,
        &td,
        &wl.catalog,
        &wl.queries,
        &ReuseRegistry::new(),
        &cfg,
    );
    let mut inc_env = env.clone(); // shares the warmed cache
    assert!(inc_env
        .network
        .set_link_cost(drift.a, drift.b, drift.new_cost));
    let dirty = drift.dirty;
    inc_env.dm = drift.new_dm;
    inc_env.hierarchy.refresh_statistics(&inc_env.dm);
    let (incremental_ms, inc_out, retired) = {
        let td = TopDown::new(&inc_env);
        let t0 = std::time::Instant::now();
        let retired = inc_env.plan_cache.retire_metric(&env.dm, &inc_env.dm);
        let out = dsq_core::optimize_dirty(
            &inc_env,
            &td,
            &wl.catalog,
            &wl.queries,
            &warm.deployments,
            &dirty,
            &ReuseRegistry::new(),
            &cfg,
        );
        (t0.elapsed().as_secs_f64() * 1e3, out, retired)
    };
    assert!(
        retired > 0,
        "the drift must retire memoized subplans (emits planner.cache_retired)"
    );
    assert_eq!(
        inc_out.total_cost.to_bits(),
        full_out.total_cost.to_bits(),
        "incremental replanning diverged from the full replan"
    );

    let rows = vec![
        ("planning-serial", serial_ms),
        ("planning-parallel-4t", parallel_ms),
        ("replanning-parallel-4t", replanning_ms),
        ("planning-speedup-x", serial_ms / replanning_ms.max(1e-9)),
        ("replanning-full-after-change", full_ms),
        ("planning-replanning-incremental", incremental_ms),
        (
            "replanning-incremental-speedup-x",
            full_ms / incremental_ms.max(1e-9),
        ),
    ];
    (rows, env.plan_cache.hits())
}

/// Per-approach rows of `(name, total cost, wall ms)` plus the shared case.
fn experiment() -> (Vec<(&'static str, f64, f64)>, dsq_bench::BenchCase) {
    let env = small_env(16, 2);
    let queries = if quick_mode() { 25 } else { 100 };
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 40,
            queries,
            joins_per_query: 4..=4, // 5 stream sources each
            source_skew: Some(1.0), // shared hot streams => reuse matters
            ..WorkloadConfig::default()
        },
        7,
    )
    .generate(&env.network);

    let td = TopDown::new(&env);
    let ptd = PlanThenDeploy::new(&env);
    let rel = Relaxation::new(&env);
    let timed = |name: &'static str, alg: &dyn Optimizer| {
        let t0 = std::time::Instant::now();
        let cost = run_batch(alg, &wl, true).0.last().copied().unwrap();
        (name, cost, t0.elapsed().as_secs_f64() * 1e3)
    };
    let rows = vec![
        timed("our-approach (top-down)", &td),
        timed("plan-then-deploy", &ptd),
        timed("relaxation", &rel),
    ];
    (rows, dsq_bench::BenchCase { env, wl })
}

fn bench(c: &mut Criterion) {
    // Capture planner counters for the whole experiment and emit them with
    // the per-approach wall times as BENCH_plan.json (CI uploads it).
    let sink = dsq_obs::Sink::new(dsq_obs::ClockMode::Monotonic);
    let (rows, case, driver_rows, cache_hits) = {
        let _scope = dsq_obs::scoped(sink.clone());
        let (rows, case) = experiment();
        let (driver_rows, cache_hits) = driver_experiment();
        (rows, case, driver_rows, cache_hits)
    };
    let mut wall_rows: Vec<(&str, f64)> = rows.iter().map(|&(name, _, ms)| (name, ms)).collect();
    wall_rows.extend_from_slice(&driver_rows);
    dsq_bench::emit_bench_json("plan", &wall_rows, &sink.snapshot());
    println!(
        "multi-query driver: serial {:.0} ms, parallel-4t cold {:.0} ms, warm replan {:.0} ms \
         (speedup {:.1}x, cache hits {cache_hits})",
        driver_rows[0].1, driver_rows[1].1, driver_rows[2].1, driver_rows[3].1,
    );
    println!(
        "after a 40x link drift: full replan {:.1} ms, incremental (scoped retire + dirty-set \
         replan) {:.1} ms ({:.1}x)",
        driver_rows[4].1, driver_rows[5].1, driver_rows[6].1,
    );
    let ours = rows[0].1;
    println!("\n=== fig02 — total cost of 100 5-source queries, 64-node network ===");
    for (name, cost, wall_ms) in &rows {
        println!(
            "{name:>26}: {cost:>12.1}  ({:+.1}% vs ours, {wall_ms:.0} ms)",
            (cost / ours - 1.0) * 100.0
        );
    }
    let ptd = rows[1].1;
    println!(
        "joint planning saves {:.1}% vs plan-then-deploy (paper: > 50%)",
        (1.0 - ours / ptd) * 100.0
    );
    Table {
        name: "fig02",
        caption:
            "total cost per unit time by approach (row order: ours, plan-then-deploy, relaxation)",
        x_label: "approach_idx",
        x: (0..rows.len()).map(|i| i as f64).collect(),
        series: vec![("total_cost".into(), rows.iter().map(|r| r.1).collect())],
    }
    .emit();

    // Criterion measurement: single-query optimization latency per approach.
    let q = &case.wl.queries[0];
    let mut group = c.benchmark_group("fig02_single_query");
    group.sample_size(10);
    group.bench_function("top-down", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            TopDown::new(&case.env)
                .optimize(&case.wl.catalog, q, &mut reg, &mut stats)
                .unwrap()
                .cost
        })
    });
    group.bench_function("plan-then-deploy", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            PlanThenDeploy::new(&case.env)
                .optimize(&case.wl.catalog, q, &mut reg, &mut stats)
                .unwrap()
                .cost
        })
    });
    group.bench_function("relaxation", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            Relaxation::new(&case.env)
                .optimize(&case.wl.catalog, q, &mut reg, &mut stats)
                .unwrap()
                .cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
