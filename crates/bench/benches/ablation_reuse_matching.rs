//! Ablation — reuse matching rule: exact selection-signature matching vs.
//! predicate-subsumption matching (the rule of Section 1.1's "reuse may
//! require additional columns to be projected", generalized to residual
//! predicates).
//!
//! On a workload where queries filter their sources by timestamp windows
//! drawn from a shared set, the subsumption matcher can reuse an operator
//! whose filter is *weaker* than the consumer's (applying the residual on
//! top), so it finds strictly more candidates and cheaper batches.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{paper_env, Table};
use dsq_core::{Optimal, Optimizer, SearchStats};
use dsq_query::{Deployment, LeafSource, Query, ReuseRegistry};
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

/// Deploy queries incrementally, matching deriveds with either rule.
fn run(
    env: &dsq_core::Environment,
    catalog: &dsq_query::Catalog,
    queries: &[Query],
    exact_only: bool,
) -> (f64, usize) {
    let mut registry = ReuseRegistry::new();
    let mut total = 0.0;
    let mut candidates_seen = 0usize;
    for q in queries {
        // Pre-flight: count what each rule would offer.
        let offers: Vec<LeafSource> = if exact_only {
            registry.usable_for_exact(q)
        } else {
            registry.usable_for(q)
        };
        candidates_seen += offers.len();
        // For exact-only mode, strip the subsumption-only candidates by
        // running the optimizer against a registry filtered to the exact
        // matches: easiest faithful emulation is a throwaway registry
        // seeded with just those derived streams.
        let d: Deployment = if exact_only {
            let mut filtered = ReuseRegistry::new();
            for leaf in &offers {
                if let LeafSource::Derived {
                    covered,
                    rate,
                    host,
                    ..
                } = leaf
                {
                    filtered.advertise(covered.clone(), restrict(q, covered), *rate, *host, q.id);
                }
            }
            let mut stats = SearchStats::new();
            Optimal::new(env)
                .optimize(catalog, q, &mut filtered, &mut stats)
                .unwrap()
        } else {
            let mut stats = SearchStats::new();
            Optimal::new(env)
                .optimize(catalog, q, &mut registry, &mut stats)
                .unwrap()
        };
        total += d.cost;
        registry.register_deployment(q, &d);
    }
    (total, candidates_seen)
}

fn restrict(q: &Query, covered: &dsq_query::StreamSet) -> Vec<dsq_query::SelectionPredicate> {
    q.selections
        .iter()
        .filter(|s| covered.contains(s.stream))
        .cloned()
        .collect()
}

fn bench(c: &mut Criterion) {
    let env = paper_env(32, 1);
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 40,
            queries: 25,
            joins_per_query: 2..=4,
            source_skew: Some(1.0),
            selection_prob: 0.6,
            ..WorkloadConfig::default()
        },
        21,
    )
    .generate(&env.network);

    let (cost_subs, cand_subs) = run(&env, &wl.catalog, &wl.queries, false);
    let (cost_exact, cand_exact) = run(&env, &wl.catalog, &wl.queries, true);
    println!("\nablation_reuse_matching:");
    println!("  subsumption matching: batch cost {cost_subs:.1}, {cand_subs} candidates offered");
    println!("  exact-only matching:  batch cost {cost_exact:.1}, {cand_exact} candidates offered");
    println!(
        "  subsumption offers {:+} more candidates and changes cost by {:+.2}%",
        cand_subs as i64 - cand_exact as i64,
        (cost_subs / cost_exact - 1.0) * 100.0
    );
    assert!(
        cand_subs >= cand_exact,
        "subsumption candidates are a superset"
    );

    Table {
        name: "ablation_reuse_matching",
        caption: "reuse matching rule (rows: subsumption, exact-only)",
        x_label: "rule_idx",
        x: vec![0.0, 1.0],
        series: vec![
            ("batch_cost".into(), vec![cost_subs, cost_exact]),
            (
                "candidates".into(),
                vec![cand_subs as f64, cand_exact as f64],
            ),
        ],
    }
    .emit();

    let mut group = c.benchmark_group("ablation_reuse_matching");
    group.sample_size(10);
    group.bench_function("subsumption", |b| {
        b.iter(|| run(&env, &wl.catalog, &wl.queries, false).0)
    });
    group.bench_function("exact-only", |b| {
        b.iter(|| run(&env, &wl.catalog, &wl.queries, true).0)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
