//! Figure 12 — reuse hit rate and plan cost vs. advert budget under churn.
//!
//! The reuse registry is memory-bounded: past `advert_budget` live adverts
//! the coldest is evicted, and a probe that would have matched an evicted
//! advert queues a re-derivation. This experiment sweeps the budget over a
//! skewed (reuse-heavy) workload, measuring per-budget:
//!
//! * **hit rate** — derived-stream leaves consumed per planned query;
//! * **batch cost** — cumulative communication cost of the batch;
//! * **evictions / re-derivations** — lifecycle churn the budget induces;
//! * the same hit rate after **host churn** (two advert hosts crash out of
//!   the overlay, the batch replans against the surviving adverts).
//!
//! Expected shape: tiny budgets evict hot adverts and the hit rate
//! collapses toward zero (cost rises toward the no-reuse batch); from a
//! modest budget on, both curves flatten at the unbounded registry's
//! values. Wall-time rows land in `BENCH_plan.json` under
//! `reuse-budget-*` (CI validates them).

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{quick_mode, small_env, Table};
use dsq_core::{consolidate, Environment, TopDown};
use dsq_net::NodeId;
use dsq_query::{FlatNode, LeafSource, ReuseRegistry};
use dsq_workload::{Workload, WorkloadConfig, WorkloadGenerator};

/// Encode "unbounded" as a plottable x value one power of two past the
/// largest real budget in the sweep.
const UNBOUNDED_X: usize = 32;

fn reuse_workload(env: &Environment, seed: u64) -> Workload {
    WorkloadGenerator::new(
        WorkloadConfig {
            streams: 40,
            queries: if quick_mode() { 10 } else { 25 },
            joins_per_query: 2..=4,
            source_skew: Some(1.0),
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate(&env.network)
}

/// Derived-stream leaves consumed across a batch's deployments.
fn derived_leaves(deployments: &[Option<dsq_query::Deployment>]) -> usize {
    deployments
        .iter()
        .flatten()
        .flat_map(|d| d.plan.nodes())
        .filter(|n| {
            matches!(
                n,
                FlatNode::Leaf {
                    source: LeafSource::Derived { .. },
                    ..
                }
            )
        })
        .count()
}

struct BudgetRow {
    hit_rate: f64,
    batch_cost: f64,
    evicted: f64,
    rederived: f64,
    churned_hit_rate: f64,
    wall_ms: f64,
}

/// One sweep point: deploy the batch under `budget`, then crash two advert
/// hosts out of the overlay and redeploy against the surviving registry.
fn run_budget(env: &Environment, wl: &Workload, budget: usize) -> BudgetRow {
    let t0 = std::time::Instant::now();
    let mut reg = ReuseRegistry::with_budget(budget);
    let td = TopDown::new(env);
    let out = consolidate::deploy_all(&td, &wl.catalog, &wl.queries, &mut reg, true);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let planned = out.deployments.iter().flatten().count().max(1);
    let stats = reg.stats();

    // Churn: crash up to two advert hosts (never a stream origin or sink),
    // tell the registry, and replan the batch on the churned overlay. The
    // liveness filter keeps dead-host adverts out of the new plans.
    let mut churned = env.clone();
    churned.isolate_cache(false);
    let protected: Vec<NodeId> = wl
        .catalog
        .streams()
        .iter()
        .map(|s| s.node)
        .chain(wl.queries.iter().map(|q| q.sink))
        .collect();
    let hosts: std::collections::BTreeSet<NodeId> = reg.deriveds().map(|d| d.host).collect();
    let mut removed = 0usize;
    for &host in hosts.iter() {
        if removed >= 2 || churned.hierarchy.active_nodes().len() <= 3 {
            break;
        }
        if protected.contains(&host) {
            continue;
        }
        if dsq_hierarchy::membership::remove_node(&mut churned.hierarchy, &churned.dm, host).is_ok()
        {
            reg.host_crashed(host);
            removed += 1;
        }
    }
    let td_churned = TopDown::new(&churned);
    let churned_out =
        consolidate::deploy_all(&td_churned, &wl.catalog, &wl.queries, &mut reg, true);
    let churned_planned = churned_out.deployments.iter().flatten().count().max(1);

    BudgetRow {
        hit_rate: derived_leaves(&out.deployments) as f64 / planned as f64,
        batch_cost: out.total_cost(),
        evicted: stats.evicted as f64,
        rederived: stats.rederived as f64,
        churned_hit_rate: derived_leaves(&churned_out.deployments) as f64 / churned_planned as f64,
        wall_ms,
    }
}

fn bench(c: &mut Criterion) {
    let env = small_env(16, 12);
    let wl = reuse_workload(&env, 13);
    let budgets: Vec<usize> = vec![1, 2, 4, 8, 16, 0]; // 0 = unbounded

    let sink = dsq_obs::Sink::new(dsq_obs::ClockMode::Virtual);
    let rows: Vec<(usize, BudgetRow)> = {
        let _scope = dsq_obs::scoped(sink.clone());
        budgets
            .iter()
            .map(|&b| (b, run_budget(&env, &wl, b)))
            .collect()
    };

    println!("\nfig12_reuse_budget (hit rate = derived leaves per planned query):");
    println!(
        "  {:>9} {:>9} {:>12} {:>9} {:>10} {:>14}",
        "budget", "hit_rate", "batch_cost", "evicted", "rederived", "churned_hits"
    );
    for (b, r) in &rows {
        let label = if *b == 0 {
            "unbounded".to_string()
        } else {
            b.to_string()
        };
        println!(
            "  {label:>9} {:>9.2} {:>12.1} {:>9.0} {:>10.0} {:>14.2}",
            r.hit_rate, r.batch_cost, r.evicted, r.rederived, r.churned_hit_rate
        );
    }
    let unbounded = &rows.last().expect("sweep is nonempty").1;
    for (b, r) in &rows {
        assert!(
            r.batch_cost >= unbounded.batch_cost - 1e-6,
            "budget {b} beat the unbounded registry: {} vs {}",
            r.batch_cost,
            unbounded.batch_cost
        );
    }
    assert_eq!(
        unbounded.evicted, 0.0,
        "the unbounded registry must never evict"
    );

    Table {
        name: "fig12_reuse_budget",
        caption: "reuse hit rate / plan cost vs advert budget under churn (x: budget, unbounded plotted at 32)",
        x_label: "advert_budget",
        x: rows
            .iter()
            .map(|(b, _)| if *b == 0 { UNBOUNDED_X as f64 } else { *b as f64 })
            .collect(),
        series: vec![
            ("hit_rate".into(), rows.iter().map(|(_, r)| r.hit_rate).collect()),
            ("batch_cost".into(), rows.iter().map(|(_, r)| r.batch_cost).collect()),
            ("evicted".into(), rows.iter().map(|(_, r)| r.evicted).collect()),
            ("rederived".into(), rows.iter().map(|(_, r)| r.rederived).collect()),
            (
                "churned_hit_rate".into(),
                rows.iter().map(|(_, r)| r.churned_hit_rate).collect(),
            ),
        ],
    }
    .emit();

    // Merge wall-time rows into BENCH_plan.json alongside fig02/fig09's.
    let wall_rows: Vec<(String, f64)> = rows
        .iter()
        .map(|(b, r)| {
            let key = if *b == 0 {
                "reuse-budget-unbounded".to_string()
            } else {
                format!("reuse-budget-{b}")
            };
            (key, r.wall_ms)
        })
        .collect();
    let row_refs: Vec<(&str, f64)> = wall_rows.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    dsq_bench::emit_bench_json("plan", &row_refs, &sink.snapshot());

    let mut group = c.benchmark_group("fig12_reuse_budget");
    group.sample_size(10);
    for b in [2usize, 0] {
        let label = if b == 0 {
            "unbounded".into()
        } else {
            format!("budget-{b}")
        };
        group.bench_function(label, |bench| {
            bench.iter(|| run_budget(&env, &wl, b).batch_cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
