//! Substrate micro-benchmarks: the building blocks every experiment leans
//! on. Not a paper figure — this is the performance budget of the library
//! itself (APSP construction, cost-space embedding, hierarchy build, and
//! the within-cluster planning engine's scaling in atoms × candidates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsq_core::{ClusterPlanner, Environment, PlannerInput, SearchStats};
use dsq_net::{CostSpace, DistanceMatrix, Metric, NodeId, TransitStubConfig};
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

fn bench(c: &mut Criterion) {
    // APSP: sequential (below threshold) and parallel (above) paths.
    let mut group = c.benchmark_group("apsp_build");
    group.sample_size(10);
    for size in [64usize, 512] {
        let net = TransitStubConfig::sized(size).generate(1).network;
        group.bench_with_input(BenchmarkId::from_parameter(net.len()), &net, |b, net| {
            b.iter(|| DistanceMatrix::build(net, Metric::Cost).diameter())
        });
    }
    group.finish();

    // Cost-space embedding sweeps.
    let mut group = c.benchmark_group("embedding");
    group.sample_size(10);
    for size in [64usize, 128] {
        let net = TransitStubConfig::sized(size).generate(1).network;
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        group.bench_with_input(BenchmarkId::from_parameter(net.len()), &dm, |b, dm| {
            b.iter(|| CostSpace::embed(dm, 1, 40).len())
        });
    }
    group.finish();

    // Full environment build (APSP + embedding + K-Means hierarchy).
    let mut group = c.benchmark_group("environment_build");
    group.sample_size(10);
    for size in [64usize, 128] {
        let net = TransitStubConfig::sized(size).generate(1).network;
        group.bench_with_input(BenchmarkId::from_parameter(net.len()), &net, |b, net| {
            b.iter(|| Environment::build(net.clone(), 32).hierarchy.height())
        });
    }
    group.finish();

    // Engine scaling: DP over k atoms × m candidates.
    let net = TransitStubConfig::paper_128().generate(1).network;
    let env = Environment::build(net, 32);
    let mut group = c.benchmark_group("engine_dp");
    group.sample_size(20);
    for k in [3usize, 5, 6] {
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 20,
                queries: 1,
                joins_per_query: (k - 1)..=(k - 1),
                ..WorkloadConfig::default()
            },
            9,
        )
        .generate(&env.network);
        let q = wl.queries[0].clone();
        let catalog = wl.catalog.clone();
        let inputs: Vec<PlannerInput> = q
            .sources
            .iter()
            .map(|&s| PlannerInput::base(&catalog, s))
            .collect();
        let candidates: Vec<NodeId> = env.network.nodes().collect();
        group.bench_function(BenchmarkId::new("atoms", k), |b| {
            b.iter(|| {
                let planner = ClusterPlanner::new(&catalog, &q);
                let mut stats = SearchStats::new();
                planner
                    .plan(
                        &inputs,
                        &candidates,
                        &env.dm,
                        Some(q.sink),
                        None,
                        &mut stats,
                    )
                    .unwrap()
                    .unwrap()
                    .est_cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
