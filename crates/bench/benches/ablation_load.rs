//! Ablation — the load model's communication/processing trade-off: as the
//! overload price rises, the optimizer spreads operators across more nodes,
//! paying more transport to buy less overload. Quantifies the Pareto front
//! the paper's "node N2 may be overloaded" example gestures at.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{paper_env, paper_workload, Table};
use dsq_core::{LoadModel, Optimal, Optimizer, SearchStats};
use dsq_query::ReuseRegistry;
use std::collections::HashMap;

fn run_with_penalty(penalty: f64) -> (f64, f64, usize) {
    let mut env = paper_env(32, 1);
    let wl = paper_workload(&env, 600, None);
    // Capacity ≈ one operator's input volume, so stacking is punished.
    env.enable_load_model(LoadModel::uniform(env.network.len(), 150.0, penalty));
    let mut registry = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let mut comm = 0.0;
    let mut spread: HashMap<dsq_net::NodeId, usize> = HashMap::new();
    for q in &wl.queries {
        let d = Optimal::new(&env)
            .optimize(&wl.catalog, q, &mut registry, &mut stats)
            .unwrap();
        env.commit_load(&d);
        comm += d.cost;
        for n in d.operator_nodes() {
            *spread.entry(n).or_insert(0) += 1;
        }
    }
    let overload = env.load_snapshot().unwrap().overload_units();
    (comm, overload, spread.len())
}

fn bench(c: &mut Criterion) {
    let penalties = [0.0f64, 0.5, 2.0, 10.0];
    let mut comm_s = Vec::new();
    let mut over_s = Vec::new();
    let mut nodes_s = Vec::new();
    println!("\nablation_load (capacity 150/node, 20-query batch):");
    println!(
        "{:>10} {:>14} {:>16} {:>14}",
        "penalty", "comm cost", "overload units", "nodes used"
    );
    for &p in &penalties {
        let (comm, overload_units, nodes) = run_with_penalty(p);
        println!("{p:>10.1} {comm:>14.1} {overload_units:>16.1} {nodes:>14}");
        comm_s.push(comm);
        over_s.push(overload_units);
        nodes_s.push(nodes as f64);
    }
    // The trade-off must actually trade: communication cost is weakly
    // increasing and overload weakly decreasing in the penalty.
    assert!(
        comm_s.windows(2).all(|w| w[1] >= w[0] - 1e-6),
        "transport should rise with the overload price: {comm_s:?}"
    );
    assert!(
        over_s.first() >= over_s.last(),
        "overload should fall with the price: {over_s:?}"
    );
    Table {
        name: "ablation_load",
        caption: "load-model trade-off: overload price vs transport cost / overload / spread",
        x_label: "penalty",
        x: penalties.to_vec(),
        series: vec![
            ("comm_cost".into(), comm_s),
            ("overload_units".into(), over_s),
            ("nodes_used".into(), nodes_s),
        ],
    }
    .emit();

    let mut group = c.benchmark_group("ablation_load");
    group.sample_size(10);
    group.bench_function("penalty=0", |b| b.iter(|| run_with_penalty(0.0).0));
    group.bench_function("penalty=10", |b| b.iter(|| run_with_penalty(10.0).0));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
