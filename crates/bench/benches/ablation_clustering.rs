//! Ablation — clustering method: the paper builds its hierarchy with
//! K-Means over the cost space; this ablation swaps in complete-linkage
//! agglomeration over *actual* traversal costs and measures the effect on
//! Top-Down's deployed cost and on the hierarchy's Theorem 1 slack.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{paper_workload, run_batch, workload_repeats, Table};
use dsq_core::{Environment, TopDown};
use dsq_hierarchy::{ClusteringMethod, HierarchyConfig};
use dsq_net::TransitStubConfig;

fn env_with(method: ClusteringMethod) -> Environment {
    let net = TransitStubConfig::paper_128().generate(1).network;
    Environment::build_with(
        net,
        HierarchyConfig {
            max_cs: 32,
            seed: 0x5eed,
            method,
        },
        40,
    )
}

fn bench(c: &mut Criterion) {
    let kmeans = env_with(ClusteringMethod::KMeans);
    let agglo = env_with(ClusteringMethod::Agglomerative);

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, env) in [("kmeans", &kmeans), ("agglomerative", &agglo)] {
        let mut costs = Vec::new();
        for w in 0..workload_repeats() {
            let wl = paper_workload(env, 700 + w as u64, None);
            let (curve, _) = run_batch(&TopDown::new(env), &wl, true);
            costs.push(*curve.last().unwrap());
        }
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let slack = env.hierarchy.theorem1_slack(env.hierarchy.height());
        println!(
            "{name:>14}: top-down batch cost {mean:.1}, hierarchy height {}, Theorem 1 slack {slack:.1}",
            env.hierarchy.height()
        );
        rows.push((
            name.to_string(),
            vec![mean, env.hierarchy.height() as f64, slack],
        ));
    }
    let ratio = rows[1].1[0] / rows[0].1[0];
    println!(
        "agglomerative / kmeans cost ratio: {ratio:.3} (close to 1.0 expected — the hierarchy \
         shape matters more than the clustering algorithm)"
    );

    Table {
        name: "ablation_clustering",
        caption: "clustering method ablation (rows: cost, height, slack per method)",
        x_label: "metric_idx",
        x: vec![0.0, 1.0, 2.0],
        series: rows,
    }
    .emit();

    // Criterion: hierarchy construction cost for each method.
    let net = TransitStubConfig::paper_128().generate(1).network;
    let mut group = c.benchmark_group("ablation_clustering_build");
    group.sample_size(10);
    for method in [ClusteringMethod::KMeans, ClusteringMethod::Agglomerative] {
        group.bench_function(format!("{method:?}"), |b| {
            b.iter(|| {
                Environment::build_with(
                    net.clone(),
                    HierarchyConfig {
                        max_cs: 32,
                        seed: 0x5eed,
                        method,
                    },
                    40,
                )
                .hierarchy
                .height()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
