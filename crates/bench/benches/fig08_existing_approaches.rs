//! Figure 8 — "Comparison with other approaches": cumulative cost of
//! Top-Down and Bottom-Up (with reuse) vs. the exhaustive optimum, the
//! Relaxation algorithm and the In-network algorithm (5 zones), all with
//! reuse enabled, at `max_cs = 32`.
//!
//! Expected shape (paper): Top-Down ≈ 40% cheaper than In-network and
//! ≈ 59% cheaper than Relaxation; Bottom-Up ≈ 27% and ≈ 49%; both close to
//! the exhaustive optimum from above.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_baselines::{InNetwork, InNetworkRunner, Relaxation};
use dsq_bench::{mean_curve, paper_env, paper_workload, run_batch, workload_repeats, Table};
use dsq_core::{BottomUp, Optimal, Optimizer, SearchStats, TopDown};
use dsq_query::ReuseRegistry;

fn bench(c: &mut Criterion) {
    let env = paper_env(32, 1);
    let zones = InNetwork::new(&env, 5);
    let names = [
        "top-down+reuse",
        "bottom-up+reuse",
        "exhaustive",
        "relaxation+reuse",
        "in-network+reuse",
    ];
    let build = |name: &str| -> Box<dyn Optimizer + '_> {
        match name {
            "top-down+reuse" => Box::new(TopDown::new(&env)),
            "bottom-up+reuse" => Box::new(BottomUp::new(&env)),
            "exhaustive" => Box::new(Optimal::new(&env)),
            "relaxation+reuse" => Box::new(Relaxation::new(&env)),
            _ => Box::new(InNetworkRunner {
                zones: &zones,
                env: &env,
            }),
        }
    };

    let mut curves: Vec<Vec<Vec<f64>>> = vec![Vec::new(); names.len()];
    let mut plans: Vec<u128> = vec![0; names.len()];
    for w in 0..workload_repeats() {
        let wl = paper_workload(&env, 300 + w as u64, Some(1.6));
        for (i, name) in names.iter().enumerate() {
            let alg = build(name);
            let (curve, stats) = run_batch(alg.as_ref(), &wl, true);
            plans[i] += stats.plans_considered;
            curves[i].push(curve);
        }
    }
    let means: Vec<Vec<f64>> = curves.iter().map(|c| mean_curve(c)).collect();
    let last = means[0].len() - 1;
    let by = |n: &str| means[names.iter().position(|x| x == &n).unwrap()][last];

    println!("\nfig08 headlines (paper values in parentheses):");
    println!(
        "  top-down vs in-network: {:.1}% cheaper (40%); vs relaxation: {:.1}% (59%)",
        (1.0 - by("top-down+reuse") / by("in-network+reuse")) * 100.0,
        (1.0 - by("top-down+reuse") / by("relaxation+reuse")) * 100.0,
    );
    println!(
        "  bottom-up vs in-network: {:.1}% cheaper (27%); vs relaxation: {:.1}% (49%)",
        (1.0 - by("bottom-up+reuse") / by("in-network+reuse")) * 100.0,
        (1.0 - by("bottom-up+reuse") / by("relaxation+reuse")) * 100.0,
    );
    // Search-space comparison the paper makes in the same section. Our
    // In-network implementation is the greedy two-phase walk, whose
    // examined candidate count is far below the exhaustive-style space the
    // paper quotes (70% of Top-Down's / 200% of Bottom-Up's under an
    // unspecified counting) — see EXPERIMENTS.md.
    let p = |n: &str| plans[names.iter().position(|x| x == &n).unwrap()] as f64;
    println!(
        "  in-network (greedy) examined candidates: {:.4}% of top-down's space, {:.4}% of \
         bottom-up's (the paper's exhaustive-style counting gives 70% / 200%)",
        p("in-network+reuse") / p("top-down+reuse") * 100.0,
        p("in-network+reuse") / p("bottom-up+reuse") * 100.0,
    );

    Table {
        name: "fig08",
        caption: "cumulative cost vs existing approaches (all with reuse, max_cs = 32, 5 zones)",
        x_label: "queries",
        x: (1..=means[0].len()).map(|i| i as f64).collect(),
        series: names
            .iter()
            .zip(&means)
            .map(|(n, m)| (n.to_string(), m.clone()))
            .collect(),
    }
    .emit();

    // Criterion: single-query latency of the two baselines.
    let wl = paper_workload(&env, 999, Some(1.6));
    let q = &wl.queries[0];
    let mut group = c.benchmark_group("fig08_single_query");
    group.sample_size(10);
    group.bench_function("relaxation", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            Relaxation::new(&env)
                .optimize(&wl.catalog, q, &mut reg, &mut stats)
                .unwrap()
                .cost
        })
    });
    group.bench_function("in-network", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            InNetworkRunner {
                zones: &zones,
                env: &env,
            }
            .optimize(&wl.catalog, q, &mut reg, &mut stats)
            .unwrap()
            .cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
