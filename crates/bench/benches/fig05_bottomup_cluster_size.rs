//! Figure 5 — "Bottom-Up: Cost": cumulative deployed cost per unit time vs.
//! number of queries, for `max_cs ∈ {2, 4, 8, 16, 32, 64}` on the ~128-node
//! network (100 streams, 20 queries of 2–5 joins, averaged over 10
//! workloads).
//!
//! Expected shape: cost decreases as `max_cs` grows ("a max_cs value of 64
//! results in a 21% decrease in cost compared to a max_cs value of 8") —
//! fewer hierarchy levels mean fewer compounding approximations, so for
//! Bottom-Up the guideline is *the largest max_cs whose search space is
//! acceptable*.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{cluster_size_sweep, paper_env, paper_workload, run_batch, Hierarchical};

fn bench(c: &mut Criterion) {
    let table = cluster_size_sweep(
        Hierarchical::BottomUp,
        "fig05",
        "Bottom-Up cumulative cost vs queries, by max_cs",
    );
    // Headline ratio from the paper's text: max_cs 64 vs max_cs 8.
    let last = table.x.len() - 1;
    let cost8 = table
        .series
        .iter()
        .find(|(n, _)| n == "max_cs=8")
        .unwrap()
        .1[last];
    let cost64 = table
        .series
        .iter()
        .find(|(n, _)| n == "max_cs=64")
        .unwrap()
        .1[last];
    println!(
        "\nfig05 headline: max_cs=64 is {:.1}% cheaper than max_cs=8 (paper: ~21%)",
        (1.0 - cost64 / cost8) * 100.0
    );
    table.emit();

    // Criterion: one full Bottom-Up batch at two cluster sizes.
    let mut group = c.benchmark_group("fig05_bottomup_batch");
    group.sample_size(10);
    for max_cs in [8usize, 64] {
        let env = paper_env(max_cs, 1);
        let wl = paper_workload(&env, 500, None);
        group.bench_function(format!("max_cs={max_cs}"), |b| {
            b.iter(|| {
                let opt = Hierarchical::BottomUp.build(&env);
                run_batch(opt.as_ref(), &wl, true).0.last().copied()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
