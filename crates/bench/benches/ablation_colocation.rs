//! Ablation — Bottom-Up placement candidates: cluster members only (the
//! paper-faithful reading of "an exhaustive search, only within its
//! underlying cluster", whose per-level placement space Theorem 4 caps at
//! `max_cs^(α−1)`) vs. members **plus the inputs' advertised host nodes**
//! (in-network co-location).
//!
//! Members-only Bottom-Up pays full stream rate to drag every base stream
//! to a coordinator machine; co-location removes that leg and recovers most
//! of the gap to Top-Down, isolating how much of Bottom-Up's sub-optimality
//! is *placement* vs. its local-first join *order*.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{paper_env, paper_workload, workload_repeats, Table};
use dsq_core::{BottomUp, BottomUpPlacement, Optimal, Optimizer, SearchStats, TopDown};
use dsq_query::ReuseRegistry;

fn bench(c: &mut Criterion) {
    let env = paper_env(32, 1);
    let (mut bud, mut bum, mut buc, mut td, mut opt) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for w in 0..workload_repeats() {
        let wl = paper_workload(&env, 800 + w as u64, None);
        for q in &wl.queries {
            let mut s = SearchStats::new();
            bud += BottomUp::with_placement(&env, BottomUpPlacement::Descend)
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap()
                .cost;
            bum += BottomUp::with_placement(&env, BottomUpPlacement::MembersOnly)
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap()
                .cost;
            buc += BottomUp::with_input_colocation(&env)
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap()
                .cost;
            td += TopDown::new(&env)
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap()
                .cost;
            opt += Optimal::new(&env)
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap()
                .cost;
        }
    }
    println!("\nablation_colocation (sub-optimality vs exact optimum):");
    println!(
        "  bottom-up descend (default): {:+.1}%",
        (bud / opt - 1.0) * 100.0
    );
    println!(
        "  bottom-up members-only:      {:+.1}%",
        (bum / opt - 1.0) * 100.0
    );
    println!(
        "  bottom-up + co-location:     {:+.1}%",
        (buc / opt - 1.0) * 100.0
    );
    println!(
        "  top-down (for reference):    {:+.1}%",
        (td / opt - 1.0) * 100.0
    );
    println!(
        "  co-location closes {:.0}% of the members-only gap to optimal",
        (bum - buc) / (bum - opt) * 100.0
    );
    assert!(
        buc <= bum + 1e-6,
        "a superset of candidates cannot cost more"
    );
    assert!(
        bud <= bum * 1.05,
        "descending placement should not lose to members-only in aggregate"
    );

    Table {
        name: "ablation_colocation",
        caption: "Bottom-Up placement-mode ablation (total batch cost: descend, members-only, co-location, top-down, optimal)",
        x_label: "variant_idx",
        x: vec![0.0, 1.0, 2.0, 3.0, 4.0],
        series: vec![(
            "total_cost".into(),
            vec![bud, bum, buc, td, opt],
        )],
    }
    .emit();

    // Criterion: per-query latency of the two Bottom-Up variants.
    let wl = paper_workload(&env, 900, None);
    let q = &wl.queries[0];
    let mut group = c.benchmark_group("ablation_colocation");
    group.bench_function("members-only", |b| {
        b.iter(|| {
            let mut s = SearchStats::new();
            BottomUp::new(&env)
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap()
                .cost
        })
    });
    group.bench_function("with-colocation", |b| {
        b.iter(|| {
            let mut s = SearchStats::new();
            BottomUp::with_input_colocation(&env)
                .optimize(&wl.catalog, q, &mut ReuseRegistry::new(), &mut s)
                .unwrap()
                .cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
