//! Figure 11 — "Cumulative deployed cost" (Emulab prototype, Section
//! 3.5.1): cumulative cost per unit time of 25 queries on the 32-node
//! testbed, for Bottom-Up and Top-Down at cluster sizes 4 and 8.
//!
//! Expected shape (paper): Top-Down offers lower deployed cost than
//! Bottom-Up at both cluster sizes — consistent with the simulation results
//! — because it considers all operator orderings at the top.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{run_batch, Table};
use dsq_core::{BottomUp, Environment, Optimizer, TopDown};
use dsq_net::TransitStubConfig;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

fn bench(c: &mut Criterion) {
    let net = TransitStubConfig::emulab_32().generate(4).network;
    let sizes = [4usize, 8];
    let envs: Vec<Environment> = sizes
        .iter()
        .map(|&cs| Environment::build(net.clone(), cs))
        .collect();
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 8,
            queries: 25,
            joins_per_query: 1..=4,
            ..WorkloadConfig::default()
        },
        12,
    )
    .generate(&net);

    let mut series = Vec::new();
    for (ei, &cs) in sizes.iter().enumerate() {
        for (label, alg) in [
            (
                "bottom-up",
                Box::new(BottomUp::new(&envs[ei])) as Box<dyn Optimizer>,
            ),
            ("top-down", Box::new(TopDown::new(&envs[ei]))),
        ] {
            let (curve, _) = run_batch(alg.as_ref(), &wl, true);
            series.push((format!("{label} (cs={cs})"), curve));
        }
    }

    let last = series[0].1.len() - 1;
    let at = |n: &str| series.iter().find(|(a, _)| a == n).unwrap().1[last];
    println!(
        "\nfig11 headlines: top-down beats bottom-up at cs=4 by {:.1}% and at cs=8 by {:.1}% \
         (paper: top-down lower at both)",
        (1.0 - at("top-down (cs=4)") / at("bottom-up (cs=4)")) * 100.0,
        (1.0 - at("top-down (cs=8)") / at("bottom-up (cs=8)")) * 100.0,
    );

    Table {
        name: "fig11",
        caption: "cumulative deployed cost on the 32-node Emulab model",
        x_label: "queries",
        x: (1..=series[0].1.len()).map(|i| i as f64).collect(),
        series,
    }
    .emit();

    // Criterion: whole-batch deployment at cs=8.
    let mut group = c.benchmark_group("fig11_batch");
    group.sample_size(10);
    group.bench_function("top-down cs=8", |b| {
        b.iter(|| {
            run_batch(&TopDown::new(&envs[1]), &wl, true)
                .0
                .last()
                .copied()
        })
    });
    group.bench_function("bottom-up cs=8", |b| {
        b.iter(|| {
            run_batch(&BottomUp::new(&envs[1]), &wl, true)
                .0
                .last()
                .copied()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
