//! Figure 10 (service reading) — resident planning-service throughput and
//! robustness on the Emulab-scale testbed: sustained registration
//! throughput, per-drain plan-wave latency (p50/p99), and journal-replay
//! crash-recovery time.
//!
//! Emits `fig10.*` rows into `BENCH_plan.json` (merged with the planner
//! rows fig02/fig09 write): `registrations_per_sec`, `plan_p50_ms`,
//! `plan_p99_ms`, `recovery_ms`.

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{emit_bench_json, quick_mode};
use dsq_server::{PlanningService, ServiceConfig};
use std::path::PathBuf;
use std::time::Instant;

const BATCH: usize = 8;

fn register_line(id: usize, at_ms: usize) -> String {
    let (a, b) = (id % 8, (id + 1) % 8);
    let sink = (id * 5 + 3) % 18;
    format!(r#"{{"op":"register","id":{id},"sources":[{a},{b}],"sink":{sink},"at_ms":{at_ms}}}"#)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let i = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[i]
}

fn bench(c: &mut Criterion) {
    let total = if quick_mode() { 24 } else { 96 };
    let dir = std::env::temp_dir().join(format!("dsq-fig10-service-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal: PathBuf = dir.join("service.journal");

    let sink = dsq_obs::Sink::new(dsq_obs::ClockMode::Virtual);
    let fingerprint;
    let regs_per_sec;
    let (p50, p99);
    {
        let _scope = dsq_obs::scoped(sink.clone());
        let mut svc = PlanningService::new(ServiceConfig::default(), Some(&journal)).unwrap();

        // Sustained admission: batches of registrations, each batch planned
        // in one drain wave. Wall time covers journaling + admission +
        // planning — the service's end-to-end registration path.
        let mut drain_ms: Vec<f64> = Vec::new();
        let started = Instant::now();
        for batch in 0..total / BATCH {
            for k in 0..BATCH {
                let id = batch * BATCH + k;
                let r = svc.submit_line(&register_line(id, id));
                assert!(r.contains(r#""ok":true"#), "{r}");
            }
            let t0 = Instant::now();
            let r = svc.submit_line(&format!(r#"{{"op":"drain","at_ms":{total}}}"#));
            drain_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            assert!(r.contains(&format!(r#""planned":{BATCH}"#)), "{r}");
        }
        regs_per_sec = total as f64 / started.elapsed().as_secs_f64();
        drain_ms.sort_by(f64::total_cmp);
        p50 = percentile(&drain_ms, 0.50);
        p99 = percentile(&drain_ms, 0.99);
        fingerprint = svc.fingerprint();
    }

    // Crash recovery: replay the whole journal from a cold start and check
    // the recovered service is bit-identical to the one that crashed.
    let t0 = Instant::now();
    let recovered = PlanningService::recover_from_path(&journal).unwrap();
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        recovered.fingerprint(),
        fingerprint,
        "recovery must restore the exact pre-crash state"
    );

    println!(
        "\nfig10 service headlines: {regs_per_sec:.0} registrations/sec sustained \
         (batches of {BATCH}); plan-wave latency p50 {p50:.2} ms, p99 {p99:.2} ms; \
         cold recovery of {} journal entries in {recovery_ms:.1} ms",
        recovered.journal_len(),
    );

    emit_bench_json(
        "plan",
        &[
            ("fig10.registrations_per_sec", regs_per_sec),
            ("fig10.plan_p50_ms", p50),
            ("fig10.plan_p99_ms", p99),
            ("fig10.recovery_ms", recovery_ms),
        ],
        &sink.snapshot(),
    );

    // Criterion: one full admission batch (register + journal + drain wave)
    // against a fresh service, the unit the throughput number is made of.
    let mut group = c.benchmark_group("fig10_service");
    group.sample_size(10);
    group.bench_function("register+drain batch", |b| {
        b.iter(|| {
            let mut svc = PlanningService::new(ServiceConfig::default(), None).unwrap();
            for id in 0..BATCH {
                svc.submit_line(&register_line(id, id));
            }
            svc.submit_line(r#"{"op":"drain","at_ms":100}"#);
            svc.core().epoch
        })
    });
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
