//! Figure 10 — "Query deployment time" (Emulab prototype, Section 3.5.1):
//! average deployment time vs. query size (number of streams) for Bottom-Up
//! and Top-Down at cluster sizes 4 and 8, on the 32-node testbed (25
//! queries over 8 streams, 1–4 joins, 1–6 ms link delays).
//!
//! Expected shape (paper): Bottom-Up ≈ 70% faster than Top-Down (smaller
//! per-level searches, and it stops climbing once all sources are covered);
//! Top-Down gets *faster* with larger max_cs (fewer levels to traverse).

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::Table;
use dsq_core::{BottomUp, BottomUpPlacement, Environment, Optimizer, SearchStats, TopDown};
use dsq_net::TransitStubConfig;
use dsq_query::ReuseRegistry;
use dsq_sim::EmulabModel;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

struct Cell {
    total_ms: f64,
    count: usize,
}

fn bench(c: &mut Criterion) {
    let net = TransitStubConfig::emulab_32().generate(4).network;
    let model = EmulabModel::new(&net);
    let sizes = [4usize, 8];
    let envs: Vec<Environment> = sizes
        .iter()
        .map(|&cs| Environment::build(net.clone(), cs))
        .collect();
    let wl = WorkloadGenerator::new(
        WorkloadConfig {
            streams: 8,
            queries: 25,
            joins_per_query: 1..=4,
            ..WorkloadConfig::default()
        },
        12,
    )
    .generate(&net);

    // rows: query size 2..=5 streams; series: {bu, td} × {4, 8}.
    let query_sizes: Vec<usize> = (2..=5).collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut totals = Vec::new();
    for (ei, &cs) in sizes.iter().enumerate() {
        for (label, variant) in [
            ("bottom-up", 0usize),
            ("bottom-up/members", 1),
            ("top-down", 2),
        ] {
            let mut cells: Vec<Cell> = (0..8)
                .map(|_| Cell {
                    total_ms: 0.0,
                    count: 0,
                })
                .collect();
            let mut reg = ReuseRegistry::new();
            let mut grand = 0.0;
            for q in &wl.queries {
                let mut stats = SearchStats::new();
                let d = match variant {
                    0 => BottomUp::new(&envs[ei]).optimize(&wl.catalog, q, &mut reg, &mut stats),
                    1 => BottomUp::with_placement(&envs[ei], BottomUpPlacement::MembersOnly)
                        .optimize(&wl.catalog, q, &mut reg, &mut stats),
                    _ => TopDown::new(&envs[ei]).optimize(&wl.catalog, q, &mut reg, &mut stats),
                }
                .expect("deployable");
                let t = model.deployment_time(q.sink, &stats, &d).total_ms();
                let k = q.sources.len();
                cells[k].total_ms += t;
                cells[k].count += 1;
                grand += t;
            }
            let ys: Vec<f64> = query_sizes
                .iter()
                .map(|&k| {
                    if cells[k].count > 0 {
                        cells[k].total_ms / cells[k].count as f64 / 1000.0 // seconds
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            series.push((format!("{label} (cs={cs})"), ys));
            totals.push((format!("{label} (cs={cs})"), grand));
        }
    }

    let total = |n: &str| totals.iter().find(|(a, _)| a == n).unwrap().1;
    println!(
        "\nfig10 headlines: bottom-up total deploy time is {:.0}% below top-down at cs=4 \
         ({:.0}% for the members-only placement reading; paper: ~70%); \
         top-down cs=8 is {:.0}% faster than cs=4 (paper: faster with larger max_cs)",
        (1.0 - total("bottom-up (cs=4)") / total("top-down (cs=4)")) * 100.0,
        (1.0 - total("bottom-up/members (cs=4)") / total("top-down (cs=4)")) * 100.0,
        (1.0 - total("top-down (cs=8)") / total("top-down (cs=4)")) * 100.0,
    );

    Table {
        name: "fig10",
        caption: "average deployment time (s) vs query size (streams), Emulab model",
        x_label: "query size",
        x: query_sizes.iter().map(|&k| k as f64).collect(),
        series,
    }
    .emit();

    // Criterion: actual wall-clock optimization latency on this testbed,
    // the computational part of deployment time.
    let q = wl.queries.iter().find(|q| q.sources.len() == 4).unwrap();
    let mut group = c.benchmark_group("fig10_wallclock");
    group.sample_size(20);
    for (ei, &cs) in sizes.iter().enumerate() {
        group.bench_function(format!("top-down cs={cs}"), |b| {
            b.iter(|| {
                let mut reg = ReuseRegistry::new();
                let mut stats = SearchStats::new();
                TopDown::new(&envs[ei])
                    .optimize(&wl.catalog, q, &mut reg, &mut stats)
                    .unwrap()
                    .cost
            })
        });
        group.bench_function(format!("bottom-up cs={cs}"), |b| {
            b.iter(|| {
                let mut reg = ReuseRegistry::new();
                let mut stats = SearchStats::new();
                BottomUp::new(&envs[ei])
                    .optimize(&wl.catalog, q, &mut reg, &mut stats)
                    .unwrap()
                    .cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
