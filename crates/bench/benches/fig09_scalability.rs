//! Figure 9 — "Scalability with Network Size": plan/deployment combinations
//! considered per query (log scale) on transit-stub networks of ~64, ~128,
//! ~512 and ~1024 nodes, for Top-Down and Bottom-Up (`max_cs = 32`,
//! 10 queries each joining 4 of 100 streams), compared with the exhaustive
//! search-space size (Lemma 1) and the analytical worst-case bounds
//! (Theorems 2 and 4).
//!
//! Expected shape (paper): both algorithms cut the space by ≥ 99%;
//! Bottom-Up's per-query space is ~45% below Top-Down's; the analytical
//! bounds are nearly flat across network sizes (the growth of
//! `O_exhaustive` is offset by the shrinking β).

use criterion::{criterion_group, criterion_main, Criterion};
use dsq_bench::{quick_mode, Table};
use dsq_core::{bounds, BottomUp, BottomUpPlacement, Environment, Optimizer, SearchStats, TopDown};
use dsq_net::TransitStubConfig;
use dsq_query::ReuseRegistry;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

fn bench(c: &mut Criterion) {
    let sizes = if quick_mode() {
        vec![64usize, 128]
    } else {
        vec![64, 128, 512, 1024]
    };
    const K: usize = 4; // streams per query
    let mut x = Vec::new();
    let (mut td_s, mut bu_s, mut bum_s, mut exh_s, mut bound_s) =
        (vec![], vec![], vec![], vec![], vec![]);
    let mut envs = Vec::new();

    for &target in &sizes {
        let cfg = TransitStubConfig::sized(target);
        let net = cfg.generate(9).network;
        let n = net.len();
        let env = Environment::build(net, 32);
        let h = env.hierarchy.height();
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 100,
                queries: 10,
                joins_per_query: (K - 1)..=(K - 1),
                ..WorkloadConfig::default()
            },
            33,
        )
        .generate(&env.network);

        let mut td_plans = 0u128;
        let mut bu_plans = 0u128;
        let mut bum_plans = 0u128;
        for q in &wl.queries {
            let mut reg = ReuseRegistry::new();
            let mut s = SearchStats::new();
            TopDown::new(&env)
                .optimize(&wl.catalog, q, &mut reg, &mut s)
                .unwrap();
            td_plans += s.plans_considered;
            let mut reg = ReuseRegistry::new();
            let mut s = SearchStats::new();
            BottomUp::new(&env)
                .optimize(&wl.catalog, q, &mut reg, &mut s)
                .unwrap();
            bu_plans += s.plans_considered;
            let mut reg = ReuseRegistry::new();
            let mut s = SearchStats::new();
            BottomUp::with_placement(&env, BottomUpPlacement::MembersOnly)
                .optimize(&wl.catalog, q, &mut reg, &mut s)
                .unwrap();
            bum_plans += s.plans_considered;
        }
        let per_query_td = td_plans as f64 / wl.queries.len() as f64;
        let per_query_bu = bu_plans as f64 / wl.queries.len() as f64;
        let per_query_bum = bum_plans as f64 / wl.queries.len() as f64;
        let exhaustive = bounds::lemma1_space_f64(K, n);
        let analytic = bounds::hierarchical_space_bound(K, n, 32, h);

        println!(
            "n = {n:>5} (h = {h}): top-down {per_query_td:.3e}, bottom-up {per_query_bu:.3e}, \
             bottom-up/members-only {per_query_bum:.3e}, exhaustive {exhaustive:.3e}, \
             bound {analytic:.3e} | reduction: td {:.3}%, bu {:.3}% of exhaustive",
            per_query_td / exhaustive * 100.0,
            per_query_bu / exhaustive * 100.0,
        );
        x.push(n as f64);
        td_s.push(per_query_td);
        bu_s.push(per_query_bu);
        bum_s.push(per_query_bum);
        exh_s.push(exhaustive);
        bound_s.push(analytic);
        envs.push((env, wl));
    }

    // Headlines from the paper's text.
    let avg_bu_vs_td: f64 =
        td_s.iter().zip(&bu_s).map(|(t, b)| b / t).sum::<f64>() / td_s.len() as f64;
    let big = x.iter().position(|&n| n >= 128.0).unwrap_or(0);
    println!(
        "\nfig09 headlines: at n ≥ 128 both algorithms are ≥99% below exhaustive: {}",
        td_s[big..]
            .iter()
            .zip(&exh_s[big..])
            .all(|(t, e)| t / e < 0.01)
            && bu_s[big..]
                .iter()
                .zip(&exh_s[big..])
                .all(|(b, e)| b / e < 0.01)
    );
    let avg_bum_vs_td: f64 =
        td_s.iter().zip(&bum_s).map(|(t, b)| b / t).sum::<f64>() / td_s.len() as f64;
    println!(
        "  bottom-up examines {:.0}% fewer plans than top-down on average (paper: ~45%); \
         the members-only placement reading examines {:.0}% fewer",
        (1.0 - avg_bu_vs_td) * 100.0,
        (1.0 - avg_bum_vs_td) * 100.0
    );

    Table {
        name: "fig09",
        caption: "plans considered per 4-stream query vs network size (log scale)",
        x_label: "network size",
        x,
        series: vec![
            ("top-down".into(), td_s),
            ("bottom-up".into(), bu_s),
            ("bottom-up members-only".into(), bum_s),
            ("exhaustive (Lemma 1)".into(), exh_s),
            ("analytical bound".into(), bound_s),
        ],
    }
    .emit();

    // Multi-query driver wall time at the largest size: serial one-at-a-time
    // vs the parallel driver with the shared subplan cache, plus a
    // warm-cache replanning pass (the adaptation path).
    let (env, wl) = envs.last().unwrap();
    let obs_sink = dsq_obs::Sink::new(dsq_obs::ClockMode::Monotonic);
    {
        let _obs_scope = dsq_obs::scoped(obs_sink.clone());
        use dsq_core::{optimize_all, ParallelConfig};
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global();
        let td = TopDown::new(env);
        let timed = |cfg: &ParallelConfig| {
            let t0 = std::time::Instant::now();
            let out = optimize_all(
                env,
                &td,
                &wl.catalog,
                &wl.queries,
                &ReuseRegistry::new(),
                cfg,
            );
            assert!(out.planned() > 0);
            t0.elapsed().as_secs_f64() * 1e3
        };
        env.plan_cache.set_enabled(false);
        let serial_ms = timed(&ParallelConfig::serial());
        env.plan_cache.set_enabled(true);
        let parallel_ms = timed(&ParallelConfig::default());
        let replan_ms = timed(&ParallelConfig::default());
        println!(
            "  multi-query planning wall time at n = {}: serial {serial_ms:.1} ms, \
             parallel-4t cold {parallel_ms:.1} ms, warm replan {replan_ms:.1} ms \
             ({:.1}x, {} cache hits)",
            env.network.len(),
            serial_ms / replan_ms.max(1e-9),
            env.plan_cache.hits(),
        );

        // Incremental replanning after a localized link-cost drift: scoped
        // retirement + dirty-set replan against the warmed cache vs a full
        // (flush-style) replan of every query over a cold cache.
        let warm = optimize_all(
            env,
            &td,
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &ParallelConfig::default(),
        );
        let drift = dsq_bench::localized_drift(env);
        let mut full_env = env.clone();
        full_env.isolate_cache(true);
        assert!(full_env
            .network
            .set_link_cost(drift.a, drift.b, drift.new_cost));
        full_env.dm = drift.new_dm.clone();
        full_env.hierarchy.refresh_statistics(&full_env.dm);
        let t0 = std::time::Instant::now();
        let full = optimize_all(
            &full_env,
            &TopDown::new(&full_env),
            &wl.catalog,
            &wl.queries,
            &ReuseRegistry::new(),
            &ParallelConfig::default(),
        );
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut inc_env = env.clone(); // shares the warmed cache
        assert!(inc_env
            .network
            .set_link_cost(drift.a, drift.b, drift.new_cost));
        let dirty = drift.dirty;
        inc_env.dm = drift.new_dm;
        inc_env.hierarchy.refresh_statistics(&inc_env.dm);
        let t0 = std::time::Instant::now();
        let retired = inc_env.plan_cache.retire_metric(&env.dm, &inc_env.dm);
        let inc = dsq_core::optimize_dirty(
            &inc_env,
            &TopDown::new(&inc_env),
            &wl.catalog,
            &wl.queries,
            &warm.deployments,
            &dirty,
            &ReuseRegistry::new(),
            &ParallelConfig::default(),
        );
        let inc_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            inc.total_cost.to_bits(),
            full.total_cost.to_bits(),
            "incremental replanning diverged from the full replan"
        );
        println!(
            "  after a 40x link drift at n = {}: full replan {full_ms:.1} ms, incremental \
             {inc_ms:.1} ms ({:.1}x; {} dirty nodes, {retired} subplans retired)",
            env.network.len(),
            full_ms / inc_ms.max(1e-9),
            dirty.len(),
        );

        // fig02 writes the same summary file; the `fig09.` prefix keeps the
        // row namespaces disjoint so the key-wise merge preserves both.
        dsq_bench::emit_bench_json(
            "plan",
            &[
                ("fig09.serial", serial_ms),
                ("fig09.parallel_cold", parallel_ms),
                ("fig09.warm_replan", replan_ms),
                ("fig09.full_replan", full_ms),
                ("fig09.incremental", inc_ms),
            ],
            &obs_sink.snapshot(),
        );
    }

    // ROADMAP item 3 — an order of magnitude past the paper: wall time to
    // plan a Q-query batch on transit-stub networks up to ~10k nodes with
    // the bitset/arena engine. Rows land in BENCH_plan.json under
    // `fig09.scale.n<N>_q<Q>` (N = target node count), so CI can assert the
    // sweep ran and gate the paper-scale point against a committed baseline.
    {
        use dsq_core::{optimize_all, ParallelConfig};
        let points: &[(usize, usize)] = if quick_mode() {
            &[(256, 50), (512, 100)]
        } else {
            &[(1024, 100), (2560, 250), (5120, 500), (10240, 1000)]
        };
        let scale_sink = dsq_obs::Sink::new(dsq_obs::ClockMode::Monotonic);
        let _obs_scope = dsq_obs::scoped(scale_sink.clone());
        let mut rows: Vec<(String, f64)> = Vec::new();
        let (mut sx, mut env_ms_s, mut plan_ms_s, mut per_q_s) = (vec![], vec![], vec![], vec![]);
        for &(target, queries) in points {
            let net = TransitStubConfig::sized(target).generate(9).network;
            let n = net.len();
            let t0 = std::time::Instant::now();
            let env = Environment::build(net, 32);
            let env_ms = t0.elapsed().as_secs_f64() * 1e3;
            let wl = WorkloadGenerator::new(
                WorkloadConfig {
                    streams: 100,
                    queries,
                    joins_per_query: 2..=5,
                    ..WorkloadConfig::default()
                },
                33,
            )
            .generate(&env.network);
            let td = TopDown::new(&env);
            let t0 = std::time::Instant::now();
            let out = optimize_all(
                &env,
                &td,
                &wl.catalog,
                &wl.queries,
                &ReuseRegistry::new(),
                &ParallelConfig::default(),
            );
            let plan_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                out.planned(),
                wl.queries.len(),
                "every query must plan at n = {n}"
            );
            println!(
                "fig09 scale: n = {n:>5}, {queries:>4} queries: env build {env_ms:.0} ms, \
                 plan {plan_ms:.0} ms ({:.2} ms/query)",
                plan_ms / queries as f64
            );
            rows.push((format!("fig09.scale.n{target}_q{queries}"), plan_ms));
            // Environment construction (APSP + embedding + hierarchy) under
            // the *actual* generated node count, so the CSR/pivot/incremental
            // work shows up in the perf trajectory and CI can gate it.
            rows.push((format!("fig09.scale.env_ms.n{n}"), env_ms));
            sx.push(n as f64);
            env_ms_s.push(env_ms);
            plan_ms_s.push(plan_ms);
            per_q_s.push(plan_ms / queries as f64);
        }
        Table {
            name: "fig09_scale",
            caption: "batch planning wall time, an order of magnitude past the paper",
            x_label: "network size",
            x: sx,
            series: vec![
                ("env build (ms)".into(), env_ms_s),
                ("plan batch (ms)".into(), plan_ms_s),
                ("per query (ms)".into(), per_q_s),
            ],
        }
        .emit();
        let row_refs: Vec<(&str, f64)> = rows.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        dsq_bench::emit_bench_json("plan", &row_refs, &scale_sink.snapshot());
    }

    // Criterion: per-query optimization latency at the largest size.
    let q = &wl.queries[0];
    let mut group = c.benchmark_group("fig09_largest_network");
    group.sample_size(10);
    group.bench_function("top-down", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut s = SearchStats::new();
            TopDown::new(env)
                .optimize(&wl.catalog, q, &mut reg, &mut s)
                .unwrap()
                .cost
        })
    });
    group.bench_function("bottom-up", |b| {
        b.iter(|| {
            let mut reg = ReuseRegistry::new();
            let mut s = SearchStats::new();
            BottomUp::new(env)
                .optimize(&wl.catalog, q, &mut reg, &mut s)
                .unwrap()
                .cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
