//! Shared experiment drivers for the figure-regeneration benchmarks.
//!
//! Every bench target under `benches/` reproduces one figure of the paper's
//! evaluation (see EXPERIMENTS.md for the full index). The heavy lifting —
//! environments, averaged workloads, algorithm registry, CSV output — lives
//! here so each bench file reads like the experiment description.
//!
//! Scale control: benches run at the paper's parameters by default; set
//! `DSQ_BENCH_QUICK=1` to shrink workload counts for smoke runs.

use dsq_baselines::{InNetwork, InNetworkRunner, PlanThenDeploy, RandomPlace, Relaxation};
use dsq_core::{consolidate, BottomUp, Environment, Optimal, Optimizer, SearchStats, TopDown};
use dsq_net::TransitStubConfig;
use dsq_query::ReuseRegistry;
use dsq_workload::{Workload, WorkloadConfig, WorkloadGenerator};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

pub use dsq_obs::mini_json;

/// True when quick (smoke) mode is requested.
pub fn quick_mode() -> bool {
    std::env::var("DSQ_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Number of independent workloads to average over (the paper averages
/// over 10).
pub fn workload_repeats() -> usize {
    if quick_mode() {
        2
    } else {
        10
    }
}

/// The ~128-node evaluation environment of Sections 3.1–3.4.
pub fn paper_env(max_cs: usize, seed: u64) -> Environment {
    let net = TransitStubConfig::paper_128().generate(seed).network;
    Environment::build(net, max_cs)
}

/// The ~64-node environment of Figure 2.
pub fn small_env(max_cs: usize, seed: u64) -> Environment {
    let net = TransitStubConfig::paper_64().generate(seed).network;
    Environment::build(net, max_cs)
}

/// The Section 3 workload: 100 streams, 20 queries with 2–5 joins. The
/// reuse experiments (Figures 7–8) use the skewed draw; see EXPERIMENTS.md.
pub fn paper_workload(env: &Environment, seed: u64, skew: Option<f64>) -> Workload {
    WorkloadGenerator::new(
        WorkloadConfig {
            streams: 100,
            queries: if quick_mode() { 8 } else { 20 },
            joins_per_query: 2..=5,
            source_skew: skew,
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate(&env.network)
}

/// Deploy a workload incrementally and return the cumulative-cost curve.
pub fn run_batch(alg: &dyn Optimizer, wl: &Workload, reuse: bool) -> (Vec<f64>, SearchStats) {
    let mut registry = ReuseRegistry::new();
    let out = consolidate::deploy_all(alg, &wl.catalog, &wl.queries, &mut registry, reuse);
    (out.cumulative_cost, out.stats)
}

/// Element-wise mean of equal-length curves.
pub fn mean_curve(curves: &[Vec<f64>]) -> Vec<f64> {
    assert!(!curves.is_empty());
    let len = curves.iter().map(Vec::len).min().unwrap();
    (0..len)
        .map(|i| curves.iter().map(|c| c[i]).sum::<f64>() / curves.len() as f64)
        .collect()
}

/// A printable, CSV-exportable result table (x column + named series).
pub struct Table {
    /// Figure identifier, e.g. `fig05`.
    pub name: &'static str,
    /// Caption printed above the table.
    pub caption: &'static str,
    /// X-axis label.
    pub x_label: &'static str,
    /// X values.
    pub x: Vec<f64>,
    /// Named Y series.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Print the table and write `target/figures/<name>.csv`.
    pub fn emit(&self) {
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} — {} ===", self.name, self.caption);
        let _ = write!(out, "{:>16}", self.x_label);
        for (name, _) in &self.series {
            let _ = write!(out, " {name:>18}");
        }
        let _ = writeln!(out);
        for (i, x) in self.x.iter().enumerate() {
            let _ = write!(out, "{x:>16.1}");
            for (_, ys) in &self.series {
                match ys.get(i) {
                    Some(y) if y.abs() >= 1e6 => {
                        let _ = write!(out, " {:>18.3e}", y);
                    }
                    Some(y) => {
                        let _ = write!(out, " {y:>18.1}");
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        println!("{out}");

        let dir = figures_dir();
        let _ = fs::create_dir_all(&dir);
        let mut csv = String::new();
        let _ = write!(csv, "{}", self.x_label.replace(' ', "_"));
        for (name, _) in &self.series {
            let _ = write!(csv, ",{}", name.replace(' ', "_"));
        }
        let _ = writeln!(csv);
        for (i, x) in self.x.iter().enumerate() {
            let _ = write!(csv, "{x}");
            for (_, ys) in &self.series {
                match ys.get(i) {
                    Some(y) => {
                        let _ = write!(csv, ",{y}");
                    }
                    None => {
                        let _ = write!(csv, ",");
                    }
                }
            }
            let _ = writeln!(csv);
        }
        let path = dir.join(format!("{}.csv", self.name));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            println!("[written {}]", path.display());
        }
    }
}

/// Which hierarchical algorithm a shared experiment driver runs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Hierarchical {
    /// The Top-Down algorithm (Section 2.2).
    TopDown,
    /// The Bottom-Up algorithm (Section 2.3).
    BottomUp,
}

impl Hierarchical {
    /// Instantiate the optimizer over an environment.
    pub fn build<'a>(self, env: &'a Environment) -> Box<dyn Optimizer + 'a> {
        match self {
            Hierarchical::TopDown => Box::new(TopDown::new(env)),
            Hierarchical::BottomUp => Box::new(BottomUp::new(env)),
        }
    }
}

/// The cluster-size sweep of Figures 5 and 6: cumulative deployed cost of
/// the Section 3 workload for `max_cs ∈ {2, 4, 8, 16, 32, 64}`, averaged
/// over independent workloads (which run in parallel — each batch is
/// self-contained, so the Rayon fan-out is race-free by construction).
pub fn cluster_size_sweep(alg: Hierarchical, name: &'static str, caption: &'static str) -> Table {
    use rayon::prelude::*;
    let base = paper_env(64, 1);
    let sizes = [2usize, 4, 8, 16, 32, 64];
    let mut series = Vec::new();
    let mut x: Vec<f64> = Vec::new();
    for &max_cs in &sizes {
        let env = base.reclustered(max_cs);
        let curves: Vec<Vec<f64>> = (0..workload_repeats())
            .into_par_iter()
            .map(|w| {
                let wl = paper_workload(&env, 100 + w as u64, None);
                let opt = alg.build(&env);
                run_batch(opt.as_ref(), &wl, true).0
            })
            .collect();
        let mean = mean_curve(&curves);
        if x.is_empty() {
            x = (1..=mean.len()).map(|i| i as f64).collect();
        }
        series.push((format!("max_cs={max_cs}"), mean));
    }
    Table {
        name,
        caption,
        x_label: "queries",
        x,
        series,
    }
}

/// An environment + workload pair shared between a table computation and
/// the Criterion timing section of a bench.
pub struct BenchCase {
    /// Optimization environment.
    pub env: Environment,
    /// Workload deployed in the experiment.
    pub wl: Workload,
}

/// Directory figure CSVs are written to.
pub fn figures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
}

/// Workspace root, where `BENCH_*.json` summaries land (CI uploads them as
/// artifacts; `.gitignore` keeps them out of the tree).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Write `BENCH_<name>.json` at the workspace root: per-series wall times
/// plus the counters and histograms captured by an observability sink
/// during the run.
///
/// Several bench targets share one summary (fig02 and fig09 both report
/// planning wall times under `BENCH_plan.json`), so an existing file is
/// *merged into*, not clobbered: wall-time rows, counters, and histograms
/// union key-wise with the latest run winning on collisions. A file that
/// fails to parse (corrupt or hand-edited) is replaced outright with a
/// warning. The JSON is hand-assembled via [`mini_json`] / [`dsq_obs::json`]
/// so the bench harness stays dependency-free like the rest of the
/// workspace.
pub fn emit_bench_json(name: &str, wall_ms: &[(&str, f64)], snapshot: &dsq_obs::Snapshot) {
    use mini_json::Json;
    let fresh = Json::Obj(vec![
        ("bench".into(), Json::Str(name.to_string())),
        (
            "wall_ms".into(),
            Json::Obj(
                wall_ms
                    .iter()
                    .map(|(series, ms)| (series.to_string(), Json::Num(*ms)))
                    .collect(),
            ),
        ),
        (
            "observability".into(),
            mini_json::parse(&snapshot.to_json()).expect("Snapshot::to_json emits valid JSON"),
        ),
    ]);
    let path = workspace_root().join(format!("BENCH_{name}.json"));
    let merged = match fs::read_to_string(&path) {
        Ok(existing) => match mini_json::parse(existing.trim()) {
            Ok(prior) => mini_json::merge(&prior, &fresh),
            Err(e) => {
                eprintln!("replacing unparseable {}: {e}", path.display());
                fresh
            }
        },
        Err(_) => fresh,
    };
    let mut out = merged.to_string();
    out.push('\n');
    if let Err(e) = fs::write(&path, out) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("[written {}]", path.display());
    }
}

/// A localized metric drift for the incremental-replanning measurements:
/// a link whose 40x cost increase moves only a small set of shortest-path
/// distances, so the dirty set (`metric_dirty_nodes`) stays a fraction of
/// the network.
pub struct DriftScenario {
    /// Drifted link endpoints.
    pub a: dsq_net::NodeId,
    /// Drifted link endpoints.
    pub b: dsq_net::NodeId,
    /// The link's post-drift cost.
    pub new_cost: f64,
    /// Distance matrix rebuilt over the drifted network.
    pub new_dm: dsq_net::DistanceMatrix,
    /// Nodes with at least one changed shortest-path distance.
    pub dirty: std::collections::HashSet<dsq_net::NodeId>,
}

/// Search the network (stub side first) for a [`DriftScenario`]. Links
/// without path redundancy are poor candidates — drifting a degree-1
/// leaf's access link changes that leaf's distance to *every* node, which
/// dirties the whole network and turns incremental replanning into a full
/// replan. The search keeps the candidate with the smallest nonempty dirty
/// set, returning early once the set is under 1/8 of the network.
pub fn localized_drift(env: &Environment) -> DriftScenario {
    let n = env.network.len();
    let mut best: Option<DriftScenario> = None;
    let mut tried = 0usize;
    'outer: for i in (0..n).rev() {
        let u = dsq_net::NodeId(i as u32);
        for l in env.network.neighbors(u) {
            if tried >= 24 {
                break 'outer;
            }
            tried += 1;
            let mut net = env.network.clone();
            assert!(net.set_link_cost(u, l.to, l.cost * 40.0));
            let dm = dsq_net::DistanceMatrix::build(&net, dsq_net::Metric::Cost);
            let dirty = dsq_core::metric_dirty_nodes(&env.dm, &dm);
            if dirty.is_empty() {
                continue; // link carries no unique shortest path
            }
            if best.as_ref().is_none_or(|b| dirty.len() < b.dirty.len()) {
                best = Some(DriftScenario {
                    a: u,
                    b: l.to,
                    new_cost: l.cost * 40.0,
                    new_dm: dm,
                    dirty,
                });
            }
            if best.as_ref().unwrap().dirty.len() <= n / 8 {
                break 'outer;
            }
        }
    }
    best.expect("some link drift must change a distance")
}

/// Named algorithm set for comparison tables. Zones for In-network follow
/// the paper's 5-zone setup.
pub struct AlgorithmSet<'a> {
    /// In-network zone structure (owned here so the runner can borrow it).
    pub zones: InNetwork,
    env: &'a Environment,
}

impl<'a> AlgorithmSet<'a> {
    /// Build the comparison set over an environment.
    pub fn new(env: &'a Environment) -> Self {
        AlgorithmSet {
            zones: InNetwork::new(env, 5),
            env,
        }
    }

    /// `(name, optimizer)` pairs: both hierarchical algorithms, the exact
    /// optimizer and the three baselines.
    pub fn all(&'a self) -> Vec<(&'static str, Box<dyn Optimizer + 'a>)> {
        vec![
            ("top-down", Box::new(TopDown::new(self.env))),
            ("bottom-up", Box::new(BottomUp::new(self.env))),
            ("optimal", Box::new(Optimal::new(self.env))),
            ("plan-then-deploy", Box::new(PlanThenDeploy::new(self.env))),
            ("relaxation", Box::new(Relaxation::new(self.env))),
            (
                "in-network",
                Box::new(InNetworkRunner {
                    zones: &self.zones,
                    env: self.env,
                }),
            ),
            ("random", Box::new(RandomPlace::new(self.env, 0xBAD))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_print_and_write() {
        let t = Table {
            name: "test_table",
            caption: "self check",
            x_label: "x",
            x: vec![1.0, 2.0],
            series: vec![("a".into(), vec![10.0, 20.0]), ("b".into(), vec![1e9, 2e9])],
        };
        t.emit();
        let path = figures_dir().join("test_table.csv");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("x,a,b"));
    }

    #[test]
    fn bench_json_is_valid_and_complete() {
        let sink = dsq_obs::Sink::new(dsq_obs::ClockMode::Virtual);
        {
            let _scope = dsq_obs::scoped(sink.clone());
            dsq_obs::counter("selftest.counter", 3);
            dsq_obs::observe("selftest.hist", 1.5);
        }
        emit_bench_json(
            "selftest",
            &[("series-a", 12.5), ("series-b", 0.25)],
            &sink.snapshot(),
        );
        let path = workspace_root().join("BENCH_selftest.json");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"bench\":\"selftest\""));
        assert!(content.contains("\"series-a\":12.5"));
        assert!(content.contains("\"selftest.counter\":3"));
        assert!(content.contains("\"selftest.hist\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_json_merges_rows_across_runs() {
        let path = workspace_root().join("BENCH_mergetest.json");
        let _ = std::fs::remove_file(&path);
        // First writer (fig02's role): two rows + a counter.
        let sink1 = dsq_obs::Sink::new(dsq_obs::ClockMode::Virtual);
        {
            let _scope = dsq_obs::scoped(sink1.clone());
            dsq_obs::counter("mergetest.first", 1);
        }
        emit_bench_json(
            "mergetest",
            &[("serial", 10.0), ("shared", 1.0)],
            &sink1.snapshot(),
        );
        // Second writer (fig09's role): disjoint row, one colliding row,
        // its own counter. Nothing from the first run may be lost.
        let sink2 = dsq_obs::Sink::new(dsq_obs::ClockMode::Virtual);
        {
            let _scope = dsq_obs::scoped(sink2.clone());
            dsq_obs::counter("mergetest.second", 2);
        }
        emit_bench_json(
            "mergetest",
            &[("scaling", 20.0), ("shared", 2.0)],
            &sink2.snapshot(),
        );
        let merged = mini_json::parse(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
        let wall = merged.get("wall_ms").unwrap();
        assert_eq!(wall.get("serial"), Some(&mini_json::Json::Num(10.0)));
        assert_eq!(wall.get("scaling"), Some(&mini_json::Json::Num(20.0)));
        assert_eq!(
            wall.get("shared"),
            Some(&mini_json::Json::Num(2.0)),
            "latest run wins on collisions"
        );
        let counters = merged
            .get("observability")
            .and_then(|o| o.get("counters"))
            .unwrap();
        assert_eq!(
            counters.get("mergetest.first"),
            Some(&mini_json::Json::Num(1.0)),
            "first run's counters must survive the second write"
        );
        assert_eq!(
            counters.get("mergetest.second"),
            Some(&mini_json::Json::Num(2.0))
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn batch_runner_smoke() {
        let env = small_env(16, 1);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 10,
                queries: 3,
                joins_per_query: 2..=2,
                ..WorkloadConfig::default()
            },
            1,
        )
        .generate(&env.network);
        let (curve, stats) = run_batch(&TopDown::new(&env), &wl, true);
        assert_eq!(curve.len(), 3);
        assert!(stats.plans_considered > 0);
        let m = mean_curve(&[curve.clone(), curve]);
        assert_eq!(m.len(), 3);
    }
}
