//! Environment-construction probe: per-phase wall time (APSP, embedding,
//! hierarchy) at a given network scale. Usage: `envprobe [target_nodes]`;
//! pass `env` as a second argument to time only the fused
//! `Environment::build` (what the fig09 scale sweep measures).
use dsq_core::Environment;
use dsq_hierarchy::{Hierarchy, HierarchyConfig};
use dsq_net::{CostSpace, DistanceMatrix, Metric, NodeId, TransitStubConfig};

fn main() {
    let target: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2560);
    let net = TransitStubConfig::sized(target).generate(9).network;
    let n = net.len();
    println!("target {target} -> n = {n}, links = {}", net.link_count());

    if std::env::args().nth(2).as_deref() == Some("env") {
        let t0 = std::time::Instant::now();
        let env = Environment::build(net, 32);
        println!(
            "env total {:8.1} ms (height {})",
            t0.elapsed().as_secs_f64() * 1e3,
            env.hierarchy.height()
        );
        return;
    }

    let t0 = std::time::Instant::now();
    let dm = DistanceMatrix::build(&net, Metric::Cost);
    println!("apsp      {:8.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    let config = HierarchyConfig::new(32);
    let seed = config.seed ^ n as u64;
    let t0 = std::time::Instant::now();
    let space = CostSpace::embed(&dm, seed, 40);
    println!("embed     {:8.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    let active: Vec<NodeId> = net.nodes().collect();
    let t0 = std::time::Instant::now();
    let hierarchy = Hierarchy::build(&active, &dm, &space, config);
    println!(
        "hierarchy {:8.1} ms (height {})",
        t0.elapsed().as_secs_f64() * 1e3,
        hierarchy.height()
    );

    let t0 = std::time::Instant::now();
    let env = Environment::build(net, 32);
    println!(
        "env total {:8.1} ms (height {})",
        t0.elapsed().as_secs_f64() * 1e3,
        env.hierarchy.height()
    );
}
