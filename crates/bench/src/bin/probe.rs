//! Calibration probe: reuse savings vs source skew.
use dsq_core::{consolidate, BottomUp, Environment, Optimal, TopDown};
use dsq_net::TransitStubConfig;
use dsq_query::ReuseRegistry;
use dsq_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let net = TransitStubConfig::paper_128().generate(1).network;
    let env = Environment::build(net, 32);
    for skew in [1.0f64, 1.3, 1.6] {
        for streams in [100usize, 50] {
            let (mut tw, mut to, mut bw, mut bo, mut ow) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for seed in 0..5u64 {
                let wl = WorkloadGenerator::new(
                    WorkloadConfig {
                        streams,
                        queries: 20,
                        joins_per_query: 2..=5,
                        source_skew: Some(skew),
                        ..Default::default()
                    },
                    300 + seed,
                )
                .generate(&env.network);
                let td = TopDown::new(&env);
                let bu = BottomUp::new(&env);
                tw += consolidate::deploy_all(
                    &td,
                    &wl.catalog,
                    &wl.queries,
                    &mut ReuseRegistry::new(),
                    true,
                )
                .total_cost();
                to += consolidate::deploy_all(
                    &td,
                    &wl.catalog,
                    &wl.queries,
                    &mut ReuseRegistry::new(),
                    false,
                )
                .total_cost();
                bw += consolidate::deploy_all(
                    &bu,
                    &wl.catalog,
                    &wl.queries,
                    &mut ReuseRegistry::new(),
                    true,
                )
                .total_cost();
                bo += consolidate::deploy_all(
                    &bu,
                    &wl.catalog,
                    &wl.queries,
                    &mut ReuseRegistry::new(),
                    false,
                )
                .total_cost();
                ow += consolidate::deploy_all(
                    &Optimal::new(&env),
                    &wl.catalog,
                    &wl.queries,
                    &mut ReuseRegistry::new(),
                    true,
                )
                .total_cost();
            }
            println!("skew {skew} streams {streams}: td reuse saves {:.1}% (paper 27), bu saves {:.1}% (paper 30); td+r vs opt {:+.1}% (10), bu+r vs opt {:+.1}% (34)",
                (1.0-tw/to)*100.0, (1.0-bw/bo)*100.0, (tw/ow-1.0)*100.0, (bw/ow-1.0)*100.0);
        }
    }
}
