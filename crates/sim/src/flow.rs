//! Flow-level evaluation of deployments.
//!
//! Every deployed edge's data rate is routed along the network's
//! cheapest-cost path and charged to each link it crosses — exactly the
//! paper's cost definition ("the total data transferred along each link
//! times the link cost"), but with per-link visibility: utilization maps,
//! per-node processing load, and the most-loaded links.

use dsq_net::{DistanceMatrix, Metric, Network, NodeId, RouteTable};
use dsq_query::Deployment;
use std::collections::HashMap;

/// Per-link and per-node traffic report.
#[derive(Clone, Debug, Default)]
pub struct FlowReport {
    /// Total communication cost per unit time (Σ link flow × link cost).
    pub total_cost: f64,
    /// Data rate crossing each undirected link, keyed by `(min, max)` node.
    pub link_flow: HashMap<(NodeId, NodeId), f64>,
    /// Data rate entering each node for processing (join input rates).
    pub node_load: HashMap<NodeId, f64>,
}

/// Aggregate statistics of per-link traffic.
#[derive(Clone, Copy, Debug, Default)]
pub struct UtilizationSummary {
    /// Mean flow over *all* network links (idle links count as zero).
    pub mean_flow: f64,
    /// Largest per-link flow.
    pub max_flow: f64,
    /// 95th-percentile per-link flow.
    pub p95_flow: f64,
    /// Fraction of links carrying any traffic.
    pub active_fraction: f64,
    /// Jain fairness index over *all* network links, idle ones counted as
    /// zero flow (1.0 = perfectly even, `1/total_links` = one link carries
    /// everything; vacuously 1.0 when nothing flows at all).
    pub jain_fairness: f64,
}

impl FlowReport {
    /// The `k` most-loaded links, descending.
    pub fn hottest_links(&self, k: usize) -> Vec<((NodeId, NodeId), f64)> {
        let mut v: Vec<_> = self.link_flow.iter().map(|(l, f)| (*l, *f)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Summarize link utilization against the network's full link set.
    pub fn utilization(&self, network: &Network) -> UtilizationSummary {
        let total_links = network.link_count();
        if total_links == 0 {
            return UtilizationSummary::default();
        }
        let mut flows: Vec<f64> = self.link_flow.values().copied().collect();
        flows.sort_by(f64::total_cmp);
        let active = flows.len();
        let sum: f64 = flows.iter().sum();
        let sum_sq: f64 = flows.iter().map(|f| f * f).sum();
        let p95 = if flows.is_empty() {
            0.0
        } else {
            // Percentile over all links, idle ones included as zeros.
            let idx95 = (total_links as f64 * 0.95).ceil() as usize;
            let idle = total_links - active;
            if idx95 <= idle {
                0.0
            } else {
                flows[(idx95 - idle - 1).min(active - 1)]
            }
        };
        UtilizationSummary {
            mean_flow: sum / total_links as f64,
            max_flow: flows.last().copied().unwrap_or(0.0),
            p95_flow: p95,
            active_fraction: active as f64 / total_links as f64,
            jain_fairness: if sum_sq == 0.0 {
                // No traffic anywhere: fairness is vacuous.
                1.0
            } else {
                // Idle links enter the index as zeros, so a single hot link
                // in an n-link network scores 1/n, matching the field docs.
                sum * sum / (total_links as f64 * sum_sq)
            },
        }
    }
}

/// Routes deployment edges over the physical network.
#[derive(Debug)]
pub struct FlowSimulator<'a> {
    network: &'a Network,
    routes: RouteTable,
    dm: DistanceMatrix,
}

impl<'a> FlowSimulator<'a> {
    /// Build routing state for a network (cost metric). One fused APSP pass
    /// produces both the distance matrix and the route table.
    pub fn new(network: &'a Network) -> Self {
        let (dm, routes) = DistanceMatrix::build_with_routes(network, Metric::Cost);
        FlowSimulator {
            network,
            routes,
            dm,
        }
    }

    /// Evaluate a set of standing deployments.
    pub fn evaluate(&self, deployments: &[&Deployment]) -> FlowReport {
        let mut report = FlowReport::default();
        for d in deployments {
            for edge in &d.edges {
                // Processing load: the consumer node ingests the edge rate.
                *report.node_load.entry(edge.to).or_insert(0.0) += edge.rate;
                if edge.from == edge.to {
                    continue;
                }
                let route = self
                    .routes
                    .route(edge.from, edge.to)
                    .expect("deployments only reference connected nodes");
                for hop in route.windows(2) {
                    let (a, b) = (hop[0], hop[1]);
                    let link = self
                        .network
                        .find_link(a, b)
                        .expect("route follows existing links");
                    let key = (a.min(b), a.max(b));
                    *report.link_flow.entry(key).or_insert(0.0) += edge.rate;
                    report.total_cost += edge.rate * link.cost;
                }
            }
        }
        report
    }

    /// Shortest-path cost distances (for re-costing deployments).
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{Environment, Optimizer, SearchStats, TopDown};
    use dsq_net::TransitStubConfig;
    use dsq_query::ReuseRegistry;
    use dsq_workload::{WorkloadConfig, WorkloadGenerator};

    fn deployments() -> (Environment, Vec<Deployment>) {
        let net = TransitStubConfig::paper_64().generate(11).network;
        let env = Environment::build(net, 16);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 12,
                queries: 6,
                joins_per_query: 2..=3,
                ..WorkloadConfig::default()
            },
            41,
        )
        .generate(&env.network);
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let td = TopDown::new(&env);
        let ds: Vec<Deployment> = wl
            .queries
            .iter()
            .map(|q| td.optimize(&wl.catalog, q, &mut reg, &mut stats).unwrap())
            .collect();
        (env, ds)
    }

    #[test]
    fn flow_cost_matches_analytic_cost() {
        let (env, ds) = deployments();
        let sim = FlowSimulator::new(&env.network);
        let refs: Vec<&Deployment> = ds.iter().collect();
        let report = sim.evaluate(&refs);
        let analytic: f64 = ds.iter().map(|d| d.cost).sum();
        assert!(
            (report.total_cost - analytic).abs() <= 1e-6 * analytic.max(1.0),
            "flow {} vs analytic {}",
            report.total_cost,
            analytic
        );
    }

    #[test]
    fn link_flows_and_loads_are_positive_and_bounded() {
        let (env, ds) = deployments();
        let sim = FlowSimulator::new(&env.network);
        let refs: Vec<&Deployment> = ds.iter().collect();
        let report = sim.evaluate(&refs);
        assert!(!report.link_flow.is_empty());
        for (&(a, b), &f) in &report.link_flow {
            assert!(f > 0.0);
            assert!(env.network.find_link(a, b).is_some());
        }
        let hottest = report.hottest_links(3);
        assert!(hottest.len() <= 3);
        if hottest.len() == 2 {
            assert!(hottest[0].1 >= hottest[1].1);
        }
    }

    #[test]
    fn utilization_summary_is_consistent() {
        let (env, ds) = deployments();
        let sim = FlowSimulator::new(&env.network);
        let refs: Vec<&Deployment> = ds.iter().collect();
        let report = sim.evaluate(&refs);
        let u = report.utilization(&env.network);
        assert!(u.max_flow >= u.p95_flow && u.p95_flow >= 0.0);
        assert!(u.mean_flow > 0.0 && u.mean_flow <= u.max_flow);
        assert!(u.active_fraction > 0.0 && u.active_fraction <= 1.0);
        assert!(u.jain_fairness > 0.0 && u.jain_fairness <= 1.0 + 1e-12);
        // Mean over all links equals total flow / total links.
        let total: f64 = report.link_flow.values().sum();
        assert!((u.mean_flow - total / env.network.link_count() as f64).abs() < 1e-9);
    }

    #[test]
    fn single_hot_link_has_minimal_fairness() {
        let (env, _) = deployments();
        let sim = FlowSimulator::new(&env.network);
        // One two-node deployment: a single stream crossing the network.
        let mut catalog = dsq_query::Catalog::new();
        let stubs = env.network.stub_nodes();
        let s = catalog.add_stream("S", 9.0, stubs[0], dsq_query::Schema::default());
        let q = dsq_query::Query::join(dsq_query::QueryId(0), [s], stubs[1]);
        let tree = dsq_query::JoinTree::base(s);
        let plan = dsq_query::FlatPlan::from_tree(&tree, &q, &catalog);
        let d = Deployment::evaluate(q.id, plan, vec![stubs[0]], stubs[1], sim.distances());
        let report = sim.evaluate(&[&d]);
        let u = report.utilization(&env.network);
        // Every active link carries the same 9.0 units, and idle links
        // count as zeros, so the index collapses to the active fraction —
        // and the fraction itself is tiny for a single path.
        assert!((u.jain_fairness - u.active_fraction).abs() < 1e-9);
        assert!(u.active_fraction < 0.2);
    }

    /// Two-node network: the one link carries everything, and since there
    /// are no idle links the index is exactly 1.0.
    #[test]
    fn single_link_network_is_perfectly_fair() {
        use dsq_net::{LinkKind, Network, NodeKind};
        let mut net = Network::new(0);
        let a = net.add_node(NodeKind::Stub);
        let b = net.add_node(NodeKind::Stub);
        net.add_link(a, b, 1.0, 1.0, LinkKind::Stub);
        let sim = FlowSimulator::new(&net);
        let mut catalog = dsq_query::Catalog::new();
        let s = catalog.add_stream("S", 4.0, a, dsq_query::Schema::default());
        let q = dsq_query::Query::join(dsq_query::QueryId(0), [s], b);
        let tree = dsq_query::JoinTree::base(s);
        let plan = dsq_query::FlatPlan::from_tree(&tree, &q, &catalog);
        let d = Deployment::evaluate(q.id, plan, vec![a], b, sim.distances());
        let u = sim.evaluate(&[&d]).utilization(&net);
        assert!((u.jain_fairness - 1.0).abs() < 1e-12);
        assert!((u.active_fraction - 1.0).abs() < 1e-12);
        assert!((u.max_flow - 4.0).abs() < 1e-12);
        assert!((u.p95_flow - 4.0).abs() < 1e-12);
    }

    /// No deployments at all: every link is idle. Fairness is vacuously
    /// 1.0 (not a divide-by-zero, not 0.0) and all flow stats are zero.
    #[test]
    fn all_idle_network_reports_vacuous_fairness() {
        let (env, _) = deployments();
        let sim = FlowSimulator::new(&env.network);
        let u = sim.evaluate(&[]).utilization(&env.network);
        assert_eq!(u.jain_fairness, 1.0);
        assert_eq!(u.active_fraction, 0.0);
        assert_eq!(u.mean_flow, 0.0);
        assert_eq!(u.max_flow, 0.0);
        assert_eq!(u.p95_flow, 0.0);
    }

    /// The p95 index clamp: with every link active, the 95th percentile
    /// must select an in-bounds element even when `ceil` lands on the
    /// last slot, and it can never exceed the maximum.
    #[test]
    fn p95_index_is_clamped_when_all_links_are_active() {
        use dsq_net::{LinkKind, Network, NodeKind};
        // A 3-node path; route both directions so both links are active.
        let mut net = Network::new(0);
        let a = net.add_node(NodeKind::Stub);
        let b = net.add_node(NodeKind::Stub);
        let c = net.add_node(NodeKind::Stub);
        net.add_link(a, b, 1.0, 1.0, LinkKind::Stub);
        net.add_link(b, c, 1.0, 1.0, LinkKind::Stub);
        let sim = FlowSimulator::new(&net);
        let mut catalog = dsq_query::Catalog::new();
        let s = catalog.add_stream("S", 2.0, a, dsq_query::Schema::default());
        let q = dsq_query::Query::join(dsq_query::QueryId(0), [s], c);
        let tree = dsq_query::JoinTree::base(s);
        let plan = dsq_query::FlatPlan::from_tree(&tree, &q, &catalog);
        let d = Deployment::evaluate(q.id, plan, vec![a], c, sim.distances());
        let u = sim.evaluate(&[&d]).utilization(&net);
        // ceil(2 * 0.95) = 2, idle = 0 → index 1 = last element.
        assert!((u.p95_flow - 2.0).abs() < 1e-12);
        assert!(u.p95_flow <= u.max_flow);
        assert!((u.jain_fairness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn co_located_edges_cost_nothing() {
        let (env, _) = deployments();
        let sim = FlowSimulator::new(&env.network);
        // A deployment with everything at one node has zero flow cost.
        let mut catalog = dsq_query::Catalog::new();
        let node = env.network.nodes().next().unwrap();
        let a = catalog.add_stream("A", 5.0, node, dsq_query::Schema::default());
        let b = catalog.add_stream("B", 5.0, node, dsq_query::Schema::default());
        let q = dsq_query::Query::join(dsq_query::QueryId(0), [a, b], node);
        let tree =
            dsq_query::JoinTree::join(dsq_query::JoinTree::base(a), dsq_query::JoinTree::base(b));
        let plan = dsq_query::FlatPlan::from_tree(&tree, &q, &catalog);
        let d = Deployment::evaluate(q.id, plan, vec![node, node, node], node, sim.distances());
        let report = sim.evaluate(&[&d]);
        assert_eq!(report.total_cost, 0.0);
        assert!(
            report.node_load[&node] > 0.0,
            "processing load still counted"
        );
    }
}
