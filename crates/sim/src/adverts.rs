//! Advertisement-protocol overhead accounting.
//!
//! "Operator reuse was implemented through stream-advertisements. The
//! communication cost of advertisements was negligible compared to the data
//! streams themselves" (Section 3.2) — because "the advertisements are
//! one-time messages exchanged only at the initial time of operator
//! instantiation and deployment" while data streams flow continuously.
//!
//! This module makes that claim measurable: each advertisement climbs the
//! hierarchy once (host's leaf coordinator → … → top), so a batch's total
//! advertisement traffic is a fixed, one-time volume, while the deployed
//! streams transfer data every time unit.

use dsq_core::Environment;
use dsq_net::{DistanceMatrix, Metric};
use dsq_query::{Deployment, ReuseRegistry};

/// Size of one advertisement message in data units (stream id, covered
/// set, host, rate — tiny next to tuple traffic).
pub const ADVERT_MESSAGE_UNITS: f64 = 1.0;

/// One-time advertisement traffic vs. continuous stream traffic.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdvertTraffic {
    /// Advertisement messages exchanged (one per derived stream per
    /// hierarchy level climbed).
    pub messages: u64,
    /// Total one-time cost of those messages (units × path cost climbed).
    pub one_time_cost: f64,
    /// Continuous data-stream cost per unit time of the deployments.
    pub stream_cost_per_time: f64,
}

impl AdvertTraffic {
    /// Advertisement cost as a fraction of the stream data transferred over
    /// `horizon` time units — the number the paper calls negligible.
    pub fn overhead_fraction(&self, horizon: f64) -> f64 {
        let stream_total = self.stream_cost_per_time * horizon;
        if stream_total > 0.0 {
            self.one_time_cost / stream_total
        } else if self.one_time_cost > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// Account the advertisement traffic of everything in `registry` against
/// the continuous cost of `deployments`.
pub fn advertisement_traffic(
    env: &Environment,
    registry: &ReuseRegistry,
    deployments: &[&Deployment],
) -> AdvertTraffic {
    let h = &env.hierarchy;
    // Advertisements ride the delay/cost paths between the coordinator
    // chain; cost them on the cost metric for comparability with streams.
    let dm: &DistanceMatrix = &env.dm;
    debug_assert_eq!(dm.metric(), Metric::Cost);

    let mut messages = 0u64;
    let mut one_time = 0.0;
    // Only live adverts have a running operator behind them; retired and
    // evicted slots generate no advertisement traffic.
    for d in registry.live_deriveds() {
        // The host publishes to its leaf coordinator; each coordinator
        // forwards to the next level's coordinator.
        let mut at = d.host;
        for level in 1..=h.height() {
            let coord = h.cluster(h.ancestor(d.host, level)).coordinator;
            messages += 1;
            one_time += ADVERT_MESSAGE_UNITS * dm.get(at, coord);
            at = coord;
        }
    }
    AdvertTraffic {
        messages,
        one_time_cost: one_time,
        stream_cost_per_time: deployments.iter().map(|d| d.cost).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{consolidate, Optimizer, TopDown};
    use dsq_net::TransitStubConfig;
    use dsq_workload::{WorkloadConfig, WorkloadGenerator};

    #[test]
    fn advertisements_are_negligible_next_to_streams() {
        let net = TransitStubConfig::paper_128().generate(3).network;
        let env = Environment::build(net, 32);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 100,
                queries: 20,
                joins_per_query: 2..=5,
                source_skew: Some(1.0),
                ..WorkloadConfig::default()
            },
            13,
        )
        .generate(&env.network);
        let mut registry = ReuseRegistry::new();
        let td = TopDown::new(&env);
        let out = consolidate::deploy_all(&td, &wl.catalog, &wl.queries, &mut registry, true);
        let ds: Vec<&dsq_query::Deployment> = out.deployments.iter().flatten().collect();
        let traffic = advertisement_traffic(&env, &registry, &ds);
        assert!(traffic.messages > 0, "operators were advertised");
        assert!(traffic.stream_cost_per_time > 0.0);
        // Over any realistic lifetime (say 100 time units) the overhead is
        // a fraction of a percent — the paper's "negligible".
        let fraction = traffic.overhead_fraction(100.0);
        assert!(
            fraction < 0.01,
            "advert overhead {fraction} should be ≪ 1% of stream traffic"
        );
    }

    #[test]
    fn message_count_is_deriveds_times_height() {
        let net = TransitStubConfig::paper_64().generate(2).network;
        let env = Environment::build(net, 8);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 12,
                queries: 4,
                joins_per_query: 2..=2,
                ..WorkloadConfig::default()
            },
            5,
        )
        .generate(&env.network);
        let mut registry = ReuseRegistry::new();
        let td = TopDown::new(&env);
        for q in &wl.queries {
            let mut stats = dsq_core::SearchStats::new();
            let d = td
                .optimize(&wl.catalog, q, &mut registry, &mut stats)
                .unwrap();
            registry.register_deployment(q, &d);
        }
        let traffic = advertisement_traffic(&env, &registry, &[]);
        assert_eq!(
            traffic.messages,
            (registry.live_len() * env.hierarchy.height()) as u64
        );
        assert_eq!(traffic.overhead_fraction(10.0), f64::INFINITY);
        let empty = advertisement_traffic(&env, &ReuseRegistry::new(), &[]);
        assert_eq!(empty.overhead_fraction(10.0), 0.0);
    }

    #[test]
    fn retired_adverts_generate_no_traffic() {
        let net = TransitStubConfig::paper_64().generate(2).network;
        let env = Environment::build(net, 8);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 12,
                queries: 4,
                joins_per_query: 2..=2,
                ..WorkloadConfig::default()
            },
            5,
        )
        .generate(&env.network);
        let mut registry = ReuseRegistry::new();
        let td = TopDown::new(&env);
        for q in &wl.queries {
            let mut stats = dsq_core::SearchStats::new();
            let d = td
                .optimize(&wl.catalog, q, &mut registry, &mut stats)
                .unwrap();
            registry.register_deployment(q, &d);
        }
        let before = advertisement_traffic(&env, &registry, &[]);
        registry.retire_query(wl.queries[0].id);
        let after = advertisement_traffic(&env, &registry, &[]);
        assert!(
            after.messages < before.messages,
            "retiring a query's adverts must shrink the advertised set"
        );
        assert_eq!(
            after.messages,
            (registry.live_len() * env.hierarchy.height()) as u64
        );
    }
}
