//! Online statistics monitoring.
//!
//! "our calculation of the performance metric takes into account the
//! estimated selectivities of the query operators, measured online or using
//! gathered statistics over the stream sources … perhaps gathered from
//! historical observations of the stream-data or measured by special
//! purpose nodes deployed specifically to gather data statistics"
//! (Sections 1.1 and 2).
//!
//! [`RateEstimator`] turns raw arrival timestamps into a smoothed rate
//! (bucketed counts + EWMA); [`SelectivityEstimator`] turns join
//! probe/match counters into a selectivity estimate. [`StatsMonitor`]
//! aggregates per-stream estimators and writes the estimates back into a
//! [`Catalog`], closing the monitoring → re-optimization loop the
//! middleware runs on.

use dsq_query::{Catalog, StreamId};

/// Bucketed-EWMA arrival-rate estimator.
#[derive(Clone, Debug)]
pub struct RateEstimator {
    bucket_len: f64,
    alpha: f64,
    bucket_start: f64,
    bucket_count: u64,
    ewma: Option<f64>,
}

impl RateEstimator {
    /// Estimator with bucket length (time units) and EWMA smoothing factor
    /// `alpha` (weight of the newest bucket).
    pub fn new(bucket_len: f64, alpha: f64) -> Self {
        assert!(bucket_len > 0.0);
        assert!((0.0..=1.0).contains(&alpha));
        RateEstimator {
            bucket_len,
            alpha,
            bucket_start: 0.0,
            bucket_count: 0,
            ewma: None,
        }
    }

    /// Record one arrival at time `t` (non-decreasing).
    pub fn observe(&mut self, t: f64) {
        while t >= self.bucket_start + self.bucket_len {
            self.roll();
        }
        self.bucket_count += 1;
    }

    /// Advance time to `t` without an arrival (flushes empty buckets).
    pub fn advance_to(&mut self, t: f64) {
        while t >= self.bucket_start + self.bucket_len {
            self.roll();
        }
    }

    fn roll(&mut self) {
        let rate = self.bucket_count as f64 / self.bucket_len;
        self.ewma = Some(match self.ewma {
            Some(prev) => self.alpha * rate + (1.0 - self.alpha) * prev,
            None => rate,
        });
        self.bucket_start += self.bucket_len;
        self.bucket_count = 0;
    }

    /// Current rate estimate (`None` before the first full bucket).
    pub fn rate(&self) -> Option<f64> {
        self.ewma
    }
}

/// Join-selectivity estimator: matches per probe, normalized by the
/// opposite window's population.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelectivityEstimator {
    pairs_tested: u64,
    matches: u64,
}

impl SelectivityEstimator {
    /// Record one probe against a window of `window_size` tuples that
    /// produced `matched` matches.
    pub fn observe_probe(&mut self, window_size: usize, matched: usize) {
        self.pairs_tested += window_size as u64;
        self.matches += matched as u64;
    }

    /// Current selectivity estimate (`None` before any pair was tested).
    pub fn selectivity(&self) -> Option<f64> {
        if self.pairs_tested == 0 {
            None
        } else {
            Some(self.matches as f64 / self.pairs_tested as f64)
        }
    }
}

/// Per-stream monitoring front end that publishes estimates into a catalog.
#[derive(Clone, Debug)]
pub struct StatsMonitor {
    rates: Vec<RateEstimator>,
}

impl StatsMonitor {
    /// Monitor all `streams` with the given bucket/EWMA parameters.
    pub fn new(streams: usize, bucket_len: f64, alpha: f64) -> Self {
        StatsMonitor {
            rates: vec![RateEstimator::new(bucket_len, alpha); streams],
        }
    }

    /// Record an arrival on a stream.
    pub fn observe(&mut self, stream: StreamId, t: f64) {
        self.rates[stream.index()].observe(t);
    }

    /// Advance all estimators to time `t`.
    pub fn advance_to(&mut self, t: f64) {
        for r in &mut self.rates {
            r.advance_to(t);
        }
    }

    /// Current estimate for one stream.
    pub fn rate(&self, stream: StreamId) -> Option<f64> {
        self.rates[stream.index()].rate()
    }

    /// Write every available estimate into the catalog (the step that
    /// precedes re-optimization in the middleware loop). Returns how many
    /// streams were updated.
    pub fn publish(&self, catalog: &mut Catalog) -> usize {
        let mut updated = 0;
        for (i, r) in self.rates.iter().enumerate() {
            if let Some(rate) = r.rate() {
                if rate > 0.0 {
                    catalog.set_rate(StreamId(i as u32), rate);
                    updated += 1;
                }
            }
        }
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::NodeId;
    use dsq_query::Schema;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn poisson_arrivals(rate: f64, duration: f64, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
            t += -u.ln() / rate;
            if t > duration {
                break;
            }
            out.push(t);
        }
        out
    }

    #[test]
    fn rate_estimator_converges_to_poisson_rate() {
        for (rate, seed) in [(20.0, 1u64), (5.0, 2), (80.0, 3)] {
            let mut est = RateEstimator::new(2.0, 0.1);
            for t in poisson_arrivals(rate, 400.0, seed) {
                est.observe(t);
            }
            est.advance_to(400.0);
            let got = est.rate().unwrap();
            let rel = (got - rate).abs() / rate;
            assert!(rel < 0.2, "rate {rate}: estimated {got} (rel {rel})");
        }
    }

    #[test]
    fn rate_estimator_tracks_a_step_change() {
        let mut est = RateEstimator::new(1.0, 0.3);
        for t in poisson_arrivals(10.0, 100.0, 5) {
            est.observe(t);
        }
        est.advance_to(100.0);
        let before = est.rate().unwrap();
        // Rate jumps 5×.
        for t in poisson_arrivals(50.0, 100.0, 6) {
            est.observe(100.0 + t);
        }
        est.advance_to(200.0);
        let after = est.rate().unwrap();
        assert!(before < 15.0, "before: {before}");
        assert!(after > 35.0, "after: {after}");
    }

    #[test]
    fn idle_periods_decay_the_estimate() {
        let mut est = RateEstimator::new(1.0, 0.5);
        for t in poisson_arrivals(40.0, 50.0, 7) {
            est.observe(t);
        }
        est.advance_to(50.0);
        let busy = est.rate().unwrap();
        est.advance_to(100.0); // silence
        let quiet = est.rate().unwrap();
        assert!(quiet < busy * 0.01, "silence must decay: {busy} -> {quiet}");
    }

    #[test]
    fn selectivity_estimator_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sigma = 0.03;
        let mut est = SelectivityEstimator::default();
        for _ in 0..5000 {
            let window = rng.gen_range(5..40usize);
            let matched = (0..window).filter(|_| rng.gen_bool(sigma)).count();
            est.observe_probe(window, matched);
        }
        let got = est.selectivity().unwrap();
        assert!((got - sigma).abs() / sigma < 0.15, "estimated {got}");
        assert!(SelectivityEstimator::default().selectivity().is_none());
    }

    #[test]
    fn monitor_publishes_into_the_catalog() {
        let mut catalog = Catalog::new();
        for i in 0..3 {
            catalog.add_stream(format!("S{i}"), 1.0, NodeId(0), Schema::default());
        }
        let mut mon = StatsMonitor::new(3, 2.0, 0.3);
        for t in poisson_arrivals(30.0, 200.0, 13) {
            mon.observe(StreamId(0), t);
        }
        for t in poisson_arrivals(8.0, 200.0, 14) {
            mon.observe(StreamId(1), t);
        }
        mon.advance_to(200.0);
        let updated = mon.publish(&mut catalog);
        assert_eq!(updated, 2, "stream 2 saw no data");
        let r0 = catalog.stream(StreamId(0)).rate;
        let r1 = catalog.stream(StreamId(1)).rate;
        // The decay-weighted estimator is unbiased but high-variance on the
        // slow stream (~8 arrivals per time constant), so the tolerance is
        // wider than plain 1/sqrt(n) would suggest.
        assert!((r0 - 30.0).abs() / 30.0 < 0.2, "r0 = {r0}");
        assert!((r1 - 8.0).abs() / 8.0 < 0.3, "r1 = {r1}");
        assert_eq!(catalog.stream(StreamId(2)).rate, 1.0, "untouched");
    }
}
