//! Self-adaptivity middleware (the IFLOW Middleware Layer \[13\]).
//!
//! "Self-adaptivity is incorporated into the system through the Middleware
//! Layer which re-triggers the query optimization algorithm when the
//! changes in network, load or data conditions demand recomputing of query
//! plans and deployments." This module reproduces that loop for network
//! (link-cost) changes: standing deployments are re-costed against the
//! updated distances, and any whose cost degraded beyond a configurable
//! threshold is re-optimized and migrated.

use dsq_core::{catalog_dirty_streams, Environment, InvalidationMode};
use dsq_hierarchy::HierarchySnapshot;
use dsq_net::{DistanceMatrix, Metric, NodeId};
use dsq_query::{Catalog, Deployment, Query, QueryId, ReuseRegistry};

/// A runtime link-cost change (congestion, re-pricing, failure-as-cost).
#[derive(Clone, Copy, Debug)]
pub struct LinkChange {
    /// Link endpoint.
    pub a: NodeId,
    /// Link endpoint.
    pub b: NodeId,
    /// New per-unit cost of the link.
    pub new_cost: f64,
}

/// What an adaptation pass did.
#[derive(Clone, Debug, Default)]
pub struct MigrationReport {
    /// Queries whose deployments were re-optimized.
    pub migrated: Vec<QueryId>,
    /// Queries whose replanning produced a better deployment that was
    /// nevertheless skipped because the state-transfer cost would not pay
    /// for itself within the migration horizon.
    pub skipped_unprofitable: Vec<QueryId>,
    /// Total standing cost right after the change (before migrations).
    pub cost_before: f64,
    /// Total standing cost after migrations.
    pub cost_after: f64,
    /// Costed migration plans for the queries that moved.
    pub plans: Vec<crate::migrate::MigrationPlan>,
    /// Total one-time state-transfer cost paid by the adopted migrations.
    pub state_transfer_cost: f64,
}

/// Standing deployments plus the machinery to keep them efficient.
pub struct AdaptiveRuntime {
    /// The (mutable) environment; link changes are applied to its network
    /// and distance matrix.
    pub env: Environment,
    queries: Vec<Query>,
    deployments: Vec<Deployment>,
    baseline_cost: Vec<f64>,
    /// Queries that lost their deployment and could not be replanned yet;
    /// retried on membership changes instead of being silently retired.
    parked: Vec<Query>,
    /// Relative cost degradation that triggers re-optimization (e.g. 0.2 =
    /// re-plan when a deployment got ≥ 20% more expensive).
    pub threshold: f64,
    /// Expected remaining lifetime of queries: a replanned deployment is
    /// only adopted when its one-time state-transfer cost amortizes within
    /// this horizon ("run-time query plan migrations", Section 5).
    /// `None` migrates unconditionally on any improvement.
    pub migration_horizon: Option<f64>,
    /// Join window length used to estimate operator state sizes.
    pub window: f64,
    /// How stale memoized subplans are retired when conditions change:
    /// [`InvalidationMode::Scoped`] (the default) computes a dirty set from
    /// the actual change and retires only the entries it can reach;
    /// [`InvalidationMode::Flush`] is the conservative full flush.
    pub invalidation: InvalidationMode,
    /// Catalog as of the last observed data conditions; the baseline that
    /// [`Self::handle_data_changes`] diffs against to scope retirement.
    /// `None` until primed ([`Self::observe_catalog`]) — the first data
    /// change then falls back to a full flush.
    last_catalog: Option<Catalog>,
    /// Lifetime count of replanning invocations this runtime issued
    /// (failure repairs, parked retries, degradation-triggered
    /// re-optimizations); see [`Self::queries_replanned`].
    queries_replanned: u64,
    /// Advert registry mirroring the standing deployments: installs
    /// publish, crashes/retirements retire, rejoins reinstate — so the
    /// advertised set never dangles behind the deployments it describes.
    registry: ReuseRegistry,
}

impl AdaptiveRuntime {
    /// Wrap an environment with an empty deployment set (unconditional
    /// migration; see [`Self::with_migration_horizon`]).
    pub fn new(env: Environment, threshold: f64) -> Self {
        AdaptiveRuntime {
            env,
            queries: Vec::new(),
            deployments: Vec::new(),
            baseline_cost: Vec::new(),
            parked: Vec::new(),
            threshold,
            migration_horizon: None,
            window: 0.5,
            invalidation: InvalidationMode::default(),
            last_catalog: None,
            queries_replanned: 0,
            registry: ReuseRegistry::new(),
        }
    }

    /// The advert registry tracking the standing deployments' derived
    /// streams through their lifecycle.
    pub fn registry(&self) -> &ReuseRegistry {
        &self.registry
    }

    /// Mutable access to the advert registry (e.g. to set a budget or run
    /// reuse probes against the standing deployments).
    pub fn registry_mut(&mut self) -> &mut ReuseRegistry {
        &mut self.registry
    }

    /// How many replanning invocations this runtime has issued over its
    /// lifetime — the incremental-replanning work metric the chaos soak
    /// bounds against the event count.
    pub fn queries_replanned(&self) -> u64 {
        self.queries_replanned
    }

    /// Lifetime count of memoized subplans retired from this runtime's
    /// cache (scoped retirement and full flushes alike).
    pub fn cache_retired(&self) -> u64 {
        self.env.plan_cache.retired()
    }

    /// Record the current data conditions so the next
    /// [`Self::handle_data_changes`] can diff against them instead of
    /// flushing the whole plan cache.
    pub fn observe_catalog(&mut self, catalog: &Catalog) {
        self.last_catalog = Some(catalog.clone());
    }

    /// Pre-surgery hierarchy fingerprint, taken only when scoped
    /// retirement will want to diff against it.
    fn membership_baseline(&self) -> Option<HierarchySnapshot> {
        match self.invalidation {
            InvalidationMode::Scoped => Some(self.env.hierarchy.snapshot()),
            InvalidationMode::Flush => None,
        }
    }

    /// Retire memoized subplans made stale by hierarchy surgery: scoped to
    /// the clusters whose content actually changed when a pre-surgery
    /// baseline is available, a full flush otherwise.
    fn retire_membership(&self, before: Option<HierarchySnapshot>) {
        match before {
            Some(before) => {
                let delta = before.diff(&self.env.hierarchy.snapshot());
                self.env
                    .plan_cache
                    .retire_membership(&self.env.hierarchy, &delta);
            }
            None => self.env.plan_cache.invalidate(),
        }
    }

    /// Only adopt replanned deployments whose state-transfer cost pays for
    /// itself within `horizon` time units.
    pub fn with_migration_horizon(mut self, horizon: f64) -> Self {
        self.migration_horizon = Some(horizon);
        self
    }

    /// Register a deployed query. The deployment's operators are
    /// advertised as derived streams for later reuse.
    pub fn install(&mut self, query: Query, deployment: Deployment) {
        self.registry.register_deployment(&query, &deployment);
        self.baseline_cost.push(deployment.cost);
        self.queries.push(query);
        self.deployments.push(deployment);
    }

    /// Standing deployments.
    pub fn deployments(&self) -> &[Deployment] {
        &self.deployments
    }

    /// Installed queries, parallel to [`Self::deployments`].
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Queries waiting for a placement to become feasible again.
    pub fn parked(&self) -> &[Query] {
        &self.parked
    }

    /// Total standing cost.
    pub fn total_cost(&self) -> f64 {
        self.deployments.iter().map(|d| d.cost).sum()
    }

    /// Handle the crash of a physical node: fail over its coordinator
    /// roles, deactivate it in the overlay and redeploy or retire the
    /// affected queries (see [`crate::failures`]). `replan` receives the
    /// repaired environment, in which the node is no longer a member.
    pub fn handle_node_failure(
        &mut self,
        catalog: &dsq_query::Catalog,
        node: dsq_net::NodeId,
        mut replan: impl FnMut(&Environment, &Query) -> Option<Deployment>,
    ) -> crate::failures::FailureReport {
        use crate::failures::{unrecoverable, uses_node, FailureReport};
        let mut report = FailureReport {
            cost_before: self.total_cost(),
            ..Default::default()
        };

        // 1. Hierarchy repair: record the roles being failed over, then
        //    deactivate the node (coordinator re-election happens inside).
        //    A one-member overlay cannot be repaired — there is nothing to
        //    fail over to — so the affected queries are forfeited below
        //    instead of replanned.
        report.coordinator_roles_failed_over = self.env.hierarchy.coordinator_roles(node).len();
        let membership_before = self.membership_baseline();
        let overlay_repaired = if self.env.hierarchy.is_active(node) {
            use dsq_hierarchy::MembershipError;
            match dsq_hierarchy::membership::remove_node(
                &mut self.env.hierarchy,
                &self.env.dm,
                node,
            ) {
                Ok(()) => true,
                Err(MembershipError::LastMember) => false,
                Err(e @ MembershipError::NotAMember(_)) => {
                    unreachable!("guarded by is_active: {e}")
                }
            }
        } else {
            // Already excised (e.g. a repeated crash report): the standing
            // deployments can still be repaired against the current overlay.
            true
        };
        report.last_member_forfeit = !overlay_repaired;
        // Hierarchy membership (possibly) changed: retire the memoized
        // subplans the surgery reached — just the crashed node's ancestor
        // chain in scoped mode, everything in flush mode. No surgery (the
        // node was already excised, or is the overlay's last member) means
        // an empty delta, so scoped mode keeps the whole cache.
        let retired_before = self.env.plan_cache.retired();
        self.retire_membership(membership_before);
        report.cache_retired = self.env.plan_cache.retired() - retired_before;

        // The crashed node's operators stop producing: their adverts must
        // not be served to later planning passes (rejoin reinstates them).
        self.registry.host_crashed(node);

        // 2. Classify standing deployments.
        enum Action {
            Keep,
            Lost,
            Park,
            Replan,
        }
        let actions: Vec<Action> = self
            .deployments
            .iter()
            .zip(&self.queries)
            .map(|(d, q)| {
                if !uses_node(d, node) {
                    Action::Keep
                } else if !overlay_repaired || q.sink == node {
                    Action::Lost
                } else if unrecoverable(d, q, catalog, node) {
                    // A source stream's origin crashed: its data stops
                    // flowing, but resumes if the node ever rejoins — park
                    // the query for retry on later membership changes
                    // instead of forfeiting it forever.
                    Action::Park
                } else {
                    Action::Replan
                }
            })
            .collect();

        // 3. Replan the recoverable ones against the repaired environment.
        let to_replan = actions
            .iter()
            .filter(|a| matches!(a, Action::Replan))
            .count();
        if to_replan > 0 {
            dsq_obs::counter("adapt.queries_replanned", to_replan as u64);
        }
        self.queries_replanned += to_replan as u64;
        let replacements: Vec<Option<Deployment>> = actions
            .iter()
            .zip(&self.queries)
            .map(|(a, q)| match a {
                Action::Replan => replan(&self.env, q),
                _ => None,
            })
            .collect();

        // 4. Apply: retire lost queries (accounting for their forfeited
        //    service), park the unplaceable ones, install replacements.
        let mut queries = Vec::new();
        let mut deployments = Vec::new();
        let mut baselines = Vec::new();
        for (i, action) in actions.into_iter().enumerate() {
            match action {
                Action::Keep => {
                    queries.push(self.queries[i].clone());
                    baselines.push(self.baseline_cost[i]);
                    deployments.push(self.deployments[i].clone());
                }
                Action::Lost => {
                    report.lost.push(self.queries[i].id);
                    report.forfeited_cost += self.deployments[i].cost;
                    self.registry.retire_query(self.queries[i].id);
                }
                Action::Park => {
                    report.source_parked.push(self.queries[i].id);
                    report.parked_cost += self.deployments[i].cost;
                    self.registry.retire_query(self.queries[i].id);
                    self.parked.push(self.queries[i].clone());
                }
                Action::Replan => match &replacements[i] {
                    Some(new_d) => {
                        report.redeployed.push(self.queries[i].id);
                        report.redeploy_cost_delta += new_d.cost - self.deployments[i].cost;
                        // The old operators are torn down and the repaired
                        // deployment's are advertised in their place.
                        self.registry.retire_query(self.queries[i].id);
                        self.registry.register_deployment(&self.queries[i], new_d);
                        queries.push(self.queries[i].clone());
                        // A replacement is a *repair*, not a re-baselining:
                        // keep measuring degradation against the cost the
                        // query was originally admitted at, otherwise a bad
                        // emergency placement silently becomes the new
                        // normal and adaptation stops firing for it.
                        baselines.push(self.baseline_cost[i]);
                        deployments.push(new_d.clone());
                    }
                    None => {
                        report.unplaced.push(self.queries[i].id);
                        report.parked_cost += self.deployments[i].cost;
                        self.registry.retire_query(self.queries[i].id);
                        self.parked.push(self.queries[i].clone());
                    }
                },
            }
        }
        self.queries = queries;
        self.deployments = deployments;
        self.baseline_cost = baselines;
        report.cost_after = self.total_cost();
        dsq_obs::counter("adapt.node_failures", 1);
        dsq_obs::counter("adapt.redeployed", report.redeployed.len() as u64);
        dsq_obs::counter("adapt.lost", report.lost.len() as u64);
        dsq_obs::counter(
            "adapt.parked",
            (report.unplaced.len() + report.source_parked.len()) as u64,
        );
        dsq_obs::observe("adapt.redeploy_cost_delta", report.redeploy_cost_delta);
        dsq_obs::event("adapt.node_failure", || {
            vec![
                ("node", node.0.into()),
                ("redeployed", report.redeployed.len().into()),
                ("lost", report.lost.len().into()),
                (
                    "parked",
                    (report.unplaced.len() + report.source_parked.len()).into(),
                ),
                ("cost_delta", report.redeploy_cost_delta.into()),
            ]
        });
        report
    }

    /// Forfeit every standing deployment that touches `node` without any
    /// hierarchy surgery or replanning: the last-resort path for when the
    /// overlay is at its minimum population and the node cannot be excised
    /// (the machine is gone, but its membership slot must survive). Used by
    /// the chaos harness to record such events as forfeited instead of
    /// aborting the run.
    pub fn forfeit_node_queries(
        &mut self,
        node: dsq_net::NodeId,
    ) -> crate::failures::FailureReport {
        use crate::failures::{uses_node, FailureReport};
        let mut report = FailureReport {
            cost_before: self.total_cost(),
            last_member_forfeit: true,
            ..Default::default()
        };
        self.registry.host_crashed(node);
        let mut queries = Vec::new();
        let mut deployments = Vec::new();
        let mut baselines = Vec::new();
        for i in 0..self.deployments.len() {
            if uses_node(&self.deployments[i], node) {
                report.lost.push(self.queries[i].id);
                report.forfeited_cost += self.deployments[i].cost;
                self.registry.retire_query(self.queries[i].id);
            } else {
                queries.push(self.queries[i].clone());
                deployments.push(self.deployments[i].clone());
                baselines.push(self.baseline_cost[i]);
            }
        }
        self.queries = queries;
        self.deployments = deployments;
        self.baseline_cost = baselines;
        report.cost_after = self.total_cost();
        dsq_obs::counter("adapt.forfeited", report.lost.len() as u64);
        report
    }

    /// Is every node the query needs for *data* — each source stream's
    /// origin and the result sink — an active overlay member? A parked
    /// query failing this check cannot be replanned no matter what the
    /// optimizer does, so the retry pass skips it without an attempt.
    fn data_available(&self, catalog: &Catalog, q: &Query) -> bool {
        self.env.hierarchy.is_active(q.sink)
            && q.sources
                .iter()
                .all(|&s| self.env.hierarchy.is_active(catalog.stream(s).node))
    }

    /// Re-attempt placement of every parked query whose data is available
    /// again (see [`Self::data_available`]); successfully placed ones are
    /// (re)installed with their new cost as the baseline. Returns the ids
    /// that found a home.
    pub fn retry_parked(
        &mut self,
        catalog: &Catalog,
        mut replan: impl FnMut(&Environment, &Query) -> Option<Deployment>,
    ) -> Vec<QueryId> {
        let mut placed = Vec::new();
        let mut still_parked = Vec::new();
        let mut attempts = 0u64;
        for q in std::mem::take(&mut self.parked) {
            if !self.data_available(catalog, &q) {
                still_parked.push(q);
                continue;
            }
            attempts += 1;
            match replan(&self.env, &q) {
                Some(d) => {
                    placed.push(q.id);
                    self.install(q, d);
                }
                None => still_parked.push(q),
            }
        }
        if attempts > 0 {
            dsq_obs::counter("adapt.queries_replanned", attempts);
        }
        self.queries_replanned += attempts;
        self.parked = still_parked;
        placed
    }

    /// Handle the recovery of a previously failed node: rejoin it to the
    /// overlay via the membership protocol (contacting active member `via`)
    /// and retry the parked queries, whose placement (or source data) may
    /// now be available again on the enlarged overlay.
    pub fn handle_node_recovery(
        &mut self,
        catalog: &Catalog,
        node: dsq_net::NodeId,
        via: dsq_net::NodeId,
        replan: impl FnMut(&Environment, &Query) -> Option<Deployment>,
    ) -> crate::failures::RecoveryReport {
        let membership_before = self.membership_baseline();
        let outcome =
            dsq_hierarchy::membership::add_node(&mut self.env.hierarchy, &self.env.dm, node, via);
        // Scoped: only the rejoined node's new ancestor chain gained a
        // member, so only entries reaching those clusters retire.
        let retired_before = self.env.plan_cache.retired();
        self.retire_membership(membership_before);
        let cache_retired = self.env.plan_cache.retired() - retired_before;
        // Adverts hosted on the rejoined node are servable again (unless
        // their origin query is gone for good).
        self.registry.host_rejoined(node);
        let redeployed = self.retry_parked(catalog, replan);
        crate::failures::RecoveryReport {
            join_messages: outcome.messages,
            redeployed,
            still_parked: self.parked.len(),
            cache_retired,
        }
    }

    /// Handle *data*-condition changes: the catalog's stream rates /
    /// selectivities were updated by monitoring (mutate it before calling).
    /// Standing deployments are re-estimated structurally — same plan, same
    /// placement, fresh statistics — and those whose cost degraded past the
    /// threshold are re-optimized, subject to the same migration-horizon
    /// gate as link changes.
    pub fn handle_data_changes(
        &mut self,
        catalog: &dsq_query::Catalog,
        mut replan: impl FnMut(&Environment, &Query) -> Option<Deployment>,
    ) -> MigrationReport {
        // The catalog's rates/selectivities feed the cache keys and the
        // cached costs. With a baseline catalog on hand, only the entries
        // covering a stream whose statistics actually moved are stale;
        // without one (first observation) everything might be.
        match (self.invalidation, self.last_catalog.take()) {
            (InvalidationMode::Scoped, Some(old)) => {
                let dirty = catalog_dirty_streams(&old, catalog);
                self.env.plan_cache.retire_catalog(&dirty);
            }
            _ => self.env.plan_cache.invalidate(),
        }
        self.last_catalog = Some(catalog.clone());
        let mut report = MigrationReport::default();
        for (i, d) in self.deployments.iter_mut().enumerate() {
            *d = d.reestimate(&self.queries[i], catalog, &self.env.dm);
        }
        report.cost_before = self.total_cost();

        let mut replanned = 0u64;
        for i in 0..self.deployments.len() {
            let degraded =
                self.deployments[i].cost > self.baseline_cost[i] * (1.0 + self.threshold) + 1e-12;
            if !degraded {
                // Data changes can also make a deployment cheaper; adopt the
                // re-estimated cost as the new baseline so later drift is
                // measured from reality.
                self.baseline_cost[i] = self.deployments[i].cost;
                continue;
            }
            replanned += 1;
            if let Some(new_d) = replan(&self.env, &self.queries[i]) {
                if new_d.cost >= self.deployments[i].cost {
                    self.baseline_cost[i] = self.deployments[i].cost;
                    continue;
                }
                let plan = crate::migrate::plan_migration(
                    &self.deployments[i],
                    &new_d,
                    &self.env.dm,
                    self.window,
                );
                let adopt = match self.migration_horizon {
                    Some(h) => plan.worthwhile(h),
                    None => true,
                };
                if adopt {
                    report.migrated.push(self.queries[i].id);
                    report.state_transfer_cost += plan.state_transfer_cost;
                    report.plans.push(plan);
                    self.registry.retire_query(self.queries[i].id);
                    self.registry.register_deployment(&self.queries[i], &new_d);
                    self.baseline_cost[i] = new_d.cost;
                    self.deployments[i] = new_d;
                } else {
                    report.skipped_unprofitable.push(self.queries[i].id);
                    self.baseline_cost[i] = self.deployments[i].cost;
                }
            }
        }
        if replanned > 0 {
            dsq_obs::counter("adapt.queries_replanned", replanned);
        }
        self.queries_replanned += replanned;
        report.cost_after = self.total_cost();
        report
    }

    /// Apply link changes, detect degraded deployments and re-trigger
    /// optimization for them.
    ///
    /// `replan` receives the *updated* environment and the degraded query
    /// and returns a fresh deployment (typically by running one of the
    /// `dsq-core` optimizers against that environment). A replanned
    /// deployment is only adopted when it actually improves on the
    /// re-costed standing one.
    pub fn handle_changes(
        &mut self,
        changes: &[LinkChange],
        mut replan: impl FnMut(&Environment, &Query) -> Option<Deployment>,
    ) -> MigrationReport {
        for ch in changes {
            let applied = self.env.network.set_link_cost(ch.a, ch.b, ch.new_cost);
            assert!(applied, "link change references a missing link");
        }
        // Refresh the distance view and the hierarchy's cost statistics,
        // and retire the memoized subplans costed against distances that
        // actually moved. Retirement is pair-aware: an entry goes only if
        // two of the nodes *it consulted* moved apart, so a drift on some
        // far-away link — or a no-op refresh that rebuilt identical
        // distances — leaves the cache intact across monitor rounds.
        let new_dm = DistanceMatrix::build(&self.env.network, Metric::Cost);
        match self.invalidation {
            InvalidationMode::Scoped => {
                self.env.plan_cache.retire_metric(&self.env.dm, &new_dm);
            }
            InvalidationMode::Flush => self.env.plan_cache.invalidate(),
        }
        self.env.dm = new_dm;
        self.env.hierarchy.refresh_statistics(&self.env.dm);

        let mut report = MigrationReport::default();
        for d in &mut self.deployments {
            d.recompute_cost(&self.env.dm);
        }
        report.cost_before = self.total_cost();

        let mut replanned = 0u64;
        for i in 0..self.deployments.len() {
            let degraded =
                self.deployments[i].cost > self.baseline_cost[i] * (1.0 + self.threshold) + 1e-12;
            if !degraded {
                continue;
            }
            replanned += 1;
            if let Some(new_d) = replan(&self.env, &self.queries[i]) {
                if new_d.cost >= self.deployments[i].cost {
                    continue;
                }
                let plan = crate::migrate::plan_migration(
                    &self.deployments[i],
                    &new_d,
                    &self.env.dm,
                    self.window,
                );
                let adopt = match self.migration_horizon {
                    Some(h) => plan.worthwhile(h),
                    None => true,
                };
                if adopt {
                    report.migrated.push(self.queries[i].id);
                    report.state_transfer_cost += plan.state_transfer_cost;
                    report.plans.push(plan);
                    self.registry.retire_query(self.queries[i].id);
                    self.registry.register_deployment(&self.queries[i], &new_d);
                    self.baseline_cost[i] = new_d.cost;
                    self.deployments[i] = new_d;
                } else {
                    report.skipped_unprofitable.push(self.queries[i].id);
                }
            }
        }
        if replanned > 0 {
            dsq_obs::counter("adapt.queries_replanned", replanned);
        }
        self.queries_replanned += replanned;
        report.cost_after = self.total_cost();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{Optimal, Optimizer, SearchStats, TopDown};
    use dsq_net::TransitStubConfig;
    use dsq_query::ReuseRegistry;
    use dsq_workload::{WorkloadConfig, WorkloadGenerator};

    fn runtime() -> (AdaptiveRuntime, dsq_workload::Workload) {
        let net = TransitStubConfig::paper_64().generate(17).network;
        let env = Environment::build(net, 16);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 12,
                queries: 6,
                joins_per_query: 2..=3,
                ..WorkloadConfig::default()
            },
            61,
        )
        .generate(&env.network);
        let mut rt = AdaptiveRuntime::new(env, 0.2);
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        for q in &wl.queries {
            let d = TopDown::new(&rt.env)
                .optimize(&wl.catalog, q, &mut reg, &mut stats)
                .unwrap();
            rt.install(q.clone(), d);
        }
        (rt, wl)
    }

    /// Links crossing the deployments' hot paths, made 50× more expensive.
    fn congestion(rt: &AdaptiveRuntime) -> Vec<LinkChange> {
        let sim = crate::flow::FlowSimulator::new(&rt.env.network);
        let refs: Vec<&Deployment> = rt.deployments().iter().collect();
        let report = sim.evaluate(&refs);
        report
            .hottest_links(4)
            .into_iter()
            .map(|((a, b), _)| {
                let old = rt.env.network.find_link(a, b).unwrap().cost;
                LinkChange {
                    a,
                    b,
                    new_cost: old * 50.0,
                }
            })
            .collect()
    }

    #[test]
    fn congestion_triggers_migration_and_reduces_cost() {
        let (mut rt, wl) = runtime();
        let changes = congestion(&rt);
        let report = rt.handle_changes(&changes, |env, q| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut stats)
        });
        assert!(
            !report.migrated.is_empty(),
            "50× congestion on hot links must trigger migrations"
        );
        assert!(
            report.cost_after <= report.cost_before,
            "migration must not increase cost: {} -> {}",
            report.cost_before,
            report.cost_after
        );
    }

    #[test]
    fn small_changes_do_not_trigger() {
        let (mut rt, wl) = runtime();
        let (a, b) = {
            let n = rt.env.network.nodes().next().unwrap();
            (n, rt.env.network.neighbors(n)[0].to)
        };
        let old = rt.env.network.find_link(a, b).unwrap().cost;
        let report = rt.handle_changes(
            &[LinkChange {
                a,
                b,
                new_cost: old * 1.01,
            }],
            |env, q| {
                let mut reg = ReuseRegistry::new();
                let mut stats = SearchStats::new();
                Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut stats)
            },
        );
        assert!(report.migrated.is_empty());
    }

    #[test]
    fn data_rate_surge_triggers_replanning() {
        let (mut rt, wl) = runtime();
        // Surge the rates of the first query's sources 20×: its plan's
        // transport volumes balloon and a different placement (or ordering)
        // wins.
        let mut catalog = wl.catalog.clone();
        let victim = &wl.queries[0];
        for &s in &victim.sources {
            let old = catalog.stream(s).rate;
            catalog.set_rate(s, old * 20.0);
        }
        let report = rt.handle_data_changes(&catalog, |env, q| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            Optimal::new(env).optimize(&catalog, q, &mut reg, &mut stats)
        });
        assert!(
            report.cost_before > 0.0,
            "re-estimated costs reflect the surge"
        );
        assert!(
            report.migrated.contains(&victim.id) || report.cost_after <= report.cost_before,
            "either the victim migrates or nothing got worse"
        );
        // Re-estimated standing costs must match a from-scratch evaluation.
        for d in rt.deployments() {
            let q = wl.queries.iter().find(|q| q.id == d.query).unwrap();
            let fresh = d.reestimate(q, &catalog, &rt.env.dm);
            assert!((fresh.cost - d.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn improving_data_changes_do_not_churn() {
        let (mut rt, wl) = runtime();
        // All rates drop: every deployment gets cheaper, nothing migrates.
        let mut catalog = wl.catalog.clone();
        for s in 0..catalog.len() as u32 {
            let old = catalog.stream(dsq_query::StreamId(s)).rate;
            catalog.set_rate(dsq_query::StreamId(s), old * 0.5);
        }
        let before = rt.total_cost();
        let report = rt.handle_data_changes(&catalog, |_, _| panic!("must not replan"));
        assert!(report.migrated.is_empty());
        assert!(report.cost_after < before);
    }

    #[test]
    fn short_horizon_skips_unprofitable_migrations() {
        let (rt_base, wl) = runtime();
        let changes = congestion(&rt_base);
        let replan = |env: &Environment, q: &Query| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut stats)
        };

        // Unconditional migration moves some queries…
        let mut rt_free = AdaptiveRuntime::new(rt_base.env.clone(), rt_base.threshold);
        for (q, d) in wl.queries.iter().zip(rt_base.deployments()) {
            rt_free.install(q.clone(), d.clone());
        }
        let free = rt_free.handle_changes(&changes, replan);
        assert!(!free.migrated.is_empty());
        assert!(free.state_transfer_cost > 0.0);
        for p in &free.plans {
            assert!(p.steady_state_saving > 0.0, "adopted plans must save");
        }

        // …while a near-zero horizon rejects every one of them.
        let mut rt_tight = AdaptiveRuntime::new(rt_base.env.clone(), rt_base.threshold)
            .with_migration_horizon(1e-9);
        for (q, d) in wl.queries.iter().zip(rt_base.deployments()) {
            rt_tight.install(q.clone(), d.clone());
        }
        let tight = rt_tight.handle_changes(&changes, replan);
        assert!(tight.migrated.is_empty());
        assert_eq!(tight.skipped_unprofitable.len(), free.migrated.len());
        assert_eq!(tight.state_transfer_cost, 0.0);
    }

    #[test]
    fn adaptation_is_idempotent_when_nothing_changes() {
        let (mut rt, wl) = runtime();
        let before = rt.total_cost();
        let report = rt.handle_changes(&[], |env, q| {
            let mut reg = ReuseRegistry::new();
            let mut stats = SearchStats::new();
            Optimal::new(env).optimize(&wl.catalog, q, &mut reg, &mut stats)
        });
        assert!(report.migrated.is_empty());
        assert!((rt.total_cost() - before).abs() < 1e-9);
    }
}
