//! Runtime simulation: the workspace's stand-in for the IFLOW prototype and
//! the Emulab testbed of Section 3.5.
//!
//! * [`flow`] — flow-level evaluation: routes every deployed data-flow edge
//!   over the network's shortest paths and accounts per-link traffic and
//!   cost. Validates (and generalizes to link utilization) the analytic
//!   cost model the optimizers plan against.
//! * [`tuple_sim`] — a tuple-level discrete-event simulator: sources emit
//!   Poisson tuple streams, operators run windowed symmetric-hash joins
//!   with probabilistic matching, tuples ride the physical routes with
//!   their link delays. Measured cost per unit time converges to the
//!   analytic estimate, and per-tuple result latencies become observable.
//! * [`emulab`] — the deployment-*time* model standing in for the paper's
//!   32-node Emulab testbed: protocol messages traverse the hierarchy over
//!   1–6 ms links and every coordinator pays search time proportional to
//!   the plans it examines (replayed from
//!   [`SearchStats`](dsq_core::SearchStats) events).
//! * [`adapt`] — the self-adaptivity middleware: watches link-cost changes,
//!   re-costs standing deployments and re-triggers optimization for those
//!   whose cost degraded beyond a threshold (the Middleware Layer of
//!   IFLOW \[13\]).

pub mod adapt;
pub mod adverts;
pub mod chaos;
pub mod emulab;
pub mod exec;
pub mod failures;
pub mod flow;
pub mod migrate;
pub mod monitor;
pub mod tuple_sim;

pub use adapt::{AdaptiveRuntime, LinkChange, MigrationReport};
pub use adverts::{advertisement_traffic, AdvertTraffic};
pub use chaos::{ChaosReport, ChaosRunner, Fault, FaultConfig, FaultSchedule, TimedFault};
pub use emulab::{DeploymentTime, EmulabModel, LossyProtocol, RetryPolicy};
pub use exec::{execute_deployment, generate_tables, reference_result, same_result, Row, Tables};
pub use failures::FailureReport;
pub use flow::{FlowReport, FlowSimulator, UtilizationSummary};
pub use migrate::{plan_migration, MigrationPlan, OperatorMove};
pub use monitor::{RateEstimator, SelectivityEstimator, StatsMonitor};
pub use tuple_sim::{TupleSimConfig, TupleSimReport, TupleSimulator};
