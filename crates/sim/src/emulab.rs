//! Emulab-style deployment-time model (Section 3.5).
//!
//! The paper's prototype experiments measure how long each algorithm takes
//! to deploy a query on a 32-node testbed with 1–6 ms link delays. Two
//! components dominate, both reproducible from our optimizers' execution
//! traces:
//!
//! 1. **Protocol messaging** — the query travels from its submission point
//!    through the coordinators that plan it (down the hierarchy for
//!    Top-Down, up the ancestor chain for Bottom-Up), and the chosen
//!    operators are then instantiated with one round trip each. Every hop
//!    pays the shortest-path link delay.
//! 2. **Search work** — each coordinator examines `plans` plan/deployment
//!    combinations ([`PlanEvent`]); each examination
//!    costs [`EmulabModel::per_plan_us`] microseconds. This is why
//!    Bottom-Up, whose per-level searches are smaller, deploys ~70% faster
//!    (Figure 10), and why small `max_cs` values slow Top-Down down (more
//!    levels to traverse).

use dsq_core::{PlanEvent, SearchStats};
use dsq_net::{DistanceMatrix, Metric, Network, NodeId};
use dsq_query::Deployment;

/// Deployment-time breakdown in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeploymentTime {
    /// Coordinator-to-coordinator and instantiation messaging.
    pub messaging_ms: f64,
    /// Plan-search work at the coordinators.
    pub planning_ms: f64,
}

impl DeploymentTime {
    /// Total deployment time.
    pub fn total_ms(&self) -> f64 {
        self.messaging_ms + self.planning_ms
    }
}

/// The testbed model: delay matrix plus calibrated per-plan search cost and
/// per-message software overhead.
#[derive(Clone, Debug)]
pub struct EmulabModel {
    delays: DistanceMatrix,
    /// Microseconds per plan/deployment combination examined (in-memory
    /// search; small next to messaging, as on the real testbed).
    pub per_plan_us: f64,
    /// Fixed software-stack overhead per protocol message (serialization,
    /// dispatch, middleware hops). This dominates the measured deployment
    /// times — which is why the paper sees Top-Down get *faster* with
    /// larger `max_cs` (fewer levels to traverse) even though each level's
    /// search is bigger.
    pub per_message_overhead_ms: f64,
}

impl EmulabModel {
    /// Build the model for a network (delay metric), calibrated so that
    /// 2–5-stream queries deploy in the sub-second-to-seconds range of the
    /// paper's Figure 10.
    pub fn new(network: &Network) -> Self {
        EmulabModel {
            delays: DistanceMatrix::build(network, Metric::DelayMs),
            per_plan_us: 2.0,
            per_message_overhead_ms: 25.0,
        }
    }

    /// Deployment time for one optimized query: `submit` is where the query
    /// was registered (its sink), `stats` the optimizer's planning trace,
    /// `deployment` the final placement (instantiation messages).
    pub fn deployment_time(
        &self,
        submit: NodeId,
        stats: &SearchStats,
        deployment: &Deployment,
    ) -> DeploymentTime {
        let mut t = DeploymentTime::default();
        // Query routing between planning sites, starting from the sink.
        let mut at = submit;
        for ev in &stats.events {
            t.messaging_ms +=
                self.delays.get(at, ev.coordinator) + self.per_message_overhead_ms;
            at = ev.coordinator;
            t.planning_ms += self.planning_ms(ev);
        }
        // Operator instantiation: one round trip from the last planning
        // site to each operator node, plus result wiring to the sink.
        for &op in &deployment.operator_nodes() {
            t.messaging_ms +=
                2.0 * (self.delays.get(at, op) + self.per_message_overhead_ms);
        }
        t.messaging_ms += self.delays.get(at, deployment.sink) + self.per_message_overhead_ms;
        t
    }

    /// Search time one planning event costs.
    pub fn planning_ms(&self, ev: &PlanEvent) -> f64 {
        ev.plans as f64 * self.per_plan_us / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{BottomUp, Environment, Optimizer, TopDown};
    use dsq_net::TransitStubConfig;
    use dsq_query::ReuseRegistry;
    use dsq_workload::{WorkloadConfig, WorkloadGenerator};

    fn testbed() -> (Environment, dsq_workload::Workload) {
        let net = TransitStubConfig::emulab_32().generate(9).network;
        let env = Environment::build(net, 8);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 8,
                queries: 10,
                joins_per_query: 1..=4,
                ..WorkloadConfig::default()
            },
            55,
        )
        .generate(&env.network);
        (env, wl)
    }

    #[test]
    fn bottomup_deploys_faster_than_topdown() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let (mut bu_ms, mut bum_ms, mut td_ms) = (0.0, 0.0, 0.0);
        for q in &wl.queries {
            let mut s_bu = SearchStats::new();
            let mut s_bum = SearchStats::new();
            let mut s_td = SearchStats::new();
            let mut r1 = ReuseRegistry::new();
            let mut r2 = ReuseRegistry::new();
            let mut r3 = ReuseRegistry::new();
            let d_bu = BottomUp::new(&env)
                .optimize(&wl.catalog, q, &mut r1, &mut s_bu)
                .unwrap();
            let d_bum =
                BottomUp::with_placement(&env, dsq_core::BottomUpPlacement::MembersOnly)
                    .optimize(&wl.catalog, q, &mut r3, &mut s_bum)
                    .unwrap();
            let d_td = TopDown::new(&env)
                .optimize(&wl.catalog, q, &mut r2, &mut s_td)
                .unwrap();
            bu_ms += model.deployment_time(q.sink, &s_bu, &d_bu).total_ms();
            bum_ms += model.deployment_time(q.sink, &s_bum, &d_bum).total_ms();
            td_ms += model.deployment_time(q.sink, &s_td, &d_td).total_ms();
        }
        // The members-only placement reading is decisively faster (the
        // paper's ~70% at max_cs = 4; this testbed uses max_cs = 8 where
        // the hierarchy is flatter and the saving smaller); the default
        // descending Bottom-Up must still not be slower than Top-Down (it
        // stops climbing once sources are covered).
        assert!(
            bum_ms < td_ms,
            "members-only bottom-up {bum_ms} ms vs top-down {td_ms} ms"
        );
        assert!(
            bu_ms <= td_ms * 1.10,
            "descending bottom-up {bu_ms} ms vs top-down {td_ms} ms"
        );
    }

    #[test]
    fn larger_queries_take_longer() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let mut by_size: Vec<(usize, f64, usize)> = vec![(0, 0.0, 0); 8];
        for q in &wl.queries {
            let mut s = SearchStats::new();
            let mut r = ReuseRegistry::new();
            let d = TopDown::new(&env)
                .optimize(&wl.catalog, q, &mut r, &mut s)
                .unwrap();
            let t = model.deployment_time(q.sink, &s, &d).total_ms();
            let k = q.sources.len();
            by_size[k].0 = k;
            by_size[k].1 += t;
            by_size[k].2 += 1;
        }
        let sized: Vec<(usize, f64)> = by_size
            .iter()
            .filter(|(_, _, c)| *c > 0)
            .map(|(k, t, c)| (*k, t / *c as f64))
            .collect();
        if sized.len() >= 2 {
            assert!(
                sized.last().unwrap().1 > sized.first().unwrap().1,
                "deployment time should grow with query size: {sized:?}"
            );
        }
    }

    #[test]
    fn time_components_are_nonnegative() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let q = &wl.queries[0];
        let mut s = SearchStats::new();
        let mut r = ReuseRegistry::new();
        let d = TopDown::new(&env)
            .optimize(&wl.catalog, q, &mut r, &mut s)
            .unwrap();
        let t = model.deployment_time(q.sink, &s, &d);
        assert!(t.messaging_ms > 0.0);
        assert!(t.planning_ms > 0.0);
        assert!(t.total_ms() >= t.messaging_ms.max(t.planning_ms));
    }
}
