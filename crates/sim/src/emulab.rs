//! Emulab-style deployment-time model (Section 3.5).
//!
//! The paper's prototype experiments measure how long each algorithm takes
//! to deploy a query on a 32-node testbed with 1–6 ms link delays. Two
//! components dominate, both reproducible from our optimizers' execution
//! traces:
//!
//! 1. **Protocol messaging** — the query travels from its submission point
//!    through the coordinators that plan it (down the hierarchy for
//!    Top-Down, up the ancestor chain for Bottom-Up), and the chosen
//!    operators are then instantiated with one round trip each. Every hop
//!    pays the shortest-path link delay.
//! 2. **Search work** — each coordinator examines `plans` plan/deployment
//!    combinations ([`PlanEvent`]); each examination
//!    costs [`EmulabModel::per_plan_us`] microseconds. This is why
//!    Bottom-Up, whose per-level searches are smaller, deploys ~70% faster
//!    (Figure 10), and why small `max_cs` values slow Top-Down down (more
//!    levels to traverse).

use dsq_core::{PlanEvent, SearchStats};
use dsq_net::{DistanceMatrix, Metric, Network, NodeId};
use dsq_query::Deployment;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deployment-time breakdown in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeploymentTime {
    /// Coordinator-to-coordinator and instantiation messaging.
    pub messaging_ms: f64,
    /// Plan-search work at the coordinators.
    pub planning_ms: f64,
    /// Time spent waiting out timeouts of dropped messages (zero on the
    /// reliable model).
    pub retry_ms: f64,
    /// Messages that had to be re-sent after a timeout.
    pub retries: usize,
}

impl DeploymentTime {
    /// Total deployment time.
    pub fn total_ms(&self) -> f64 {
        self.messaging_ms + self.planning_ms + self.retry_ms
    }
}

/// The testbed model: delay matrix plus calibrated per-plan search cost and
/// per-message software overhead.
#[derive(Clone, Debug)]
pub struct EmulabModel {
    delays: DistanceMatrix,
    /// Microseconds per plan/deployment combination examined (in-memory
    /// search; small next to messaging, as on the real testbed).
    pub per_plan_us: f64,
    /// Fixed software-stack overhead per protocol message (serialization,
    /// dispatch, middleware hops). This dominates the measured deployment
    /// times — which is why the paper sees Top-Down get *faster* with
    /// larger `max_cs` (fewer levels to traverse) even though each level's
    /// search is bigger.
    pub per_message_overhead_ms: f64,
}

impl EmulabModel {
    /// Build the model for a network (delay metric), calibrated so that
    /// 2–5-stream queries deploy in the sub-second-to-seconds range of the
    /// paper's Figure 10.
    pub fn new(network: &Network) -> Self {
        EmulabModel {
            delays: DistanceMatrix::build(network, Metric::DelayMs),
            per_plan_us: 2.0,
            per_message_overhead_ms: 25.0,
        }
    }

    /// Deployment time for one optimized query: `submit` is where the query
    /// was registered (its sink), `stats` the optimizer's planning trace,
    /// `deployment` the final placement (instantiation messages).
    pub fn deployment_time(
        &self,
        submit: NodeId,
        stats: &SearchStats,
        deployment: &Deployment,
    ) -> DeploymentTime {
        let mut t = DeploymentTime::default();
        // Query routing between planning sites, starting from the sink.
        let mut at = submit;
        for ev in &stats.events {
            t.messaging_ms += self.delays.get(at, ev.coordinator) + self.per_message_overhead_ms;
            at = ev.coordinator;
            t.planning_ms += self.planning_ms(ev);
        }
        // Operator instantiation: one round trip from the last planning
        // site to each operator node, plus result wiring to the sink.
        for &op in &deployment.operator_nodes() {
            t.messaging_ms += 2.0 * (self.delays.get(at, op) + self.per_message_overhead_ms);
        }
        t.messaging_ms += self.delays.get(at, deployment.sink) + self.per_message_overhead_ms;
        t
    }

    /// Search time one planning event costs.
    pub fn planning_ms(&self, ev: &PlanEvent) -> f64 {
        ev.plans as f64 * self.per_plan_us / 1000.0
    }
}

/// Retry policy of the lossy deployment protocol: per-message drop
/// probability, initial retransmission timeout, exponential backoff and a
/// retry cap after which the message (and the deployment it carries) is
/// given up on.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Probability that any single protocol message is lost in flight.
    pub drop_probability: f64,
    /// Initial retransmission timeout in milliseconds. Calibrated to 100 ms
    /// — ~4× the worst-case round trip on the 1–6 ms testbed links plus the
    /// 25 ms software overhead ([`EmulabModel::per_message_overhead_ms`]).
    pub timeout_ms: f64,
    /// Multiplier applied to the timeout after every loss (classic
    /// exponential backoff; 2.0 doubles the wait each attempt).
    pub backoff: f64,
    /// Maximum number of retransmissions per message before the protocol
    /// declares the send failed.
    pub max_retries: usize,
}

impl RetryPolicy {
    /// The reliable protocol: no losses, so no retries ever happen and
    /// deployment times match [`EmulabModel::deployment_time`] exactly.
    pub fn reliable() -> Self {
        RetryPolicy {
            drop_probability: 0.0,
            timeout_ms: 100.0,
            backoff: 2.0,
            max_retries: 0,
        }
    }

    /// A lossy protocol with the calibrated timeout/backoff constants and
    /// the given drop probability.
    pub fn lossy(drop_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_probability));
        RetryPolicy {
            drop_probability,
            timeout_ms: 100.0,
            backoff: 2.0,
            max_retries: 5,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::reliable()
    }
}

/// Outcome of pushing one message through the lossy protocol.
#[derive(Clone, Copy, Debug)]
pub struct SendOutcome {
    /// Link latency + software overhead actually paid (per attempt that
    /// made it onto the wire and was not dropped; zero when every attempt
    /// was lost).
    pub transit_ms: f64,
    /// Timeout time burned on dropped attempts.
    pub wait_ms: f64,
    /// Retransmissions performed.
    pub retries: usize,
    /// Whether the message was eventually delivered.
    pub delivered: bool,
}

/// The lossy deployment-protocol model: an [`EmulabModel`] whose protocol
/// messages can be dropped, retried with exponential backoff, and — past
/// the retry cap — fail the deployment they carry.
///
/// With `policy.drop_probability == 0.0` the model reproduces
/// [`EmulabModel::deployment_time`] exactly (the RNG is never consulted),
/// which keeps the Figure 10 calibration intact.
#[derive(Clone, Debug)]
pub struct LossyProtocol {
    /// The underlying delay/search-cost model.
    pub model: EmulabModel,
    /// Drop/timeout/backoff/cap parameters.
    pub policy: RetryPolicy,
    rng: ChaCha8Rng,
}

impl LossyProtocol {
    /// Wrap `model` with `policy`, seeding the loss process.
    pub fn new(model: EmulabModel, policy: RetryPolicy, seed: u64) -> Self {
        LossyProtocol {
            model,
            policy,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Send one protocol message from `from` to `to`, retrying on loss.
    pub fn send(&mut self, from: NodeId, to: NodeId) -> SendOutcome {
        let one_way = self.model.delays.get(from, to) + self.model.per_message_overhead_ms;
        let mut outcome = SendOutcome {
            transit_ms: 0.0,
            wait_ms: 0.0,
            retries: 0,
            delivered: false,
        };
        let mut timeout = self.policy.timeout_ms;
        for attempt in 0..=self.policy.max_retries {
            let dropped = self.policy.drop_probability > 0.0
                && self.rng.gen_bool(self.policy.drop_probability);
            if !dropped {
                outcome.transit_ms = one_way;
                outcome.retries = attempt;
                outcome.delivered = true;
                break;
            }
            // The sender only learns about the loss by timing out.
            outcome.wait_ms += timeout;
            timeout *= self.policy.backoff;
        }
        if !outcome.delivered {
            outcome.retries = self.policy.max_retries;
            dsq_obs::counter("protocol.sends_failed", 1);
        }
        if outcome.retries > 0 {
            dsq_obs::counter("protocol.retries", outcome.retries as u64);
            dsq_obs::observe("protocol.backoff_wait_ms", outcome.wait_ms);
        }
        outcome
    }

    /// Deployment time for one optimized query under the lossy protocol:
    /// the same message walk as [`EmulabModel::deployment_time`], but every
    /// hop can be dropped and retried. Returns `None` when any message
    /// exhausts its retry budget — the deployment failed to instantiate and
    /// the accumulated time (routing, search, timeouts) is reported
    /// alongside so callers can charge it before parking the query.
    pub fn deployment_time(
        &mut self,
        submit: NodeId,
        stats: &SearchStats,
        deployment: &Deployment,
    ) -> (DeploymentTime, bool) {
        let mut t = DeploymentTime::default();
        let mut at = submit;
        for ev in &stats.events {
            if !self.hop(&mut t, at, ev.coordinator) {
                return (t, false);
            }
            at = ev.coordinator;
            t.planning_ms += self.model.planning_ms(ev);
        }
        for &op in &deployment.operator_nodes() {
            // Instantiation round trip: request out, acknowledgment back.
            // Delays are symmetric, so the two delivered legs are charged
            // as one doubled term — the same expression the reliable model
            // uses, keeping the zero-drop calibration bit-exact.
            let request = self.send(at, op);
            t.retry_ms += request.wait_ms;
            t.retries += request.retries;
            if !request.delivered {
                return (t, false);
            }
            let ack = self.send(op, at);
            t.retry_ms += ack.wait_ms;
            t.retries += ack.retries;
            if !ack.delivered {
                t.messaging_ms += request.transit_ms;
                return (t, false);
            }
            t.messaging_ms += 2.0 * request.transit_ms;
        }
        if !self.hop(&mut t, at, deployment.sink) {
            return (t, false);
        }
        (t, true)
    }

    /// Charge one message to `t`; `false` when it was never delivered.
    fn hop(&mut self, t: &mut DeploymentTime, from: NodeId, to: NodeId) -> bool {
        let s = self.send(from, to);
        t.messaging_ms += s.transit_ms;
        t.retry_ms += s.wait_ms;
        t.retries += s.retries;
        s.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{BottomUp, Environment, Optimizer, TopDown};
    use dsq_net::TransitStubConfig;
    use dsq_query::ReuseRegistry;
    use dsq_workload::{WorkloadConfig, WorkloadGenerator};

    fn testbed() -> (Environment, dsq_workload::Workload) {
        let net = TransitStubConfig::emulab_32().generate(9).network;
        let env = Environment::build(net, 8);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 8,
                queries: 10,
                joins_per_query: 1..=4,
                ..WorkloadConfig::default()
            },
            55,
        )
        .generate(&env.network);
        (env, wl)
    }

    #[test]
    fn bottomup_deploys_faster_than_topdown() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let (mut bu_ms, mut bum_ms, mut td_ms) = (0.0, 0.0, 0.0);
        for q in &wl.queries {
            let mut s_bu = SearchStats::new();
            let mut s_bum = SearchStats::new();
            let mut s_td = SearchStats::new();
            let mut r1 = ReuseRegistry::new();
            let mut r2 = ReuseRegistry::new();
            let mut r3 = ReuseRegistry::new();
            let d_bu = BottomUp::new(&env)
                .optimize(&wl.catalog, q, &mut r1, &mut s_bu)
                .unwrap();
            let d_bum = BottomUp::with_placement(&env, dsq_core::BottomUpPlacement::MembersOnly)
                .optimize(&wl.catalog, q, &mut r3, &mut s_bum)
                .unwrap();
            let d_td = TopDown::new(&env)
                .optimize(&wl.catalog, q, &mut r2, &mut s_td)
                .unwrap();
            bu_ms += model.deployment_time(q.sink, &s_bu, &d_bu).total_ms();
            bum_ms += model.deployment_time(q.sink, &s_bum, &d_bum).total_ms();
            td_ms += model.deployment_time(q.sink, &s_td, &d_td).total_ms();
        }
        // The members-only placement reading is decisively faster (the
        // paper's ~70% at max_cs = 4; this testbed uses max_cs = 8 where
        // the hierarchy is flatter and the saving smaller); the default
        // descending Bottom-Up must still not be slower than Top-Down (it
        // stops climbing once sources are covered).
        assert!(
            bum_ms < td_ms,
            "members-only bottom-up {bum_ms} ms vs top-down {td_ms} ms"
        );
        assert!(
            bu_ms <= td_ms * 1.10,
            "descending bottom-up {bu_ms} ms vs top-down {td_ms} ms"
        );
    }

    #[test]
    fn larger_queries_take_longer() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let mut by_size: Vec<(usize, f64, usize)> = vec![(0, 0.0, 0); 8];
        for q in &wl.queries {
            let mut s = SearchStats::new();
            let mut r = ReuseRegistry::new();
            let d = TopDown::new(&env)
                .optimize(&wl.catalog, q, &mut r, &mut s)
                .unwrap();
            let t = model.deployment_time(q.sink, &s, &d).total_ms();
            let k = q.sources.len();
            by_size[k].0 = k;
            by_size[k].1 += t;
            by_size[k].2 += 1;
        }
        let sized: Vec<(usize, f64)> = by_size
            .iter()
            .filter(|(_, _, c)| *c > 0)
            .map(|(k, t, c)| (*k, t / *c as f64))
            .collect();
        if sized.len() >= 2 {
            assert!(
                sized.last().unwrap().1 > sized.first().unwrap().1,
                "deployment time should grow with query size: {sized:?}"
            );
        }
    }

    #[test]
    fn time_components_are_nonnegative() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let q = &wl.queries[0];
        let mut s = SearchStats::new();
        let mut r = ReuseRegistry::new();
        let d = TopDown::new(&env)
            .optimize(&wl.catalog, q, &mut r, &mut s)
            .unwrap();
        let t = model.deployment_time(q.sink, &s, &d);
        assert!(t.messaging_ms > 0.0);
        assert!(t.planning_ms > 0.0);
        assert!(t.total_ms() >= t.messaging_ms.max(t.planning_ms));
    }

    /// Per-query optimizer outputs for the protocol tests.
    fn planned(
        env: &Environment,
        wl: &dsq_workload::Workload,
    ) -> Vec<(dsq_net::NodeId, SearchStats, Deployment)> {
        wl.queries
            .iter()
            .map(|q| {
                let mut s = SearchStats::new();
                let mut r = ReuseRegistry::new();
                let d = TopDown::new(env)
                    .optimize(&wl.catalog, q, &mut r, &mut s)
                    .unwrap();
                (q.sink, s, d)
            })
            .collect()
    }

    #[test]
    fn zero_drop_protocol_matches_reliable_model_exactly() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let mut lossless = LossyProtocol::new(model.clone(), RetryPolicy::reliable(), 3);
        for (sink, stats, d) in planned(&env, &wl) {
            let reliable = model.deployment_time(sink, &stats, &d);
            let (lossy, delivered) = lossless.deployment_time(sink, &stats, &d);
            assert!(delivered);
            assert_eq!(lossy.retries, 0);
            assert_eq!(lossy.retry_ms, 0.0);
            assert_eq!(lossy.messaging_ms, reliable.messaging_ms, "bit-exact");
            assert_eq!(lossy.planning_ms, reliable.planning_ms, "bit-exact");
            assert_eq!(lossy.total_ms(), reliable.total_ms(), "bit-exact");
        }
    }

    #[test]
    fn losses_add_retry_time_and_count() {
        let (env, wl) = testbed();
        let model = EmulabModel::new(&env.network);
        let mut proto = LossyProtocol::new(model.clone(), RetryPolicy::lossy(0.3), 7);
        let (mut retries, mut retry_ms, mut delivered_all) = (0usize, 0.0, 0usize);
        for (sink, stats, d) in planned(&env, &wl) {
            let (t, delivered) = proto.deployment_time(sink, &stats, &d);
            retries += t.retries;
            retry_ms += t.retry_ms;
            delivered_all += usize::from(delivered);
            let reliable = model.deployment_time(sink, &stats, &d);
            assert!(
                t.total_ms() >= reliable.total_ms() - 1e-9 || !delivered,
                "losses can only slow a delivered deployment down"
            );
        }
        assert!(retries > 0, "30% drop over dozens of messages must retry");
        assert!(retry_ms > 0.0);
        assert!(delivered_all > 0, "most deployments still make it through");
    }

    #[test]
    fn certain_loss_exhausts_the_retry_budget() {
        let (env, wl) = testbed();
        let policy = RetryPolicy {
            drop_probability: 1.0,
            ..RetryPolicy::lossy(1.0)
        };
        let mut proto = LossyProtocol::new(EmulabModel::new(&env.network), policy, 5);
        let (sink, stats, d) = planned(&env, &wl).remove(0);
        let (t, delivered) = proto.deployment_time(sink, &stats, &d);
        assert!(!delivered, "nothing gets through at p = 1");
        assert_eq!(t.messaging_ms, 0.0, "no message ever transited");
        // First message: initial timeout plus max_retries backed-off waits.
        let expected: f64 = (0..=proto.policy.max_retries)
            .map(|i| proto.policy.timeout_ms * proto.policy.backoff.powi(i as i32))
            .sum();
        assert!((t.retry_ms - expected).abs() < 1e-9);
    }

    #[test]
    fn backoff_grows_waits_exponentially() {
        let net = TransitStubConfig::emulab_32().generate(9).network;
        let policy = RetryPolicy {
            drop_probability: 1.0,
            timeout_ms: 10.0,
            backoff: 3.0,
            max_retries: 3,
        };
        let mut proto = LossyProtocol::new(EmulabModel::new(&net), policy, 1);
        let a = net.nodes().next().unwrap();
        let b = net.nodes().nth(1).unwrap();
        let out = proto.send(a, b);
        assert!(!out.delivered);
        assert_eq!(out.retries, 3);
        // 10 + 30 + 90 + 270.
        assert!((out.wait_ms - 400.0).abs() < 1e-9);
    }
}
