//! Node-failure handling: coordinator failover and operator redeployment.
//!
//! "The virtual hierarchy is robust enough to adapt as necessary. … Failure
//! of coordinator and operator nodes can be handled by maintaining active
//! back-ups of those nodes within each cluster" (Section 2.1.1). This
//! module implements the recovery path end to end:
//!
//! 1. the failed node is deactivated in the hierarchy (clusters shrink,
//!    coordinators re-elected — the designated backup, i.e. the next-best
//!    medoid, takes over);
//! 2. standing deployments that ran an operator on the node are replanned
//!    over the surviving overlay;
//! 3. queries whose *sink* lived on the node cannot be saved and are
//!    reported as lost; queries whose *source stream origin* lived on the
//!    node are parked — their data resumes if the origin rejoins, at which
//!    point the retry pass replans them.

use dsq_net::NodeId;
use dsq_query::{Catalog, Deployment, FlatNode, LeafSource, Query, QueryId};

/// What a failure-recovery pass did.
#[derive(Clone, Debug, Default)]
pub struct FailureReport {
    /// Coordinator roles the failed node held (count of cluster levels it
    /// coordinated) — each was taken over by the cluster's re-elected
    /// coordinator.
    pub coordinator_roles_failed_over: usize,
    /// Queries redeployed because an operator ran on the failed node.
    pub redeployed: Vec<QueryId>,
    /// Queries lost because their source stream or sink was on the node.
    pub lost: Vec<QueryId>,
    /// Queries that touched the node but could not be replanned; they are
    /// *parked* in the runtime and retried on later membership changes.
    pub unplaced: Vec<QueryId>,
    /// Queries parked because a *source stream's origin* crashed: their
    /// data stops flowing, but resumes if the origin rejoins, so they wait
    /// in the parked pool (gated on data availability) instead of being
    /// forfeited like sink losses.
    pub source_parked: Vec<QueryId>,
    /// Standing cost before the failure was handled.
    pub cost_before: f64,
    /// Standing cost after recovery (lost queries excluded).
    pub cost_after: f64,
    /// Standing cost forfeited by the lost queries: the steady-state service
    /// they were receiving at failure time, now permanently gone.
    pub forfeited_cost: f64,
    /// Standing cost of the deployments torn down for parked queries; it
    /// comes back (possibly at a different level) when a retry places them.
    pub parked_cost: f64,
    /// `Σ (new − old)` over the redeployed queries' costs: the per-event
    /// recovery cost inflation.
    pub redeploy_cost_delta: f64,
    /// True when the overlay could not excise the node (it was at the
    /// minimum population, see
    /// [`MembershipError::LastMember`](dsq_hierarchy::MembershipError)):
    /// every affected query was forfeited without replanning.
    pub last_member_forfeit: bool,
    /// Memoized subplans retired by this failure's hierarchy surgery —
    /// just the crashed node's dirty ancestor chain under scoped
    /// invalidation, the whole cache under a full flush.
    pub cache_retired: u64,
}

/// What a node-recovery (rejoin) pass did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Protocol messages the join routing exchanged (Section 2.1.1).
    pub join_messages: usize,
    /// Parked queries successfully placed after the rejoin.
    pub redeployed: Vec<QueryId>,
    /// Queries still parked after the retry pass.
    pub still_parked: usize,
    /// Memoized subplans retired because the rejoin changed cluster
    /// membership along the recovered node's ancestor chain.
    pub cache_retired: u64,
}

/// Does a deployment touch `node` as an operator host, leaf host or sink?
pub(crate) fn uses_node(d: &Deployment, node: NodeId) -> bool {
    d.sink == node || d.placement.contains(&node)
}

/// Is the deployment unrecoverable (source stream or sink on the node)?
pub(crate) fn unrecoverable(d: &Deployment, q: &Query, catalog: &Catalog, node: NodeId) -> bool {
    if q.sink == node {
        return true;
    }
    d.plan.nodes().iter().any(|n| match n {
        FlatNode::Leaf {
            source: LeafSource::Base(id),
            ..
        } => catalog.stream(*id).node == node,
        _ => false,
    })
}
