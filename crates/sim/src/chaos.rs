//! Chaos harness: seeded fault schedules for the adaptive runtime.
//!
//! The paper argues the virtual hierarchy "is robust enough to adapt as
//! necessary" under node churn (Section 2.1.1) — this module turns that
//! claim into a repeatable experiment. A seeded [`FaultSchedule`] produces
//! a timeline of independent crashes, *correlated* failures (an entire
//! level-1 cluster — the overlay image of a stub domain — going dark at
//! once), node recoveries that rejoin through the membership protocol, and
//! link-cost degradations. A [`ChaosRunner`] drives an
//! [`AdaptiveRuntime`] through the timeline with every replacement
//! deployment instantiated over the lossy protocol of
//! [`crate::emulab::LossyProtocol`], checks structural and accounting
//! invariants after every event, and reports availability, repair times
//! and recovery cost inflation in a deterministic [`ChaosReport`].

use crate::adapt::{AdaptiveRuntime, LinkChange};
use crate::emulab::{EmulabModel, LossyProtocol, RetryPolicy};
use dsq_core::{Environment, InvalidationMode, Optimizer, SearchStats, TopDown};
use dsq_net::NodeId;
use dsq_query::{Catalog, Deployment, Query, QueryId, ReuseRegistry};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One injected fault.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Independent crash of a single node.
    Crash(NodeId),
    /// Correlated failure: every listed node (a level-1 cluster of the
    /// initial hierarchy, i.e. roughly one stub domain) crashes at once.
    CrashCluster(Vec<NodeId>),
    /// A previously crashed node recovers and rejoins the overlay.
    Rejoin(NodeId),
    /// A physical link's cost degrades by `factor` (congestion / rerouting
    /// around damage); fed to [`AdaptiveRuntime::handle_changes`].
    DegradeLink {
        /// Link endpoint.
        a: NodeId,
        /// Link endpoint.
        b: NodeId,
        /// Multiplier applied to the link's current cost (> 1 degrades).
        factor: f64,
    },
}

/// A fault stamped with its (simulated) injection time.
#[derive(Clone, Debug)]
pub struct TimedFault {
    /// Injection time in simulated milliseconds from the start of the run.
    pub at_ms: f64,
    /// The fault itself.
    pub fault: Fault,
}

/// Knobs of the schedule generator: event mix, count and pacing.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Relative weight of independent node crashes.
    pub crash_weight: f64,
    /// Relative weight of correlated cluster failures.
    pub correlated_weight: f64,
    /// Relative weight of node recoveries.
    pub rejoin_weight: f64,
    /// Relative weight of link degradations.
    pub degrade_weight: f64,
    /// Mean inter-event gap in milliseconds (exponentially distributed).
    pub mean_gap_ms: f64,
    /// Range the link-degradation factor is drawn from.
    pub degrade_factor: std::ops::Range<f64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            events: 50,
            crash_weight: 0.35,
            correlated_weight: 0.10,
            rejoin_weight: 0.35,
            degrade_weight: 0.20,
            mean_gap_ms: 5_000.0,
            degrade_factor: 2.0..20.0,
        }
    }
}

/// A fully materialized, seeded fault timeline.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    /// Events in injection order (non-decreasing `at_ms`).
    pub faults: Vec<TimedFault>,
}

impl FaultSchedule {
    /// Generate a schedule against the *initial* environment. The generator
    /// tracks which nodes it has taken down so rejoins target genuinely
    /// crashed nodes and the overlay is never scheduled below two members;
    /// the runner re-validates every event anyway, because adaptation can
    /// diverge from the generator's bookkeeping (e.g. a correlated fault
    /// truncated to protect the minimum population).
    pub fn generate(env: &Environment, cfg: &FaultConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut up: Vec<NodeId> = env.hierarchy.active_nodes();
        let mut down: Vec<NodeId> = Vec::new();
        // Stub-domain proxies for correlated faults: the initial leaf
        // clusters, largest first so early correlated events bite.
        let domains: Vec<Vec<NodeId>> = env
            .hierarchy
            .level(1)
            .iter()
            .map(|c| c.members.clone())
            .collect();
        let links: Vec<(NodeId, NodeId)> = env
            .network
            .nodes()
            .flat_map(|u| {
                env.network
                    .neighbors(u)
                    .iter()
                    .filter(move |l| u < l.to)
                    .map(move |l| (u, l.to))
            })
            .collect();
        let total_weight =
            cfg.crash_weight + cfg.correlated_weight + cfg.rejoin_weight + cfg.degrade_weight;
        assert!(total_weight > 0.0, "at least one fault class must be on");

        let mut faults = Vec::with_capacity(cfg.events);
        let mut t = 0.0;
        for _ in 0..cfg.events {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -cfg.mean_gap_ms * (1.0 - u).ln();
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut take = |weight: f64| {
                let hit = pick < weight;
                pick -= weight;
                hit
            };
            let fault = if take(cfg.crash_weight) {
                Self::gen_crash(&mut rng, &mut up, &mut down)
            } else if take(cfg.correlated_weight) {
                Self::gen_correlated(&mut rng, &domains, &mut up, &mut down)
            } else if take(cfg.rejoin_weight) {
                Self::gen_rejoin(&mut rng, &mut up, &mut down)
            } else {
                let &(a, b) = links.choose(&mut rng).expect("networks have links");
                Some(Fault::DegradeLink {
                    a,
                    b,
                    factor: rng.gen_range(cfg.degrade_factor.clone()),
                })
            };
            // A class that is not currently applicable (no one to rejoin,
            // too few nodes to crash) degrades to a link fault so the
            // schedule keeps its length.
            let fault = fault.unwrap_or_else(|| {
                let &(a, b) = links.choose(&mut rng).expect("networks have links");
                Fault::DegradeLink {
                    a,
                    b,
                    factor: rng.gen_range(cfg.degrade_factor.clone()),
                }
            });
            faults.push(TimedFault { at_ms: t, fault });
        }
        FaultSchedule { faults }
    }

    fn gen_crash(
        rng: &mut ChaCha8Rng,
        up: &mut Vec<NodeId>,
        down: &mut Vec<NodeId>,
    ) -> Option<Fault> {
        if up.len() <= 2 {
            return None;
        }
        let &n = up.choose(rng).unwrap();
        up.retain(|&m| m != n);
        down.push(n);
        Some(Fault::Crash(n))
    }

    fn gen_correlated(
        rng: &mut ChaCha8Rng,
        domains: &[Vec<NodeId>],
        up: &mut Vec<NodeId>,
        down: &mut Vec<NodeId>,
    ) -> Option<Fault> {
        let domain = domains.choose(rng)?;
        // Only members still up can crash, and at least two nodes must
        // survive the whole event.
        let mut victims: Vec<NodeId> = domain.iter().copied().filter(|n| up.contains(n)).collect();
        let spare = up.len().saturating_sub(2);
        victims.truncate(spare);
        if victims.is_empty() {
            return None;
        }
        up.retain(|m| !victims.contains(m));
        down.extend(victims.iter().copied());
        Some(Fault::CrashCluster(victims))
    }

    fn gen_rejoin(
        rng: &mut ChaCha8Rng,
        up: &mut Vec<NodeId>,
        down: &mut Vec<NodeId>,
    ) -> Option<Fault> {
        if down.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..down.len());
        let n = down.swap_remove(i);
        up.push(n);
        Some(Fault::Rejoin(n))
    }
}

/// What one applied fault did to the runtime.
#[derive(Clone, Debug, Default)]
pub struct EventOutcome {
    /// Injection time of the fault.
    pub at_ms: f64,
    /// Short class tag: `crash`, `crash-cluster`, `rejoin`, `degrade-link`,
    /// `forfeited` (a crash hit the overlay's two-member floor, so the
    /// victim's queries were given up without hierarchy surgery) or
    /// `skipped`.
    pub kind: &'static str,
    /// Queries lost to this event (source/sink on a dead node).
    pub lost: usize,
    /// Queries successfully redeployed by this event (failure repairs and
    /// parked queries placed after a rejoin).
    pub redeployed: usize,
    /// Queries newly parked by this event (no feasible placement, or the
    /// lossy protocol gave up instantiating the replacement).
    pub parked: usize,
    /// `Σ (new − old)` cost over this event's redeployments: how much more
    /// expensive the emergency placements are than what they replace.
    pub recovery_cost_delta: f64,
    /// Protocol time spent instantiating this event's replacement
    /// deployments (transit + planning + timeout waits), in simulated ms.
    pub repair_ms: f64,
}

/// Aggregate result of a chaos run. Fully determined by the schedule seed,
/// the protocol seed and the workload — two runs with identical inputs
/// produce identical reports.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Per-event outcomes, in schedule order (skipped events included).
    pub events: Vec<EventOutcome>,
    /// Events that changed runtime state.
    pub applied: usize,
    /// Events skipped as inapplicable (already-dead node, overlay at the
    /// two-member floor, unknown link).
    pub skipped: usize,
    /// Queries installed when the run started.
    pub installed_initially: usize,
    /// Queries lost over the whole run.
    pub lost: Vec<QueryId>,
    /// Successful redeployments over the whole run (repairs + un-parkings).
    pub redeployments: usize,
    /// Replacement deployments the lossy protocol failed to instantiate
    /// (the query was parked, not dropped).
    pub instantiation_failures: usize,
    /// Queries forfeited because a crash hit the overlay's two-member
    /// floor: the node's machine is gone but its membership slot cannot be
    /// excised (see [`dsq_hierarchy::MembershipError::LastMember`]), so its
    /// queries are recorded as lost without replanning.
    pub forfeited: usize,
    /// Queries still installed when the run ended.
    pub final_installed: usize,
    /// Queries still parked when the run ended.
    pub final_parked: usize,
    /// Time-weighted fraction of the initial query population that was
    /// live over the run (1.0 = no query ever down).
    pub availability: f64,
    /// Mean protocol time to re-instantiate service after a fault, over
    /// all successful redeployments, in simulated ms.
    pub mttr_ms: f64,
    /// Total protocol retransmissions across the run.
    pub protocol_retries: usize,
    /// Total timeout time burned by the lossy protocol, in simulated ms.
    pub protocol_retry_ms: f64,
    /// Invariant suites evaluated (one per event, plus one final).
    pub invariant_checks: usize,
    /// Subplan-cache hits across the whole run (initial install + every
    /// recovery replan). Zero when the runner's cache is off.
    pub cache_hits: u64,
    /// Subplan-cache misses across the whole run.
    pub cache_misses: u64,
    /// Memoized subplans retired by adaptation over the run — scoped dirty
    /// sets under [`InvalidationMode::Scoped`], whole-cache flushes under
    /// [`InvalidationMode::Flush`].
    pub cache_retired: u64,
    /// Replanning invocations the runtime issued over the run (repairs,
    /// parked retries, degradation re-optimizations).
    pub queries_replanned: u64,
    /// Standing cost when the run started.
    pub cost_initial: f64,
    /// Standing cost when the run ended.
    pub cost_final: f64,
    /// Simulated duration (time of the last event).
    pub duration_ms: f64,
}

/// Drives an [`AdaptiveRuntime`] through a [`FaultSchedule`], replanning
/// with Top-Down and instantiating every replacement deployment over the
/// lossy protocol.
#[derive(Clone, Debug)]
pub struct ChaosRunner {
    /// Retry policy of the deployment protocol used during recovery.
    pub policy: RetryPolicy,
    /// Seed of the protocol's loss process.
    pub protocol_seed: u64,
    /// Adaptation threshold handed to the runtime (see
    /// [`AdaptiveRuntime::threshold`]).
    pub threshold: f64,
    /// Run with the memoized subplan cache enabled. The runner always
    /// swaps a *fresh private* cache into the environment at run start
    /// ([`Environment::isolate_cache`]) so reports stay deterministic even
    /// when the caller's environment clones share a warmed cache.
    pub cache: bool,
    /// How adaptation retires memoized subplans (see
    /// [`AdaptiveRuntime::invalidation`]).
    pub invalidation: InvalidationMode,
}

impl Default for ChaosRunner {
    fn default() -> Self {
        ChaosRunner {
            policy: RetryPolicy::lossy(0.1),
            protocol_seed: 1,
            threshold: 0.2,
            cache: true,
            invalidation: InvalidationMode::Scoped,
        }
    }
}

/// Plan one query with Top-Down against the current environment.
fn plan(env: &Environment, catalog: &Catalog, q: &Query) -> Option<(Deployment, SearchStats)> {
    let mut reg = ReuseRegistry::new();
    let mut stats = SearchStats::new();
    let d = TopDown::new(env).optimize(catalog, q, &mut reg, &mut stats)?;
    Some((d, stats))
}

impl ChaosRunner {
    /// Install `queries` into a fresh runtime over `env` and run the whole
    /// schedule, checking invariants after every event. Panics (with the
    /// offending event in the message) on any invariant violation — this
    /// is a test harness, not production error handling.
    pub fn run(
        &self,
        mut env: Environment,
        catalog: &Catalog,
        queries: &[Query],
        schedule: &FaultSchedule,
    ) -> ChaosReport {
        env.isolate_cache(self.cache);
        let model = EmulabModel::new(&env.network);
        let mut protocol = LossyProtocol::new(model, self.policy, self.protocol_seed);
        let mut rt = AdaptiveRuntime::new(env, self.threshold);
        rt.invalidation = self.invalidation;
        for q in queries {
            if let Some((d, _)) = plan(&rt.env, catalog, q) {
                rt.install(q.clone(), d);
            }
        }
        let mut report = ChaosReport {
            installed_initially: rt.deployments().len(),
            cost_initial: rt.total_cost(),
            ..Default::default()
        };
        assert!(
            report.installed_initially > 0,
            "chaos run needs at least one installed query"
        );

        let mut live_time = 0.0; // ∫ live(t) dt
        let mut prev_t = 0.0;
        for tf in &schedule.faults {
            live_time += rt.deployments().len() as f64 * (tf.at_ms - prev_t);
            prev_t = tf.at_ms;
            let outcome = self.apply(&mut rt, &mut protocol, catalog, tf, &mut report);
            if dsq_obs::enabled() {
                dsq_obs::counter(&format!("chaos.event.{}", outcome.kind), 1);
            }
            if outcome.kind == "skipped" {
                report.skipped += 1;
            } else {
                report.applied += 1;
            }
            report.events.push(outcome);
            check_invariants(&rt, tf);
            report.invariant_checks += 1;
        }
        check_invariants_final(&rt);
        report.invariant_checks += 1;

        report.duration_ms = prev_t;
        report.availability = if prev_t > 0.0 {
            live_time / (prev_t * report.installed_initially as f64)
        } else {
            rt.deployments().len() as f64 / report.installed_initially as f64
        };
        report.final_installed = rt.deployments().len();
        report.final_parked = rt.parked().len();
        report.cost_final = rt.total_cost();
        report.cache_hits = rt.env.plan_cache.hits();
        report.cache_misses = rt.env.plan_cache.misses();
        report.cache_retired = rt.cache_retired();
        report.queries_replanned = rt.queries_replanned();
        let repairs: Vec<f64> = report
            .events
            .iter()
            .filter(|e| e.redeployed > 0)
            .map(|e| e.repair_ms / e.redeployed as f64)
            .collect();
        report.mttr_ms = if repairs.is_empty() {
            0.0
        } else {
            repairs.iter().sum::<f64>() / repairs.len() as f64
        };
        report
    }

    /// Apply one fault; returns its outcome (kind `"skipped"` when it was
    /// inapplicable to the current state).
    fn apply(
        &self,
        rt: &mut AdaptiveRuntime,
        protocol: &mut LossyProtocol,
        catalog: &Catalog,
        tf: &TimedFault,
        report: &mut ChaosReport,
    ) -> EventOutcome {
        let mut out = EventOutcome {
            at_ms: tf.at_ms,
            kind: "skipped",
            ..Default::default()
        };
        match &tf.fault {
            Fault::Crash(n) => match self.crash_one(rt, protocol, catalog, *n, &mut out, report) {
                CrashEffect::Skipped => {}
                CrashEffect::Applied => out.kind = "crash",
                CrashEffect::Forfeited => out.kind = "forfeited",
            },
            Fault::CrashCluster(members) => {
                let mut repaired = false;
                let mut forfeited = false;
                for &n in members {
                    match self.crash_one(rt, protocol, catalog, n, &mut out, report) {
                        CrashEffect::Skipped => {}
                        CrashEffect::Applied => repaired = true,
                        CrashEffect::Forfeited => forfeited = true,
                    }
                }
                if repaired {
                    out.kind = "crash-cluster";
                } else if forfeited {
                    out.kind = "forfeited";
                }
            }
            Fault::Rejoin(n) => {
                if rt.env.hierarchy.is_active(*n) {
                    return out;
                }
                out.kind = "rejoin";
                // Contact the nearest live overlay member, as a recovering
                // node would.
                let via = *rt
                    .env
                    .hierarchy
                    .active_nodes()
                    .iter()
                    .min_by(|&&a, &&b| {
                        rt.env
                            .dm
                            .get(a, *n)
                            .total_cmp(&rt.env.dm.get(b, *n))
                            .then(a.0.cmp(&b.0))
                    })
                    .expect("overlay is never empty");
                let mut repair = RepairTally::default();
                let recovery = rt.handle_node_recovery(catalog, *n, via, |env, q| {
                    instantiate(env, catalog, q, protocol, &mut repair)
                });
                out.redeployed = recovery.redeployed.len();
                out.repair_ms = repair.time_ms;
                out.parked = repair.instantiation_failures;
                report.redeployments += recovery.redeployed.len();
                report.instantiation_failures += repair.instantiation_failures;
                report.protocol_retries += repair.retries;
                report.protocol_retry_ms += repair.retry_ms;
            }
            Fault::DegradeLink { a, b, factor } => {
                let Some(link) = rt.env.network.find_link(*a, *b) else {
                    return out;
                };
                out.kind = "degrade-link";
                let change = LinkChange {
                    a: *a,
                    b: *b,
                    new_cost: link.cost * factor,
                };
                rt.handle_changes(&[change], |env, q| plan(env, catalog, q).map(|(d, _)| d));
            }
        }
        out
    }

    /// Crash one node through the failure path; [`CrashEffect::Skipped`]
    /// when inapplicable (already dead), [`CrashEffect::Forfeited`] when the
    /// overlay sits at the two-member floor and the node's queries were
    /// given up instead of the run aborting on an irreparable hierarchy.
    fn crash_one(
        &self,
        rt: &mut AdaptiveRuntime,
        protocol: &mut LossyProtocol,
        catalog: &Catalog,
        n: NodeId,
        out: &mut EventOutcome,
        report: &mut ChaosReport,
    ) -> CrashEffect {
        if !rt.env.hierarchy.is_active(n) {
            return CrashEffect::Skipped;
        }
        if rt.env.hierarchy.active_nodes().len() <= 2 {
            // Generated schedules never cross the floor, but handcrafted
            // ones can (e.g. crash-everything): removing the node would
            // strand the overlay (MembershipError::LastMember one step
            // later), so forfeit its queries and keep the structure.
            let fr = rt.forfeit_node_queries(n);
            let expected = fr.cost_before - fr.forfeited_cost;
            assert!(
                (fr.cost_after - expected).abs() <= 1e-6 * fr.cost_before.max(1.0),
                "cost accounting violated forfeiting at {n:?}: after {} vs expected {expected}",
                fr.cost_after
            );
            out.lost += fr.lost.len();
            report.forfeited += fr.lost.len();
            report.lost.extend(fr.lost);
            dsq_obs::counter("chaos.forfeited", 1);
            return CrashEffect::Forfeited;
        }
        let mut repair = RepairTally::default();
        let fr = rt.handle_node_failure(catalog, n, |env, q| {
            instantiate(env, catalog, q, protocol, &mut repair)
        });
        // Cost-accounting conservation: the standing cost after recovery
        // must equal the cost before, minus what the lost and parked
        // queries were consuming, plus the redeployment inflation.
        let expected = fr.cost_before - fr.forfeited_cost - fr.parked_cost + fr.redeploy_cost_delta;
        assert!(
            (fr.cost_after - expected).abs() <= 1e-6 * fr.cost_before.max(1.0),
            "cost accounting violated at crash of {n:?}: after {} vs expected {expected}",
            fr.cost_after
        );
        out.lost += fr.lost.len();
        out.redeployed += fr.redeployed.len();
        out.parked += fr.unplaced.len() + fr.source_parked.len();
        out.recovery_cost_delta += fr.redeploy_cost_delta;
        out.repair_ms += repair.time_ms;
        report.lost.extend(fr.lost);
        report.redeployments += fr.redeployed.len();
        report.instantiation_failures += repair.instantiation_failures;
        report.protocol_retries += repair.retries;
        report.protocol_retry_ms += repair.retry_ms;
        CrashEffect::Applied
    }
}

/// What [`ChaosRunner::crash_one`] did with a crash.
enum CrashEffect {
    /// Node already dead — nothing to do.
    Skipped,
    /// Normal path: hierarchy repaired, queries replanned.
    Applied,
    /// Overlay at the two-member floor: queries forfeited, structure kept.
    Forfeited,
}

/// Protocol-side bookkeeping for one recovery pass.
#[derive(Default)]
struct RepairTally {
    time_ms: f64,
    retries: usize,
    retry_ms: f64,
    instantiation_failures: usize,
}

/// Replan `q` and push the replacement through the lossy protocol; `None`
/// parks the query (either no feasible placement or the protocol exhausted
/// its retry budget mid-instantiation).
fn instantiate(
    env: &Environment,
    catalog: &Catalog,
    q: &Query,
    protocol: &mut LossyProtocol,
    tally: &mut RepairTally,
) -> Option<Deployment> {
    let (d, stats) = plan(env, catalog, q)?;
    let (t, delivered) = protocol.deployment_time(q.sink, &stats, &d);
    tally.retries += t.retries;
    tally.retry_ms += t.retry_ms;
    if delivered {
        tally.time_ms += t.total_ms();
        Some(d)
    } else {
        tally.instantiation_failures += 1;
        None
    }
}

/// Structural invariants that must hold after every event.
fn check_invariants(rt: &AdaptiveRuntime, tf: &TimedFault) {
    rt.env.hierarchy.check_invariants();
    for d in rt.deployments() {
        for &n in d.placement.iter().chain(std::iter::once(&d.sink)) {
            assert!(
                rt.env.hierarchy.is_active(n),
                "deployment of {:?} references inactive node {n:?} after {tf:?}",
                d.query
            );
        }
    }
}

/// End-of-run sanity on the final state.
fn check_invariants_final(rt: &AdaptiveRuntime) {
    rt.env.hierarchy.check_invariants();
    assert!(
        rt.env.hierarchy.active_nodes().len() >= 2,
        "overlay dropped below two members"
    );
    let standing: f64 = rt.deployments().iter().map(|d| d.cost).sum();
    assert!(
        (standing - rt.total_cost()).abs() < 1e-9,
        "total_cost out of sync with deployments"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::TransitStubConfig;
    use dsq_workload::{WorkloadConfig, WorkloadGenerator};

    fn setup() -> (Environment, dsq_workload::Workload) {
        let net = TransitStubConfig::paper_64().generate(23).network;
        let env = Environment::build(net, 16);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 10,
                queries: 6,
                joins_per_query: 2..=3,
                ..WorkloadConfig::default()
            },
            71,
        )
        .generate(&env.network);
        (env, wl)
    }

    #[test]
    fn schedule_is_deterministic_and_keeps_two_nodes_up() {
        let (env, _) = setup();
        let cfg = FaultConfig {
            events: 60,
            ..FaultConfig::default()
        };
        let s1 = FaultSchedule::generate(&env, &cfg, 5);
        let s2 = FaultSchedule::generate(&env, &cfg, 5);
        assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
        assert_eq!(s1.faults.len(), 60);
        // Replay the generator's bookkeeping: the scheduled crash set can
        // never take the population below 2.
        let mut population = env.hierarchy.active_nodes().len();
        for tf in &s1.faults {
            match &tf.fault {
                Fault::Crash(_) => population -= 1,
                Fault::CrashCluster(m) => population -= m.len(),
                Fault::Rejoin(_) => population += 1,
                Fault::DegradeLink { .. } => {}
            }
            assert!(population >= 2, "schedule underflows the overlay");
        }
    }

    #[test]
    fn schedule_mixes_fault_classes() {
        let (env, _) = setup();
        let cfg = FaultConfig {
            events: 80,
            ..FaultConfig::default()
        };
        let s = FaultSchedule::generate(&env, &cfg, 11);
        let crashes = s
            .faults
            .iter()
            .filter(|f| matches!(f.fault, Fault::Crash(_)))
            .count();
        let rejoins = s
            .faults
            .iter()
            .filter(|f| matches!(f.fault, Fault::Rejoin(_)))
            .count();
        let degrades = s
            .faults
            .iter()
            .filter(|f| matches!(f.fault, Fault::DegradeLink { .. }))
            .count();
        assert!(crashes > 0 && rejoins > 0 && degrades > 0);
        let times: Vec<f64> = s.faults.iter().map(|f| f.at_ms).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "times sorted");
    }

    #[test]
    fn chaos_run_reports_consistent_totals() {
        let (env, wl) = setup();
        let cfg = FaultConfig {
            events: 40,
            mean_gap_ms: 1_000.0,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&env, &cfg, 3);
        let runner = ChaosRunner::default();
        let report = runner.run(env, &wl.catalog, &wl.queries, &schedule);
        assert_eq!(report.applied + report.skipped, 40);
        assert!(report.availability > 0.0 && report.availability <= 1.0 + 1e-12);
        assert_eq!(report.invariant_checks, 41);
        assert!(
            report.final_installed + report.final_parked + report.lost.len()
                <= report.installed_initially + report.redeployments
        );
    }

    #[test]
    fn chaos_report_is_deterministic() {
        let (env, wl) = setup();
        let cfg = FaultConfig {
            events: 30,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&env, &cfg, 9);
        let runner = ChaosRunner {
            policy: RetryPolicy::lossy(0.15),
            protocol_seed: 4,
            ..ChaosRunner::default()
        };
        let r1 = runner.run(env.clone(), &wl.catalog, &wl.queries, &schedule);
        let r2 = runner.run(env, &wl.catalog, &wl.queries, &schedule);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn crashing_every_member_forfeits_instead_of_aborting() {
        // Handcrafted worst case the generator never emits: a schedule that
        // crashes every single overlay member. The runner must complete —
        // crashes at the two-member floor are recorded as `forfeited`
        // (hierarchy/src/membership.rs would refuse the removal with
        // MembershipError::LastMember) — rather than panicking mid-run.
        let (env, wl) = setup();
        let all = env.hierarchy.active_nodes();
        let population = all.len();
        let faults = all
            .into_iter()
            .enumerate()
            .map(|(i, n)| TimedFault {
                at_ms: (i as f64 + 1.0) * 100.0,
                fault: Fault::Crash(n),
            })
            .collect();
        let schedule = FaultSchedule { faults };
        let runner = ChaosRunner::default();
        let report = runner.run(env, &wl.catalog, &wl.queries, &schedule);
        assert_eq!(report.applied + report.skipped, population);
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| e.kind == "forfeited")
                .count(),
            2,
            "the last two crashes hit the floor and must be forfeited"
        );
        // Every query ended somewhere: nothing standing (every sink died at
        // some point), so the population splits exactly into lost + parked.
        assert_eq!(report.final_installed, 0);
        assert_eq!(
            report.lost.len() + report.final_parked,
            report.installed_initially
        );
    }

    #[test]
    fn cache_and_invalidation_mode_do_not_change_outcomes() {
        // The memoized subplan cache (and how it is retired) is a pure
        // performance artifact: a run with the cache off, one with scoped
        // retirement and one with full flushes must agree on every event
        // outcome, every cost bit and every protocol timing.
        let (env, wl) = setup();
        let cfg = FaultConfig {
            events: 30,
            mean_gap_ms: 1_000.0,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&env, &cfg, 9);
        let run = |cache: bool, invalidation: InvalidationMode| {
            let runner = ChaosRunner {
                cache,
                invalidation,
                ..ChaosRunner::default()
            };
            let mut r = runner.run(env.clone(), &wl.catalog, &wl.queries, &schedule);
            // Cache accounting legitimately differs across the arms.
            r.cache_hits = 0;
            r.cache_misses = 0;
            r.cache_retired = 0;
            r
        };
        let off = run(false, InvalidationMode::Scoped);
        let scoped = run(true, InvalidationMode::Scoped);
        let flush = run(true, InvalidationMode::Flush);
        assert_eq!(format!("{off:?}"), format!("{scoped:?}"));
        assert_eq!(format!("{off:?}"), format!("{flush:?}"));
    }

    #[test]
    fn reliable_protocol_never_fails_instantiation() {
        let (env, wl) = setup();
        let cfg = FaultConfig {
            events: 30,
            degrade_weight: 0.0,
            ..FaultConfig::default()
        };
        let schedule = FaultSchedule::generate(&env, &cfg, 13);
        let runner = ChaosRunner {
            policy: RetryPolicy::reliable(),
            protocol_seed: 2,
            ..ChaosRunner::default()
        };
        let report = runner.run(env, &wl.catalog, &wl.queries, &schedule);
        assert_eq!(report.instantiation_failures, 0);
        assert_eq!(report.protocol_retries, 0);
        assert_eq!(report.protocol_retry_ms, 0.0);
    }
}
