//! Value-level plan execution: do deployed plans compute the *right
//! answers*?
//!
//! The statistical simulators validate costs and rates; this module
//! validates semantics. It materializes bounded batches of concrete tuples
//! for each base stream, pushes them through a deployment's operator tree —
//! selections at the leaves, symmetric hash joins at the operators, derived
//! leaves re-derived from their covered tables — and compares the delivered
//! multiset against a reference evaluation of the query (a straightforward
//! fold over the sources). Any plan an optimizer can produce (bushy shapes,
//! reused operators, arbitrary placements) must match the reference
//! exactly.
//!
//! Batches model one window's worth of data; windowing over time is the
//! statistical simulator's department.

use dsq_query::{
    Catalog, CmpOp, Deployment, FlatNode, JoinPredicate, LeafSource, Query, SelectionPredicate,
    StreamId, StreamSet,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap};

/// One tuple: attribute values keyed by `(stream, attribute)` so joined
/// rows concatenate without collision.
pub type Row = BTreeMap<(StreamId, String), i64>;

/// Concrete batch tables per stream.
pub type Tables = HashMap<StreamId, Vec<Row>>;

/// Generate `rows_per_stream` tuples for every catalog stream. Attribute
/// values are drawn uniformly from `0..key_domain`, so equi-joins on shared
/// domains produce matches with selectivity ≈ `1/key_domain`.
pub fn generate_tables(
    catalog: &Catalog,
    rows_per_stream: usize,
    key_domain: i64,
    seed: u64,
) -> Tables {
    assert!(key_domain > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tables = Tables::new();
    for s in catalog.streams() {
        let mut rows = Vec::with_capacity(rows_per_stream);
        for _ in 0..rows_per_stream {
            let mut row = Row::new();
            if s.schema.attributes.is_empty() {
                row.insert((s.id, "value".to_string()), rng.gen_range(0..key_domain));
            }
            for attr in &s.schema.attributes {
                row.insert((s.id, attr.clone()), rng.gen_range(0..key_domain));
            }
            rows.push(row);
        }
        tables.insert(s.id, rows);
    }
    tables
}

fn selection_passes(row: &Row, sel: &SelectionPredicate) -> bool {
    let key = (sel.stream, sel.attr.clone());
    let v = match row.get(&key) {
        Some(v) => *v as f64,
        None => return true, // attribute not materialized: pass-through
    };
    match sel.op {
        CmpOp::Eq => v == sel.value,
        CmpOp::Lt => v < sel.value,
        CmpOp::Le => v <= sel.value,
        CmpOp::Gt => v > sel.value,
        CmpOp::Ge => v >= sel.value,
    }
}

/// The join predicates crossing a (left, right) coverage cut.
fn cut_predicates<'q>(
    preds: &'q [JoinPredicate],
    left: &StreamSet,
    right: &StreamSet,
) -> Vec<&'q JoinPredicate> {
    preds
        .iter()
        .filter(|p| {
            (left.contains(p.left) && right.contains(p.right))
                || (left.contains(p.right) && right.contains(p.left))
        })
        .collect()
}

/// Symmetric hash join of two row sets under the query's predicates across
/// the cut (cross product when none apply — mirroring the estimator's
/// σ = 1.0 default).
fn join_rows(
    left: &[Row],
    right: &[Row],
    left_cov: &StreamSet,
    right_cov: &StreamSet,
    preds: &[JoinPredicate],
) -> Vec<Row> {
    let cut = cut_predicates(preds, left_cov, right_cov);
    // Hash the right side by its key vector across the cut predicates.
    let right_key = |row: &Row| -> Option<Vec<i64>> {
        cut.iter()
            .map(|p| {
                let (s, a) = if right_cov.contains(p.left) {
                    (p.left, &p.left_attr)
                } else {
                    (p.right, &p.right_attr)
                };
                row.get(&(s, a.clone())).copied()
            })
            .collect()
    };
    let left_key = |row: &Row| -> Option<Vec<i64>> {
        cut.iter()
            .map(|p| {
                let (s, a) = if left_cov.contains(p.left) {
                    (p.left, &p.left_attr)
                } else {
                    (p.right, &p.right_attr)
                };
                row.get(&(s, a.clone())).copied()
            })
            .collect()
    };
    let mut index: HashMap<Vec<i64>, Vec<&Row>> = HashMap::new();
    for r in right {
        if let Some(k) = right_key(r) {
            index.entry(k).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for l in left {
        let Some(k) = left_key(l) else { continue };
        if let Some(matches) = index.get(&k) {
            for r in matches {
                let mut combined = l.clone();
                combined.extend((*r).clone());
                out.push(combined);
            }
        }
    }
    out
}

/// Filtered base table of one stream under the query's selections.
fn scan(tables: &Tables, query: &Query, stream: StreamId) -> Vec<Row> {
    tables[&stream]
        .iter()
        .filter(|row| {
            query
                .selections
                .iter()
                .filter(|s| s.stream == stream)
                .all(|s| selection_passes(row, s))
        })
        .cloned()
        .collect()
}

/// Join of an arbitrary covered set, built left-to-right — used both as the
/// reference evaluation and to materialize reused derived leaves (whose
/// content is, by definition, the join of their covered base streams under
/// the same predicates).
fn join_covered(tables: &Tables, query: &Query, covered: &StreamSet) -> Vec<Row> {
    let mut iter = covered.iter();
    let first = iter.next().expect("non-empty covered set");
    let mut acc = scan(tables, query, first);
    let mut acc_cov = StreamSet::singleton(first);
    for s in iter {
        let right = scan(tables, query, s);
        let right_cov = StreamSet::singleton(s);
        acc = join_rows(&acc, &right, &acc_cov, &right_cov, &query.join_predicates);
        acc_cov = acc_cov.union(&right_cov);
    }
    acc
}

/// Reference evaluation: the query's full join, independent of any plan.
pub fn reference_result(tables: &Tables, query: &Query) -> Vec<Row> {
    join_covered(tables, query, &query.source_set())
}

/// Execute a deployment's plan tree over the batch tables.
pub fn execute_deployment(tables: &Tables, query: &Query, d: &Deployment) -> Vec<Row> {
    fn eval(tables: &Tables, query: &Query, d: &Deployment, i: usize) -> Vec<Row> {
        match &d.plan.nodes()[i] {
            FlatNode::Leaf { source, .. } => match source {
                LeafSource::Base(id) => scan(tables, query, *id),
                LeafSource::Derived { covered, .. } => join_covered(tables, query, covered),
            },
            FlatNode::Join { left, right, .. } => {
                let l = eval(tables, query, d, *left);
                let r = eval(tables, query, d, *right);
                join_rows(
                    &l,
                    &r,
                    d.plan.nodes()[*left].covered(),
                    d.plan.nodes()[*right].covered(),
                    &query.join_predicates,
                )
            }
        }
    }
    eval(tables, query, d, d.plan.root())
}

/// Compare two result multisets (order-insensitive).
pub fn same_result(a: &[Row], b: &[Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let canon = |rows: &[Row]| -> Vec<String> {
        let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        v.sort();
        v
    };
    canon(a) == canon(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{BottomUp, Environment, Optimal, Optimizer, SearchStats, TopDown};
    use dsq_net::{NodeId, TransitStubConfig};
    use dsq_query::{QueryId, ReuseRegistry, Schema};
    use dsq_workload::airline_scenario;

    #[test]
    fn airline_q1_and_q2_compute_correct_answers_with_reuse() {
        let sc = airline_scenario();
        let env = Environment::build(sc.network.clone(), 4);
        let tables = generate_tables(&sc.catalog, 60, 6, 1);
        let mut registry = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let td = TopDown::new(&env);

        for q in &sc.queries {
            // Value-domain note: the scenario's predicates use hashed
            // string codes far outside 0..6; drop the Eq-on-code filter so
            // the batch produces data, keep the numeric window.
            let mut q = q.clone();
            q.selections.retain(|s| s.value < 1000.0);
            let d = td
                .optimize(&sc.catalog, &q, &mut registry, &mut stats)
                .unwrap();
            let got = execute_deployment(&tables, &q, &d);
            let want = reference_result(&tables, &q);
            assert!(
                same_result(&got, &want),
                "{}: deployed plan produced {} rows, reference {}",
                q.id,
                got.len(),
                want.len()
            );
            assert!(!want.is_empty(), "the batch should produce joins");
            registry.register_deployment(&q, &d);
        }
        // The second query reused the first's operator and still matched.
        assert!(!registry.is_empty());
    }

    /// Random join-graph queries: every optimizer's plan must equal the
    /// reference on every instance.
    #[test]
    fn random_plans_compute_reference_results() {
        let net = TransitStubConfig::paper_64().generate(4).network;
        let env = Environment::build(net, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for case in 0..10u32 {
            // 3–4 streams chained by equi-joins on a shared "k" attribute.
            let k = 3 + (case % 2) as usize;
            let stubs = env.network.stub_nodes();
            let mut catalog = Catalog::new();
            let ids: Vec<StreamId> = (0..k)
                .map(|i| {
                    catalog.add_stream(
                        format!("S{i}"),
                        rng.gen_range(5.0..20.0),
                        stubs[rng.gen_range(0..stubs.len())],
                        Schema::new([format!("k{i}"), format!("v{i}")]),
                    )
                })
                .collect();
            for w in ids.windows(2) {
                catalog.set_selectivity(w[0], w[1], 0.2);
            }
            let mut q = Query::join(QueryId(case), ids.clone(), stubs[0]);
            for (i, w) in ids.windows(2).enumerate() {
                q.join_predicates.push(JoinPredicate::new(
                    w[0],
                    format!("k{i}"),
                    w[1],
                    format!("k{}", i + 1),
                ));
            }
            // One numeric selection.
            q.selections
                .push(SelectionPredicate::new(ids[0], "v0", CmpOp::Lt, 3.0, 0.6));
            q.validate();

            let tables = generate_tables(&catalog, 40, 5, case as u64);
            let want = reference_result(&tables, &q);
            for alg in [
                &TopDown::new(&env) as &dyn Optimizer,
                &BottomUp::new(&env),
                &Optimal::new(&env),
            ] {
                let mut reg = ReuseRegistry::new();
                let mut stats = SearchStats::new();
                let d = alg.optimize(&catalog, &q, &mut reg, &mut stats).unwrap();
                let got = execute_deployment(&tables, &q, &d);
                assert!(
                    same_result(&got, &want),
                    "case {case} {}: {} rows vs reference {}",
                    alg.name(),
                    got.len(),
                    want.len()
                );
            }
        }
    }

    #[test]
    fn selections_filter_rows() {
        let mut catalog = Catalog::new();
        let s = catalog.add_stream("S", 10.0, NodeId(0), Schema::new(["x"]));
        let mut q = Query::join(QueryId(0), [s], NodeId(0));
        q.selections
            .push(SelectionPredicate::new(s, "x", CmpOp::Lt, 2.0, 0.4));
        let tables = generate_tables(&catalog, 100, 5, 3);
        let filtered = scan(&tables, &q, s);
        assert!(!filtered.is_empty() && filtered.len() < 100);
        for row in &filtered {
            assert!(row[&(s, "x".to_string())] < 2);
        }
    }

    #[test]
    fn cross_product_when_no_predicates_apply() {
        let mut catalog = Catalog::new();
        let a = catalog.add_stream("A", 10.0, NodeId(0), Schema::new(["x"]));
        let b = catalog.add_stream("B", 10.0, NodeId(0), Schema::new(["y"]));
        let q = Query::join(QueryId(0), [a, b], NodeId(0));
        let tables = generate_tables(&catalog, 7, 5, 4);
        let result = reference_result(&tables, &q);
        assert_eq!(result.len(), 49, "no predicates ⇒ cross product");
    }

    #[test]
    fn same_result_detects_differences() {
        let mut r1 = Row::new();
        r1.insert((StreamId(0), "x".into()), 1);
        let mut r2 = Row::new();
        r2.insert((StreamId(0), "x".into()), 2);
        assert!(same_result(&[r1.clone()], &[r1.clone()]));
        assert!(!same_result(&[r1.clone()], &[r2.clone()]));
        assert!(!same_result(&[r1.clone()], &[r1.clone(), r2]));
        // Multiset semantics: duplicates matter.
        assert!(same_result(&[r1.clone(), r1.clone()], &[r1.clone(), r1]));
    }
}
