//! Run-time query plan migration.
//!
//! "In on-going work we are exploring run-time query plan migrations"
//! (Section 5). When the middleware re-optimizes a standing query, the new
//! deployment is not free: every stateful operator that moves must ship its
//! window contents to the new node before the old one can be torn down.
//! [`MigrationPlan`] prices that transfer and weighs it against the
//! steady-state saving, yielding a *break-even time* — migrate only if the
//! query will live longer than that.
//!
//! Operator identity across plans is logical: two operators are "the same"
//! when they produce the same covered source set (the reuse signature), in
//! which case the old window state is valid for the new operator and can be
//! shipped instead of warmed up from scratch.

use dsq_net::{DistanceMatrix, NodeId};
use dsq_query::{Deployment, FlatNode, QueryId, StreamSet};

/// One operator's move.
#[derive(Clone, Debug)]
pub struct OperatorMove {
    /// Covered source set identifying the operator logically.
    pub covered: StreamSet,
    /// Node the operator currently runs on.
    pub from: NodeId,
    /// Node the new deployment places it on.
    pub to: NodeId,
    /// Estimated state size (window contents, in data units).
    pub state_size: f64,
}

/// Costed migration from one deployment to another.
#[derive(Clone, Debug)]
pub struct MigrationPlan {
    /// Query being migrated.
    pub query: QueryId,
    /// Operators that move (same logical operator, different node).
    pub moves: Vec<OperatorMove>,
    /// Logical operators only present in the new plan (fresh windows —
    /// warm-up, no transfer).
    pub fresh_operators: usize,
    /// Logical operators only present in the old plan (torn down).
    pub retired_operators: usize,
    /// One-time cost of shipping moved state (Σ state × dist).
    pub state_transfer_cost: f64,
    /// Per-unit-time saving of the new deployment (old − new cost).
    pub steady_state_saving: f64,
}

impl MigrationPlan {
    /// Time after which the migration has paid for itself; `None` when the
    /// new deployment does not actually save anything.
    pub fn breakeven_time(&self) -> Option<f64> {
        if self.steady_state_saving > 0.0 {
            Some(self.state_transfer_cost / self.steady_state_saving)
        } else {
            None
        }
    }

    /// Is the migration worth it for a query expected to keep running for
    /// `horizon` more time units?
    pub fn worthwhile(&self, horizon: f64) -> bool {
        match self.breakeven_time() {
            Some(t) => t <= horizon,
            None => false,
        }
    }
}

/// Per-join window state estimate: both windows hold `rate × window` tuples
/// of each input.
fn operator_state(deployment: &Deployment, join_idx: usize, window: f64) -> f64 {
    match &deployment.plan.nodes()[join_idx] {
        FlatNode::Join { left, right, .. } => {
            (deployment.plan.nodes()[*left].rate() + deployment.plan.nodes()[*right].rate())
                * window
        }
        FlatNode::Leaf { .. } => 0.0,
    }
}

/// Plan the migration from `old` to `new` (deployments of the same query).
///
/// `window` is the join window length (state per operator = input rates ×
/// window); `dm` prices the state transfer over the network.
pub fn plan_migration(
    old: &Deployment,
    new: &Deployment,
    dm: &DistanceMatrix,
    window: f64,
) -> MigrationPlan {
    assert_eq!(old.query, new.query, "migration is per query");
    let collect = |d: &Deployment| -> Vec<(StreamSet, usize)> {
        d.plan
            .join_indices()
            .into_iter()
            .map(|i| (d.plan.nodes()[i].covered().clone(), i))
            .collect()
    };
    let old_ops = collect(old);
    let new_ops = collect(new);

    let mut moves = Vec::new();
    let mut fresh = 0usize;
    let mut transfer = 0.0;
    for (covered, ni) in &new_ops {
        match old_ops.iter().find(|(c, _)| c == covered) {
            Some((_, oi)) => {
                let from = old.placement[*oi];
                let to = new.placement[*ni];
                if from != to {
                    let state_size = operator_state(old, *oi, window);
                    transfer += state_size * dm.get(from, to);
                    moves.push(OperatorMove {
                        covered: covered.clone(),
                        from,
                        to,
                        state_size,
                    });
                }
            }
            None => fresh += 1,
        }
    }
    let retired = old_ops
        .iter()
        .filter(|(c, _)| !new_ops.iter().any(|(nc, _)| nc == c))
        .count();

    MigrationPlan {
        query: old.query,
        moves,
        fresh_operators: fresh,
        retired_operators: retired,
        state_transfer_cost: transfer,
        steady_state_saving: old.cost - new.cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::{LinkKind, Metric, Network};
    use dsq_query::{Catalog, FlatPlan, JoinTree, Query, QueryId, Schema};

    fn two_deployments() -> (DistanceMatrix, Deployment, Deployment) {
        let mut net = Network::new(4);
        for i in 0..3u32 {
            net.add_link(NodeId(i), NodeId(i + 1), 1.0, 1.0, LinkKind::Stub);
        }
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let mut c = Catalog::new();
        let a = c.add_stream("A", 10.0, NodeId(0), Schema::default());
        let b = c.add_stream("B", 4.0, NodeId(3), Schema::default());
        c.set_selectivity(a, b, 0.1);
        let q = Query::join(QueryId(0), [a, b], NodeId(2));
        let tree = JoinTree::join(JoinTree::base(a), JoinTree::base(b));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let old = Deployment::evaluate(
            q.id,
            plan.clone(),
            vec![NodeId(0), NodeId(3), NodeId(3)],
            NodeId(2),
            &dm,
        );
        let new = Deployment::evaluate(
            q.id,
            plan,
            vec![NodeId(0), NodeId(3), NodeId(0)],
            NodeId(2),
            &dm,
        );
        (dm, old, new)
    }

    #[test]
    fn migration_prices_moved_state() {
        let (dm, old, new) = two_deployments();
        let m = plan_migration(&old, &new, &dm, 0.5);
        assert_eq!(m.moves.len(), 1);
        let mv = &m.moves[0];
        assert_eq!((mv.from, mv.to), (NodeId(3), NodeId(0)));
        // State = (10 + 4) × 0.5 = 7; distance 3 ⇒ transfer 21.
        assert!((mv.state_size - 7.0).abs() < 1e-12);
        assert!((m.state_transfer_cost - 21.0).abs() < 1e-12);
        assert_eq!(m.fresh_operators, 0);
        assert_eq!(m.retired_operators, 0);
        // old: A 0 hops (join at n3? A from n0 to n3 = 30) …
        assert!((m.steady_state_saving - (old.cost - new.cost)).abs() < 1e-12);
    }

    #[test]
    fn breakeven_logic() {
        let (dm, old, new) = two_deployments();
        let m = plan_migration(&old, &new, &dm, 0.5);
        if m.steady_state_saving > 0.0 {
            let t = m.breakeven_time().unwrap();
            assert!(m.worthwhile(t + 1.0));
            assert!(!m.worthwhile(t - 1.0));
        } else {
            assert!(m.breakeven_time().is_none());
            assert!(!m.worthwhile(f64::INFINITY.min(1e18)));
        }
    }

    #[test]
    fn identical_deployments_need_no_migration() {
        let (dm, old, _) = two_deployments();
        let m = plan_migration(&old, &old.clone(), &dm, 0.5);
        assert!(m.moves.is_empty());
        assert_eq!(m.state_transfer_cost, 0.0);
        assert_eq!(m.steady_state_saving, 0.0);
        assert!(m.breakeven_time().is_none());
    }

    #[test]
    fn changed_plan_shape_counts_fresh_and_retired() {
        let (dm, old, _) = two_deployments();
        // New plan over a different tree: single leaf reused? Build a
        // 3-stream query variant is overkill; emulate by comparing against
        // a plan with a different covered structure via a new catalog.
        let mut c = Catalog::new();
        let a = c.add_stream("A", 10.0, NodeId(0), Schema::default());
        let b = c.add_stream("B", 4.0, NodeId(3), Schema::default());
        let x = c.add_stream("X", 2.0, NodeId(1), Schema::default());
        c.set_selectivity(a, b, 0.1);
        c.set_selectivity(a, x, 0.1);
        let q3 = Query::join(QueryId(0), [a, b, x], NodeId(2));
        let tree = JoinTree::join(
            JoinTree::join(JoinTree::base(a), JoinTree::base(x)),
            JoinTree::base(b),
        );
        let plan = FlatPlan::from_tree(&tree, &q3, &c);
        let new = Deployment::evaluate(
            QueryId(0),
            plan,
            vec![NodeId(0), NodeId(1), NodeId(1), NodeId(3), NodeId(2)],
            NodeId(2),
            &dm,
        );
        let m = plan_migration(&old, &new, &dm, 0.5);
        // {A,X} and {A,B,X} are fresh; {A,B} is retired.
        assert_eq!(m.fresh_operators, 2);
        assert_eq!(m.retired_operators, 1);
    }
}
