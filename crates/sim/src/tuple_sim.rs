//! Tuple-level discrete-event simulation of a deployed query.
//!
//! Sources emit Poisson tuple streams at their catalog rates; each deployed
//! join runs a windowed symmetric-hash join ("doubly-pipelined operators
//! and windows", Section 2): an arriving tuple probes the opposite window
//! and matches each resident tuple independently with the pair's
//! selectivity. Tuples ride the shortest-cost routes of the physical
//! network, paying link cost per data unit and accumulating link delays, so
//! the report contains both the *measured* communication cost per unit time
//! (which converges to the analytic estimate the optimizers plan with) and
//! end-to-end result latencies (which the analytic model cannot see).
//!
//! The default window of 0.5 time units makes the expected join output rate
//! `2·σ·λ_L·λ_R·W = σ·λ_L·λ_R`, matching the catalog's rate estimator.

use dsq_net::{DistanceMatrix, Metric, Network, NodeId};
use dsq_query::{Catalog, Deployment, FlatNode, Query};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Tuple simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct TupleSimConfig {
    /// Simulated duration in abstract time units.
    pub duration: f64,
    /// Measurements before this time are discarded (window fill-up).
    pub warmup: f64,
    /// Join window length; 0.5 aligns measured and estimated rates.
    pub window: f64,
    /// Per-tuple processing (service) time at an operator's node, in time
    /// units. Each node is a single FIFO server shared by every operator
    /// placed on it, so co-located operators contend — the queueing-delay
    /// face of the [`LoadModel`](dsq_core::LoadModel)'s overload penalty.
    /// `0.0` models infinitely fast processors (pure network study).
    pub service_time: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TupleSimConfig {
    fn default() -> Self {
        TupleSimConfig {
            duration: 200.0,
            warmup: 20.0,
            window: 0.5,
            service_time: 0.0,
            seed: 7,
        }
    }
}

/// Simulation measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct TupleSimReport {
    /// Measured communication cost per unit time (post-warmup).
    pub measured_cost_per_time: f64,
    /// The analytic cost the optimizer predicted (for comparison).
    pub predicted_cost_per_time: f64,
    /// Source tuples generated.
    pub tuples_generated: u64,
    /// Result tuples delivered to the sink.
    pub results_delivered: u64,
    /// Mean end-to-end latency (ms) of delivered results.
    pub mean_latency_ms: f64,
    /// Largest fraction of simulated time any node spent busy processing
    /// (1.0 = a saturated node; queues grow without bound beyond that).
    pub max_node_utilization: f64,
}

#[derive(Clone, Copy, Debug)]
enum EventKind {
    /// A leaf emits its next tuple.
    Emit { leaf: usize },
    /// A tuple arrives at a consumer (`usize::MAX` = the sink).
    Arrive {
        consumer: usize,
        from: usize,
        birth: f64,
    },
    /// A tuple finishes processing at a join (post-queueing).
    Process {
        consumer: usize,
        from: usize,
        birth: f64,
    },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    time: f64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time)
    }
}

/// Discrete-event tuple simulator over a physical network.
#[derive(Debug)]
pub struct TupleSimulator<'a> {
    #[allow(dead_code)]
    network: &'a Network,
    cost: DistanceMatrix,
    delay: DistanceMatrix,
}

impl<'a> TupleSimulator<'a> {
    /// Prepare routing matrices for a network.
    pub fn new(network: &'a Network) -> Self {
        TupleSimulator {
            network,
            cost: DistanceMatrix::build(network, Metric::Cost),
            delay: DistanceMatrix::build(network, Metric::DelayMs),
        }
    }

    /// Simulate one deployed query. The deployment's plan already embeds
    /// the query's selection effects in its leaf rates, so only the catalog
    /// (selectivities) is consulted at join time; `_query` is kept in the
    /// signature for future per-query instrumentation.
    pub fn run(
        &self,
        catalog: &Catalog,
        _query: &Query,
        deployment: &Deployment,
        cfg: TupleSimConfig,
    ) -> TupleSimReport {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let nodes = deployment.plan.nodes();
        let n = nodes.len();

        // Consumer (parent join, or sink) of every plan node, and per-join
        // structural info.
        let mut consumer = vec![usize::MAX; n]; // MAX = sink
        let mut sigma = vec![0.0; n];
        let mut left_child = vec![usize::MAX; n];
        for (i, node) in nodes.iter().enumerate() {
            if let FlatNode::Join { left, right, .. } = node {
                consumer[*left] = i;
                consumer[*right] = i;
                left_child[i] = *left;
                sigma[i] = catalog.cross_selectivity(
                    nodes[*left].covered().as_slice(),
                    nodes[*right].covered().as_slice(),
                );
            }
        }
        // Edge geometry: cost and delay from producer node to consumer node.
        let place = |i: usize| -> NodeId {
            if i == usize::MAX {
                deployment.sink
            } else {
                deployment.placement[i]
            }
        };
        // Per-join windows: arrival timestamps per side.
        let mut windows: Vec<(VecDeque<f64>, VecDeque<f64>)> =
            vec![(VecDeque::new(), VecDeque::new()); n];

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut leaf_rate = vec![0.0; n];
        for (i, node) in nodes.iter().enumerate() {
            if let FlatNode::Leaf { rate, .. } = node {
                leaf_rate[i] = *rate;
                let dt = exp_sample(&mut rng, *rate);
                heap.push(Reverse(Event {
                    time: dt,
                    kind: EventKind::Emit { leaf: i },
                }));
            }
        }

        let mut report = TupleSimReport {
            predicted_cost_per_time: deployment.cost,
            ..Default::default()
        };
        let mut cost_accum = 0.0;
        let mut latency_accum = 0.0;
        // Per-node FIFO server state (only exercised when service_time > 0).
        let mut busy_until = vec![0.0f64; self.cost.len()];
        let mut busy_accum = vec![0.0f64; self.cost.len()];
        let measure_span = cfg.duration - cfg.warmup;
        assert!(measure_span > 0.0, "duration must exceed warmup");

        let send = |time: f64,
                    from: usize,
                    birth: f64,
                    cost_accum: &mut f64,
                    heap: &mut BinaryHeap<Reverse<Event>>| {
            let to = consumer[from];
            let (from_node, to_node) = (place(from), place(to));
            if time >= cfg.warmup {
                *cost_accum += self.cost.get(from_node, to_node);
            }
            heap.push(Reverse(Event {
                time: time + self.delay.get(from_node, to_node) / 1000.0,
                kind: EventKind::Arrive {
                    consumer: to,
                    from,
                    birth,
                },
            }));
        };

        while let Some(Reverse(ev)) = heap.pop() {
            if ev.time > cfg.duration {
                break;
            }
            match ev.kind {
                EventKind::Emit { leaf } => {
                    report.tuples_generated += 1;
                    send(ev.time, leaf, ev.time, &mut cost_accum, &mut heap);
                    let dt = exp_sample(&mut rng, leaf_rate[leaf]);
                    heap.push(Reverse(Event {
                        time: ev.time + dt,
                        kind: EventKind::Emit { leaf },
                    }));
                }
                EventKind::Arrive {
                    consumer: c,
                    from,
                    birth,
                }
                | EventKind::Process {
                    consumer: c,
                    from,
                    birth,
                } => {
                    if c == usize::MAX {
                        // Delivered to the sink.
                        if ev.time >= cfg.warmup {
                            report.results_delivered += 1;
                            latency_accum += (ev.time - birth) * 1000.0;
                        }
                        continue;
                    }
                    let is_arrival = matches!(ev.kind, EventKind::Arrive { .. });
                    if cfg.service_time > 0.0 && is_arrival {
                        // Queue at the node's single FIFO server; the join
                        // executes when processing completes.
                        let node = place(c).index();
                        let start = busy_until[node].max(ev.time);
                        let done = start + cfg.service_time;
                        busy_until[node] = done;
                        busy_accum[node] += cfg.service_time;
                        heap.push(Reverse(Event {
                            time: done,
                            kind: EventKind::Process {
                                consumer: c,
                                from,
                                birth,
                            },
                        }));
                        continue;
                    }
                    let is_left = from == left_child[c];
                    let (own, other) = {
                        let (l, r) = &mut windows[c];
                        if is_left {
                            (l, r)
                        } else {
                            (r, l)
                        }
                    };
                    // Prune expired tuples from the opposite window.
                    while other.front().is_some_and(|&t| t < ev.time - cfg.window) {
                        other.pop_front();
                    }
                    // Probe: each resident matches independently.
                    let mut matches = 0usize;
                    for _ in 0..other.len() {
                        if rng.gen_bool(sigma[c].min(1.0)) {
                            matches += 1;
                        }
                    }
                    own.push_back(ev.time);
                    // Each match emits an output tuple toward the consumer
                    // (the parent join, or the sink when `c` is the root).
                    for _ in 0..matches {
                        send(ev.time, c, birth, &mut cost_accum, &mut heap);
                    }
                }
            }
        }

        report.measured_cost_per_time = cost_accum / measure_span;
        report.mean_latency_ms = if report.results_delivered > 0 {
            latency_accum / report.results_delivered as f64
        } else {
            0.0
        };
        report.max_node_utilization = busy_accum
            .iter()
            .map(|b| b / cfg.duration)
            .fold(0.0, f64::max);
        report
    }
}

fn exp_sample(rng: &mut ChaCha8Rng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{Environment, Optimizer, SearchStats, TopDown};
    use dsq_net::TransitStubConfig;
    use dsq_query::ReuseRegistry;
    use dsq_workload::{WorkloadConfig, WorkloadGenerator};

    fn simulated_case(seed: u64) -> (Environment, dsq_workload::Workload, Deployment) {
        let net = TransitStubConfig::paper_64().generate(31).network;
        let env = Environment::build(net, 16);
        let wl = WorkloadGenerator::new(
            WorkloadConfig {
                streams: 8,
                queries: 1,
                joins_per_query: 2..=2,
                rate_range: (5.0, 15.0),
                selectivity_range: (0.02, 0.05),
                ..WorkloadConfig::default()
            },
            seed,
        )
        .generate(&env.network);
        let mut reg = ReuseRegistry::new();
        let mut stats = SearchStats::new();
        let d = TopDown::new(&env)
            .optimize(&wl.catalog, &wl.queries[0], &mut reg, &mut stats)
            .unwrap();
        (env, wl, d)
    }

    #[test]
    fn measured_cost_converges_to_predicted() {
        let (env, wl, d) = simulated_case(2);
        let sim = TupleSimulator::new(&env.network);
        let report = sim.run(
            &wl.catalog,
            &wl.queries[0],
            &d,
            TupleSimConfig {
                duration: 400.0,
                warmup: 50.0,
                ..Default::default()
            },
        );
        assert!(report.tuples_generated > 1000);
        let rel = (report.measured_cost_per_time - report.predicted_cost_per_time).abs()
            / report.predicted_cost_per_time.max(1e-9);
        assert!(
            rel < 0.30,
            "measured {} vs predicted {} (rel {rel})",
            report.measured_cost_per_time,
            report.predicted_cost_per_time
        );
    }

    #[test]
    fn results_are_delivered_with_latency() {
        let (env, wl, d) = simulated_case(3);
        let sim = TupleSimulator::new(&env.network);
        let report = sim.run(&wl.catalog, &wl.queries[0], &d, TupleSimConfig::default());
        assert!(report.results_delivered > 0, "joins must produce results");
        assert!(report.mean_latency_ms >= 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (env, wl, d) = simulated_case(4);
        let sim = TupleSimulator::new(&env.network);
        let a = sim.run(&wl.catalog, &wl.queries[0], &d, TupleSimConfig::default());
        let b = sim.run(&wl.catalog, &wl.queries[0], &d, TupleSimConfig::default());
        assert_eq!(a.tuples_generated, b.tuples_generated);
        assert_eq!(a.results_delivered, b.results_delivered);
        assert_eq!(a.measured_cost_per_time, b.measured_cost_per_time);
    }

    #[test]
    fn processing_contention_raises_latency() {
        let (env, wl, d) = simulated_case(6);
        let sim = TupleSimulator::new(&env.network);
        let fast = sim.run(
            &wl.catalog,
            &wl.queries[0],
            &d,
            TupleSimConfig {
                service_time: 0.0,
                ..TupleSimConfig::default()
            },
        );
        // Service time near the per-node arrival period: queues form.
        let slow = sim.run(
            &wl.catalog,
            &wl.queries[0],
            &d,
            TupleSimConfig {
                service_time: 0.02,
                ..TupleSimConfig::default()
            },
        );
        assert_eq!(fast.max_node_utilization, 0.0);
        assert!(slow.max_node_utilization > 0.0);
        assert!(
            slow.mean_latency_ms >= fast.mean_latency_ms,
            "queueing cannot reduce latency: {} vs {}",
            slow.mean_latency_ms,
            fast.mean_latency_ms
        );
        // Source throughput is statistically unchanged (the shared RNG's
        // draw order shifts with event interleaving, so only approximate
        // equality holds).
        let ratio = slow.tuples_generated as f64 / fast.tuples_generated as f64;
        assert!((0.95..=1.05).contains(&ratio), "throughput ratio {ratio}");
    }

    #[test]
    fn saturated_node_shows_high_utilization() {
        let (env, wl, d) = simulated_case(7);
        let sim = TupleSimulator::new(&env.network);
        // Service time far above the arrival period: the hosting node pins
        // at ~100% utilization.
        let r = sim.run(
            &wl.catalog,
            &wl.queries[0],
            &d,
            TupleSimConfig {
                service_time: 0.5,
                duration: 100.0,
                warmup: 10.0,
                ..TupleSimConfig::default()
            },
        );
        assert!(
            r.max_node_utilization > 0.8,
            "expected saturation, got {}",
            r.max_node_utilization
        );
    }

    #[test]
    fn cheaper_deployments_measure_cheaper() {
        // The tuple simulator must preserve the cost ordering between a
        // good and a bad placement of the same plan.
        let (env, wl, good) = simulated_case(5);
        let q = &wl.queries[0];
        let sim = TupleSimulator::new(&env.network);
        // Degrade: move all joins to the node farthest from the sink.
        let far = env
            .network
            .nodes()
            .max_by(|&a, &b| env.dm.get(a, q.sink).total_cmp(&env.dm.get(b, q.sink)))
            .unwrap();
        let mut placement = good.placement.clone();
        for ji in good.plan.join_indices() {
            placement[ji] = far;
        }
        let bad = Deployment::evaluate(q.id, good.plan.clone(), placement, q.sink, &env.dm);
        if bad.cost <= good.cost * 1.5 {
            return; // degenerate topology draw; nothing to compare
        }
        let cfg = TupleSimConfig {
            duration: 300.0,
            ..Default::default()
        };
        let rg = sim.run(&wl.catalog, q, &good, cfg);
        let rb = sim.run(&wl.catalog, q, &bad, cfg);
        assert!(
            rg.measured_cost_per_time < rb.measured_cost_per_time,
            "good {} vs bad {}",
            rg.measured_cost_per_time,
            rb.measured_cost_per_time
        );
    }
}
