//! Capacity-capped K-Means over cost-space coordinates.
//!
//! The paper builds its clustering hierarchy with the K-Means algorithm
//! [Jain & Dubes], clustering "based on our optimization criteria" — nodes
//! close in traversal cost land in the same cluster, and "we allow no more
//! than max_cs nodes per cluster". Plain Lloyd iterations do not respect a
//! size cap, so assignment here is *capacity-constrained*: each round, all
//! (point, centroid) pairs are considered in ascending distance order and a
//! point joins the nearest centroid that still has room. This keeps every
//! cluster within `max_cs` while preserving the locality K-Means provides.

use dsq_net::embedding::Point;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;

/// Heap entry for the lazy capacity-constrained assignment: ordered so the
/// `BinaryHeap` pops the *smallest* `(distance, point, centroid)` tuple
/// first, exactly the order the former global sort visited pairs in.
#[derive(PartialEq)]
struct Cand {
    d: f64,
    i: u32,
    c: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .d
            .total_cmp(&self.d)
            .then(other.i.cmp(&self.i))
            .then(other.c.cmp(&self.c))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Structure-of-arrays view of the input points: one contiguous slab per
/// coordinate, so the candidate scans in [`capped_assign`] and the
/// seeding sweep in [`kmeanspp_init`] stream three flat arrays instead of
/// striding over `[f64; 3]` tuples. Distances are computed with the same
/// left-to-right accumulation as `dsq_net::embedding::euclid`, so results
/// are bit-identical to the array-of-structs layout.
struct SoaPoints {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
}

impl SoaPoints {
    fn new(points: &[Point]) -> Self {
        let mut xs = Vec::with_capacity(points.len());
        let mut ys = Vec::with_capacity(points.len());
        let mut zs = Vec::with_capacity(points.len());
        for p in points {
            xs.push(p[0]);
            ys.push(p[1]);
            zs.push(p[2]);
        }
        Self { xs, ys, zs }
    }

    fn len(&self) -> usize {
        self.xs.len()
    }

    /// Euclidean distance from point `i` to `c`, matching `euclid`'s
    /// dimension order exactly.
    #[inline]
    fn dist_to(&self, i: usize, c: &Point) -> f64 {
        let dx = self.xs[i] - c[0];
        let dy = self.ys[i] - c[1];
        let dz = self.zs[i] - c[2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// Cluster `points` into groups of at most `max_cs`, returning index groups.
///
/// Deterministic in `seed`. The number of clusters is `ceil(n / max_cs)`;
/// every point is assigned; no cluster is empty (k ≤ n) or over capacity.
pub fn capped_kmeans(points: &[Point], max_cs: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(max_cs >= 1, "max_cs must be at least 1");
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = n.div_ceil(max_cs);
    if k == 1 {
        return vec![(0..n).collect()];
    }
    let soa = SoaPoints::new(points);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut centroids = kmeanspp_init(points, &soa, k, &mut rng);

    dsq_obs::counter("kmeans.invocations", 1);
    let mut assignment = vec![0usize; n];
    // Scratch for capped_assign, reused across Lloyd rounds.
    let mut heap: BinaryHeap<Cand> = BinaryHeap::with_capacity(n);
    for _round in 0..25 {
        dsq_obs::counter("kmeans.rounds", 1);
        let new_assignment = capped_assign(&soa, &centroids, max_cs, &mut heap);
        let changed = new_assignment != assignment;
        assignment = new_assignment;
        // Recompute centroids as member means.
        let mut sums = vec![[0.0f64; 3]; k];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignment.iter().enumerate() {
            for d in 0..3 {
                sums[c][d] += points[i][d];
            }
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..3 {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut clusters = vec![Vec::new(); k];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(i);
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

/// K-Means++ seeding: first centroid uniform, subsequent ones proportional
/// to squared distance from the nearest chosen centroid.
fn kmeanspp_init(points: &[Point], soa: &SoaPoints, k: usize, rng: &mut ChaCha8Rng) -> Vec<Point> {
    let n = points.len();
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)]);
    let mut d2 = vec![f64::INFINITY; n];
    while centroids.len() < k {
        let last = centroids[centroids.len() - 1];
        for (i, d2i) in d2.iter_mut().enumerate() {
            let d = soa.dist_to(i, &last);
            *d2i = d2i.min(d * d);
        }
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with centroids; pick deterministically.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.push(points[next]);
    }
    centroids
}

/// Greedy capacity-constrained assignment: equivalent to considering all
/// (point, centroid) pairs in ascending `(distance, point, centroid)` order
/// and assigning each point to the closest centroid with remaining capacity
/// — but driven by a lazy priority queue holding *one* candidate per point
/// instead of materializing and sorting all n·k pairs every Lloyd round.
///
/// Each unassigned point keeps its nearest centroid among those that still
/// had room when it last scanned. Popping a candidate whose centroid has
/// since filled up triggers an O(k) rescan and a re-push with a larger key,
/// so pops still happen in the exact global pair order the old sort
/// produced: fullness is monotone within a round, a centroid skipped at
/// scan time would also be skipped at pop time, and re-pushed keys never
/// shrink. Ties (coincident points) resolve through the same
/// `(distance, point, centroid)` total order. Pinned against the sort-based
/// reference by `hoisted_unstable_sort_matches_original_clusters`.
///
/// `heap` is caller-provided scratch so the buffer is allocated once per
/// K-Means run, not once per Lloyd round.
fn capped_assign(
    points: &SoaPoints,
    centroids: &[Point],
    max_cs: usize,
    heap: &mut BinaryHeap<Cand>,
) -> Vec<usize> {
    let n = points.len();
    let k = centroids.len();
    heap.clear();
    let mut load = vec![0usize; k];
    // Nearest centroid to `i` with remaining capacity; ties by centroid id.
    let best = |i: usize, load: &[usize]| -> Option<(f64, usize)> {
        let mut found: Option<(f64, usize)> = None;
        for (c, ctr) in centroids.iter().enumerate() {
            if load[c] >= max_cs {
                continue;
            }
            let d = points.dist_to(i, ctr);
            match found {
                Some((bd, _)) if !d.total_cmp(&bd).is_lt() => {}
                _ => found = Some((d, c)),
            }
        }
        found
    };
    for i in 0..n {
        if let Some((d, c)) = best(i, &load) {
            heap.push(Cand {
                d,
                i: i as u32,
                c: c as u32,
            });
        }
    }
    let mut assignment = vec![usize::MAX; n];
    let mut assigned = 0;
    while let Some(Cand { i, c, .. }) = heap.pop() {
        let (i, c) = (i as usize, c as usize);
        if load[c] < max_cs {
            assignment[i] = c;
            load[c] += 1;
            assigned += 1;
            if assigned == n {
                break;
            }
        } else if let Some((d, c2)) = best(i, &load) {
            heap.push(Cand {
                d,
                i: i as u32,
                c: c2 as u32,
            });
        }
    }
    debug_assert_eq!(assigned, n, "capacity k·max_cs ≥ n guarantees assignment");
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::embedding::euclid;

    fn grid_points() -> Vec<Point> {
        // Two well-separated groups of 6 points each.
        let mut pts = Vec::new();
        for i in 0..6 {
            pts.push([i as f64 * 0.1, 0.0, 0.0]);
        }
        for i in 0..6 {
            pts.push([100.0 + i as f64 * 0.1, 0.0, 0.0]);
        }
        pts
    }

    #[test]
    fn respects_capacity() {
        let pts = grid_points();
        for max_cs in [1, 2, 3, 5, 6, 12] {
            let clusters = capped_kmeans(&pts, max_cs, 7);
            let total: usize = clusters.iter().map(Vec::len).sum();
            assert_eq!(total, pts.len());
            for c in &clusters {
                assert!(c.len() <= max_cs, "max_cs {max_cs} violated: {}", c.len());
            }
        }
    }

    #[test]
    fn separates_obvious_groups() {
        let pts = grid_points();
        let clusters = capped_kmeans(&pts, 6, 3);
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            let near: Vec<bool> = c.iter().map(|&i| pts[i][0] < 50.0).collect();
            assert!(
                near.iter().all(|&b| b) || near.iter().all(|&b| !b),
                "groups must not mix: {c:?}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = grid_points();
        assert_eq!(capped_kmeans(&pts, 4, 11), capped_kmeans(&pts, 4, 11));
    }

    #[test]
    fn single_cluster_when_capacity_allows() {
        let pts = grid_points();
        let clusters = capped_kmeans(&pts, 100, 0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 12);
    }

    #[test]
    fn handles_coincident_points() {
        let pts = vec![[1.0, 1.0, 1.0]; 9];
        let clusters = capped_kmeans(&pts, 3, 5);
        assert_eq!(clusters.iter().map(Vec::len).sum::<usize>(), 9);
        for c in &clusters {
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn empty_input() {
        assert!(capped_kmeans(&[], 4, 0).is_empty());
    }

    /// The original assignment before the buffer-hoist/unstable-sort fix:
    /// fresh n·k allocation and a stable sort every Lloyd round.
    fn reference_assign(points: &[Point], centroids: &[Point], max_cs: usize) -> Vec<usize> {
        let n = points.len();
        let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(n * centroids.len());
        for (i, p) in points.iter().enumerate() {
            for (c, ctr) in centroids.iter().enumerate() {
                pairs.push((euclid(p, ctr), i, c));
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut assignment = vec![usize::MAX; n];
        let mut load = vec![0usize; centroids.len()];
        for (_, i, c) in pairs {
            if assignment[i] == usize::MAX && load[c] < max_cs {
                assignment[i] = c;
                load[c] += 1;
            }
        }
        assignment
    }

    /// `capped_kmeans` with the assignment step swapped for the reference.
    fn reference_kmeans(points: &[Point], max_cs: usize, seed: u64) -> Vec<Vec<usize>> {
        let n = points.len();
        let k = n.div_ceil(max_cs);
        if k == 1 {
            return vec![(0..n).collect()];
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut centroids = kmeanspp_init(points, &SoaPoints::new(points), k, &mut rng);
        let mut assignment = vec![0usize; n];
        for _round in 0..25 {
            let new_assignment = reference_assign(points, &centroids, max_cs);
            let changed = new_assignment != assignment;
            assignment = new_assignment;
            let mut sums = vec![[0.0f64; 3]; k];
            let mut counts = vec![0usize; k];
            for (i, &c) in assignment.iter().enumerate() {
                for d in 0..3 {
                    sums[c][d] += points[i][d];
                }
                counts[c] += 1;
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for d in 0..3 {
                        centroids[c][d] = sums[c][d] / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut clusters = vec![Vec::new(); k];
        for (i, &c) in assignment.iter().enumerate() {
            clusters[c].push(i);
        }
        clusters.retain(|c| !c.is_empty());
        clusters
    }

    #[test]
    fn hoisted_unstable_sort_matches_original_clusters() {
        // Regression for the buffer-hoist + sort_unstable_by rewrite: the
        // (distance, point, centroid) key is a total order over distinct
        // pairs, so clusters must be bit-for-bit what the old stable-sort,
        // allocate-per-round implementation produced — across seeds, caps
        // and point sets (including coincident points, where distances tie).
        let mut pseudo_random = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..57 {
            pseudo_random.push([
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
            ]);
        }
        let coincident = vec![[2.5, 2.5, 2.5]; 20];
        for pts in [&grid_points(), &pseudo_random, &coincident] {
            for max_cs in [2, 3, 5, 8] {
                for seed in [0, 7, 11, 42] {
                    assert_eq!(
                        capped_kmeans(pts, max_cs, seed),
                        reference_kmeans(pts, max_cs, seed),
                        "diverged for n={} max_cs={max_cs} seed={seed}",
                        pts.len()
                    );
                }
            }
        }
    }
}
