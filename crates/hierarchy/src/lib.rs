//! Hierarchical network partitions (Section 2.1.1 of the paper).
//!
//! Physical nodes are organized into a virtual clustering hierarchy: at
//! Level 1 the nodes are grouped into clusters of at most `max_cs` members
//! by traversal cost; each cluster elects a coordinator (its medoid) that is
//! promoted to the next level, where the process repeats until a single top
//! cluster remains.
//!
//! The hierarchy gives the optimizers two things:
//!
//! * a *recursive search structure* — Top-Down descends it, Bottom-Up climbs
//!   it, and in both cases every exhaustive search is confined to one
//!   cluster of ≤ `max_cs` members; and
//! * *bounded distance estimates* — the distance between two nodes seen at
//!   level `l` is the distance between their level-`l` representatives,
//!   wrong by at most `Σ_{i<l} 2·d_i` (Theorem 1), where `d_i` is the
//!   maximum intra-cluster traversal cost at level `i`.
//!
//! Levels use the paper's 1-based numbering: level 1 holds physical nodes,
//! level `h` is the single top cluster.
//!
//! ```
//! use dsq_hierarchy::{Hierarchy, HierarchyConfig};
//! use dsq_net::{CostSpace, DistanceMatrix, Metric, NodeId, TransitStubConfig};
//!
//! let ts = TransitStubConfig::paper_64().generate(1);
//! let dm = DistanceMatrix::build(&ts.network, Metric::Cost);
//! let space = CostSpace::embed(&dm, 1, 40);
//! let active: Vec<NodeId> = ts.network.nodes().collect();
//! let h = Hierarchy::build(&active, &dm, &space, HierarchyConfig::new(8));
//!
//! // Every cluster respects the cap; estimates obey Theorem 1.
//! h.check_invariants();
//! let (a, b) = (NodeId(3), NodeId(40));
//! let top = h.height();
//! let est = h.estimated_cost(&dm, a, b, top);
//! assert!((dm.get(a, b) - est).abs() <= h.theorem1_slack(top) + 1e-9);
//! ```

pub mod agglomerative;
pub mod hierarchy;
pub mod kmeans;
pub mod membership;

pub use hierarchy::{
    Cluster, ClusterId, ClusteringMethod, Hierarchy, HierarchyConfig, HierarchyDelta,
    HierarchySnapshot,
};
pub use kmeans::capped_kmeans;
pub use membership::MembershipError;
