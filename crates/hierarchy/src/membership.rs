//! Runtime membership: node joins and departures.
//!
//! "When a node joins the infrastructure, it contacts an existing node that
//! forwards the join request to its coordinator. The request is propagated
//! up the hierarchy and the top level coordinator assigns it to the top
//! level node that is closest to the new node. This top level node passes
//! the request down to its child that is closest to the new node … until the
//! node is assigned to a bottom level cluster." (Section 2.1.1.)
//!
//! [`join_route`] implements that routing decision (and counts protocol
//! messages); [`add_node`] applies it, splitting any cluster that overflows
//! `max_cs` — recursively up the hierarchy, growing a new top level if the
//! root itself splits. [`remove_node`] handles departures, including
//! coordinator re-election and collapse of emptied clusters/levels.

use crate::hierarchy::{Cluster, ClusterId, Hierarchy};
use dsq_net::{DistanceMatrix, NodeId};

/// Why a membership operation could not be applied.
///
/// Returned (never panicked) so callers driving the overlay from fault
/// schedules — the chaos harness, the adaptivity runtime — can degrade
/// gracefully instead of aborting the whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// The node is not currently an overlay member.
    NotAMember(NodeId),
    /// Removing the node would leave the overlay empty: a one-member
    /// hierarchy has no surviving cluster to re-elect or collapse into.
    LastMember,
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::NotAMember(n) => {
                write!(f, "node {} is not an overlay member", n.0)
            }
            MembershipError::LastMember => {
                write!(f, "cannot remove the last overlay member")
            }
        }
    }
}

impl std::error::Error for MembershipError {}

/// Result of routing a join request through the hierarchy.
#[derive(Clone, Debug)]
pub struct JoinOutcome {
    /// Coordinators consulted, from the first contact's leaf coordinator up
    /// to the top and back down to the chosen leaf.
    pub route: Vec<NodeId>,
    /// Leaf cluster the new node is assigned to (valid at decision time).
    pub leaf: ClusterId,
    /// Number of protocol messages exchanged.
    pub messages: usize,
}

/// Route a join request for `node`, contacted via existing member `via`.
/// Pure decision: the hierarchy is not modified.
pub fn join_route(h: &Hierarchy, dm: &DistanceMatrix, node: NodeId, via: NodeId) -> JoinOutcome {
    assert!(h.is_active(via), "contact node must be an overlay member");
    let mut route = Vec::new();
    // Upward propagation: the contact's coordinator chain to the top.
    for level in 1..=h.height() {
        route.push(h.cluster(h.ancestor(via, level)).coordinator);
    }
    // Downward assignment: at each level pick the member closest to `node`.
    let mut cluster = h.top();
    loop {
        let c = h.cluster(cluster);
        let nearest = *c
            .members
            .iter()
            .min_by(|&&a, &&b| {
                dm.get(a, node)
                    .total_cmp(&dm.get(b, node))
                    .then(a.0.cmp(&b.0))
            })
            .expect("clusters are never empty");
        route.push(nearest);
        if cluster.level == 1 {
            let messages = route.len();
            return JoinOutcome {
                route,
                leaf: cluster,
                messages,
            };
        }
        let member_idx = c.members.iter().position(|&m| m == nearest).unwrap();
        cluster = h.child_of_member(cluster, member_idx);
    }
}

/// Add `node` to the overlay: route the join, insert into the chosen leaf
/// cluster, split any cluster that overflows, refresh coordinators and
/// statistics. Returns the routing outcome.
pub fn add_node(h: &mut Hierarchy, dm: &DistanceMatrix, node: NodeId, via: NodeId) -> JoinOutcome {
    assert!(!h.is_active(node), "node is already an overlay member");
    let outcome = join_route(h, dm, node, via);
    let leaf_idx = outcome.leaf.index;
    h.level_mut(1)[leaf_idx].members.push(node);
    h.leaf_of_mut()[node.index()] = Some(leaf_idx);
    split_overflowing(h, dm, 1, leaf_idx);
    refresh(h, dm);
    #[cfg(debug_assertions)]
    h.check_invariants();
    outcome
}

/// Remove `node` from the overlay, re-electing coordinators and collapsing
/// empty clusters/levels.
///
/// Returns [`MembershipError::NotAMember`] if `node` is not active and
/// [`MembershipError::LastMember`] if it is the only member left; in both
/// cases the hierarchy is untouched.
pub fn remove_node(
    h: &mut Hierarchy,
    dm: &DistanceMatrix,
    node: NodeId,
) -> Result<(), MembershipError> {
    if !h.is_active(node) {
        return Err(MembershipError::NotAMember(node));
    }
    if h.active_nodes().len() <= 1 {
        return Err(MembershipError::LastMember);
    }
    let leaf_idx = h.leaf_cluster(node).index;
    let members = &mut h.level_mut(1)[leaf_idx].members;
    members.retain(|&m| m != node);
    let now_empty = members.is_empty();
    h.leaf_of_mut()[node.index()] = None;
    if now_empty {
        remove_cluster(h, 1, leaf_idx);
    }
    collapse_redundant_top(h);
    refresh(h, dm);
    #[cfg(debug_assertions)]
    h.check_invariants();
    Ok(())
}

/// Split cluster `index` at `level` while it exceeds `max_cs`, propagating
/// overflow to the parent (growing a new top level if the root splits).
fn split_overflowing(h: &mut Hierarchy, dm: &DistanceMatrix, level: usize, index: usize) {
    let max_cs = h.config().max_cs;
    if h.level(level)[index].members.len() <= max_cs {
        return;
    }
    // Partition members around the farthest pair (complete-linkage style
    // 2-split on actual costs).
    let cluster = h.level(level)[index].clone();
    let (sa, sb) = farthest_pair(&cluster.members, dm);
    let mut keep_members = Vec::new();
    let mut keep_children = Vec::new();
    let mut new_members = Vec::new();
    let mut new_children = Vec::new();
    for (k, &m) in cluster.members.iter().enumerate() {
        let to_a = dm.get(m, sa) <= dm.get(m, sb);
        if to_a {
            keep_members.push(m);
            if !cluster.children.is_empty() {
                keep_children.push(cluster.children[k]);
            }
        } else {
            new_members.push(m);
            if !cluster.children.is_empty() {
                new_children.push(cluster.children[k]);
            }
        }
    }
    debug_assert!(!keep_members.is_empty() && !new_members.is_empty());

    let keep_coord = dm
        .medoid(&keep_members, &keep_members)
        .expect("split halves are non-empty");
    let new_coord = dm
        .medoid(&new_members, &new_members)
        .expect("split halves are non-empty");
    let parent = cluster.parent;

    // Rewrite the kept half in place; push the split-off half.
    {
        let c = &mut h.level_mut(level)[index];
        c.members = keep_members.clone();
        c.children = keep_children;
        c.coordinator = keep_coord;
    }
    let new_index = h.level(level).len();
    h.level_mut(level).push(Cluster {
        members: new_members.clone(),
        children: new_children.clone(),
        coordinator: new_coord,
        parent,
    });

    // Fix downward references of the split-off half.
    if level == 1 {
        for &m in &new_members {
            h.leaf_of_mut()[m.index()] = Some(new_index);
        }
    } else {
        for &child in &new_children {
            h.level_mut(level - 1)[child].parent = Some(new_index);
        }
    }

    // Register the new cluster with the parent (or grow a new root level).
    match parent {
        Some(p) => {
            let pc = &mut h.level_mut(level + 1)[p];
            pc.members.push(new_coord);
            pc.children.push(new_index);
            split_overflowing(h, dm, level + 1, p);
        }
        None => {
            // The root split: create a new top level over both halves.
            let members = vec![keep_coord, new_coord];
            let coordinator = dm
                .medoid(&members, &members)
                .expect("root split has two members");
            let top_level = level + 1;
            let new_top = Cluster {
                members,
                children: vec![index, new_index],
                coordinator,
                parent: None,
            };
            debug_assert_eq!(h.height() + 1, top_level, "root split grows one level");
            h.push_level(vec![new_top]);
            h.level_mut(level)[index].parent = Some(0);
            h.level_mut(level)[new_index].parent = Some(0);
        }
    }
}

/// The pair of members with maximum pairwise traversal cost, used to seed a
/// 2-way cluster split.
fn farthest_pair(members: &[NodeId], dm: &DistanceMatrix) -> (NodeId, NodeId) {
    debug_assert!(members.len() >= 2);
    let mut best = (members[0], members[1]);
    let mut best_d = -1.0;
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            let d = dm.get(a, b);
            if d > best_d {
                best_d = d;
                best = (a, b);
            }
        }
    }
    best
}

/// Remove cluster `index` from `level`, fixing all cross-references (the
/// last cluster of the level is swapped into the hole). Recursively removes
/// emptied parents.
fn remove_cluster(h: &mut Hierarchy, level: usize, index: usize) {
    let removed = h.level_mut(level).swap_remove(index);

    // The cluster that moved from the end into `index` (if any) must have
    // its references fixed.
    if index < h.level(level).len() {
        let moved = h.level(level)[index].clone();
        if level == 1 {
            for &m in &moved.members {
                h.leaf_of_mut()[m.index()] = Some(index);
            }
        } else {
            for &child in &moved.children {
                h.level_mut(level - 1)[child].parent = Some(index);
            }
        }
        if let Some(p) = moved.parent {
            let old_index = h.level(level).len();
            for c in h.level_mut(level + 1)[p].children.iter_mut() {
                if *c == old_index {
                    *c = index;
                }
            }
        }
    }

    // Detach from the parent; recurse if the parent emptied.
    if let Some(p) = removed.parent {
        // `removed` sat at `index` before the swap; the parent references it
        // by that child index paired with its coordinator member.
        let pc = &mut h.level_mut(level + 1)[p];
        if let Some(k) = pc.children.iter().position(|&c| c == index) {
            // Careful: after the swap the moved cluster now also claims
            // child index `index`; disambiguate by coordinator identity.
            if pc.members[k] == removed.coordinator {
                pc.members.remove(k);
                pc.children.remove(k);
            } else if let Some(k2) = pc.members.iter().position(|&m| m == removed.coordinator) {
                pc.members.remove(k2);
                pc.children.remove(k2);
            }
        } else if let Some(k) = pc.members.iter().position(|&m| m == removed.coordinator) {
            pc.members.remove(k);
            pc.children.remove(k);
        }
        if h.level(level + 1)[p].members.is_empty() {
            remove_cluster(h, level + 1, p);
        }
    }
}

/// Drop top levels that sit above a level that already has a single cluster.
fn collapse_redundant_top(h: &mut Hierarchy) {
    while h.height() > 1 && h.level(h.height() - 1).len() == 1 {
        h.pop_level();
        let top = h.height();
        h.level_mut(top)[0].parent = None;
    }
}

/// Re-elect coordinators bottom-up and propagate them into parent member
/// lists, then refresh the `d_i` statistics.
fn refresh(h: &mut Hierarchy, dm: &DistanceMatrix) {
    for level in 1..=h.height() {
        let n = h.level(level).len();
        dsq_obs::counter("hierarchy.coordinator_elections", n as u64);
        for i in 0..n {
            if level > 1 {
                let children = h.level(level)[i].children.clone();
                let members: Vec<NodeId> = children
                    .iter()
                    .map(|&c| h.level(level - 1)[c].coordinator)
                    .collect();
                h.level_mut(level)[i].members = members;
            }
            let members = h.level(level)[i].members.clone();
            h.level_mut(level)[i].coordinator = dm
                .medoid(&members, &members)
                .expect("surgery never leaves an empty cluster");
        }
    }
    h.recompute_d(dm);
}

impl Hierarchy {
    /// Append a new top level (membership surgery).
    pub(crate) fn push_level(&mut self, clusters: Vec<Cluster>) {
        self.levels_push(clusters);
    }

    /// Drop the top level (membership surgery).
    pub(crate) fn pop_level(&mut self) {
        self.levels_pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use dsq_net::{CostSpace, Metric, TransitStubConfig};
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn setup(max_cs: usize) -> (Hierarchy, DistanceMatrix, Vec<NodeId>) {
        let ts = TransitStubConfig::paper_64().generate(9);
        let dm = DistanceMatrix::build(&ts.network, Metric::Cost);
        let cs = CostSpace::embed(&dm, 9, 40);
        let all: Vec<NodeId> = ts.network.nodes().collect();
        // Start with half the nodes active, so the rest can join later.
        let active: Vec<NodeId> = all.iter().copied().filter(|n| n.0 % 2 == 0).collect();
        let inactive: Vec<NodeId> = all.iter().copied().filter(|n| n.0 % 2 == 1).collect();
        let h = Hierarchy::build(&active, &dm, &cs, HierarchyConfig::new(max_cs));
        (h, dm, inactive)
    }

    #[test]
    fn join_route_reaches_a_leaf_and_counts_messages() {
        let (h, dm, inactive) = setup(8);
        let via = h.active_nodes()[0];
        let out = join_route(&h, &dm, inactive[0], via);
        assert_eq!(out.leaf.level, 1);
        assert_eq!(out.messages, out.route.len());
        assert!(out.messages >= h.height(), "must traverse up and down");
    }

    #[test]
    fn join_prefers_nearby_cluster() {
        let (h, dm, inactive) = setup(8);
        let via = h.active_nodes()[0];
        let node = inactive[3];
        let out = join_route(&h, &dm, node, via);
        // The chosen leaf's coordinator should be (weakly) closer than the
        // median leaf coordinator: the greedy descent is a heuristic, but on
        // transit-stub networks it must not land in a far-away stub domain.
        let chosen = dm.get(h.cluster(out.leaf).coordinator, node);
        let mut all: Vec<f64> = h
            .level(1)
            .iter()
            .map(|c| dm.get(c.coordinator, node))
            .collect();
        all.sort_by(f64::total_cmp);
        let median = all[all.len() / 2];
        assert!(chosen <= median, "chosen {chosen} median {median}");
    }

    #[test]
    fn add_then_remove_preserves_invariants() {
        let (mut h, dm, inactive) = setup(4);
        let via = h.active_nodes()[0];
        for &n in inactive.iter().take(12) {
            add_node(&mut h, &dm, n, via);
            h.check_invariants();
            assert!(h.is_active(n));
        }
        for &n in inactive.iter().take(12) {
            remove_node(&mut h, &dm, n).unwrap();
            h.check_invariants();
            assert!(!h.is_active(n));
        }
    }

    #[test]
    fn overflow_splits_keep_cap() {
        let (mut h, dm, inactive) = setup(4);
        let via = h.active_nodes()[0];
        for &n in &inactive {
            add_node(&mut h, &dm, n, via);
        }
        h.check_invariants(); // includes the max_cs check
        assert_eq!(h.active_nodes().len(), 64);
    }

    #[test]
    fn randomized_membership_churn() {
        let (mut h, dm, mut pool) = setup(4);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for step in 0..80 {
            let active = h.active_nodes();
            if (rng.gen_bool(0.5) && !pool.is_empty()) || active.len() <= 2 {
                let n = pool.pop().unwrap();
                let via = *active.choose(&mut rng).unwrap();
                add_node(&mut h, &dm, n, via);
            } else {
                let n = *active.choose(&mut rng).unwrap();
                remove_node(&mut h, &dm, n).unwrap();
                pool.push(n);
            }
            h.check_invariants();
            assert!(step < 100);
        }
    }

    #[test]
    fn remove_errors_are_typed_and_leave_the_hierarchy_untouched() {
        let (mut h, dm, inactive) = setup(8);
        // Not a member → NotAMember, nothing changes.
        let outsider = inactive[0];
        assert_eq!(
            remove_node(&mut h, &dm, outsider),
            Err(MembershipError::NotAMember(outsider))
        );
        h.check_invariants();

        // Drain down to a single member: that removal must refuse with
        // LastMember instead of panicking (the chaos harness relies on this
        // when a schedule crashes every overlay member).
        let mut active = h.active_nodes();
        while active.len() > 1 {
            remove_node(&mut h, &dm, active[0]).unwrap();
            active = h.active_nodes();
        }
        let last = active[0];
        assert_eq!(
            remove_node(&mut h, &dm, last),
            Err(MembershipError::LastMember)
        );
        assert!(
            h.is_active(last),
            "failed removal must not alter membership"
        );
        h.check_invariants();
    }

    #[test]
    fn removing_coordinator_reelects() {
        let (mut h, dm, _) = setup(8);
        let coord = h.cluster(h.top()).coordinator;
        remove_node(&mut h, &dm, coord).unwrap();
        h.check_invariants();
        assert!(!h.is_active(coord));
        assert_ne!(h.cluster(h.top()).coordinator, coord);
    }

    #[test]
    fn removing_the_last_member_of_a_leaf_collapses_the_cluster() {
        let (mut h, dm, _) = setup(4);
        // Drain one leaf cluster down to a single member…
        let leaf = h.level(1)[0].clone();
        for &n in &leaf.members[1..] {
            remove_node(&mut h, &dm, n).unwrap();
        }
        let survivor = leaf.members[0];
        assert_eq!(h.cluster(h.leaf_cluster(survivor)).members, vec![survivor]);
        let leaves_before = h.level(1).len();
        // …then remove that last member: the emptied cluster must vanish
        // (and its parent's member/child lists must be fixed up).
        remove_node(&mut h, &dm, survivor).unwrap();
        h.check_invariants();
        assert!(!h.is_active(survivor));
        assert_eq!(h.level(1).len(), leaves_before - 1);
    }

    #[test]
    fn backup_coordinator_takeover_survives_immediate_refailure() {
        let (mut h, dm, _) = setup(8);
        let top = h.top();
        assert!(
            h.backup_coordinator(top, &dm).is_some(),
            "multi-member clusters always designate a backup"
        );
        let first = h.cluster(top).coordinator;
        remove_node(&mut h, &dm, first).unwrap();
        h.check_invariants();
        let second = h.cluster(h.top()).coordinator;
        assert_ne!(second, first);
        assert!(h.is_active(second));
        // The just-elected backup fails before it ever hands off: the
        // overlay must re-elect a third, distinct coordinator.
        remove_node(&mut h, &dm, second).unwrap();
        h.check_invariants();
        let third = h.cluster(h.top()).coordinator;
        assert!(third != first && third != second);
        assert!(!h.is_active(first) && !h.is_active(second));
        assert!(h.is_active(third));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Seeded join/leave/rejoin churn preserves every structural
        /// invariant *and* the Theorem 1 estimate bound after each step:
        /// `|c_act − c_est^l| ≤ Σ_{i<l} 2·d_i` must keep holding as the
        /// clusters shrink, split and re-elect.
        #[test]
        fn churn_preserves_invariants_and_theorem1(seed in 0u64..1000, max_cs in 3usize..=8) {
            let (mut h, dm, mut pool) = setup(max_cs);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..30 {
                let active = h.active_nodes();
                if (rng.gen_bool(0.5) && !pool.is_empty()) || active.len() <= 2 {
                    let n = pool.pop().unwrap();
                    let via = *active.choose(&mut rng).unwrap();
                    add_node(&mut h, &dm, n, via);
                } else {
                    let n = *active.choose(&mut rng).unwrap();
                    remove_node(&mut h, &dm, n).unwrap();
                    pool.push(n);
                }
                h.check_invariants();
                let nodes = h.active_nodes();
                for level in 1..=h.height() {
                    let slack = h.theorem1_slack(level);
                    for (i, &a) in nodes.iter().enumerate().step_by(5) {
                        for &b in nodes.iter().skip(i + 1).step_by(5) {
                            let act = dm.get(a, b);
                            let est = h.estimated_cost(&dm, a, b, level);
                            proptest::prop_assert!(
                                (act - est).abs() <= slack + 1e-9,
                                "Theorem 1 violated at level {level}: \
                                 act {act} est {est} slack {slack}"
                            );
                        }
                    }
                }
            }
        }
    }
}
