//! The clustering hierarchy: levels, coordinators and distance estimates.

use crate::agglomerative::agglomerative;
use crate::kmeans::capped_kmeans;
use dsq_net::{CostSpace, DistanceMatrix, NodeId};

/// Which clustering algorithm forms each level's partitions.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ClusteringMethod {
    /// K-Means over the cost-space embedding (the paper's choice).
    KMeans,
    /// Complete-linkage agglomeration over actual traversal costs
    /// (ablation alternative).
    Agglomerative,
}

/// Hierarchy construction parameters.
#[derive(Copy, Clone, Debug)]
pub struct HierarchyConfig {
    /// Maximum number of members per cluster (the paper's `max_cs` knob).
    pub max_cs: usize,
    /// Seed for the clustering (K-Means initialization).
    pub seed: u64,
    /// Clustering algorithm.
    pub method: ClusteringMethod,
}

impl HierarchyConfig {
    /// K-Means hierarchy with the given cluster-size cap.
    pub fn new(max_cs: usize) -> Self {
        HierarchyConfig {
            max_cs,
            seed: 0x5eed,
            method: ClusteringMethod::KMeans,
        }
    }
}

/// Identifier of a cluster: its (1-based, paper-style) level and its index
/// within that level.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct ClusterId {
    /// Paper-style level, 1-based (level 1 holds physical nodes).
    pub level: usize,
    /// Index within the level.
    pub index: usize,
}

/// One cluster of the hierarchy.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Physical node ids of the members. At level 1 these are ordinary
    /// nodes; at level `l > 1` they are the coordinators of the child
    /// clusters at level `l − 1`.
    pub members: Vec<NodeId>,
    /// For levels above 1: index (at level − 1) of the child cluster each
    /// member coordinates, parallel to `members`. Empty at level 1.
    pub children: Vec<usize>,
    /// Coordinator: the member with minimum summed distance to the others
    /// (medoid); promoted to the next level.
    pub coordinator: NodeId,
    /// Index of the parent cluster at level + 1 (`None` at the top level).
    pub parent: Option<usize>,
}

/// The virtual clustering hierarchy over the active nodes of a network.
///
/// The hierarchy is built over a subset of the network's nodes (the
/// *active* overlay members), so runtime joins/leaves (see
/// [`crate::membership`]) activate or deactivate nodes without invalidating
/// the distance matrix or the embedding.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// `levels[l-1]` holds the clusters of paper-level `l`.
    levels: Vec<Vec<Cluster>>,
    /// Per physical node: leaf (level 1) cluster index, if active.
    leaf_of: Vec<Option<usize>>,
    /// `d[i-1]` = `d_i`: maximum intra-cluster traversal cost at level `i`.
    d: Vec<f64>,
    config: HierarchyConfig,
}

impl Hierarchy {
    /// Build the hierarchy over `active` nodes.
    ///
    /// `dm` supplies actual traversal costs (for medoid election and the
    /// `d_i` statistics); `space` supplies the embedded coordinates K-Means
    /// clusters on.
    pub fn build(
        active: &[NodeId],
        dm: &DistanceMatrix,
        space: &CostSpace,
        config: HierarchyConfig,
    ) -> Self {
        assert!(!active.is_empty(), "hierarchy needs at least one node");
        assert!(config.max_cs >= 2, "max_cs < 2 cannot form a hierarchy");
        let mut h = Hierarchy {
            levels: Vec::new(),
            leaf_of: vec![None; dm.len()],
            d: Vec::new(),
            config,
        };
        h.rebuild(active, dm, space);
        h
    }

    /// (Re)build all levels from scratch over `active` nodes.
    pub(crate) fn rebuild(&mut self, active: &[NodeId], dm: &DistanceMatrix, space: &CostSpace) {
        self.levels.clear();
        self.leaf_of = vec![None; dm.len()];

        // Level 1 over the active physical nodes.
        let mut current: Vec<NodeId> = active.to_vec();
        current.sort_unstable();
        current.dedup();
        let mut child_indices: Option<Vec<usize>> = None; // None at level 1

        loop {
            let groups = self.cluster_nodes(&current, dm, space);
            let level_no = self.levels.len() + 1;
            let mut clusters = Vec::with_capacity(groups.len());
            for group in &groups {
                let members: Vec<NodeId> = group.iter().map(|&i| current[i]).collect();
                dsq_obs::counter("hierarchy.coordinator_elections", 1);
                let coordinator = dm
                    .medoid(&members, &members)
                    .expect("clustering never produces an empty group");
                let children = match &child_indices {
                    Some(ci) => group.iter().map(|&i| ci[i]).collect(),
                    None => Vec::new(),
                };
                clusters.push(Cluster {
                    members,
                    children,
                    coordinator,
                    parent: None,
                });
            }
            // Wire child → parent pointers and the leaf index.
            for (ci, cluster) in clusters.iter().enumerate() {
                if level_no == 1 {
                    for &m in &cluster.members {
                        self.leaf_of[m.index()] = Some(ci);
                    }
                } else {
                    for &child in &cluster.children {
                        self.levels[level_no - 2][child].parent = Some(ci);
                    }
                }
            }
            let done = clusters.len() == 1;
            let coords: Vec<NodeId> = clusters.iter().map(|c| c.coordinator).collect();
            let child_idx: Vec<usize> = (0..clusters.len()).collect();
            self.levels.push(clusters);
            if done {
                break;
            }
            current = coords;
            child_indices = Some(child_idx);
        }
        self.recompute_d(dm);
    }

    fn cluster_nodes(
        &self,
        nodes: &[NodeId],
        dm: &DistanceMatrix,
        space: &CostSpace,
    ) -> Vec<Vec<usize>> {
        match self.config.method {
            ClusteringMethod::KMeans => {
                let pts: Vec<_> = nodes.iter().map(|&n| space.coord(n)).collect();
                capped_kmeans(&pts, self.config.max_cs, self.config.seed)
            }
            ClusteringMethod::Agglomerative => agglomerative(nodes, dm, self.config.max_cs),
        }
    }

    /// Refresh the `d_i` statistics against updated distances (e.g. after
    /// runtime link-cost changes detected by the adaptivity middleware).
    /// The cluster structure itself is kept.
    pub fn refresh_statistics(&mut self, dm: &DistanceMatrix) {
        self.recompute_d(dm);
    }

    /// Recompute the `d_i` statistics after structural changes.
    pub(crate) fn recompute_d(&mut self, dm: &DistanceMatrix) {
        self.d = self
            .levels
            .iter()
            .map(|clusters| {
                clusters
                    .iter()
                    .map(|c| max_pairwise(&c.members, dm))
                    .fold(0.0, f64::max)
            })
            .collect();
    }

    /// Number of levels `h` in the hierarchy.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Configuration the hierarchy was built with.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Clusters at a (1-based) level.
    pub fn level(&self, level: usize) -> &[Cluster] {
        &self.levels[level - 1]
    }

    /// Mutable clusters at a level (membership surgery).
    pub(crate) fn level_mut(&mut self, level: usize) -> &mut Vec<Cluster> {
        &mut self.levels[level - 1]
    }

    /// Per-node leaf indices (membership surgery).
    pub(crate) fn leaf_of_mut(&mut self) -> &mut Vec<Option<usize>> {
        &mut self.leaf_of
    }

    /// Append a new top level (membership surgery).
    pub(crate) fn levels_push(&mut self, clusters: Vec<Cluster>) {
        self.levels.push(clusters);
    }

    /// Drop the top level (membership surgery).
    pub(crate) fn levels_pop(&mut self) {
        self.levels.pop();
    }

    /// A cluster by id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.levels[id.level - 1][id.index]
    }

    /// The single top cluster.
    pub fn top(&self) -> ClusterId {
        debug_assert_eq!(self.levels.last().map(Vec::len), Some(1));
        ClusterId {
            level: self.levels.len(),
            index: 0,
        }
    }

    /// Whether a node is an active overlay member.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.leaf_of
            .get(node.index())
            .map(|o| o.is_some())
            .unwrap_or(false)
    }

    /// All active nodes.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.levels[0]
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect()
    }

    /// The leaf (level 1) cluster containing an active node.
    pub fn leaf_cluster(&self, node: NodeId) -> ClusterId {
        ClusterId {
            level: 1,
            index: self.leaf_of[node.index()].expect("node is not an active overlay member"),
        }
    }

    /// The cluster at `level` whose subtree contains `node`.
    pub fn ancestor(&self, node: NodeId, level: usize) -> ClusterId {
        assert!(level >= 1 && level <= self.height());
        let mut idx = self.leaf_of[node.index()].expect("node is not an active overlay member");
        for l in 2..=level {
            idx = self.levels[l - 2][idx]
                .parent
                .expect("non-top cluster must have a parent");
        }
        ClusterId { level, index: idx }
    }

    /// The member node that represents `node` at `level`: the node itself at
    /// level 1, otherwise the coordinator of its level-(`level` − 1)
    /// ancestor cluster. This is the node whose position stands in for
    /// `node` in any level-`level` planning step.
    pub fn representative(&self, node: NodeId, level: usize) -> NodeId {
        if level == 1 {
            node
        } else {
            self.cluster(self.ancestor(node, level - 1)).coordinator
        }
    }

    /// Which member slot of `cluster` represents `node` (i.e. contains it in
    /// its subtree). `None` if `node` is outside the cluster's subtree.
    pub fn member_of(&self, cluster: ClusterId, node: NodeId) -> Option<usize> {
        if !self.is_active(node) {
            return None;
        }
        let rep = self.representative(node, cluster.level);
        self.cluster(cluster).members.iter().position(|&m| m == rep)
    }

    /// All physical nodes in the subtree of `cluster`.
    pub fn subtree_nodes(&self, cluster: ClusterId) -> Vec<NodeId> {
        let c = self.cluster(cluster);
        if cluster.level == 1 {
            return c.members.clone();
        }
        let mut out = Vec::new();
        for &child in &c.children {
            out.extend(self.subtree_nodes(ClusterId {
                level: cluster.level - 1,
                index: child,
            }));
        }
        out
    }

    /// Physical nodes under member `member_idx` of `cluster`: the member
    /// itself at level 1, otherwise the subtree of the child cluster it
    /// coordinates.
    pub fn member_subtree(&self, cluster: ClusterId, member_idx: usize) -> Vec<NodeId> {
        let c = self.cluster(cluster);
        if cluster.level == 1 {
            vec![c.members[member_idx]]
        } else {
            self.subtree_nodes(ClusterId {
                level: cluster.level - 1,
                index: c.children[member_idx],
            })
        }
    }

    /// The child cluster a member of `cluster` coordinates (levels > 1).
    pub fn child_of_member(&self, cluster: ClusterId, member_idx: usize) -> ClusterId {
        assert!(cluster.level > 1, "level-1 members have no child clusters");
        ClusterId {
            level: cluster.level - 1,
            index: self.cluster(cluster).children[member_idx],
        }
    }

    /// Maximum intra-cluster traversal cost at a level (`d_i`, Theorem 1).
    pub fn d_at(&self, level: usize) -> f64 {
        self.d[level - 1]
    }

    /// The designated backup coordinator of a cluster: the best medoid
    /// among the members excluding the current coordinator ("failure of
    /// coordinator … nodes can be handled by maintaining active back-ups
    /// of those nodes within each cluster", Section 2.1.1). `None` for
    /// single-member clusters.
    pub fn backup_coordinator(&self, cluster: ClusterId, dm: &DistanceMatrix) -> Option<NodeId> {
        let c = self.cluster(cluster);
        let candidates: Vec<NodeId> = c
            .members
            .iter()
            .copied()
            .filter(|&m| m != c.coordinator)
            .collect();
        dm.medoid(&candidates, &c.members)
    }

    /// Every coordinator role a physical node currently holds, as the
    /// clusters it coordinates (one per level it was promoted through).
    pub fn coordinator_roles(&self, node: NodeId) -> Vec<ClusterId> {
        let mut roles = Vec::new();
        for (li, clusters) in self.levels.iter().enumerate() {
            for (ci, c) in clusters.iter().enumerate() {
                if c.coordinator == node {
                    roles.push(ClusterId {
                        level: li + 1,
                        index: ci,
                    });
                }
            }
        }
        roles
    }

    /// Theorem 1 slack at a level: `Σ_{i<level} 2·d_i` — the maximum error
    /// of a level-`level` distance estimate.
    pub fn theorem1_slack(&self, level: usize) -> f64 {
        (1..level).map(|i| 2.0 * self.d_at(i)).sum()
    }

    /// Distance between two nodes as estimated at `level`: the actual
    /// distance between their level-`level` representatives (`c_est^l`).
    pub fn estimated_cost(&self, dm: &DistanceMatrix, a: NodeId, b: NodeId, level: usize) -> f64 {
        dm.get(self.representative(a, level), self.representative(b, level))
    }

    /// The lowest level at which `a` and `b` fall in the same cluster.
    pub fn common_level(&self, a: NodeId, b: NodeId) -> usize {
        for level in 1..=self.height() {
            if self.ancestor(a, level) == self.ancestor(b, level) {
                return level;
            }
        }
        unreachable!("top level is a single cluster")
    }

    /// Render the hierarchy as a DOT digraph: clusters as boxes per level,
    /// coordinator-promotion edges between levels. Render with
    /// `dot -Tsvg hierarchy.dot`.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph hierarchy {{");
        let _ = writeln!(
            out,
            "  rankdir=BT; node [shape=box,fontname=\"monospace\"];"
        );
        for (li, clusters) in self.levels.iter().enumerate() {
            let level = li + 1;
            let _ = writeln!(out, "  subgraph cluster_level{level} {{");
            let _ = writeln!(out, "    label=\"level {level}\";");
            for (ci, c) in clusters.iter().enumerate() {
                let members: Vec<String> = c.members.iter().map(|m| m.to_string()).collect();
                let _ = writeln!(
                    out,
                    "    l{level}c{ci} [label=\"coord {}\\n[{}]\"];",
                    c.coordinator,
                    members.join(",")
                );
            }
            let _ = writeln!(out, "  }}");
        }
        for (li, clusters) in self.levels.iter().enumerate() {
            let level = li + 1;
            for (ci, c) in clusters.iter().enumerate() {
                if let Some(p) = c.parent {
                    let _ = writeln!(out, "  l{level}c{ci} -> l{}c{p};", level + 1);
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Structural invariants; used by tests and after membership surgery.
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        assert!(!self.levels.is_empty());
        assert_eq!(self.levels.last().unwrap().len(), 1, "single top cluster");
        for (li, clusters) in self.levels.iter().enumerate() {
            let level = li + 1;
            for (ci, c) in clusters.iter().enumerate() {
                assert!(!c.members.is_empty(), "empty cluster at level {level}");
                assert!(
                    c.members.len() <= self.config.max_cs,
                    "cluster size {} exceeds max_cs {} at level {level}",
                    c.members.len(),
                    self.config.max_cs
                );
                assert!(
                    c.members.contains(&c.coordinator),
                    "coordinator must be a member"
                );
                if level == 1 {
                    assert!(c.children.is_empty());
                    for &m in &c.members {
                        assert_eq!(self.leaf_of[m.index()], Some(ci), "leaf index mismatch");
                    }
                } else {
                    assert_eq!(c.children.len(), c.members.len());
                    for (k, &child) in c.children.iter().enumerate() {
                        let childc = &self.levels[level - 2][child];
                        assert_eq!(childc.parent, Some(ci), "parent pointer mismatch");
                        assert_eq!(
                            childc.coordinator, c.members[k],
                            "member must be its child's coordinator"
                        );
                    }
                }
                if level == self.levels.len() {
                    assert!(c.parent.is_none());
                } else {
                    assert!(c.parent.is_some(), "non-top cluster must have parent");
                }
            }
        }
        // Every level-1 member appears in exactly one cluster.
        let mut seen = vec![false; self.leaf_of.len()];
        for c in &self.levels[0] {
            for &m in &c.members {
                assert!(!seen[m.index()], "node {m} in two leaf clusters");
                seen[m.index()] = true;
            }
        }
    }

    /// Content fingerprint of every cluster, for diffing across membership
    /// surgery. Keyed by [`ClusterId`], which is *positional*: surgery may
    /// reuse an index for a different cluster (`remove_cluster` swap-removes),
    /// so the snapshot records the content — members and coordinator — and
    /// [`HierarchySnapshot::diff`] reports any id whose content moved.
    pub fn snapshot(&self) -> HierarchySnapshot {
        let mut clusters = std::collections::HashMap::new();
        for (li, level) in self.levels.iter().enumerate() {
            for (ci, c) in level.iter().enumerate() {
                let id = ClusterId {
                    level: li + 1,
                    index: ci,
                };
                clusters.insert(id, (c.members.clone(), c.coordinator));
            }
        }
        HierarchySnapshot {
            height: self.height(),
            clusters,
        }
    }

    /// The ancestors of `node` from its leaf cluster up to `max_level`
    /// (clamped to the height). Empty when `node` is not an active overlay
    /// member. This is the "dirty-ancestor walk": a memoized subplan that
    /// referenced `node` is stale exactly when some cluster on this chain
    /// changed, because `node`'s level-`l` representative is the coordinator
    /// of its level-(`l`−1) ancestor.
    pub fn ancestor_chain(&self, node: NodeId, max_level: usize) -> Vec<ClusterId> {
        if !self.is_active(node) {
            return Vec::new();
        }
        let top = max_level.min(self.height());
        let mut chain = Vec::with_capacity(top);
        let mut idx = self.leaf_of[node.index()].expect("checked active");
        chain.push(ClusterId {
            level: 1,
            index: idx,
        });
        for l in 2..=top {
            idx = self.levels[l - 2][idx]
                .parent
                .expect("non-top cluster must have a parent");
            chain.push(ClusterId {
                level: l,
                index: idx,
            });
        }
        chain
    }
}

/// Per-cluster content fingerprints of a [`Hierarchy`] at one instant
/// (see [`Hierarchy::snapshot`]).
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchySnapshot {
    height: usize,
    clusters: std::collections::HashMap<ClusterId, (Vec<NodeId>, NodeId)>,
}

impl HierarchySnapshot {
    /// Diff against a later snapshot: which [`ClusterId`]s now denote a
    /// cluster whose members or coordinator differ from what this snapshot
    /// recorded (including ids that appeared or disappeared). If the height
    /// changed, every level's numbering shifted meaning and the delta is
    /// marked [`full`](HierarchyDelta::full) instead.
    pub fn diff(&self, new: &HierarchySnapshot) -> HierarchyDelta {
        if self.height != new.height {
            return HierarchyDelta {
                full: true,
                dirty: std::collections::HashSet::new(),
            };
        }
        let mut dirty = std::collections::HashSet::new();
        for (id, content) in &new.clusters {
            if self.clusters.get(id) != Some(content) {
                dirty.insert(*id);
            }
        }
        for id in self.clusters.keys() {
            if !new.clusters.contains_key(id) {
                dirty.insert(*id);
            }
        }
        HierarchyDelta { full: false, dirty }
    }
}

/// Dirty-cluster set between two hierarchy snapshots; consumed by the plan
/// cache's scoped retirement.
#[derive(Clone, Debug, Default)]
pub struct HierarchyDelta {
    /// The hierarchy's height changed: level numbering itself shifted, so
    /// nothing keyed on [`ClusterId`]s can be trusted.
    pub full: bool,
    /// Ids whose cluster content (members or coordinator) changed.
    pub dirty: std::collections::HashSet<ClusterId>,
}

impl HierarchyDelta {
    /// True when the change touched nothing (no retirement needed).
    pub fn is_empty(&self) -> bool {
        !self.full && self.dirty.is_empty()
    }
}

fn max_pairwise(members: &[NodeId], dm: &DistanceMatrix) -> f64 {
    let mut max = 0.0f64;
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            max = max.max(dm.get(a, b));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::{Metric, TransitStubConfig};

    fn build(max_cs: usize) -> (Hierarchy, DistanceMatrix) {
        let ts = TransitStubConfig::paper_64().generate(1);
        let dm = DistanceMatrix::build(&ts.network, Metric::Cost);
        let cs = CostSpace::embed(&dm, 1, 40);
        let active: Vec<NodeId> = ts.network.nodes().collect();
        let h = Hierarchy::build(&active, &dm, &cs, HierarchyConfig::new(max_cs));
        (h, dm)
    }

    #[test]
    fn invariants_hold_for_various_max_cs() {
        for max_cs in [2, 4, 8, 16, 32, 64] {
            let (h, _) = build(max_cs);
            h.check_invariants();
            assert!(h.height() >= 1);
        }
    }

    #[test]
    fn smaller_max_cs_means_taller_hierarchy() {
        let (h2, _) = build(2);
        let (h32, _) = build(32);
        assert!(
            h2.height() > h32.height(),
            "h(max_cs=2) = {} vs h(max_cs=32) = {}",
            h2.height(),
            h32.height()
        );
        let (h64, _) = build(64);
        assert_eq!(h64.height(), 1, "64 nodes fit in one cluster of 64");
    }

    #[test]
    fn representatives_chain_to_top_coordinator() {
        let (h, _) = build(8);
        let top = h.top();
        let top_members = &h.cluster(top).members;
        for node in h.active_nodes() {
            assert_eq!(h.representative(node, 1), node);
            let rep_top = h.representative(node, h.height());
            assert!(top_members.contains(&rep_top));
            assert!(h.member_of(top, node).is_some());
        }
    }

    #[test]
    fn theorem1_estimate_error_is_bounded() {
        // |c_act − c_est^l| ≤ Σ_{i<l} 2·d_i for every pair and level.
        let (h, dm) = build(8);
        let nodes = h.active_nodes();
        for level in 1..=h.height() {
            let slack = h.theorem1_slack(level);
            for (i, &a) in nodes.iter().enumerate() {
                for &b in nodes.iter().skip(i + 1) {
                    let act = dm.get(a, b);
                    let est = h.estimated_cost(&dm, a, b, level);
                    assert!(
                        (act - est).abs() <= slack + 1e-9,
                        "level {level}: act {act} est {est} slack {slack}"
                    );
                }
            }
        }
    }

    #[test]
    fn level1_estimates_are_exact() {
        let (h, dm) = build(8);
        let nodes = h.active_nodes();
        assert_eq!(h.theorem1_slack(1), 0.0);
        for &a in nodes.iter().take(10) {
            for &b in nodes.iter().take(10) {
                assert_eq!(h.estimated_cost(&dm, a, b, 1), dm.get(a, b));
            }
        }
    }

    #[test]
    fn subtree_partitions_the_network() {
        let (h, _) = build(8);
        let mut all = h.subtree_nodes(h.top());
        all.sort_unstable();
        let mut active = h.active_nodes();
        active.sort_unstable();
        assert_eq!(all, active);

        // Member subtrees of the top cluster partition the node set.
        let top = h.top();
        let k = h.cluster(top).members.len();
        let mut union = Vec::new();
        for m in 0..k {
            union.extend(h.member_subtree(top, m));
        }
        union.sort_unstable();
        assert_eq!(union, active);
    }

    #[test]
    fn common_level_is_symmetric_and_sane() {
        let (h, _) = build(8);
        let nodes = h.active_nodes();
        for &a in nodes.iter().take(8) {
            for &b in nodes.iter().take(8) {
                let l = h.common_level(a, b);
                assert_eq!(l, h.common_level(b, a));
                if a == b {
                    assert_eq!(l, 1);
                }
                assert_eq!(h.ancestor(a, l), h.ancestor(b, l));
            }
        }
    }

    #[test]
    fn d_is_monotone_enough_to_be_positive_above_level_one() {
        let (h, _) = build(4);
        for level in 1..=h.height() {
            assert!(h.d_at(level) >= 0.0);
        }
        if h.height() > 1 {
            assert!(h.theorem1_slack(h.height()) > 0.0);
        }
    }

    #[test]
    fn agglomerative_method_also_builds_valid_hierarchy() {
        let ts = TransitStubConfig::paper_64().generate(2);
        let dm = DistanceMatrix::build(&ts.network, Metric::Cost);
        let cs = CostSpace::embed(&dm, 2, 40);
        let active: Vec<NodeId> = ts.network.nodes().collect();
        let h = Hierarchy::build(
            &active,
            &dm,
            &cs,
            HierarchyConfig {
                max_cs: 8,
                seed: 0,
                method: ClusteringMethod::Agglomerative,
            },
        );
        h.check_invariants();
    }

    #[test]
    fn dot_export_is_balanced_and_complete() {
        let (h, _) = build(8);
        let dot = h.to_dot();
        assert!(dot.starts_with("digraph hierarchy {"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        // One subgraph per level, one node per cluster, one edge per
        // non-top cluster.
        assert_eq!(dot.matches("subgraph").count(), h.height());
        let clusters: usize = (1..=h.height()).map(|l| h.level(l).len()).sum();
        assert_eq!(dot.matches("coord").count(), clusters);
        assert_eq!(dot.matches("->").count(), clusters - 1);
    }

    #[test]
    fn partial_overlay_membership() {
        let ts = TransitStubConfig::paper_64().generate(3);
        let dm = DistanceMatrix::build(&ts.network, Metric::Cost);
        let cs = CostSpace::embed(&dm, 3, 40);
        let active: Vec<NodeId> = ts.network.nodes().filter(|n| n.0 % 2 == 0).collect();
        let h = Hierarchy::build(&active, &dm, &cs, HierarchyConfig::new(8));
        h.check_invariants();
        assert!(h.is_active(NodeId(0)));
        assert!(!h.is_active(NodeId(1)));
        assert_eq!(h.active_nodes().len(), active.len());
    }

    #[test]
    fn ancestor_chain_matches_ancestor_and_clamps() {
        let (h, _) = build(8);
        for node in h.active_nodes() {
            let chain = h.ancestor_chain(node, h.height());
            assert_eq!(chain.len(), h.height());
            for (i, &id) in chain.iter().enumerate() {
                assert_eq!(id, h.ancestor(node, i + 1));
            }
            // Clamped walks are prefixes; over-asking clamps to the height.
            assert_eq!(h.ancestor_chain(node, 2)[..], chain[..2.min(chain.len())]);
            assert_eq!(h.ancestor_chain(node, h.height() + 7), chain);
        }
        assert!(
            h.ancestor_chain(NodeId(u32::MAX - 1), 3).is_empty(),
            "inactive nodes have no chain"
        );
    }

    #[test]
    fn snapshot_diff_is_empty_without_surgery_and_local_after_removal() {
        let (mut h, dm) = build(8);
        let before = h.snapshot();
        assert!(before.diff(&h.snapshot()).is_empty(), "no-op diff is empty");

        // Remove one ordinary (non-coordinator) node: its leaf cluster must
        // be dirty, and the delta must cover every cluster whose coordinator
        // re-election actually changed something.
        let victim = *h
            .level(1)
            .iter()
            .flat_map(|c| c.members.iter())
            .find(|&&m| {
                h.coordinator_roles(m).is_empty()
                    && h.level(1)[h.leaf_cluster(m).index].members.len() > 1
            })
            .expect("some non-coordinator exists");
        let leaf = h.leaf_cluster(victim);
        crate::membership::remove_node(&mut h, &dm, victim).unwrap();
        let delta = before.diff(&h.snapshot());
        assert!(
            !delta.full,
            "single removal does not change the height here"
        );
        assert!(delta.dirty.contains(&leaf), "the victim's leaf is dirty");
        // Soundness of the fingerprint: every id *not* in the delta holds a
        // cluster with identical members and coordinator as before surgery.
        for l in 1..=h.height() {
            for i in 0..h.level(l).len() {
                let id = ClusterId { level: l, index: i };
                if !delta.dirty.contains(&id) {
                    let c = h.cluster(id);
                    assert_eq!(
                        before.clusters.get(&id),
                        Some(&(c.members.clone(), c.coordinator)),
                        "undirty cluster {id:?} changed content"
                    );
                }
            }
        }
    }
}
