//! Agglomerative (complete-linkage) clustering alternative.
//!
//! Provided as an ablation counterpart to the paper's K-Means choice: merges
//! the two clusters whose *complete linkage* (maximum pairwise member
//! distance, measured on actual traversal costs rather than embedded
//! coordinates) is smallest, as long as the merged size stays within
//! `max_cs`. Because it works on the true distance matrix it can beat
//! K-Means when the cost-space embedding is distorted.

use dsq_net::{DistanceMatrix, NodeId};

/// Cluster `ids` into groups of at most `max_cs` by complete-linkage
/// agglomeration over actual traversal costs. Returns index groups into
/// `ids` (same contract as [`crate::kmeans::capped_kmeans`]).
pub fn agglomerative(ids: &[NodeId], dm: &DistanceMatrix, max_cs: usize) -> Vec<Vec<usize>> {
    assert!(max_cs >= 1);
    let n = ids.len();
    if n == 0 {
        return Vec::new();
    }
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        // Find the mergeable pair with smallest complete linkage.
        let mut best: Option<(f64, usize, usize)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                if clusters[a].len() + clusters[b].len() > max_cs {
                    continue;
                }
                let linkage = complete_linkage(&clusters[a], &clusters[b], ids, dm);
                if best.is_none() || linkage < best.unwrap().0 {
                    best = Some((linkage, a, b));
                }
            }
        }
        match best {
            Some((_, a, b)) => {
                let merged = clusters.swap_remove(b);
                clusters[if a < b { a } else { a - 1 }].extend(merged);
            }
            None => break,
        }
    }
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort();
    clusters
}

fn complete_linkage(a: &[usize], b: &[usize], ids: &[NodeId], dm: &DistanceMatrix) -> f64 {
    let mut max = 0.0f64;
    for &i in a {
        for &j in b {
            max = max.max(dm.get(ids[i], ids[j]));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::{LinkKind, Metric, Network};

    /// Two triangles of cheap links joined by one expensive bridge.
    fn two_islands() -> (Network, Vec<NodeId>) {
        let mut net = Network::new(6);
        let cheap = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        for (a, b) in cheap {
            net.add_link(NodeId(a), NodeId(b), 1.0, 1.0, LinkKind::Stub);
        }
        net.add_link(NodeId(2), NodeId(3), 50.0, 1.0, LinkKind::Transit);
        let ids = net.nodes().collect();
        (net, ids)
    }

    #[test]
    fn groups_islands_and_respects_cap() {
        let (net, ids) = two_islands();
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let clusters = agglomerative(&ids, &dm, 3);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn cap_one_yields_singletons() {
        let (net, ids) = two_islands();
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let clusters = agglomerative(&ids, &dm, 1);
        assert_eq!(clusters.len(), 6);
    }

    #[test]
    fn large_cap_merges_everything() {
        let (net, ids) = two_islands();
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let clusters = agglomerative(&ids, &dm, 10);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 6);
    }
}
