//! Processing-load model.
//!
//! The paper's first motivating optimization is load-driven: "node N2 may
//! be overloaded, or the link FLIGHTS→N2 may be congested. In this case,
//! the network conditions dictate that a more efficient join ordering is
//! …" (Section 1.1), and IFLOW's middleware re-triggers optimization on
//! "changes in network, **load** or data conditions".
//!
//! [`LoadModel`] tracks per-node processing load (an operator's load is the
//! sum of its input rates — the tuples it must probe and insert per unit
//! time) against per-node capacity, and prices the *overload* portion. When
//! an [`Environment`](crate::Environment) carries a load model, every
//! within-cluster search adds that price to candidate placements, steering
//! operators away from hot nodes; committing a deployment updates the
//! standing load so later queries see it.
//!
//! The penalty is charged per operator independently (two operators placed
//! on the same node within a single query each see the pre-query load);
//! tracking intra-query interactions exactly would blow up the planning
//! state space, and the error is at most one query's own load.

use dsq_net::NodeId;
use dsq_query::{Deployment, FlatNode};

/// Per-node processing load and capacity, with an overload price.
#[derive(Clone, Debug)]
pub struct LoadModel {
    capacity: Vec<f64>,
    load: Vec<f64>,
    /// Cost charged per unit of load above capacity per unit time
    /// (commensurate with the communication cost units).
    pub penalty_per_unit: f64,
}

impl LoadModel {
    /// Uniform capacity for `n` nodes.
    pub fn uniform(n: usize, capacity: f64, penalty_per_unit: f64) -> Self {
        assert!(capacity >= 0.0 && penalty_per_unit >= 0.0);
        LoadModel {
            capacity: vec![capacity; n],
            load: vec![0.0; n],
            penalty_per_unit,
        }
    }

    /// Explicit per-node capacities.
    pub fn with_capacities(capacity: Vec<f64>, penalty_per_unit: f64) -> Self {
        let n = capacity.len();
        LoadModel {
            capacity,
            load: vec![0.0; n],
            penalty_per_unit,
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// True when no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.capacity.is_empty()
    }

    /// Current load of a node.
    pub fn load(&self, node: NodeId) -> f64 {
        self.load[node.index()]
    }

    /// Utilization (load / capacity; infinite for zero-capacity nodes under
    /// load).
    pub fn utilization(&self, node: NodeId) -> f64 {
        let cap = self.capacity[node.index()];
        if cap > 0.0 {
            self.load[node.index()] / cap
        } else if self.load[node.index()] > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Set a node's standing load directly (e.g. background work observed
    /// by monitoring).
    pub fn set_load(&mut self, node: NodeId, load: f64) {
        assert!(load >= 0.0);
        self.load[node.index()] = load;
    }

    /// Marginal overload cost of adding `added_rate` of processing to a
    /// node: the newly-overloaded portion times the penalty price.
    pub fn penalty(&self, node: NodeId, added_rate: f64) -> f64 {
        let cap = self.capacity[node.index()];
        let before = (self.load[node.index()] - cap).max(0.0);
        let after = (self.load[node.index()] + added_rate - cap).max(0.0);
        (after - before) * self.penalty_per_unit
    }

    /// Processing rate each join operator of a deployment adds to its node:
    /// the sum of its input rates.
    pub fn operator_loads(deployment: &Deployment) -> Vec<(NodeId, f64)> {
        let nodes = deployment.plan.nodes();
        deployment
            .plan
            .join_indices()
            .into_iter()
            .map(|i| {
                let (l, r) = match &nodes[i] {
                    FlatNode::Join { left, right, .. } => (*left, *right),
                    FlatNode::Leaf { .. } => unreachable!("join_indices yields joins"),
                };
                (deployment.placement[i], nodes[l].rate() + nodes[r].rate())
            })
            .collect()
    }

    /// Commit a deployment's operators into the standing load.
    pub fn commit(&mut self, deployment: &Deployment) {
        for (node, rate) in Self::operator_loads(deployment) {
            self.load[node.index()] += rate;
        }
    }

    /// Remove a deployment's operators from the standing load (migration).
    pub fn release(&mut self, deployment: &Deployment) {
        for (node, rate) in Self::operator_loads(deployment) {
            self.load[node.index()] = (self.load[node.index()] - rate).max(0.0);
        }
    }

    /// Total overload penalty a standing deployment incurs per unit time
    /// under the *current* loads (reporting; the planning-time penalty is
    /// marginal).
    pub fn overload_cost(&self) -> f64 {
        self.overload_units() * self.penalty_per_unit
    }

    /// Total load above capacity across all nodes, unpriced.
    pub fn overload_units(&self) -> f64 {
        self.capacity
            .iter()
            .zip(&self.load)
            .map(|(&c, &l)| (l - c).max(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::{DistanceMatrix, LinkKind, Metric, Network};
    use dsq_query::{Catalog, FlatPlan, JoinTree, Query, QueryId, Schema};

    fn deployment() -> (Catalog, Deployment) {
        let mut net = Network::new(3);
        net.add_link(NodeId(0), NodeId(1), 1.0, 1.0, LinkKind::Stub);
        net.add_link(NodeId(1), NodeId(2), 1.0, 1.0, LinkKind::Stub);
        let dm = DistanceMatrix::build(&net, Metric::Cost);
        let mut c = Catalog::new();
        let a = c.add_stream("A", 10.0, NodeId(0), Schema::default());
        let b = c.add_stream("B", 4.0, NodeId(2), Schema::default());
        c.set_selectivity(a, b, 0.1);
        let q = Query::join(QueryId(0), [a, b], NodeId(2));
        let tree = JoinTree::join(JoinTree::base(a), JoinTree::base(b));
        let plan = FlatPlan::from_tree(&tree, &q, &c);
        let d = Deployment::evaluate(
            q.id,
            plan,
            vec![NodeId(0), NodeId(2), NodeId(1)],
            NodeId(2),
            &dm,
        );
        (c, d)
    }

    #[test]
    fn penalty_prices_only_the_overload_portion() {
        let mut m = LoadModel::uniform(3, 10.0, 2.0);
        assert_eq!(m.penalty(NodeId(0), 5.0), 0.0, "within capacity");
        assert_eq!(m.penalty(NodeId(0), 15.0), 10.0, "5 units over × 2.0");
        m.set_load(NodeId(0), 8.0);
        assert_eq!(m.penalty(NodeId(0), 5.0), 6.0, "3 units over × 2.0");
        m.set_load(NodeId(0), 12.0);
        assert_eq!(
            m.penalty(NodeId(0), 5.0),
            10.0,
            "already over: all 5 priced"
        );
    }

    #[test]
    fn commit_and_release_round_trip() {
        let (_, d) = deployment();
        let mut m = LoadModel::uniform(3, 10.0, 1.0);
        m.commit(&d);
        // The join at n1 ingests 10 + 4 = 14.
        assert_eq!(m.load(NodeId(1)), 14.0);
        assert!((m.utilization(NodeId(1)) - 1.4).abs() < 1e-12);
        assert_eq!(m.overload_cost(), 4.0);
        m.release(&d);
        assert_eq!(m.load(NodeId(1)), 0.0);
        assert_eq!(m.overload_cost(), 0.0);
    }

    #[test]
    fn operator_loads_lists_join_placements() {
        let (_, d) = deployment();
        let loads = LoadModel::operator_loads(&d);
        assert_eq!(loads, vec![(NodeId(1), 14.0)]);
    }
}
