//! The optimization environment: network, distances, embedding, hierarchy.

use crate::load::LoadModel;
use dsq_hierarchy::{Hierarchy, HierarchyConfig};
use dsq_net::{CostSpace, DistanceMatrix, Metric, Network, NodeId};
use std::sync::{Arc, RwLock};

/// Everything the optimizers need to know about the physical substrate,
/// computed once per network and shared across queries.
///
/// The paper's performance function "might be a low level function, like
/// response time or communication cost": the [`Metric`] chosen at build
/// time decides which link weight the distance matrix — and therefore the
/// clustering ("if the metric is response-time, we cluster based on
/// inter-node delays") and every optimizer decision — is based on.
#[derive(Clone, Debug)]
pub struct Environment {
    /// The physical network.
    pub network: Network,
    /// Actual all-pairs shortest-path distances under `metric` (`c_act`).
    pub dm: DistanceMatrix,
    /// 3-d cost-space embedding (drives K-Means clustering; also used by
    /// the Relaxation baseline).
    pub space: CostSpace,
    /// The virtual clustering hierarchy.
    pub hierarchy: Hierarchy,
    /// The optimization metric the environment was built for.
    pub metric: Metric,
    /// Optional processing-load model; when present, every optimizer adds
    /// its overload penalties to candidate placements. Shared behind a lock
    /// so standing load survives across queries (commit with
    /// [`Environment::commit_load`]).
    pub load: Option<Arc<RwLock<LoadModel>>>,
    /// Shared memoized subplan cache (disabled by default; see
    /// [`crate::cache::PlanCache`]). Cloned environments share it; the
    /// adaptive runtime invalidates it whenever distances, the hierarchy, or
    /// the catalog change.
    pub plan_cache: Arc<crate::cache::PlanCache>,
}

impl Environment {
    /// Build an environment with a K-Means hierarchy capped at `max_cs`,
    /// optimizing communication cost.
    pub fn build(network: Network, max_cs: usize) -> Self {
        Self::build_with(network, HierarchyConfig::new(max_cs), 40)
    }

    /// Build a *response-time* environment: distances, clustering and all
    /// downstream planning minimize rate-weighted latency instead of
    /// transfer cost.
    pub fn build_latency(network: Network, max_cs: usize) -> Self {
        Self::build_full(network, HierarchyConfig::new(max_cs), 40, Metric::DelayMs)
    }

    /// Build with explicit hierarchy configuration and embedding sweeps
    /// (communication-cost metric).
    pub fn build_with(network: Network, config: HierarchyConfig, embed_iters: usize) -> Self {
        Self::build_full(network, config, embed_iters, Metric::Cost)
    }

    /// Fully explicit build.
    pub fn build_full(
        network: Network,
        config: HierarchyConfig,
        embed_iters: usize,
        metric: Metric,
    ) -> Self {
        let dm = DistanceMatrix::build(&network, metric);
        let seed = config.seed ^ network.len() as u64;
        let space = CostSpace::embed(&dm, seed, embed_iters);
        let active: Vec<NodeId> = network.nodes().collect();
        let hierarchy = Hierarchy::build(&active, &dm, &space, config);
        Environment {
            network,
            dm,
            space,
            hierarchy,
            metric,
            load: None,
            plan_cache: Arc::new(crate::cache::PlanCache::new()),
        }
    }

    /// Attach a load model (overload penalties participate in planning
    /// from now on).
    pub fn enable_load_model(&mut self, model: LoadModel) {
        assert_eq!(model.len(), self.network.len());
        self.load = Some(Arc::new(RwLock::new(model)));
    }

    /// A snapshot of the current load state, if a model is attached.
    pub fn load_snapshot(&self) -> Option<LoadModel> {
        self.load
            .as_ref()
            .map(|l| l.read().expect("load lock poisoned").clone())
    }

    /// Add a deployment's operators to the standing load.
    pub fn commit_load(&self, deployment: &dsq_query::Deployment) {
        if let Some(l) = &self.load {
            l.write().expect("load lock poisoned").commit(deployment);
        }
    }

    /// Remove a deployment's operators from the standing load (migration).
    pub fn release_load(&self, deployment: &dsq_query::Deployment) {
        if let Some(l) = &self.load {
            l.write().expect("load lock poisoned").release(deployment);
        }
    }

    /// Swap the shared subplan cache for a fresh, private one with the
    /// given enablement. Cloned environments share the cache `Arc`, so
    /// harnesses that compare runs bit-for-bit (e.g. the chaos runner)
    /// call this at run start — one run's entries and hit counts must not
    /// leak into the next.
    pub fn isolate_cache(&mut self, enabled: bool) {
        self.plan_cache = Arc::new(crate::cache::PlanCache::new_with_enabled(enabled));
    }

    /// A copy of this environment re-clustered with a different `max_cs`
    /// (reuses the distance matrix and embedding — the expensive parts).
    ///
    /// This mirrors the paper's note that "multiple virtual clustering
    /// hierarchies can be created simultaneously with different values of
    /// the max_cs parameter".
    pub fn reclustered(&self, max_cs: usize) -> Self {
        let active: Vec<NodeId> = self.network.nodes().collect();
        let hierarchy =
            Hierarchy::build(&active, &self.dm, &self.space, HierarchyConfig::new(max_cs));
        Environment {
            network: self.network.clone(),
            dm: self.dm.clone(),
            space: self.space.clone(),
            hierarchy,
            metric: self.metric,
            load: self.load.clone(),
            // The new hierarchy makes old cluster keys meaningless: start a
            // fresh cache, preserving only the operator's on/off choice.
            plan_cache: Arc::new(crate::cache::PlanCache::new_with_enabled(
                self.plan_cache.is_enabled(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_net::TransitStubConfig;

    #[test]
    fn build_and_recluster() {
        let net = TransitStubConfig::paper_64().generate(1).network;
        let env = Environment::build(net, 8);
        env.hierarchy.check_invariants();
        let env32 = env.reclustered(32);
        env32.hierarchy.check_invariants();
        assert!(env32.hierarchy.height() <= env.hierarchy.height());
        assert_eq!(env32.dm.len(), env.dm.len());
        assert_eq!(env.metric, Metric::Cost);
    }

    #[test]
    fn latency_environment_uses_delay_distances() {
        let net = TransitStubConfig::paper_64().generate(2).network;
        let cost_env = Environment::build(net.clone(), 8);
        let lat_env = Environment::build_latency(net.clone(), 8);
        assert_eq!(lat_env.metric, Metric::DelayMs);
        // Pick a pair whose cost and delay distances differ; the two
        // environments must disagree on at least some distances (delays are
        // uniform 1–6 ms across tiers, costs are strongly tiered).
        let a = NodeId(5);
        let b = NodeId(net.len() as u32 - 1);
        assert_ne!(cost_env.dm.get(a, b), lat_env.dm.get(a, b));
    }

    #[test]
    fn latency_optimizer_minimizes_delay() {
        use crate::{Optimizer, SearchStats, TopDown};
        let net = TransitStubConfig::paper_64().generate(3).network;
        let lat_env = Environment::build_latency(net, 8);
        let wl = dsq_workload::WorkloadGenerator::new(
            dsq_workload::WorkloadConfig {
                streams: 10,
                queries: 4,
                joins_per_query: 2..=3,
                ..Default::default()
            },
            5,
        )
        .generate(&lat_env.network);
        for q in &wl.queries {
            let mut reg = dsq_query::ReuseRegistry::new();
            let mut stats = SearchStats::new();
            let d = TopDown::new(&lat_env)
                .optimize(&wl.catalog, q, &mut reg, &mut stats)
                .unwrap();
            // Deployment cost is rate-weighted latency under this metric.
            assert!(d.cost.is_finite() && d.cost > 0.0);
            let opt = crate::Optimal::new(&lat_env)
                .optimize(
                    &wl.catalog,
                    q,
                    &mut dsq_query::ReuseRegistry::new(),
                    &mut stats,
                )
                .unwrap();
            assert!(d.cost >= opt.cost - 1e-6);
        }
    }
}
